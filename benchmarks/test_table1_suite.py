"""Table 1: the benchmark suite and its characteristics.

Also benchmarks the front half of the Lift pipeline (building, type checking
and verifying the benchmark expressions), which corresponds to the paper's
claim that all twelve stencils are expressible with just ``pad`` and ``slide``.
"""

from __future__ import annotations

import pytest

from repro.apps import ALL_BENCHMARKS, get_benchmark
from repro.apps.suite import table1_rows
from repro.core.typecheck import check_program
from repro.experiments.table1 import format_table1

SMALL_SHAPES = {2: (16, 16), 3: (8, 8, 8)}


def test_table1_contents(benchmark):
    """Regenerate Table 1 and check it lists the paper's benchmarks and sizes."""
    table = benchmark(format_table1)
    print("\n\n=== Table 1: benchmarks used in the evaluation ===")
    print(table)
    assert "Stencil2D" in table and "Acoustic" in table and "Poisson" in table
    assert "4098×4098" in table
    rows = table1_rows()
    assert len(rows) == len(ALL_BENCHMARKS)


@pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
def test_build_and_typecheck_benchmark(benchmark, key):
    """Time how long building + type-checking each benchmark's Lift expression takes."""
    bench = get_benchmark(key)
    shape = SMALL_SHAPES[bench.ndims]

    def build_and_check():
        program = bench.build_program()
        return check_program(program, bench.input_types(shape))

    result_type = benchmark(build_and_check)
    assert result_type is not None


@pytest.mark.parametrize("key", ["jacobi2d5pt", "heat", "acoustic"])
def test_interpret_benchmark_small_grid(benchmark, key):
    """Time the reference interpreter on a small grid (the correctness oracle)."""
    bench = get_benchmark(key)
    shape = SMALL_SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=0)
    out = benchmark(lambda: bench.run_interpreter(inputs))
    assert out.shape == tuple(shape)
