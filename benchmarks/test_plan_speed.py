"""Execution-plan benchmarks: per-sweep generic loop vs warm tape replay.

Times the iterative steady-state paths on the time-stepping apps and
asserts the headline properties of the plan layer: the allocation-free,
double-buffered loop beats one generic ``run`` per timestep (the recorded
``BENCH_plans.json`` shows >= 2x at this dispatch-bound size), and the
tape-optimized (fused + tiled) loop is tracked alongside it.

Run with ``pytest benchmarks/test_plan_speed.py`` — the summary table
(including the large, bandwidth-bound shapes where fusion wins >= 1.3x)
lands in ``BENCH_plans.json`` via ``python -m repro bench-plans``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import get_benchmark
from repro.apps.suite import ITERATIVE_BENCHMARKS
from repro.backend.base import NumpyBackend
from repro.backend.plan import iterate_generic

#: Harness-local sizes: large enough that NumPy sweeps dominate Python
#: dispatch, small enough that the (non-blocking) CI benchmark job stays
#: snappy.  The recorded BENCH_plans.json uses the larger
#: ``repro.experiments.plan_bench.PLAN_BENCH_SHAPES``.
PLAN_BENCH_SHAPES = {2: (256, 256), 3: (16, 48, 48)}

STEPS = 16


@pytest.mark.parametrize("key", ITERATIVE_BENCHMARKS)
def test_plan_steady_iterate_speed(benchmark, key):
    """Time the warm plan loop (tapes captured, pure replays, unfused)."""
    bench = get_benchmark(key)
    shape = PLAN_BENCH_SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=0)
    program = bench.build_program()
    carry = bench.carry_spec()
    backend = NumpyBackend()
    plan = backend.plan(program, inputs, tile_shape=False)
    plan.iterate(inputs, STEPS, carry=carry)  # capture every tape
    out = benchmark(lambda: plan.iterate(inputs, STEPS, carry=carry))
    assert out.shape[: len(shape)] == tuple(shape)


@pytest.mark.parametrize("key", ITERATIVE_BENCHMARKS)
def test_fused_steady_iterate_speed(benchmark, key):
    """Time the optimized tape: fused regions, cache-blocked tiled replay."""
    bench = get_benchmark(key)
    shape = PLAN_BENCH_SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=0)
    program = bench.build_program()
    carry = bench.carry_spec()
    backend = NumpyBackend()
    plan = backend.plan(program, inputs)  # heuristic tile, fused by default
    plan.iterate(inputs, STEPS, carry=carry)  # capture every tape
    assert plan.stats()["fused_regions"] >= 1
    out = benchmark(lambda: plan.iterate(inputs, STEPS, carry=carry))
    assert out.shape[: len(shape)] == tuple(shape)


@pytest.mark.parametrize("key", ["hotspot2d", "acoustic"])
def test_per_sweep_baseline_speed(benchmark, key):
    """The baseline being beaten: one generic run() per timestep."""
    bench = get_benchmark(key)
    shape = PLAN_BENCH_SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=0)
    program = bench.build_program()
    carry = bench.carry_spec()
    backend = NumpyBackend()
    backend.run(program, inputs)  # warm the compilation cache
    out = benchmark.pedantic(
        lambda: iterate_generic(backend, program, inputs, STEPS, carry=carry),
        rounds=2, iterations=1,
    )
    assert out.shape[: len(shape)] == tuple(shape)


def test_plan_iterate_bit_identical_at_benchmark_scale():
    """Bit-identity at the benchmarked grid size and step count.

    The *speed* ordering is asserted deterministically by the `plan-smoke`
    CI job (`repro bench-plans --assert-speedup`); re-asserting wall-clock
    order here would make the harness flaky on loaded machines, so this
    test pins down only the correctness half of the property.
    """
    bench = get_benchmark("hotspot2d")
    inputs = bench.make_inputs(PLAN_BENCH_SHAPES[2], seed=0)
    program = bench.build_program()
    carry = bench.carry_spec()
    backend = NumpyBackend()
    plan = backend.plan(program, inputs)
    assert np.array_equal(
        iterate_generic(backend, program, inputs, STEPS, carry=carry),
        plan.iterate(inputs, STEPS, carry=carry),
    )
