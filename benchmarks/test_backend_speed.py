"""Execution-backend benchmarks: reference interpreter vs compiled NumPy.

Times both execution paths on the Figure-7 pipeline applications and asserts
the headline property of the compiled backend: at least an order of
magnitude over the interpreter (in practice it is two to three orders).

Run with ``pytest benchmarks/test_backend_speed.py`` — the summary table also
lands in ``BENCH_backend.json`` via ``python -m repro bench-backend``.
"""

from __future__ import annotations

import pytest

from repro.apps import get_benchmark
from repro.apps.suite import FIGURE7_BENCHMARKS
from repro.backend import default_cache, get_backend
from repro.experiments.backend_bench import BENCH_SHAPES, run_backend_bench

#: Small enough for the interpreter to finish promptly, big enough to matter.
SHAPES = dict(BENCH_SHAPES)


@pytest.mark.parametrize("key", FIGURE7_BENCHMARKS)
def test_compiled_backend_speed(benchmark, key):
    """Time the compiled NumPy backend (cache warm) on a Figure-7 app."""
    bench = get_benchmark(key)
    shape = SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=0)
    program = bench.build_program()
    backend = get_backend("numpy")
    backend.run(program, inputs)  # warm the compilation cache
    out = benchmark(lambda: backend.run(program, inputs))
    assert out.shape[: len(shape)] == tuple(shape)


@pytest.mark.parametrize("key", ["stencil2d", "hotspot3d"])
def test_interpreter_baseline_speed(benchmark, key):
    """The baseline being beaten: the same app through the interpreter."""
    bench = get_benchmark(key)
    shape = SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=0)
    program = bench.build_program()
    backend = get_backend("interpreter")
    out = benchmark.pedantic(
        lambda: backend.run(program, inputs), rounds=1, iterations=1
    )
    assert out.shape[: len(shape)] == tuple(shape)


def test_backend_speedup_exceeds_10x(benchmark):
    """The acceptance criterion: ≥10× over the interpreter on Figure 7."""
    rows = benchmark.pedantic(
        lambda: run_backend_bench(repeats=1), rounds=1, iterations=1
    )
    assert all(row.results_match for row in rows)
    slowest = min(rows, key=lambda row: row.speedup)
    assert slowest.speedup >= 10.0, (
        f"{slowest.benchmark}: only {slowest.speedup:.1f}x over the interpreter"
    )


def test_compilation_cache_is_effective():
    """Repeated executions hit the cache instead of recompiling."""
    default_cache.clear()
    bench = get_benchmark("stencil2d")
    inputs = bench.make_inputs((24, 24), seed=0)
    program = bench.build_program()
    backend = get_backend("numpy")
    for _ in range(5):
        backend.run(program, inputs)
    stats = default_cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 4
