"""Shared fixtures for the benchmark harness.

The benchmarks regenerate the paper's tables and figures on the virtual
devices.  Expensive figure sweeps are computed once per session and printed so
that running ``pytest benchmarks/ --benchmark-only`` reproduces the rows the
paper reports (Table 1, Figure 7, Figure 8) alongside the timing numbers of
the pipeline itself.
"""

from __future__ import annotations

import pytest

#: Tuning budget used by the harness (number of simulated configurations per
#: variant).  The spaces are small enough that this is effectively exhaustive,
#: mirroring the paper's "up to three hours of auto-tuning per benchmark".
TUNER_BUDGET = 3000


@pytest.fixture(scope="session")
def figure7_rows():
    from repro.experiments.figure7 import format_figure7, run_figure7

    rows = run_figure7(tuner_budget=TUNER_BUDGET)
    print("\n\n=== Figure 7: Lift vs hand-written kernels (GElements/s) ===")
    print(format_figure7(rows))
    return rows


@pytest.fixture(scope="session")
def figure8_rows():
    from repro.experiments.figure8 import format_figure8, run_figure8

    rows = run_figure8(tuner_budget=TUNER_BUDGET)
    print("\n\n=== Figure 8: Lift vs PPCG (speedup over PPCG) ===")
    print(format_figure8(rows))
    return rows
