"""Ablation of the stencil-specific optimisations (DESIGN.md design choices).

The paper's central optimisation story is: overlapped tiling (the new rewrite
rule) + local memory + loop unrolling, applied only where the target device
benefits.  This harness isolates each choice on the virtual devices so the
contribution of every rewrite can be inspected:

* ``naive``            — mapGlb nest, every neighbour read from global memory;
* ``tiled``            — overlapped tiling, tile staged in local memory;
* ``tiled-no-local``   — overlapped tiling without the local-memory copy.

It also times OpenCL code generation itself (views → kernel source).
"""

from __future__ import annotations

import pytest

from repro.apps import get_benchmark
from repro.codegen import generate_kernel
from repro.core.types import Float, array
from repro.rewriting.strategies import NAIVE, lower_program, tiled_strategy
from repro.runtime.simulator import KernelConfig, VirtualDevice, build_profile
from repro.runtime.simulator.device import DEVICES

VARIANTS = {
    "naive": (NAIVE, KernelConfig(workgroup_size=(16, 16), work_per_thread=1)),
    "tiled": (
        tiled_strategy(18, use_local_memory=True),
        KernelConfig(workgroup_size=(16, 16), tile_size=18, use_local_memory=True),
    ),
    "tiled-no-local": (
        tiled_strategy(18, use_local_memory=False),
        KernelConfig(workgroup_size=(16, 16), tile_size=18, use_local_memory=False),
    ),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("device_key", sorted(DEVICES))
def test_ablation_stencil2d(benchmark, variant, device_key):
    """Simulated throughput of each optimisation variant of Stencil2D per device."""
    bench = get_benchmark("stencil2d")
    strategy, config = VARIANTS[variant]
    device = DEVICES[device_key]
    lowered = lower_program(bench.build_program(), strategy)
    problem = bench.problem()

    def simulate():
        profile = build_profile(lowered, problem, config, label=variant)
        return VirtualDevice(device).run(profile)

    result = benchmark(simulate)
    print(
        f"\nablation[{bench.name} / {device.name} / {variant}]: "
        f"{result.gelements_per_second:.3f} GElem/s"
    )
    assert result.gelements_per_second > 0


@pytest.mark.parametrize("variant", ["naive", "tiled"])
def test_codegen_speed(benchmark, variant):
    """Time OpenCL code generation (view construction + kernel emission)."""
    bench = get_benchmark("jacobi2d5pt")
    strategy, _ = VARIANTS[variant]
    lowered = lower_program(bench.build_program(), strategy)
    types = [array(Float, 64, 64)]

    kernel = benchmark(lambda: generate_kernel(lowered, types, f"jacobi_{variant}"))
    assert "__kernel" in kernel.source


def test_unrolling_ablation(benchmark):
    """reduceUnroll vs reduceSeq: unrolling removes the inner loop from the kernel."""
    bench = get_benchmark("gaussian")
    unrolled = lower_program(bench.build_program(), NAIVE)
    rolled = lower_program(
        bench.build_program(),
        type(NAIVE)(name="naive", use_tiling=False, unroll_reduce=False),
    )
    types = [array(Float, 64, 64)]

    unrolled_kernel = generate_kernel(unrolled, types, "gauss_unrolled")
    rolled_kernel = benchmark(lambda: generate_kernel(rolled, types, "gauss_rolled"))
    assert unrolled_kernel.source.count("for") <= rolled_kernel.source.count("for")
