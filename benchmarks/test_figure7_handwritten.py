"""Figure 7: Lift-generated kernels vs hand-written reference kernels.

Running this module prints the full Figure-7 table (six benchmarks × three
GPUs, giga-elements updated per second for Lift and for the reference) and
times the explore → tune → simulate pipeline per benchmark.
"""

from __future__ import annotations

import pytest

from repro.apps import get_benchmark
from repro.apps.suite import FIGURE7_BENCHMARKS
from repro.experiments.pipeline import lift_best_result, reference_result
from repro.runtime.simulator.device import DEVICES

from .conftest import TUNER_BUDGET


def test_figure7_trends(figure7_rows, benchmark):
    """Check the paper's headline Figure-7 observations on the generated rows."""
    benchmark(lambda: None)  # the heavy work happens in the session fixture

    by_key = {(r.benchmark, r.device): r for r in figure7_rows}
    assert len(figure7_rows) == 6 * 3

    # Lift is competitive with the hand-written kernels everywhere.
    assert all(r.speedup_over_reference > 0.5 for r in figure7_rows)

    # Hotspot2D: the Nvidia-tuned reference collapses on AMD and loses on ARM.
    assert by_key[("Hotspot2D", "Radeon HD 7970")].speedup_over_reference > 4.0
    assert by_key[("Hotspot2D", "Mali-T628 MP6")].speedup_over_reference > 1.5

    # The small SRAD inputs cannot saturate the discrete GPUs.
    assert (
        by_key[("SRAD1", "Tesla K20c")].lift_gelements
        < by_key[("Stencil2D", "Tesla K20c")].lift_gelements
    )


@pytest.mark.parametrize("key", FIGURE7_BENCHMARKS)
@pytest.mark.parametrize("device_key", sorted(DEVICES))
def test_lift_pipeline_per_benchmark(benchmark, key, device_key):
    """Time the full Lift pipeline (exploration + tuning + simulation) per point."""
    bench = get_benchmark(key)
    device = DEVICES[device_key]

    outcome = benchmark(
        lambda: lift_best_result(bench, device=device, tuner_budget=TUNER_BUDGET)
    )
    assert outcome.gelements_per_second > 0


@pytest.mark.parametrize("key", FIGURE7_BENCHMARKS)
def test_reference_kernel_simulation(benchmark, key):
    """Time the hand-written kernel model evaluation (one device)."""
    bench = get_benchmark(key)
    result = benchmark(
        lambda: reference_result(bench, key, DEVICES["nvidia"])
    )
    assert result.gelements_per_second > 0
