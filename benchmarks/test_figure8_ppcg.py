"""Figure 8: Lift-generated kernels vs the PPCG polyhedral compiler.

Running this module prints the full Figure-8 table (eight benchmarks × two
input sizes × three GPUs, speedup of the best Lift kernel over the best PPCG
kernel, both tuned with the same budget) together with the tiling-usage
summary the paper discusses in §7.2.
"""

from __future__ import annotations

import pytest

from repro.apps import get_benchmark
from repro.apps.suite import FIGURE8_BENCHMARKS
from repro.experiments.figure8 import tiling_usage
from repro.experiments.pipeline import lift_best_result, ppcg_best_result
from repro.runtime.simulator.device import DEVICES

from .conftest import TUNER_BUDGET


def test_figure8_trends(figure8_rows, benchmark):
    """Check the paper's headline Figure-8 observations on the generated rows."""
    benchmark(lambda: None)  # the heavy work happens in the session fixture

    # 8 benchmarks × (3 devices for small + 2 devices for large: ARM skips large).
    assert len(figure8_rows) == 8 * 5

    # Lift is on par with or clearly outperforms PPCG on nearly every point.
    at_least_par = [r for r in figure8_rows if r.speedup_over_ppcg >= 0.9]
    assert len(at_least_par) >= 0.85 * len(figure8_rows)

    # Large 3D benchmarks show multi-x speedups (paper: Heat 4.3x on Nvidia).
    heat_nvidia_large = [
        r for r in figure8_rows
        if r.benchmark == "Heat" and "K20c" in r.device and r.size == "large"
    ][0]
    assert heat_nvidia_large.speedup_over_ppcg > 2.0

    # Tiling usage: common on Nvidia, absent on ARM, rare on AMD (paper §7.2).
    usage = tiling_usage(figure8_rows)
    assert usage["Mali-T628 MP6"] == 0.0
    assert usage["Radeon HD 7970"] <= 0.5
    assert usage["Tesla K20c"] > usage["Radeon HD 7970"]


@pytest.mark.parametrize("key", FIGURE8_BENCHMARKS)
@pytest.mark.parametrize("size", ["small", "large"])
def test_lift_vs_ppcg_point(benchmark, key, size):
    """Time one Figure-8 data point (Lift pipeline + PPCG tuning) on Nvidia."""
    bench = get_benchmark(key)
    device = DEVICES["nvidia"]
    shape = bench.shape_for(size)

    def run_point():
        lift = lift_best_result(bench, shape=shape, device=device,
                                tuner_budget=TUNER_BUDGET)
        ppcg, _, _ = ppcg_best_result(bench, device, shape=shape,
                                      tuner_budget=TUNER_BUDGET)
        return lift.gelements_per_second / ppcg.gelements_per_second

    speedup = benchmark(run_point)
    assert speedup > 0.5


@pytest.mark.parametrize("device_key", sorted(DEVICES))
def test_ppcg_tuning_cost(benchmark, device_key):
    """Time the PPCG baseline's exhaustive tile/block tuning on each device."""
    bench = get_benchmark("jacobi2d5pt")
    device = DEVICES[device_key]
    result, _, evaluations = benchmark(
        lambda: ppcg_best_result(bench, device, tuner_budget=TUNER_BUDGET)
    )
    assert result.gelements_per_second > 0
    assert evaluations > 0
