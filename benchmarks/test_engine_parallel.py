"""Scaling and resume behaviour of the parallel search engine.

Two properties of `repro.engine` are exercised on a real ≥50-candidate
search with per-variant validation (the workload where fan-out pays):

* a multi-worker search returns the *same best kernel* as the serial path
  and, on a multi-core machine, demonstrably less wall-clock;
* a second run against the same results store performs *zero*
  re-evaluations (verified by the store's hit/miss counters).

The wall-clock assertion is gated on ``os.cpu_count()``: on a single-core
runner the process pool cannot beat the serial path (there is nothing to
fan out over), so only the equality and resume properties are asserted.
"""

import os
import time

from repro.engine import ResultsStore, SearchEngine

BENCHMARK = "stencil2d"
SHAPE = (512, 512)
BUDGET = 60            # ≥ 50 candidates across the variant set


def _search(workers: int, store=None):
    store = store if store is not None else ResultsStore(":memory:")
    started = time.monotonic()
    with SearchEngine(store=store, workers=workers,
                      validate="crosscheck", validate_size=40) as engine:
        outcome = engine.run(BENCHMARK, shape=SHAPE, budget=BUDGET)
    return time.monotonic() - started, outcome


def test_parallel_search_matches_serial_and_scales():
    # Parallel first: its forked workers must not inherit the warm
    # per-process memo tables the serial in-driver run would populate.
    parallel_wall, parallel = _search(workers=4)
    serial_wall, serial = _search(workers=1)
    assert serial.evaluations >= 50

    # Identical search result at any worker count.
    assert parallel.best.variant == serial.best.variant
    assert parallel.best.best_config == serial.best.best_config
    assert parallel.best.best_cost == serial.best.best_cost

    print(f"\nengine scaling: workers=1 {serial_wall:.2f}s, "
          f"workers=4 {parallel_wall:.2f}s "
          f"({serial_wall / parallel_wall:.2f}x) on {os.cpu_count()} cores")
    if (os.cpu_count() or 1) >= 4:
        # Validation fans across the pool; demand a real win (with slack
        # for pool startup) where the hardware can provide one.
        assert parallel_wall < serial_wall * 0.9


def test_second_run_is_pure_store_recall(tmp_path):
    store_path = str(tmp_path / "engine.sqlite")
    with ResultsStore(store_path) as store:
        _, first = _search(workers=1, store=store)
        assert first.fresh_evaluations > 0
    with ResultsStore(store_path) as store:
        recall_wall, second = _search(workers=1, store=store)
    assert second.fresh_evaluations == 0
    assert second.store_hits >= second.evaluations
    assert second.best.best_cost == first.best.best_cost
    print(f"\nresumed search: {second.evaluations} evaluations recalled "
          f"in {recall_wall:.2f}s, zero re-evaluations")
