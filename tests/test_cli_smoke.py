"""Smoke coverage for every CLI entry point: tiny inputs, exit code 0.

Each subcommand runs in-process through :func:`repro.cli.main` so the smoke
stays fast and the exit code is asserted directly.  The figure commands are
exercised with a single benchmark/device at a heavily scaled-down input;
``serve``/``submit`` run a real TCP round-trip on an ephemeral port.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.cli import main


def run_cli(argv) -> int:
    return main([str(arg) for arg in argv])


@pytest.fixture()
def store_path(tmp_path):
    return str(tmp_path / "engine.sqlite")


class TestCoreVerbs:
    def test_table1(self, capsys):
        assert run_cli(["table1"]) == 0
        assert "Stencil2D" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "extra", [[], ["--strategy", "tiled", "--tile", "18"]]
    )
    def test_kernel(self, capsys, extra):
        assert run_cli(["kernel", "stencil2d", "--size", 20, 20] + extra) == 0
        assert "__kernel" in capsys.readouterr().out

    def test_verify(self, capsys):
        assert run_cli(["verify", "--benchmarks", "jacobi2d5pt"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_figure7(self, capsys):
        assert run_cli([
            "figure7", "--benchmarks", "stencil2d", "--devices", "nvidia",
            "--budget", 2, "--scale", 0.01,
        ]) == 0
        assert "Stencil2D" in capsys.readouterr().out

    def test_figure8(self, capsys):
        assert run_cli([
            "figure8", "--benchmarks", "jacobi2d5pt", "--devices", "nvidia",
            "--sizes", "small", "--budget", 2, "--scale", 0.01,
        ]) == 0
        assert "Jacobi" in capsys.readouterr().out

    def test_bench_backend(self, capsys):
        assert run_cli([
            "bench-backend", "--benchmarks", "stencil2d", "--repeats", 1,
        ]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_explore(self, capsys, store_path):
        assert run_cli([
            "explore", "stencil2d", "--budget", 4, "--scale", 0.01,
            "--store", store_path,
        ]) == 0
        assert "best:" in capsys.readouterr().out

    def test_tune(self, capsys, store_path):
        assert run_cli([
            "tune", "stencil2d", "--budget", 4, "--scale", 0.01,
            "--store", store_path, "--session", "smoke",
        ]) == 0
        assert "session smoke" in capsys.readouterr().out


class TestServiceVerbs:
    def test_stats(self, capsys, store_path):
        # Populate the store first so the report covers a real file.
        assert run_cli([
            "tune", "stencil2d", "--budget", 2, "--scale", 0.01,
            "--store", store_path,
        ]) == 0
        capsys.readouterr()
        assert run_cli(["stats", "--store", store_path]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results_store"]["available"]
        assert report["results_store"]["entries"] > 0
        assert "evictions" in report["compilation_cache"]
        assert "Stencil2D" in report["results_store"]["best"]

    def test_stats_without_store(self, capsys, tmp_path):
        assert run_cli(["stats", "--store", str(tmp_path / "nope.sqlite")]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results_store"] == {"available": False}

    def test_loadgen(self, capsys, tmp_path):
        out = str(tmp_path / "bench.json")
        assert run_cli([
            "loadgen", "stencil2d", "--requests", 8, "--shape", 16, 16,
            "--repeats", 1, "--out", out, "--assert-batched",
        ]) == 0
        text = capsys.readouterr().out
        assert "speedup" in text
        report = json.loads(open(out, encoding="utf-8").read())
        assert report["compilations"] == 1
        assert report["batches_formed"] < report["requests_served"]

    def test_serve_and_submit(self, capsys):
        free = socket.socket()
        free.bind(("127.0.0.1", 0))
        port = free.getsockname()[1]
        free.close()

        server = threading.Thread(
            target=run_cli,
            args=([
                "serve", "--port", port, "--no-store",
                "--max-requests", 2, "--window-ms", 1,
            ],),
            daemon=True,
        )
        server.start()
        deadline = 10.0
        import time

        start = time.monotonic()
        while time.monotonic() - start < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), timeout=1).close()
                break
            except OSError:
                time.sleep(0.05)
        assert run_cli([
            "submit", "stencil2d", "--port", port, "--shape", 9, 8,
            "--count", 2,
        ]) == 0
        out = capsys.readouterr().out
        assert "variant" in out
        server.join(timeout=15)
        assert not server.is_alive()
