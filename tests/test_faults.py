"""Deterministic fault injection: parsing, schedules, arming, zero overhead."""

from __future__ import annotations

import subprocess
import sys
import tracemalloc

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


class TestParsing:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="unknown injection"):
            faults.parse_schedule("shard.crash_after_reply:at=1")

    def test_unknown_qualifier_is_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="unknown qualifier"):
            faults.parse_schedule("shard.hang:after=3")

    def test_bad_value_is_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="bad value"):
            faults.parse_schedule("shard.hang:at=soon")

    def test_empty_schedule_is_rejected(self):
        with pytest.raises(faults.FaultSpecError, match="empty"):
            faults.parse_schedule(" , ")

    def test_multi_point_schedule(self):
        schedules = faults.parse_schedule(
            "shard.hang:at=3,pool.alloc_fail:p=0.5:seed=9")
        assert [s.point for s in schedules] == ["shard.hang",
                                                "pool.alloc_fail"]
        assert schedules[0].at == 3 and schedules[0].times == 1
        assert schedules[1].p == 0.5 and schedules[1].seed == 9

    def test_job_and_wire_points_parse_with_the_full_grammar(self):
        schedules = faults.parse_schedule(
            "job.crash_after_checkpoint:at=2,"
            "job.checkpoint_corrupt:at=1:times=3,"
            "wire.payload_corrupt:p=0.25:seed=4")
        assert [s.point for s in schedules] == [
            "job.crash_after_checkpoint",
            "job.checkpoint_corrupt",
            "wire.payload_corrupt",
        ]
        assert schedules[0].at == 2
        assert schedules[1].times == 3
        assert schedules[2].p == 0.25 and schedules[2].seed == 4


class TestSchedules:
    def test_bare_point_fires_on_every_hit(self):
        faults.arm("store.locked")
        assert all(faults.should_fail("store.locked") for _ in range(5))

    def test_at_fires_exactly_once_on_the_nth_hit(self):
        faults.arm("shard.hang:at=3")
        fires = [faults.should_fail("shard.hang") for _ in range(6)]
        assert fires == [False, False, True, False, False, False]
        assert faults.hits("shard.hang") == 6
        assert faults.fired("shard.hang") == 1

    def test_times_bounds_repeated_fires(self):
        faults.arm("store.locked:at=2:times=2")
        fires = [faults.should_fail("store.locked") for _ in range(5)]
        assert fires == [False, True, True, False, False]

    def test_probabilistic_schedule_replays_exactly_under_one_seed(self):
        faults.arm("pool.alloc_fail:p=0.3:seed=7")
        first = [faults.should_fail("pool.alloc_fail") for _ in range(64)]
        faults.arm("pool.alloc_fail:p=0.3:seed=7")
        second = [faults.should_fail("pool.alloc_fail") for _ in range(64)]
        assert first == second
        assert any(first) and not all(first)

    def test_unarmed_point_never_fires(self):
        faults.arm("shard.hang:at=1")
        assert not faults.should_fail("pool.alloc_fail")

    def test_snapshot_describes_armed_schedules(self):
        faults.arm("shard.hang:at=2")
        faults.should_fail("shard.hang")
        (described,) = faults.snapshot()
        assert described["point"] == "shard.hang"
        assert described["hits"] == 1 and described["fires"] == 0


class TestArming:
    def test_disarm_restores_the_cold_state(self):
        faults.arm("store.locked")
        assert faults.ARMED
        faults.disarm()
        assert not faults.ARMED
        assert faults.snapshot() == []

    def test_arm_with_export_sets_the_env_var(self, monkeypatch):
        import os

        faults.arm("shard.hang:at=1", export=True)
        assert os.environ[faults.ENV_VAR] == "shard.hang:at=1"
        faults.disarm()
        assert faults.ENV_VAR not in os.environ

    def test_spawned_interpreter_arms_from_the_environment(self):
        # Exactly how shard children inherit a schedule: the env var is
        # read at import time.
        code = ("import repro.faults as f; "
                "print(f.ARMED and f.should_fail('store.locked'))")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**__import__('os').environ,
                 faults.ENV_VAR: "store.locked"},
            capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "True"

    def test_spawned_interpreter_inherits_a_job_fault(self):
        # Durable-job drills arm `job.*` points the same way: exported to
        # the environment so restarted servers (and spawned shards) pick
        # the schedule up at import time.
        code = ("import repro.faults as f; "
                "print([f.should_fail('job.crash_after_checkpoint')"
                " for _ in range(3)])")
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**__import__('os').environ,
                 faults.ENV_VAR: "job.crash_after_checkpoint:at=2"},
            capture_output=True, text=True, check=True)
        assert out.stdout.strip() == "[False, True, False]"


class TestZeroOverheadWhenDisarmed:
    @pytest.mark.parametrize("point", [
        "pool.alloc_fail",
        # The durable-job guards sit on the checkpoint/encode hot paths:
        # they must stay free when no schedule is armed, same as the rest.
        "job.crash_after_checkpoint",
        "job.checkpoint_corrupt",
        "wire.payload_corrupt",
    ])
    def test_disarmed_guard_allocates_nothing(self, point):
        # The production guard is `faults.ARMED and faults.should_fail(...)`;
        # disarmed it must short-circuit on the module bool with zero
        # allocations — the serving hot path runs it per group.
        def guard():
            return faults.ARMED and faults.should_fail(point)

        guard()  # warm anything lazy
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(10_000):
            guard()
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grew = sum(stat.size_diff
                   for stat in after.compare_to(before, "lineno")
                   if stat.size_diff > 0)
        # tracemalloc's own bookkeeping shows up as a few small blocks;
        # 10k guarded checks must not add per-iteration allocations.
        assert grew < 64 * 1024, grew
