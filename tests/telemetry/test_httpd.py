"""The /metrics, /healthz and /trace HTTP sidecar against stub services."""

from __future__ import annotations

import asyncio
import json
from types import SimpleNamespace

from repro.telemetry.httpd import TelemetryHTTP
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import TraceRing


async def _fetch(port: int, target: str, method: str = "GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"{method} {target} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body.decode("utf-8")


def _run(coro):
    return asyncio.run(coro)


def _shard(index: int, alive: bool = True) -> SimpleNamespace:
    return SimpleNamespace(
        index=index, process=SimpleNamespace(is_alive=lambda: alive)
    )


class TestMetricsRoute:
    def test_metrics_renders_registry(self):
        async def scenario():
            registry = MetricsRegistry()
            registry.counter("repro_requests_total").inc(5)
            server = await TelemetryHTTP(registry=registry).start(port=0)
            try:
                status, body = await _fetch(server.port, "/metrics")
            finally:
                await server.stop()
            return status, body

        status, body = _run(scenario())
        assert status == 200
        assert "repro_requests_total 5" in body

    def test_metrics_merges_shard_snapshots(self):
        async def scenario():
            registry = MetricsRegistry()
            registry.counter("repro_requests_total").inc(3)
            shard_registry = MetricsRegistry()
            shard_registry.counter("repro_requests_total").inc(4)
            shard_registry.counter("repro_plan_captures_total").inc(2)
            rows = [{"shard": 0, "telemetry": shard_registry.snapshot()},
                    {"shard": 1}]  # a shard with no telemetry must not crash
            service = SimpleNamespace(
                executor=SimpleNamespace(handles=[_shard(0), _shard(1)],
                                         stats=lambda: rows),
                requests_served=7,
            )
            server = await TelemetryHTTP(service, registry=registry).start(
                port=0)
            try:
                status, body = await _fetch(server.port, "/metrics")
            finally:
                await server.stop()
            return status, body

        status, body = _run(scenario())
        assert status == 200
        assert "repro_requests_total 7" in body  # 3 local + 4 shard
        assert "repro_plan_captures_total 2" in body


class TestHealthzRoute:
    def test_healthy_service(self):
        async def scenario():
            service = SimpleNamespace(
                executor=SimpleNamespace(handles=[_shard(0), _shard(1)],
                                         stats=lambda: []),
                requests_served=42,
            )
            server = await TelemetryHTTP(service).start(port=0)
            try:
                status, body = await _fetch(server.port, "/healthz")
            finally:
                await server.stop()
            return status, json.loads(body)

        status, payload = _run(scenario())
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["shards_alive"] == 2
        assert payload["requests_served"] == 42
        assert payload["event_loop_lag_ms"] >= 0.0

    def test_dead_shard_flips_503(self):
        async def scenario():
            service = SimpleNamespace(
                executor=SimpleNamespace(
                    handles=[_shard(0), _shard(1, alive=False)],
                    stats=lambda: [],
                ),
                requests_served=0,
            )
            server = await TelemetryHTTP(service).start(port=0)
            try:
                status, body = await _fetch(server.port, "/healthz")
            finally:
                await server.stop()
            return status, json.loads(body)

        status, payload = _run(scenario())
        assert status == 503
        assert payload["status"] == "unhealthy"
        assert payload["shards_alive"] == 1
        assert payload["shards"] == [{"shard": 0, "alive": True},
                                     {"shard": 1, "alive": False}]

    def test_unsharded_service_is_healthy(self):
        async def scenario():
            server = await TelemetryHTTP(SimpleNamespace(
                requests_served=1)).start(port=0)
            try:
                status, body = await _fetch(server.port, "/healthz")
            finally:
                await server.stop()
            return status, json.loads(body)

        status, payload = _run(scenario())
        assert status == 200
        assert payload["shards"] == []


class TestTraceRoute:
    def test_trace_payload_and_filters(self):
        async def scenario():
            tracer = TraceRing(capacity=16, slow_ms=50.0)
            for total in (1.0, 120.0, 2.0):
                tracer.record({"benchmark": "stencil2d", "batch_size": 1,
                               "total_ms": total, "stages": []})
            service = SimpleNamespace(tracer=tracer)
            server = await TelemetryHTTP(service).start(port=0)
            try:
                _, all_body = await _fetch(server.port, "/trace")
                _, slow_body = await _fetch(server.port, "/trace?slow=1")
                _, one_body = await _fetch(server.port, "/trace?limit=1")
            finally:
                await server.stop()
            return (json.loads(all_body), json.loads(slow_body),
                    json.loads(one_body))

        all_payload, slow_payload, one_payload = _run(scenario())
        assert len(all_payload["traces"]) == 3
        assert all_payload["ring"]["recorded"] == 3
        assert [t["total_ms"] for t in slow_payload["traces"]] == [120.0]
        assert len(one_payload["traces"]) == 1
        assert one_payload["traces"][0]["total_ms"] == 2.0  # most recent

    def test_trace_without_tracer_is_404(self):
        async def scenario():
            server = await TelemetryHTTP().start(port=0)
            try:
                status, _ = await _fetch(server.port, "/trace")
            finally:
                await server.stop()
            return status

        assert _run(scenario()) == 404


class TestHttpPlumbing:
    def test_unknown_path_404_and_bad_method_405(self):
        async def scenario():
            server = await TelemetryHTTP().start(port=0)
            try:
                missing, _ = await _fetch(server.port, "/nope")
                post, _ = await _fetch(server.port, "/metrics", method="POST")
            finally:
                await server.stop()
            return missing, post

        missing, post = _run(scenario())
        assert missing == 404
        assert post == 405

    def test_double_start_refused(self):
        async def scenario():
            server = await TelemetryHTTP().start(port=0)
            try:
                try:
                    await server.start(port=0)
                except RuntimeError:
                    return True
                return False
            finally:
                await server.stop()

        assert _run(scenario()) is True
