"""The metrics registry: quantile accuracy, shard merging, Prometheus text.

The histogram contract under test is the one the loadgen report asserts on
every run: a bucket-derived quantile estimate lands within one log-spaced
bucket (a factor of 2 for :data:`LATENCY_BUCKETS`) of the exact
``numpy.percentile`` value, across distribution shapes.  Merging must be a
pure bucket/counter sum so fleet-level percentiles come out of shard
snapshots without shipping samples.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.telemetry.registry import (
    BATCH_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    merge_snapshots,
    render_snapshot,
    snapshot_quantile,
)


def _distributions():
    rng = np.random.default_rng(7)
    return {
        "uniform": rng.uniform(1e-4, 0.5, size=4000),
        "lognormal": np.exp(rng.normal(np.log(5e-3), 1.2, size=4000)),
        "exponential": rng.exponential(2e-3, size=4000) + 1e-6,
        "bimodal": np.concatenate([
            rng.normal(2e-3, 2e-4, size=3000).clip(1e-6),
            rng.normal(0.2, 0.02, size=1000).clip(1e-6),
        ]),
    }


class TestHistogramQuantiles:
    @pytest.mark.parametrize("name", sorted(_distributions()))
    @pytest.mark.parametrize("q", [50, 90, 95, 99])
    def test_quantile_within_one_bucket_of_numpy(self, name, q):
        samples = _distributions()[name]
        hist = Histogram("latency", buckets=LATENCY_BUCKETS)
        for sample in samples:
            hist.observe(sample)
        exact = float(np.percentile(samples, q))
        estimate = hist.quantile(q)
        assert estimate > 0
        assert abs(hist.bucket_index(estimate) - hist.bucket_index(exact)) <= 1, (
            f"{name} p{q}: estimate {estimate:.6f} vs exact {exact:.6f} "
            f"landed more than one bucket apart"
        )

    def test_quantile_clamped_to_observed_extremes(self):
        hist = Histogram("latency", buckets=LATENCY_BUCKETS)
        for value in (0.010, 0.011, 0.012):
            hist.observe(value)
        assert 0.010 <= hist.quantile(0) <= 0.012
        assert 0.010 <= hist.quantile(100) <= 0.012

    def test_overflow_bucket_uses_observed_max(self):
        hist = Histogram("latency", buckets=(1.0, 2.0))
        hist.observe(5.0)
        hist.observe(9.0)
        assert hist.counts[-1] == 2  # both in overflow
        assert 2.0 <= hist.quantile(99) <= 9.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram("latency").quantile(99) == 0.0

    def test_observe_keeps_fixed_storage(self):
        hist = Histogram("latency", buckets=LATENCY_BUCKETS)
        width = len(hist.counts)
        for value in np.random.default_rng(0).uniform(0, 1, size=500):
            hist.observe(value)
        assert len(hist.counts) == width  # streaming: no sample retention
        assert hist.count == 500

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 1.0))

    def test_log_buckets_validation(self):
        assert log_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)
        with pytest.raises(ValueError):
            log_buckets(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0, 3)


class TestMergeAcrossShards:
    def test_counters_and_histograms_sum(self):
        shard0 = MetricsRegistry()
        shard1 = MetricsRegistry()
        shard0.counter("requests").inc(3)
        shard1.counter("requests").inc(4)
        shard0.counter("fallbacks", label="reason").inc(label="analysis")
        shard1.counter("fallbacks", label="reason").inc(2, label="analysis")
        shard1.counter("fallbacks", label="reason").inc(label="verification")
        for value in (0.001, 0.002, 0.004):
            shard0.histogram("latency").observe(value)
        for value in (0.100, 0.200):
            shard1.histogram("latency").observe(value)

        merged = merge_snapshots(shard0.snapshot(), shard1.snapshot())
        assert merged["requests"]["value"] == 7
        assert merged["fallbacks"]["values"] == {
            "analysis": 3, "verification": 1,
        }
        latency = merged["latency"]
        assert latency["count"] == 5
        assert latency["min"] == 0.001
        assert latency["max"] == 0.200
        assert sum(latency["counts"]) == 5

    def test_merged_quantile_matches_pooled_samples(self):
        rng = np.random.default_rng(3)
        pools = [rng.exponential(5e-3, size=1500) + 1e-6 for _ in range(3)]
        registries = []
        for pool in pools:
            registry = MetricsRegistry()
            hist = registry.histogram("latency")
            for sample in pool:
                hist.observe(sample)
            registries.append(registry)
        merged = merge_snapshots(*[r.snapshot() for r in registries])
        pooled = np.concatenate(pools)
        probe = Histogram("probe", buckets=LATENCY_BUCKETS)
        for q in (50, 95, 99):
            estimate = snapshot_quantile(merged["latency"], q)
            exact = float(np.percentile(pooled, q))
            assert abs(probe.bucket_index(estimate)
                       - probe.bucket_index(exact)) <= 1

    def test_gauges_sum_and_mismatched_bounds_kept_apart(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("live_bytes").set(100)
        b.gauge("live_bytes").set(28)
        a.histogram("sizes", buckets=BATCH_BUCKETS).observe(4)
        b.histogram("sizes", buckets=(1.0, 10.0)).observe(4)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["live_bytes"]["value"] == 128.0
        # Foreign bounds must not corrupt bucket math: first snapshot wins.
        assert merged["sizes"]["bounds"] == list(BATCH_BUCKETS)
        assert merged["sizes"]["count"] == 1

    def test_merge_does_not_mutate_inputs(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(5)
        registry.histogram("latency").observe(0.5)
        snap = registry.snapshot()
        merge_snapshots(snap, snap)
        assert snap["requests"]["value"] == 5
        assert snap["latency"]["count"] == 1


class TestRegistrySemantics:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.histogram("n")

    def test_disabled_registry_noops_every_instrument(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("n")
        hist = registry.histogram("h")
        gauge = registry.gauge("g")
        counter.inc(10)
        hist.observe(1.0)
        gauge.set(3.0)
        assert counter.value == 0
        assert hist.count == 0
        assert gauge.read() == 0.0

    def test_free_standing_instruments_always_record(self):
        # Loadgen's private histogram relies on registry=None being live.
        counter = Counter("n")
        counter.inc()
        assert counter.value == 1

    def test_gauge_callback_failure_reads_nan(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", fn=lambda: 1 / 0)
        assert gauge.read() != gauge.read()  # NaN

    def test_gauge_reregistration_rebinds_callback(self):
        registry = MetricsRegistry()
        registry.gauge("g", fn=lambda: 1.0)
        gauge = registry.gauge("g", fn=lambda: 2.0)
        assert gauge.read() == 2.0


class TestPrometheusRender:
    def test_render_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests completed").inc(3)
        registry.counter("repro_fallbacks_total", label="reason").inc(
            2, label="analysis")
        registry.gauge("repro_queue_depth").set(1)
        hist = registry.histogram("repro_latency_seconds",
                                  buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.5):
            hist.observe(value)
        text = registry.render()
        assert "# HELP repro_requests_total Requests completed" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert 'repro_fallbacks_total{reason="analysis"} 2' in text
        assert "repro_queue_depth 1" in text
        # Cumulative le-buckets end at +Inf == _count.
        assert 'repro_latency_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_latency_seconds_bucket{le="0.01"} 2' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert text.endswith("\n")

    def test_render_snapshot_handles_nan_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("g", fn=lambda: float("nan"))
        assert "g NaN" in render_snapshot(registry.snapshot())


class TestLoadgenHistogramLine:
    def test_latency_summary_reports_hist_beside_exact(self):
        from repro.service.loadgen import _latency_summary

        rng = np.random.default_rng(11)
        latencies = list(rng.exponential(4.0, size=256) + 0.05)  # milliseconds
        summary = _latency_summary(latencies, wall=1.0, requests=256)
        for key in ("p50_ms", "p99_ms", "p50_ms_hist", "p99_ms_hist"):
            assert key in summary
        probe = Histogram("probe", buckets=LATENCY_BUCKETS)
        for exact, estimate in ((summary["p50_ms"], summary["p50_ms_hist"]),
                                (summary["p99_ms"], summary["p99_ms_hist"])):
            assert abs(probe.bucket_index(exact / 1e3)
                       - probe.bucket_index(estimate / 1e3)) <= 1
