"""The request-trace ring: bounding, slow retention, CLI rendering."""

from __future__ import annotations

import pytest

from repro.telemetry.trace import TraceRing, format_trace


def make_trace(total_ms: float, benchmark: str = "stencil2d") -> dict:
    return {
        "benchmark": benchmark,
        "digest": "abcdef0123456789",
        "batch_size": 4,
        "total_ms": total_ms,
        "stages": [("admit", 0.01), ("queue", 1.5), ("replay", total_ms - 2.0),
                   ("respond", 0.02)],
    }


class TestRingBounding:
    def test_capacity_evicts_oldest(self):
        ring = TraceRing(capacity=8, slow_ms=1e9)
        for i in range(20):
            ring.record(make_trace(float(i)))
        assert len(ring) == 8
        stats = ring.stats()
        assert stats["recorded"] == 20
        assert stats["retained"] == 8
        ids = [trace["id"] for trace in ring.snapshot()]
        assert ids == list(range(20, 12, -1))  # most recent first

    def test_snapshot_limit(self):
        ring = TraceRing(capacity=32, slow_ms=1e9)
        for i in range(10):
            ring.record(make_trace(float(i)))
        assert len(ring.snapshot(limit=3)) == 3
        assert len(ring.snapshot(limit=100)) == 10

    def test_snapshot_returns_copies(self):
        ring = TraceRing(capacity=4, slow_ms=1e9)
        ring.record(make_trace(1.0))
        snapshot = ring.snapshot()
        snapshot[0]["benchmark"] = "mutated"
        assert ring.snapshot()[0]["benchmark"] == "stencil2d"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)


class TestSlowRing:
    def test_slow_traces_survive_fast_burst(self):
        ring = TraceRing(capacity=8, slow_ms=50.0, slow_capacity=4)
        slow = ring.record(make_trace(120.0))
        assert slow["slow"] is True
        for i in range(50):  # enough fast traffic to evict it from the main ring
            ring.record(make_trace(1.0))
        assert all(not t["slow"] for t in ring.snapshot())
        retained = ring.snapshot(slow_only=True)
        assert [t["id"] for t in retained] == [slow["id"]]

    def test_slow_ring_is_bounded_too(self):
        ring = TraceRing(capacity=64, slow_ms=10.0, slow_capacity=3)
        for i in range(9):
            ring.record(make_trace(100.0 + i))
        stats = ring.stats()
        assert stats["slow_recorded"] == 9
        assert stats["slow_retained"] == 3
        ids = [t["id"] for t in ring.snapshot(slow_only=True)]
        assert ids == [9, 8, 7]

    def test_threshold_is_inclusive(self):
        ring = TraceRing(capacity=8, slow_ms=50.0)
        assert ring.record(make_trace(50.0))["slow"] is True
        assert ring.record(make_trace(49.9))["slow"] is False

    def test_default_slow_capacity(self):
        assert TraceRing(capacity=256).slow_capacity == 64
        assert TraceRing(capacity=8).slow_capacity == 16  # floor


class TestFormatTrace:
    def test_stage_breakdown(self):
        ring = TraceRing(capacity=4, slow_ms=50.0)
        trace = ring.record(make_trace(120.0))
        trace["shard"] = 1
        trace["replay_chunks_ms"] = [3.25, 3.5]
        text = format_trace(trace)
        assert text.startswith(f"#{trace['id']} stencil2d digest abcdef012345")
        assert "batch 4" in text
        assert "total 120.00 ms" in text
        assert "shard 1" in text
        assert "[slow]" in text
        for stage in ("admit", "queue", "replay", "respond"):
            assert stage in text
        assert "replay chunks    [3.250 / 3.500] ms (2 workers)" in text

    def test_error_trace(self):
        trace = {"benchmark": None, "digest": None, "batch_size": 1,
                 "total_ms": 0.5, "stages": [], "error": "backend exploded",
                 "id": 9}
        text = format_trace(trace)
        assert "<raw>" in text
        assert "ERROR: backend exploded" in text
