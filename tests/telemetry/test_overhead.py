"""The instrumentation overhead guard: steady replay stays allocation-free.

Instrumenting the plan/fuse hot paths must not break the zero-allocation
invariants those layers advertise (and test themselves): a histogram
observation is a bisect into fixed bounds plus scalar updates, never
sample retention.  With telemetry disabled, every instrument early-returns
and the call sites skip their clock reads entirely.
"""

from __future__ import annotations

import tracemalloc
from time import perf_counter

import pytest

from repro.apps.suite import get_benchmark
from repro.backend.base import NumpyBackend
from repro.telemetry.registry import (
    Histogram,
    get_registry,
    metrics_enabled,
    set_metrics_enabled,
)

SMALL_SHAPES = {2: (13, 11), 3: (5, 7, 9)}


@pytest.fixture
def metrics_on():
    previous = set_metrics_enabled(True)
    yield
    set_metrics_enabled(previous)


@pytest.fixture
def metrics_off():
    previous = set_metrics_enabled(False)
    yield
    set_metrics_enabled(previous)


def _steady_plan(key="hotspot2d"):
    bench = get_benchmark(key)
    inputs = bench.make_inputs(SMALL_SHAPES[bench.ndims], 7)
    plan = NumpyBackend(cache=None).plan(bench.build_program(), inputs)
    carry = bench.carry_spec()
    plan.iterate(inputs, 12, carry=carry)  # warm every ping-pong binding
    return plan, inputs, carry


class TestZeroAllocationWithTelemetry:
    def test_instrumented_steady_loop_does_not_allocate(self, metrics_on):
        plan, inputs, carry = _steady_plan()
        replays = get_registry().counter("repro_plan_replays_total")
        replays_before = replays.value
        tapes_before = plan.stats()["tapes"]
        pool_before = plan._pool.allocations

        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            plan.iterate(inputs, 64, carry=carry, copy=False)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        assert plan.stats()["tapes"] == tapes_before
        assert plan._pool.allocations == pool_before
        assert replays.value > replays_before  # instrumentation was live
        delta = after.compare_to(before, "filename")
        grown = sum(max(0, entry.size_diff) for entry in delta)
        assert grown < 64 * 1024, (
            f"instrumented steady loop grew {grown} bytes"
        )

    def test_histogram_observe_is_fixed_size(self, metrics_on):
        hist = Histogram("overhead_probe")
        counts_id = id(hist.counts)
        for i in range(10_000):
            hist.observe(1e-6 * (i + 1))
        assert id(hist.counts) == counts_id
        assert hist.count == 10_000


class TestDisabledTelemetryIsInert:
    def test_disabled_instruments_do_not_move(self, metrics_off):
        registry = get_registry()
        replays = registry.counter("repro_plan_replays_total")
        replay_seconds = registry.histogram("repro_plan_replay_seconds")
        counter_before = replays.value
        observations_before = replay_seconds.count

        plan, inputs, carry = _steady_plan("stencil2d")
        plan.iterate(inputs, 16, carry=carry, copy=False)

        assert not metrics_enabled()
        assert replays.value == counter_before
        assert replay_seconds.count == observations_before
        assert plan.replays > 0  # the plan's own counter still ticks

    def test_toggle_restores_previous_state(self):
        original = metrics_enabled()
        previous = set_metrics_enabled(False)
        assert previous == original
        assert set_metrics_enabled(original) is False
        assert metrics_enabled() == original


class TestObserveLatencyBudget:
    def test_observe_stays_cheap(self, metrics_on):
        # Generous bound (50 µs/observe, min over repeats) — this catches a
        # regression to per-sample retention or lock contention pathology,
        # not micro-variance between CI machines.
        hist = Histogram("latency_budget_probe")
        best = float("inf")
        for _ in range(5):
            started = perf_counter()
            for i in range(2_000):
                hist.observe(1e-5 * (i + 1))
            best = min(best, (perf_counter() - started) / 2_000)
        assert best < 50e-6, f"observe took {best * 1e6:.1f} µs"
