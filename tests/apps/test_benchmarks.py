"""Correctness tests for every Table-1 benchmark: Lift expression vs NumPy golden."""

import numpy as np
import pytest

from repro.apps import ALL_BENCHMARKS, FIGURE7_BENCHMARKS, FIGURE8_BENCHMARKS, get_benchmark
from repro.apps.acoustic import compute_num_neighbours
from repro.apps.gaussian import gaussian_weights_2d
from repro.apps.suite import table1_rows
from repro.rewriting.strategies import NAIVE, lower_program

SMALL_SHAPES = {2: (13, 11), 3: (5, 7, 9)}


@pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
def test_lift_expression_matches_numpy_golden(key):
    benchmark = ALL_BENCHMARKS[key]
    shape = SMALL_SHAPES[benchmark.ndims]
    assert benchmark.verify(shape=shape, seed=11), f"{key} diverges from its golden"


@pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
def test_lowered_naive_variant_matches_golden(key):
    """The mapGlb-lowered kernels compute the same values as the high-level program."""
    benchmark = ALL_BENCHMARKS[key]
    shape = SMALL_SHAPES[benchmark.ndims]
    inputs = benchmark.make_inputs(shape, seed=5)
    lowered = lower_program(benchmark.build_program(), NAIVE)
    from repro.runtime.interpreter import evaluate_program
    from repro.apps.base import squeeze_result

    lowered_out = squeeze_result(np.array(evaluate_program(lowered.program, list(inputs))))
    golden = benchmark.run_reference(inputs)
    assert np.allclose(lowered_out, golden, rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
def test_benchmark_metadata_is_consistent(key):
    benchmark = ALL_BENCHMARKS[key]
    assert benchmark.ndims in (2, 3)
    assert len(benchmark.default_shape) == benchmark.ndims
    assert benchmark.points >= 3
    assert benchmark.num_grids in (1, 2)
    problem = benchmark.problem()
    assert problem.output_elements == int(np.prod(benchmark.default_shape))
    assert problem.stencil_points == benchmark.points


class TestSuiteRegistry:
    def test_table1_contains_twelve_paper_rows(self):
        # 12 paper rows; Jacobi2D and Jacobi3D each appear as two point-variants here.
        assert len(table1_rows()) == 14

    def test_figure_subsets(self):
        assert len(FIGURE7_BENCHMARKS) == 6
        assert len(FIGURE8_BENCHMARKS) == 8
        assert set(FIGURE7_BENCHMARKS).isdisjoint(FIGURE8_BENCHMARKS)

    def test_get_benchmark_is_case_insensitive(self):
        assert get_benchmark("HeAt").name == "Heat"

    def test_get_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("fft")

    def test_paper_input_sizes(self):
        assert get_benchmark("stencil2d").default_shape == (4098, 4098)
        assert get_benchmark("hotspot2d").default_shape == (8192, 8192)
        assert get_benchmark("poisson").large_shape == (512, 512, 512)
        assert get_benchmark("srad1").default_shape == (504, 458)

    def test_size_names_resolve(self):
        heat = get_benchmark("heat")
        assert heat.shape_for("small") == (256, 256, 256)
        assert heat.shape_for("large") == (512, 512, 512)
        assert get_benchmark("srad1").shape_for("large") == (504, 458)


class TestBenchmarkDetails:
    def test_gaussian_weights_are_normalised(self):
        weights = gaussian_weights_2d()
        assert weights.shape == (5, 5)
        assert np.isclose(weights.sum(), 1.0)

    def test_acoustic_mask_counts_neighbours(self):
        mask = compute_num_neighbours((4, 4, 4))
        assert mask[1, 1, 1] == 6.0
        assert mask[0, 1, 1] == 5.0
        assert mask[0, 0, 0] == 3.0

    def test_acoustic_damps_at_walls(self):
        benchmark = get_benchmark("acoustic")
        inputs = benchmark.make_inputs((4, 5, 6), seed=1)
        out = benchmark.run_reference(inputs)
        assert out.shape == (4, 5, 6)

    def test_srad_coefficient_is_clamped(self):
        benchmark = get_benchmark("srad1")
        inputs = benchmark.make_inputs((16, 16), seed=2)
        out = benchmark.run_reference(inputs)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_jacobi_averages_preserve_constant_fields(self):
        for key in ("jacobi2d5pt", "jacobi2d9pt", "jacobi3d7pt", "jacobi3d13pt"):
            benchmark = get_benchmark(key)
            shape = SMALL_SHAPES[benchmark.ndims]
            constant_input = [np.full(shape, 3.0)]
            out = benchmark.run_reference(constant_input)
            assert np.allclose(out, 3.0), key

    def test_heat_preserves_constant_field(self):
        benchmark = get_benchmark("heat")
        out = benchmark.run_reference([np.full((6, 6, 6), 2.5)])
        assert np.allclose(out, 2.5)

    def test_input_types_match_program_arity(self):
        for key, benchmark in ALL_BENCHMARKS.items():
            program = benchmark.build_program()
            types = benchmark.input_types(SMALL_SHAPES[benchmark.ndims])
            assert len(types) == len(program.params), key


class TestIterativeExecution:
    """apps-level time stepping: plan loop vs per-sweep loop, carry specs."""

    def test_hotspot2d_iterate_plan_matches_generic(self):
        import numpy as np
        from repro.apps.suite import get_benchmark

        bench = get_benchmark("hotspot2d")
        inputs = bench.make_inputs((13, 11), 3)
        fast = bench.iterate(inputs, steps=6, use_plan=True)
        slow = bench.iterate(inputs, steps=6, use_plan=False)
        assert np.array_equal(fast, slow)

    def test_acoustic_carry_rotation_matches_manual_loop(self):
        import numpy as np
        from repro.apps.suite import get_benchmark

        bench = get_benchmark("acoustic")
        prev, curr, mask = bench.make_inputs((5, 7, 9), 1)
        expected_prev, expected_curr = prev, curr
        for _ in range(4):
            out = bench.run_lift([expected_prev, expected_curr, mask])
            expected_prev, expected_curr = expected_curr, out
        produced = bench.iterate([prev, curr, mask], steps=4)
        assert np.array_equal(produced, expected_curr)

    def test_default_carry_spec(self):
        from repro.apps.suite import get_benchmark

        assert get_benchmark("stencil2d").carry_spec() == ("out",)
        assert get_benchmark("hotspot2d").carry_spec() == ("out", None)
        assert get_benchmark("acoustic").carry_spec() == (1, "out", None)


class TestTunerSteadyMeasurement:
    def test_measure_best_records_plan_steady_cost(self):
        from repro.apps.suite import get_benchmark
        from repro.experiments.pipeline import (
            _steady_measurer,
            explore_variants_for,
            parameter_space_for,
        )
        from repro.runtime.simulator.device import DEVICES
        from repro.tuning.tuner import AutoTuner

        bench = get_benchmark("stencil2d")
        variant = explore_variants_for(bench, (16, 16))[0]
        space = parameter_space_for(variant.lowered, bench.problem((16, 16)),
                                    DEVICES["nvidia"])
        tuner = AutoTuner(space, lambda config: 1.0, budget=2,
                          measure_best=_steady_measurer(bench, variant))
        result = tuner.tune()
        assert result.steady_cost_s is not None
        assert 0.0 < result.steady_cost_s < 10.0
        assert "steady" in result.describe()
        # The measurer searches the tape optimizer's tile space with warm
        # fused replays and reports the winning spec.
        from repro.tuning.parameters import fuse_tile_candidates

        assert result.tile_shape in fuse_tile_candidates(bench.ndims)

    def test_functional_validator_checks_plan_bit_identity(self):
        from repro.apps.suite import get_benchmark
        from repro.experiments.pipeline import (
            _functional_validator,
            explore_variants_for,
        )

        bench = get_benchmark("stencil2d")
        variant = explore_variants_for(bench, (16, 16))[0]
        _functional_validator(bench, variant)({})  # must not raise
