"""Tests for the virtual device, the auto-tuner and the baseline models."""

import pytest

from repro.baselines.ppcg import PPCGCompiler, PolyhedralSchedule, ppcg_parameter_space
from repro.baselines.reference_kernels import REFERENCE_KERNELS, reference_profile
from repro.runtime.simulator import (
    AMD_HD7970,
    ARM_MALI_T628,
    DEVICES,
    NVIDIA_K20C,
    KernelConfig,
    ProblemInstance,
    VirtualDevice,
    build_profile,
    estimate_runtime,
)
from repro.runtime.simulator.model import occupancy_factor, workgroup_efficiency
from repro.rewriting.strategies import NAIVE, lower_program, tiled_strategy
from repro.tuning import (
    AutoTuner,
    Parameter,
    ParameterSpace,
    exhaustive_search,
    hill_climb_search,
    opencl_constraints,
    random_search,
)
from repro.apps.jacobi import build_jacobi2d_5pt


def jacobi_problem(n=1024):
    return ProblemInstance(name="jacobi", output_shape=(n, n), stencil_points=5)


def naive_profile(problem, wg=(16, 16), wpt=1):
    lowered = lower_program(build_jacobi2d_5pt(), NAIVE)
    return build_profile(lowered, problem, KernelConfig(workgroup_size=wg, work_per_thread=wpt))


class TestDeviceModels:
    def test_three_paper_devices_exist(self):
        assert set(DEVICES) == {"nvidia", "amd", "arm"}

    def test_mali_has_emulated_local_memory(self):
        assert not ARM_MALI_T628.dedicated_local_memory
        assert NVIDIA_K20C.dedicated_local_memory

    def test_describe_mentions_bandwidth(self):
        assert "GB/s" in NVIDIA_K20C.describe()


class TestKernelProfiles:
    def test_untiled_profile_reads_every_neighbour(self):
        problem = jacobi_problem(64)
        profile = naive_profile(problem)
        assert profile.global_read_bytes == 64 * 64 * 4 * 5
        assert not profile.uses_local_memory

    def test_work_per_thread_reduces_thread_count(self):
        problem = jacobi_problem(64)
        assert naive_profile(problem, wpt=4).global_threads == 64 * 64 // 4

    def test_tiled_profile_trades_global_for_local_traffic(self):
        problem = jacobi_problem(64)
        lowered = lower_program(build_jacobi2d_5pt(), tiled_strategy(18))
        config = KernelConfig(workgroup_size=(16, 16), tile_size=18, use_local_memory=True)
        profile = build_profile(lowered, problem, config)
        assert profile.uses_local_memory
        assert profile.local_memory_per_wg == 18 * 18 * 4
        assert profile.global_read_bytes < 64 * 64 * 4 * 5
        assert profile.local_traffic_bytes > 0

    def test_problem_flops_default(self):
        problem = ProblemInstance("p", (8, 8), stencil_points=5)
        assert problem.effective_flops() > 0


class TestTimingModel:
    def test_more_reads_take_longer(self):
        small = naive_profile(ProblemInstance("p", (512, 512), 5))
        large = naive_profile(ProblemInstance("p", (512, 512), 25))
        assert (
            estimate_runtime(large, NVIDIA_K20C).total_s
            > estimate_runtime(small, NVIDIA_K20C).total_s
        )

    def test_bigger_problem_takes_longer(self):
        small = naive_profile(jacobi_problem(256))
        large = naive_profile(jacobi_problem(2048))
        assert (
            estimate_runtime(large, NVIDIA_K20C).total_s
            > estimate_runtime(small, NVIDIA_K20C).total_s
        )

    def test_low_occupancy_penalised(self):
        problem = jacobi_problem(2048)
        many_threads = naive_profile(problem, wpt=1)
        few_threads = naive_profile(problem, wpt=32)
        assert occupancy_factor(few_threads, NVIDIA_K20C) <= occupancy_factor(
            many_threads, NVIDIA_K20C
        )

    def test_local_memory_limits_occupancy(self):
        problem = ProblemInstance("p", (64, 64, 64), stencil_points=7)
        lowered = lower_program(build_jacobi2d_5pt(), tiled_strategy(18))
        config = KernelConfig(workgroup_size=(16, 16), tile_size=18, use_local_memory=True)
        profile = build_profile(lowered, problem, config)
        heavy = profile.__class__(**{**profile.__dict__, "local_memory_per_wg": 40 * 1024})
        assert occupancy_factor(heavy, NVIDIA_K20C) < occupancy_factor(profile, NVIDIA_K20C)

    def test_workgroup_multiple_efficiency(self):
        problem = jacobi_problem(512)
        aligned = naive_profile(problem, wg=(64, 1))
        misaligned = naive_profile(problem, wg=(3, 1))
        assert workgroup_efficiency(aligned, AMD_HD7970) > workgroup_efficiency(
            misaligned, AMD_HD7970
        )

    def test_oversized_workgroup_heavily_penalised(self):
        problem = jacobi_problem(512)
        oversized = naive_profile(problem, wg=(64, 32))  # 2048 > AMD limit of 256
        assert workgroup_efficiency(oversized, AMD_HD7970) <= 0.05

    def test_local_memory_useless_on_mali(self):
        problem = jacobi_problem(1024)
        lowered = lower_program(build_jacobi2d_5pt(), tiled_strategy(18))
        tiled = build_profile(
            lowered, problem,
            KernelConfig(workgroup_size=(16, 16), tile_size=18, use_local_memory=True),
        )
        untiled = naive_profile(problem, wg=(16, 16))
        device = ARM_MALI_T628
        assert (
            estimate_runtime(tiled, device).total_s
            >= estimate_runtime(untiled, device).total_s
        )

    def test_virtual_device_reports_throughput(self):
        problem = jacobi_problem(1024)
        result = VirtualDevice(NVIDIA_K20C).run(naive_profile(problem, wg=(16, 16)))
        assert result.runtime_s > 0
        assert result.gelements_per_second > 0
        assert "GElem/s" in result.describe()

    def test_run_best_picks_fastest(self):
        problem = jacobi_problem(1024)
        profiles = [naive_profile(problem, wg=(16, 16)), naive_profile(problem, wg=(3, 1))]
        best = VirtualDevice(NVIDIA_K20C).run_best(profiles)
        assert best.profile.workgroup_items == 256


class TestTuning:
    def _space(self):
        return ParameterSpace(
            [Parameter("wg_x", (8, 16, 32)), Parameter("wg_y", (8, 16, 32))],
            constraints=[lambda c: c["wg_x"] * c["wg_y"] <= 256],
        )

    def test_constraints_filter_configurations(self):
        space = self._space()
        configs = list(space.configurations())
        assert all(c["wg_x"] * c["wg_y"] <= 256 for c in configs)
        assert len(configs) < space.size()

    def test_exhaustive_search_finds_global_optimum(self):
        space = self._space()
        objective = lambda c: abs(c["wg_x"] * c["wg_y"] - 256)
        outcome = exhaustive_search(space, objective)
        assert outcome.best.cost == 0

    def test_random_and_hillclimb_respect_budget(self):
        space = self._space()
        objective = lambda c: -c["wg_x"] * c["wg_y"]
        assert random_search(space, objective, budget=5).evaluations <= 5
        assert hill_climb_search(space, objective, budget=5).evaluations <= 5

    def test_autotuner_front_end(self):
        tuner = AutoTuner(self._space(), lambda c: c["wg_x"], budget=100)
        result = tuner.tune()
        assert result.best_configuration["wg_x"] == 8
        assert "best cost" in result.describe()

    def test_autotuner_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            AutoTuner(self._space(), lambda c: 0.0, strategy="annealing")

    def test_opencl_constraints(self):
        constraints = opencl_constraints(256, 32 * 1024, (128, 128))
        valid = {"wg_x": 16, "wg_y": 16, "use_local_memory": True, "tile_size": 16}
        oversized = {"wg_x": 32, "wg_y": 32}
        assert all(c(valid) for c in constraints)
        assert not all(c(oversized) for c in constraints)

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([Parameter("a", (1,)), Parameter("a", (2,))])

    def test_empty_parameter_values_rejected(self):
        with pytest.raises(ValueError):
            Parameter("a", ())

    def test_hillclimb_restarts_escape_plateau(self):
        # A flat plateau with a single needle: a walk starting on the
        # plateau sees no improving neighbour and stalls immediately, so
        # finding the needle requires fresh restart points.
        space = ParameterSpace([Parameter("x", tuple(range(40)))])
        objective = lambda c: 0.0 if c["x"] == 37 else 1.0

        def best_with(restarts):
            costs = []
            for seed in range(8):
                outcome = hill_climb_search(space, objective, budget=40,
                                            seed=seed, restarts=restarts)
                costs.append(outcome.best.cost)
            return costs

        single = best_with(restarts=1)
        many = best_with(restarts=30)
        assert sum(many) <= sum(single)
        assert 0.0 in many  # enough fresh basins to hit the needle

    def test_hillclimb_restarts_plumbed_through_autotuner(self):
        space = self._space()
        tuner = AutoTuner(space, lambda c: c["wg_x"] + c["wg_y"], budget=50,
                          strategy="hillclimb", restarts=6)
        assert tuner.restarts == 6
        result = tuner.tune()
        assert result.best_configuration == {"wg_x": 8, "wg_y": 8}

    def test_batch_evaluation_matches_serial(self):
        space = self._space()
        objective = lambda c: abs(c["wg_x"] * c["wg_y"] - 256)
        calls = []

        def batch(configs):
            calls.append(len(configs))
            return [objective(c) for c in configs]

        serial = exhaustive_search(space, objective)
        batched = exhaustive_search(space, objective, batch_evaluate=batch)
        assert [e.cost for e in serial.history] == [e.cost for e in batched.history]
        assert batched.best.configuration == serial.best.configuration
        assert calls and any(size > 1 for size in calls)

    def test_batch_evaluator_length_mismatch_rejected(self):
        space = self._space()
        with pytest.raises(ValueError):
            exhaustive_search(space, lambda c: 0.0,
                              batch_evaluate=lambda configs: [0.0])


class TestBaselines:
    def test_reference_kernels_cover_figure7(self):
        assert set(REFERENCE_KERNELS) == {
            "stencil2d", "srad1", "srad2", "hotspot2d", "hotspot3d", "acoustic",
        }

    def test_unknown_reference_kernel_raises(self):
        with pytest.raises(KeyError):
            reference_profile("gaussian", jacobi_problem(64), NVIDIA_K20C)

    def test_hotspot_reference_is_nvidia_specific(self):
        problem = ProblemInstance("hotspot2d", (1024, 1024), 5, num_input_grids=2)
        nvidia = reference_profile("hotspot2d", problem, NVIDIA_K20C)
        amd = reference_profile("hotspot2d", problem, AMD_HD7970)
        assert nvidia.coalesced_fraction > amd.coalesced_fraction
        # And therefore it runs much slower on AMD than on Nvidia (paper §7.1).
        t_amd = estimate_runtime(amd, AMD_HD7970).total_s
        t_nvidia = estimate_runtime(nvidia, NVIDIA_K20C).total_s
        assert t_amd > 2 * t_nvidia

    def test_ppcg_always_tiles_and_uses_local_memory(self):
        problem = ProblemInstance("heat", (128, 128, 128), 7)
        compiler = PPCGCompiler(problem)
        schedule = PolyhedralSchedule((8, 8, 8), (8, 8))
        profile = compiler.profile(schedule, NVIDIA_K20C)
        assert profile.uses_local_memory
        assert profile.work_per_thread >= schedule.tile_sizes[0]

    def test_ppcg_parameter_space_respects_device_limits(self):
        problem = ProblemInstance("jacobi", (1024, 1024), 5)
        space = ppcg_parameter_space(problem, AMD_HD7970)
        for config in space.configurations():
            blocks = config["block_0"] * config["block_1"]
            assert blocks <= AMD_HD7970.max_workgroup_size

    def test_ppcg_3d_blocks_are_two_dimensional(self):
        problem = ProblemInstance("heat", (64, 64, 64), 7)
        space = ppcg_parameter_space(problem, NVIDIA_K20C)
        config = next(iter(space.configurations()))
        assert "block_2" not in config
