"""CompilationCache: true LRU eviction — a hot key survives pressure."""

from repro.backend.cache import CompilationCache
from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.types import Float


def identity_program():
    return L.fun([L.array_type(Float, Var("N"))], lambda a: L.map(L.id_, a))


def data_of_length(n):
    return [[float(i) for i in range(n)]]


class TestLruEviction:
    def test_hot_key_survives_pressure(self):
        cache = CompilationCache(max_entries=4)
        program = identity_program()
        hot = cache.get_or_compile(program, data_of_length(1))
        # Insert many cold entries, re-touching the hot key between
        # insertions: recency-based eviction must keep it resident.
        for n in range(2, 12):
            cache.get_or_compile(program, data_of_length(n))
            assert cache.get_or_compile(program, data_of_length(1)) is hot
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["evictions"] == 10 + 1 - 4  # 11 distinct keys, 4 kept
        assert stats["hits"] == 10  # every hot-key re-touch was answered

    def test_lru_order_is_recency_not_insertion(self):
        cache = CompilationCache(max_entries=2)
        program = identity_program()
        first = cache.get_or_compile(program, data_of_length(1))
        cache.get_or_compile(program, data_of_length(2))
        # Touch the *older* entry, then insert a third: the younger-but-
        # least-recently-used length-2 entry must be the one evicted.
        assert cache.get_or_compile(program, data_of_length(1)) is first
        cache.get_or_compile(program, data_of_length(3))
        assert cache.get_or_compile(program, data_of_length(1)) is first
        stats = cache.stats()
        assert stats["evictions"] == 1  # only the untouched length-2 entry
        assert len(cache) == 2

    def test_eviction_counter_in_stats(self):
        cache = CompilationCache(max_entries=1)
        program = identity_program()
        for n in range(1, 5):
            cache.get_or_compile(program, data_of_length(n))
        assert cache.stats()["evictions"] == 3
