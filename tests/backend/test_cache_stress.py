"""Concurrency stress tests for the compilation cache and the plan cache.

The execution service fans numeric sweeps out to executor threads, so the
caches see concurrent ``get_or_compile`` traffic (plus stats reads and the
LRU's pop-and-reinsert) from many threads at once.  These tests hammer both
caches from a thread pool with a deliberately tiny capacity — forcing
constant hits, misses and evictions to interleave — and assert the
invariants the locked implementation guarantees: no exceptions, a
consistent entry table, counters that add up, and correct results for every
key throughout.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.apps.suite import get_benchmark
from repro.backend.base import NumpyBackend
from repro.backend.cache import CompilationCache, input_signature
from repro.backend.plan import PlanCache

THREADS = 8
ROUNDS = 60


def _programs(count: int):
    # Distinct structural keys: the same program lowered at different input
    # signatures keys separate cache entries.
    bench = get_benchmark("stencil2d")
    program = bench.build_program()
    shapes = [(8 + extent, 8 + extent) for extent in range(count)]
    return program, shapes


class TestCompilationCacheUnderThreads:
    def test_concurrent_get_or_compile_with_eviction(self):
        cache = CompilationCache(max_entries=3)
        program, shapes = _programs(7)
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(worker_id: int) -> None:
            rng = np.random.default_rng(worker_id)
            barrier.wait()
            try:
                for round_number in range(ROUNDS):
                    shape = shapes[int(rng.integers(len(shapes)))]
                    inputs = [np.ones(shape)]
                    kernel = cache.get_or_compile(program, inputs)
                    result = kernel(inputs)
                    assert result.shape[:2] == shape
                    if round_number % 13 == 0:
                        stats = cache.stats()
                        assert 0 <= stats["entries"] <= cache.max_entries
                        assert len(cache) <= cache.max_entries
            except Exception as error:  # noqa: BLE001 - collected for assert
                errors.append(error)

        with ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(worker, range(THREADS)))

        assert not errors, errors
        stats = cache.stats()
        assert stats["entries"] <= cache.max_entries
        assert stats["hits"] + stats["misses"] == THREADS * ROUNDS
        # Every surviving entry still resolves to a working kernel.
        for shape in shapes:
            inputs = [np.ones(shape)]
            kernel = cache.get_or_compile_keyed(
                program, input_signature(inputs)
            )
            assert kernel(inputs).shape[:2] == shape

    def test_concurrent_clear_does_not_corrupt(self):
        cache = CompilationCache(max_entries=4)
        program, shapes = _programs(4)
        errors = []

        def churn(worker_id: int) -> None:
            try:
                for round_number in range(ROUNDS):
                    if worker_id == 0 and round_number % 10 == 5:
                        cache.clear()
                        continue
                    shape = shapes[round_number % len(shapes)]
                    inputs = [np.ones(shape)]
                    kernel = cache.get_or_compile(program, inputs)
                    assert kernel(inputs).shape[:2] == shape
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        with ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(churn, range(THREADS)))
        assert not errors, errors
        assert len(cache) <= cache.max_entries


class TestPlanCacheUnderThreads:
    def test_concurrent_plan_execution_and_eviction(self):
        backend = NumpyBackend(cache=CompilationCache(max_entries=8),
                               plans=PlanCache(max_entries=3))
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        shapes = [(8 + extent, 8 + extent) for extent in range(6)]
        expected = {
            shape: backend.run(program, [np.ones(shape)]) for shape in shapes
        }
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker(worker_id: int) -> None:
            rng = np.random.default_rng(100 + worker_id)
            barrier.wait()
            try:
                for _ in range(ROUNDS):
                    shape = shapes[int(rng.integers(len(shapes)))]
                    produced = backend.run_plan(program, [np.ones(shape)])
                    assert np.array_equal(produced, expected[shape])
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        with ThreadPoolExecutor(THREADS) as pool:
            list(pool.map(worker, range(THREADS)))

        assert not errors, errors
        stats = backend.plans.stats()
        assert stats["entries"] <= 3
        assert stats["hits"] + stats["misses"] == THREADS * ROUNDS
