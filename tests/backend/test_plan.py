"""Execution plans: bit-identity vs the generic path, zero-allocation loops.

The acceptance property of the plan layer: for **every** suite application,
every input dtype and every timestep count, the buffer-pooled plan path
(`run`, `iterate`, `run_batched`) produces *bit-identical* results to the
existing generic `run` / `run_batched` path — and the steady iterate loop
performs no array allocations (tape replays write only into pooled
buffers).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.apps.suite import ALL_BENCHMARKS, ITERATIVE_BENCHMARKS, get_benchmark
from repro.backend.base import NumpyBackend
from repro.backend.plan import (
    ExecutionPlan,
    PlanCache,
    compile_plan,
    iterate_generic,
    normalize_carry,
)
from repro.backend.numpy_backend import ExecutionError
from repro.rewriting.strategies import NAIVE, lower_program, tiled_strategy

SMALL_SHAPES = {2: (13, 11), 3: (5, 7, 9)}


def small_inputs(bench, seed=7, dtype=None):
    inputs = bench.make_inputs(SMALL_SHAPES[bench.ndims], seed)
    if dtype is not None:
        inputs = [np.asarray(grid, dtype=dtype) for grid in inputs]
    return inputs


class TestPlanVsGenericBitIdentity:
    """The satellite property sweep: app × dtype × timestep count."""

    @pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_run_plan_matches_run(self, key, dtype):
        bench = ALL_BENCHMARKS[key]
        inputs = small_inputs(bench, dtype=dtype)
        program = bench.build_program()
        backend = NumpyBackend(cache=None)
        generic = backend.run(program, inputs)
        planned = backend.run_plan(program, inputs)
        assert generic.shape == planned.shape
        assert np.array_equal(generic, planned)

    @pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
    @pytest.mark.parametrize("steps", [1, 2, 3, 7])
    def test_iterate_matches_per_sweep_loop(self, key, steps):
        bench = ALL_BENCHMARKS[key]
        inputs = small_inputs(bench)
        program = bench.build_program()
        carry = bench.carry_spec()
        backend = NumpyBackend(cache=None)
        reference = iterate_generic(backend, program, inputs, steps, carry=carry)
        plan = backend.plan(program, inputs)
        produced = plan.iterate(inputs, steps, carry=carry)
        assert np.array_equal(reference, produced)

    @pytest.mark.parametrize("key", ["stencil2d", "hotspot2d", "acoustic",
                                     "gaussian", "srad1"])
    def test_run_batched_matches_generic_batched(self, key):
        bench = ALL_BENCHMARKS[key]
        backend = NumpyBackend(cache=None)
        program = bench.build_program()
        parts = [small_inputs(bench, seed=s) for s in range(5)]
        stacked = [np.stack([p[i] for p in parts])
                   for i in range(len(parts[0]))]
        generic = backend.run_batched(program, stacked)
        plan = backend.plan(program, stacked, batched=True)
        assert np.array_equal(generic, plan.run_batched(stacked))
        assert np.array_equal(generic, plan.run_batched_parts(parts))

    def test_plan_reused_across_different_input_values(self):
        bench = get_benchmark("hotspot2d")
        program = bench.build_program()
        backend = NumpyBackend(cache=None)
        plan = backend.plan(program, small_inputs(bench))
        for seed in (0, 3, 11):
            inputs = small_inputs(bench, seed=seed)
            assert np.array_equal(backend.run(program, inputs),
                                  plan.run(inputs))
        assert plan.stats()["captures"] == 1  # one capture, then replays
        assert plan.stats()["replays"] >= 2

    def test_lowered_variants_run_through_plans(self):
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        backend = NumpyBackend(cache=None)
        inputs = bench.make_inputs((16, 16), 5)
        for strategy in (NAIVE, tiled_strategy(6, use_local_memory=True)):
            lowered = lower_program(program, strategy)
            generic = backend.run(lowered.program, inputs)
            planned = backend.run_plan(lowered.program, inputs)
            assert np.array_equal(generic, planned)


class TestZeroAllocationSteadyLoop:
    @pytest.mark.parametrize("key", ITERATIVE_BENCHMARKS)
    def test_steady_iterate_does_not_allocate(self, key):
        bench = get_benchmark(key)
        inputs = small_inputs(bench)
        program = bench.build_program()
        plan = NumpyBackend(cache=None).plan(program, inputs)
        carry = bench.carry_spec()
        # Warm up until every binding in the ping-pong cycle has a tape.
        plan.iterate(inputs, 12, carry=carry)
        tapes_before = plan.stats()["tapes"]
        pool_before = plan._pool.allocations

        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            plan.iterate(inputs, 64, carry=carry, copy=False)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        assert plan.stats()["tapes"] == tapes_before  # no new captures
        assert plan._pool.allocations == pool_before  # no new buffers
        # Net traced allocation across 64 steady steps stays at Python-object
        # noise (snapshot bookkeeping), far below one grid per step.
        delta = after.compare_to(before, "filename")
        grown = sum(max(0, entry.size_diff) for entry in delta)
        assert grown < 64 * 1024, f"steady loop grew {grown} bytes"

    def test_copying_selections_fall_back_to_opaque_replay(self):
        # A user function that fancy-indexes its argument produces a *copy*,
        # not a view — the tracer must refuse it (forcing per-sweep
        # re-execution) or later sweeps would replay stale first-sweep data.
        from repro.core import builders as L
        from repro.core.arithmetic import Var
        from repro.core.types import Float
        from repro.core.userfuns import make_userfun

        order = np.array([3, 2, 1, 0])
        shuffle_fn = make_userfun(
            "shuffle_rows", ["x"], "return x;",  # C body unused here
            lambda x: x,
            numpy_fn=lambda x: x[order] * 2.0,
        )
        program = L.fun(
            [L.array_type(Float, Var("N"), Var("M"))],
            lambda a: L.FunCall(shuffle_fn, a),
        )
        backend = NumpyBackend(cache=None)
        plan = backend.plan(program, [np.zeros((4, 3))])
        for seed in (1, 2, 3):
            rng = np.random.default_rng(seed)
            inputs = [rng.random((4, 3))]
            assert np.array_equal(backend.run(program, inputs),
                                  plan.run(inputs)), seed
        assert plan.stats()["opaque_userfun_calls"] >= 1

    def test_data_dependent_scalar_results_refuse_capture(self):
        # An untraceable user function reducing its array argument to a
        # Python scalar has no buffer for the tape to refresh: the plan
        # path must refuse (PlanCaptureError) and the backend fall back to
        # the generic path — never silently freeze first-sweep values.
        from repro.backend.numpy_backend import PlanCaptureError
        from repro.core import builders as L
        from repro.core.arithmetic import Var
        from repro.core.types import Float
        from repro.core.userfuns import make_userfun

        def fun_of(numpy_fn, name):
            fn = make_userfun(name, ["x"], "return x;",  # C body unused here
                              lambda x: x, numpy_fn=numpy_fn)
            return L.fun(
                [L.array_type(Float, Var("N"), Var("M"))],
                lambda a: L.FunCall(fn, a),
            )

        backend = NumpyBackend(cache=None)
        scalar_program = fun_of(lambda x: float(np.max(x)), "grid_peak")
        plan = compile_plan(scalar_program, [np.ones((4, 3))])
        with pytest.raises(PlanCaptureError):
            plan.run([np.ones((4, 3))])
        # The backend-level entry points fall back and stay correct — for
        # the refused scalar program and for an untraceable-but-array one
        # (served by the opaque per-sweep re-execution path).
        array_program = fun_of(lambda x: x * float(np.max(x)), "peak_scale")
        for seed in (1, 2, 3):
            inputs = [np.random.default_rng(seed).random((4, 3))]
            for program in (scalar_program, array_program):
                assert np.array_equal(backend.run(program, inputs),
                                      backend.run_plan(program, inputs)), seed

    def test_all_suite_userfuns_trace_to_out_schedules(self):
        # Every suite app's arithmetic must take the traced (allocation-free)
        # path, not the opaque re-execution fallback.
        backend = NumpyBackend(cache=None)
        for key, bench in sorted(ALL_BENCHMARKS.items()):
            plan = backend.plan(bench.build_program(), small_inputs(bench))
            plan.run(small_inputs(bench))
            stats = plan.stats()
            assert stats["opaque_userfun_calls"] == 0, key
            assert stats["traced_userfun_calls"] >= 1, key


class TestIterateMechanics:
    def test_ping_pong_tape_count_converges(self):
        bench = get_benchmark("hotspot2d")
        inputs = small_inputs(bench)
        plan = NumpyBackend(cache=None).plan(bench.build_program(), inputs)
        plan.iterate(inputs, 40, carry=bench.carry_spec())
        # 1 prologue binding + a 2-phase ping-pong cycle.
        assert plan.stats()["tapes"] == 3

    def test_rotation_carry_tape_count_converges(self):
        bench = get_benchmark("acoustic")
        inputs = small_inputs(bench)
        plan = NumpyBackend(cache=None).plan(bench.build_program(), inputs)
        plan.iterate(inputs, 40, carry=bench.carry_spec())
        # 2 prologue bindings + a 3-phase rotation cycle.
        assert plan.stats()["tapes"] == 5

    def test_carry_validation(self):
        with pytest.raises(ExecutionError):
            normalize_carry((None, None), 2)       # output never fed back
        with pytest.raises(ExecutionError):
            normalize_carry(("out",), 2)           # wrong arity
        with pytest.raises(ExecutionError):
            normalize_carry(("out", 5), 2)         # index out of range
        assert normalize_carry(None, 3) == ("out", None, None)

    def test_shape_mismatch_rejected(self):
        bench = get_benchmark("stencil2d")
        plan = compile_plan(bench.build_program(), small_inputs(bench))
        with pytest.raises(ExecutionError):
            plan.run([np.zeros((4, 4))])

    def test_iterate_rejected_on_batched_plans(self):
        bench = get_benchmark("stencil2d")
        stacked = [np.stack([small_inputs(bench, seed=s)[0] for s in range(3)])]
        plan = compile_plan(bench.build_program(), stacked, batched=True)
        with pytest.raises(ExecutionError):
            plan.iterate(stacked, 2)

    def test_run_copy_false_returns_live_readonly_view(self):
        bench = get_benchmark("stencil2d")
        inputs = small_inputs(bench)
        plan = compile_plan(bench.build_program(), inputs)
        view = plan.run(inputs, copy=False)
        assert not view.flags.writeable
        first = view.copy()
        plan.run(small_inputs(bench, seed=3), copy=False)
        assert not np.array_equal(first, view)  # buffer was reused


class TestPlanCache:
    def test_plans_cached_per_program_and_shapes(self):
        cache = PlanCache(max_entries=8)
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        a = cache.get_or_compile(program, small_inputs(bench))
        b = cache.get_or_compile(program, small_inputs(bench, seed=9))
        assert a is b  # same shapes, same plan
        c = cache.get_or_compile(program, [np.zeros((16, 16))])
        assert c is not a
        stats = cache.stats()
        assert stats == {"entries": 2, "max_entries": 8,
                         "hits": 1, "misses": 2, "evictions": 0}

    def test_dtype_does_not_shape_specialise_plans(self):
        cache = PlanCache()
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        f64 = cache.get_or_compile(program, small_inputs(bench))
        f32 = cache.get_or_compile(
            program, small_inputs(bench, dtype=np.float32)
        )
        assert f64 is f32

    def test_lru_eviction(self):
        cache = PlanCache(max_entries=2)
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        for extent in (8, 9, 10):
            cache.get_or_compile(program, [np.zeros((extent, extent))])
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_backend_shares_kernel_between_generic_and_plan_paths(self):
        from repro.backend.cache import CompilationCache

        cache = CompilationCache()
        backend = NumpyBackend(cache=cache)
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        inputs = small_inputs(bench)
        backend.run(program, inputs)
        assert cache.stats()["misses"] == 1
        backend.run_plan(program, inputs)
        stacked = [np.stack([inputs[0], inputs[0]])]
        backend.plan(program, stacked, batched=True).run_batched(stacked)
        # The plan and batched-plan paths reuse the one compiled kernel.
        assert cache.stats()["misses"] == 1


class TestExecutionPlanRelease:
    def test_release_returns_buffers_to_pool(self):
        from repro.backend.pool import BufferPool

        pool = BufferPool()
        bench = get_benchmark("stencil2d")
        inputs = small_inputs(bench)
        plan = ExecutionPlan(bench.build_program(), inputs, pool=pool)
        plan.run(inputs)
        live = pool.stats()["live_buffers"]
        assert live > 0
        plan.release()
        stats = pool.stats()
        assert stats["live_buffers"] == 0
        assert stats["free_buffers"] == live
