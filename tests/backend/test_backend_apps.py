"""Compiled backend vs interpreter across the whole application suite.

The acceptance property of the compiled backend: for every Table-1
application (and its lowered kernel variants) the compiled result matches
the reference interpreter.  Since both paths evaluate the same float64
operations in the same order, the comparison is *bit-for-bit*, which is
stricter than the ``rtol=1e-6`` acceptance criterion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import squeeze_result
from repro.apps.suite import ALL_BENCHMARKS
from repro.backend import run_program
from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.types import Float, array
from repro.core.userfuns import add
from repro.rewriting.exploration import explore, verify_variants
from repro.rewriting.strategies import NAIVE, lower_program, tiled_strategy

SMALL_SHAPES = {2: (13, 11), 3: (5, 7, 9)}


def run_both(program, inputs):
    compiled = squeeze_result(np.asarray(run_program(program, inputs, backend="numpy")))
    oracle = squeeze_result(np.asarray(run_program(program, inputs, backend="interpreter")))
    return compiled, oracle


@pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
def test_compiled_matches_interpreter_on_every_app(key):
    bench = ALL_BENCHMARKS[key]
    shape = SMALL_SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=7)
    compiled, oracle = run_both(bench.build_program(), list(inputs))
    assert compiled.shape == oracle.shape
    np.testing.assert_array_equal(compiled, oracle)
    # ... and therefore within the acceptance tolerance of the golden too.
    assert np.allclose(compiled, bench.run_reference(inputs), rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
def test_compiled_matches_interpreter_on_lowered_naive(key):
    bench = ALL_BENCHMARKS[key]
    shape = SMALL_SHAPES[bench.ndims]
    inputs = bench.make_inputs(shape, seed=13)
    lowered = lower_program(bench.build_program(), NAIVE)
    compiled, oracle = run_both(lowered.program, list(inputs))
    np.testing.assert_array_equal(compiled, oracle)


@pytest.mark.parametrize("key", ["stencil2d", "gradient", "jacobi2d5pt"])
@pytest.mark.parametrize("tile,local", [(4, True), (6, False), (10, True)])
def test_compiled_matches_interpreter_on_tiled_variants(key, tile, local):
    bench = ALL_BENCHMARKS[key]
    # shape chosen so the tiling exactly covers the padded input for all tiles
    shape = (18, 18)
    inputs = bench.make_inputs(shape, seed=3)
    lowered = lower_program(bench.build_program(), tiled_strategy(tile, local))
    compiled, oracle = run_both(lowered.program, list(inputs))
    np.testing.assert_array_equal(compiled, oracle)


@pytest.mark.parametrize("boundary", ["clamp", "mirror", "wrap"])
def test_boundary_handling_2d_stencils(boundary):
    """The paper's three re-indexing boundary modes, end-to-end in 2D."""
    program = L.fun(
        [array(Float, Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, boundary, a, 2), 2),
            2,
        ),
    )
    grid = np.arange(42.0).reshape(6, 7)
    compiled, oracle = run_both(program, [grid])
    np.testing.assert_array_equal(compiled, oracle)


def test_pad_constant_3d_stencil():
    """PadConstant (value boundaries) through a full 3D stencil pipeline."""
    program = L.fun(
        [array(Float, Var("D"), Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(L.join(nbh))),
            L.slide_nd(3, 1, L.pad_constant_nd(1, 1, 0.5, a, 3), 3),
            3,
        ),
    )
    grid = np.arange(60.0).reshape(3, 4, 5)
    compiled, oracle = run_both(program, [grid])
    np.testing.assert_array_equal(compiled, oracle)


def test_mixed_boundaries_per_dimension():
    program = L.fun(
        [array(Float, Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, ["mirror", "wrap"], a, 2), 2),
            2,
        ),
    )
    grid = np.arange(20.0).reshape(4, 5)
    compiled, oracle = run_both(program, [grid])
    np.testing.assert_array_equal(compiled, oracle)


def test_verify_variants_accepts_all_exploration_results():
    """Every exploration variant of a covering configuration is equivalent."""
    bench = ALL_BENCHMARKS["stencil2d"]
    shape = (18, 18)
    inputs = bench.make_inputs(shape, seed=1)
    program = bench.build_program()
    variants = explore(
        program, stencil_size=3, stencil_step=1,
        padded_length=shape[-1] + 2, tile_sizes=(4, 6, 10),
        validate_tiles=True,
    )
    assert len(variants) >= 3
    verified = verify_variants(program, variants, list(inputs))
    assert len(verified) == len(variants)


def test_crosscheck_backend_on_an_app():
    bench = ALL_BENCHMARKS["jacobi2d5pt"]
    inputs = bench.make_inputs((9, 8), seed=2)
    checked = bench.run_lift(inputs, backend="crosscheck")
    plain = bench.run_lift(inputs, backend="numpy")
    np.testing.assert_array_equal(checked, plain)


def test_run_lift_default_backend_matches_interpreter():
    bench = ALL_BENCHMARKS["heat"]
    inputs = bench.make_inputs((5, 6, 7), seed=9)
    np.testing.assert_array_equal(
        bench.run_lift(inputs), bench.run_interpreter(inputs)
    )


def test_backend_timing_rows_are_consistent():
    """The bench-backend experiment verifies its own results."""
    from repro.experiments.backend_bench import run_backend_bench

    rows = run_backend_bench(
        benchmarks=["stencil2d"], shapes={2: (24, 24)}, repeats=1
    )
    assert len(rows) == 1
    assert rows[0].results_match
    assert rows[0].speedup > 1.0
