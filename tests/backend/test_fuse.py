"""The tape optimizer: fusion legality, tiled bit-identity, pool hygiene.

The acceptance property: for **every** suite application, every input dtype
and a spread of tile shapes — including tiles larger than the grid and
degenerate 1-wide tiles — the fused + tiled replay is *bit-identical* to
the generic compiled path, fused regions actually form on the stencil
apps, and the buffer pool balances across capture failures and fusion
fallbacks.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.apps.suite import ALL_BENCHMARKS, ITERATIVE_BENCHMARKS, get_benchmark
from repro.backend.base import NumpyBackend
from repro.backend.fuse import (
    auto_tile,
    measure_best_tile,
    normalize_tile_spec,
    tile_extents,
)
from repro.backend.numpy_backend import ExecutionError
from repro.backend.plan import ExecutionPlan, PlanCache, iterate_generic
from repro.backend.pool import BufferPool

SMALL_SHAPES = {2: (13, 11), 3: (5, 7, 9)}

#: The satellite sweep's tile shapes: the auto heuristic, a boxy tile, a
#: degenerate 1-wide tile, and a tile larger than any test grid.
TILE_SHAPES = [None, (4, 3), (1, 1), (4096, 4096)]


def small_inputs(bench, seed=7, dtype=None):
    inputs = bench.make_inputs(SMALL_SHAPES[bench.ndims], seed)
    if dtype is not None:
        inputs = [np.asarray(grid, dtype=dtype) for grid in inputs]
    return inputs


class TestFusedBitIdentity:
    """The property sweep: app × dtype × tile shape, fused == generic."""

    @pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("tile", TILE_SHAPES)
    def test_fused_run_matches_generic(self, key, dtype, tile):
        bench = ALL_BENCHMARKS[key]
        inputs = small_inputs(bench, dtype=dtype)
        program = bench.build_program()
        backend = NumpyBackend(cache=None)
        generic = backend.run(program, inputs)
        plan = backend.plan(program, inputs, tile_shape=tile)
        assert np.array_equal(generic, plan.run(inputs))   # capture sweep
        assert np.array_equal(generic, plan.run(inputs))   # tape replay
        assert plan.stats()["fusion_fallbacks"] == 0, key

    @pytest.mark.parametrize("key", ITERATIVE_BENCHMARKS)
    @pytest.mark.parametrize("tile", TILE_SHAPES)
    def test_fused_iterate_matches_per_sweep_loop(self, key, tile):
        bench = get_benchmark(key)
        inputs = small_inputs(bench)
        program = bench.build_program()
        carry = bench.carry_spec()
        backend = NumpyBackend(cache=None)
        reference = iterate_generic(backend, program, inputs, 7, carry=carry)
        plan = backend.plan(program, inputs, tile_shape=tile)
        assert np.array_equal(reference,
                              plan.iterate(inputs, 7, carry=carry))

    def test_fused_batched_matches_generic_batched(self):
        bench = get_benchmark("hotspot2d")
        backend = NumpyBackend(cache=None)
        program = bench.build_program()
        parts = [small_inputs(bench, seed=s) for s in range(4)]
        stacked = [np.stack([p[i] for p in parts])
                   for i in range(len(parts[0]))]
        generic = backend.run_batched(program, stacked)
        plan = backend.plan(program, stacked, batched=True, tile_shape=(3, 4))
        assert np.array_equal(generic, plan.run_batched(stacked))
        assert plan.stats()["fused_regions"] >= 1


class TestFusionFormation:
    def test_hotspot2d_forms_a_fused_region_with_halo_pads(self):
        bench = get_benchmark("hotspot2d")
        inputs = small_inputs(bench)
        backend = NumpyBackend(cache=None)
        plan = backend.plan(bench.build_program(), inputs)
        plan.run(inputs)
        stats = plan.stats()
        assert stats["fused_regions"] >= 1
        assert stats["fused_pads"] >= 1      # the halo-gather → ufunc edge
        assert stats["fused_tiles"] >= 1
        assert stats["fusion_fallbacks"] == 0

    def test_tile_false_disables_fusion(self):
        bench = get_benchmark("hotspot2d")
        inputs = small_inputs(bench)
        backend = NumpyBackend(cache=None)
        plan = backend.plan(bench.build_program(), inputs, tile_shape=False)
        plan.run(inputs)
        assert plan.stats()["fused_regions"] == 0

    def test_opaque_userfun_breaks_the_region_but_stays_correct(self):
        # A fancy-indexing user function replays opaquely; the tape must not
        # fuse through it, and results must still match the generic path.
        from repro.core import builders as L
        from repro.core.arithmetic import Var
        from repro.core.types import Float
        from repro.core.userfuns import make_userfun

        order = np.array([3, 2, 1, 0])
        shuffle_fn = make_userfun(
            "shuffle_rows_fuse", ["x"], "return x;",
            lambda x: x,
            numpy_fn=lambda x: x[order] * 2.0,
        )
        program = L.fun(
            [L.array_type(Float, Var("N"), Var("M"))],
            lambda a: L.FunCall(shuffle_fn, a),
        )
        backend = NumpyBackend(cache=None)
        plan = backend.plan(program, [np.zeros((4, 3))], tile_shape=(2, 2))
        for seed in (1, 2, 3):
            inputs = [np.random.default_rng(seed).random((4, 3))]
            assert np.array_equal(backend.run(program, inputs),
                                  plan.run(inputs))
        assert plan.stats()["fused_regions"] == 0

    def test_distinct_tiles_are_distinct_cached_plans(self):
        cache = PlanCache()
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        auto = cache.get_or_compile(program, small_inputs(bench))
        tiled = cache.get_or_compile(program, small_inputs(bench),
                                     tile_shape=(4, 4))
        unfused = cache.get_or_compile(program, small_inputs(bench),
                                       tile_shape=False)
        assert auto is not tiled and tiled is not unfused
        again = cache.get_or_compile(program, small_inputs(bench),
                                     tile_shape=(4, 4))
        assert again is tiled


class TestZeroAllocationFusedLoop:
    @pytest.mark.parametrize("key", ["hotspot2d", "acoustic"])
    def test_steady_fused_iterate_does_not_allocate(self, key):
        bench = get_benchmark(key)
        inputs = small_inputs(bench)
        plan = NumpyBackend(cache=None).plan(bench.build_program(), inputs,
                                             tile_shape=(4, 4))
        carry = bench.carry_spec()
        plan.iterate(inputs, 12, carry=carry)  # warm every binding's tape
        assert plan.stats()["fused_regions"] >= 1
        pool_before = plan._pool.allocations

        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            plan.iterate(inputs, 64, carry=carry, copy=False)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        assert plan._pool.allocations == pool_before
        delta = after.compare_to(before, "filename")
        grown = sum(max(0, entry.size_diff) for entry in delta)
        assert grown < 64 * 1024, f"steady fused loop grew {grown} bytes"


class TestPoolHygiene:
    def test_aborted_capture_releases_arena_buffers(self):
        # The mid-capture failure satellite: buffers acquired by the capture
        # arena before a PlanCaptureError must return to the pool, so the
        # pool balances (live == the plan's own inputs) after the abort.
        from repro.backend.numpy_backend import PlanCaptureError
        from repro.core import builders as L
        from repro.core.arithmetic import Var
        from repro.core.types import Float
        from repro.core.userfuns import make_userfun

        double_fn = make_userfun(
            "double_fuse", ["x"], "return x;",
            lambda x: x, numpy_fn=lambda x: x * 2.0,
        )
        peak_fn = make_userfun(
            "grid_peak_fuse", ["x"], "return x;",
            lambda x: x, numpy_fn=lambda x: float(np.max(x)),
        )
        # The traced double() acquires arena scratch *before* peak() aborts
        # the capture — exactly the buffers the old code leaked.
        program = L.fun(
            [L.array_type(Float, Var("N"), Var("M"))],
            lambda a: L.FunCall(peak_fn, L.FunCall(double_fn, a)),
        )
        pool = BufferPool()
        plan = ExecutionPlan(program, [np.ones((6, 5))], pool=pool)
        live_before = pool.stats()["live_buffers"]
        for _ in range(3):  # repeated aborts must not grow the pool
            with pytest.raises(PlanCaptureError):
                plan.run([np.ones((6, 5))])
        stats = pool.stats()
        assert stats["live_buffers"] == live_before, stats
        # Whatever the aborted captures acquired is free for reuse again.
        assert stats["free_buffers"] >= 1, stats
        assert stats["allocations"] <= live_before + stats["free_buffers"], \
            stats  # aborts reuse the released buffers instead of growing
        plan.release()
        assert pool.stats()["live_buffers"] == 0

    def test_fusion_fallback_releases_scratch(self):
        # Forcing the optimizer down its fallback path (impossible tile
        # spec -> FusionError surfaces as a fallback) must not leak pool
        # buffers relative to the unfused plan.
        bench = get_benchmark("hotspot2d")
        inputs = small_inputs(bench)
        pool = BufferPool()
        plan = ExecutionPlan(bench.build_program(), inputs, pool=pool)
        plan.run(inputs)
        live = pool.stats()["live_buffers"]
        plan.release()
        stats = pool.stats()
        assert stats["live_buffers"] == 0
        assert stats["free_buffers"] == live


class TestTileSpecs:
    def test_normalize(self):
        assert normalize_tile_spec(None) is None
        assert normalize_tile_spec(False) is False
        assert normalize_tile_spec("off") is False
        assert normalize_tile_spec(32) == (32,)
        assert normalize_tile_spec((16, None)) == (16, None)
        with pytest.raises(ExecutionError):
            normalize_tile_spec((0, 4))
        with pytest.raises(ExecutionError):
            normalize_tile_spec(())

    def test_auto_tile_blocks_the_overflowing_axis(self):
        # 1024x1024 float64 rows are 8 KiB: a 256 KiB target keeps rows
        # whole and blocks the leading axis at 32.
        assert auto_tile((1024, 1024), 8, 1 << 18) == (32, 1024)
        assert auto_tile((4, 4), 8, 1 << 18) == (4, 4)  # fits: one tile

    def test_tile_extents_resolution(self):
        assert tile_extents((16, None), (64, 48)) == (16, 48)
        assert tile_extents((100, 100), (8, 8)) == (8, 8)   # clipped
        assert tile_extents((2,), (16, 16)) == (16, 2)      # trailing axes
        assert tile_extents(None, (4, 4)) == (4, 4)

    def test_measure_best_tile_returns_a_candidate(self):
        bench = get_benchmark("jacobi2d5pt")
        inputs = small_inputs(bench)
        backend = NumpyBackend(cache=None)
        candidates = [False, None, (4, None)]
        cost, spec, workers = measure_best_tile(
            backend, bench.build_program(), inputs,
            candidates=candidates, runs=1,
        )
        assert cost > 0.0
        assert spec in candidates
        assert workers >= 1

    def test_measure_best_tile_searches_worker_candidates(self):
        bench = get_benchmark("jacobi2d5pt")
        inputs = small_inputs(bench)
        backend = NumpyBackend(cache=None)
        cost, spec, workers = measure_best_tile(
            backend, bench.build_program(), inputs,
            candidates=[None], runs=1, worker_candidates=(1, 2),
        )
        assert cost > 0.0 and spec is None and workers in (1, 2)
