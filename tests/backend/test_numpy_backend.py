"""Unit and property tests for the compiled NumPy backend.

Every primitive that the compiler vectorises is checked against the
reference interpreter on the same program and data — the interpreter is the
oracle, the backend must agree bit-for-bit (these are pure float64 pipelines
evaluated in the same operation order).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import (
    BackendMismatch,
    CompilationCache,
    CompileError,
    CrossCheckBackend,
    ExecutionError,
    InterpreterBackend,
    NumpyBackend,
    compile_program,
    get_backend,
    run_program,
)
from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.ir import structural_key
from repro.core.types import Float, array
from repro.core.userfuns import add, max_fn

floats = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


def both(program, inputs):
    """Run a program on both backends and return (compiled, interpreted)."""
    compiled = run_program(program, inputs, backend="numpy")
    interpreted = run_program(program, inputs, backend="interpreter")
    return compiled, interpreted


def assert_backends_agree(program, inputs):
    compiled, interpreted = both(program, inputs)
    np.testing.assert_array_equal(compiled, interpreted)


# ---------------------------------------------------------------------------
# Primitive-by-primitive equivalence
# ---------------------------------------------------------------------------

class TestAlgorithmicPrimitives:
    def test_map_userfun(self):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.map(lambda x: L.lit(x), a))
        assert_backends_agree(program, [[1.0, 2.0, 3.0]])

    def test_map_scalar_arithmetic(self):
        from repro.core.ir import FunCall
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.map(lambda x: FunCall(add, x, x), a))
        assert_backends_agree(program, [[1.0, 2.0, 3.0]])

    def test_reduce_sum(self):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.reduce(add, 0.0, a))
        assert_backends_agree(program, [[1.0, 2.0, 3.0, 4.0]])

    def test_reduce_noncommutative_order(self):
        # subtraction folds left-to-right; order differences would show up
        from repro.core.userfuns import subtract
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.reduce(subtract, 0.0, a))
        assert_backends_agree(program, [[5.0, 1.0, 2.25, -3.5]])

    def test_zip_and_get(self):
        from repro.core.ir import FunCall
        program = L.fun(
            [array(Float, Var("N")), array(Float, Var("N"))],
            lambda a, b: L.map(
                lambda t: FunCall(add, L.get(0, t), L.get(1, t)), L.zip(a, b)
            ),
        )
        assert_backends_agree(program, [[1.0, 2.0], [10.0, 20.0]])

    def test_zip_length_mismatch_raises(self):
        program = L.fun(
            [array(Float, Var("N")), array(Float, Var("M"))],
            lambda a, b: L.zip(a, b),
        )
        with pytest.raises(ExecutionError):
            NumpyBackend(cache=None).run(program, [[1.0, 2.0], [1.0]])

    @given(st.lists(floats, min_size=2, max_size=24).filter(lambda d: len(d) % 2 == 0))
    @settings(max_examples=25, deadline=None)
    def test_split_join_roundtrip(self, data):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.join(L.split(2, a)))
        assert_backends_agree(program, [data])

    def test_split_indivisible_raises(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.split(2, a))
        with pytest.raises(ExecutionError):
            NumpyBackend(cache=None).run(program, [[1.0, 2.0, 3.0]])

    def test_transpose(self):
        program = L.fun([array(Float, Var("N"), Var("M"))], L.transpose)
        assert_backends_agree(program, [[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]])

    def test_at_and_tuple(self):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.tuple_(L.at(0, a), L.at(2, a)))
        compiled, interpreted = both(program, [[5.0, 6.0, 7.0]])
        np.testing.assert_array_equal(compiled, interpreted)

    def test_iterate(self):
        from repro.core.ir import FunCall
        double = lambda x: FunCall(add, x, x)
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.iterate(3, lambda xs: L.map(double, xs), a))
        assert_backends_agree(program, [[1.0, 2.0]])

    def test_array_constructor(self):
        program = L.fun([], lambda: L.array(4, lambda i, n: float(i * 10)))
        assert_backends_agree(program, [])

    def test_map_with_userfun_max(self):
        from repro.core.ir import FunCall
        program = L.fun(
            [array(Float, Var("N")), array(Float, Var("N"))],
            lambda a, b: L.map(
                lambda t: FunCall(max_fn, L.get(0, t), L.get(1, t)), L.zip(a, b)
            ),
        )
        assert_backends_agree(program, [[1.0, 5.0, -2.0], [4.0, 2.0, -1.0]])


class TestStencilPrimitives:
    @pytest.mark.parametrize("boundary", ["clamp", "mirror", "wrap"])
    @given(data=st.lists(floats, min_size=3, max_size=24),
           left=st.integers(0, 3), right=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_pad_boundaries(self, boundary, data, left, right):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.pad(left, right, boundary, a))
        assert_backends_agree(program, [data])

    @given(data=st.lists(floats, min_size=1, max_size=16),
           value=floats, left=st.integers(0, 3), right=st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_pad_constant(self, data, value, left, right):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.pad_constant(left, right, value, a))
        assert_backends_agree(program, [data])

    def test_pad_constant_2d_fills_whole_rows(self):
        program = L.fun([array(Float, Var("N"), Var("M"))],
                        lambda a: L.pad_constant_nd(1, 1, 9.0, a, 2))
        assert_backends_agree(program, [[[1.0, 2.0], [3.0, 4.0]]])

    @given(data=st.lists(floats, min_size=1, max_size=30),
           size=st.integers(1, 5), step=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_slide_windows(self, data, size, step):
        if len(data) - size + step < 0:
            return  # interpreter rejects these too
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.slide(size, step, a))
        compiled, interpreted = both(program, [data])
        if interpreted.size == 0:
            assert compiled.size == 0
        else:
            np.testing.assert_array_equal(compiled, interpreted)

    def test_slide_nd_2d(self):
        grid = np.arange(30.0).reshape(5, 6)
        program = L.fun([array(Float, Var("N"), Var("M"))],
                        lambda a: L.slide_nd(3, 1, a, 2))
        assert_backends_agree(program, [grid])

    def test_full_1d_stencil(self):
        program = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.map(lambda nbh: L.reduce(add, 0.0, nbh),
                            L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))),
        )
        assert_backends_agree(program, [list(np.arange(16.0))])


class TestOpenCLPrimitives:
    def test_map_glb_and_reduce_seq(self):
        program = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.map_glb(lambda nbh: L.reduce_seq(add, 0.0, nbh),
                                L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))),
        )
        assert_backends_agree(program, [list(np.arange(12.0))])

    def test_to_local_is_transparent(self):
        program = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.to_local(lambda xs: L.map(L.id_, xs), a),
        )
        assert_backends_agree(program, [[1.0, 2.0, 3.0]])


# ---------------------------------------------------------------------------
# Backend protocol, cache and cross-check
# ---------------------------------------------------------------------------

class TestBackendProtocol:
    def test_get_backend_names(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("interpreter").name == "interpreter"
        assert get_backend("crosscheck").name == "crosscheck"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            get_backend("cuda")

    def test_backend_instance_passthrough(self):
        backend = NumpyBackend(cache=None)
        assert get_backend(backend) is backend

    def test_env_var_selects_default(self, monkeypatch):
        from repro.backend import default_backend_name
        monkeypatch.setenv("REPRO_BACKEND", "interpreter")
        assert default_backend_name() == "interpreter"
        assert get_backend(None).name == "interpreter"

    def test_crosscheck_passes_on_agreement(self):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.map(L.id_, a))
        result = CrossCheckBackend().run(program, [[1.0, 2.0]])
        np.testing.assert_array_equal(result, [1.0, 2.0])

    def test_crosscheck_detects_divergence(self):
        class LyingBackend:
            name = "lying"
            def run(self, program, inputs, size_env=None):
                return np.asarray(InterpreterBackend().run(program, inputs)) + 1.0

        program = L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        checker = CrossCheckBackend(primary=LyingBackend())
        with pytest.raises(BackendMismatch):
            checker.run(program, [[1.0, 2.0]])


class TestCompilationCache:
    def test_hit_on_identical_program_and_shape(self):
        cache = CompilationCache()
        program = L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        data = [[1.0, 2.0, 3.0]]
        k1 = cache.get_or_compile(program, data)
        k2 = cache.get_or_compile(program, data)
        assert k1 is k2
        assert cache.stats() == {
            "entries": 1, "max_entries": 256,
            "hits": 1, "misses": 1, "evictions": 0,
        }

    def test_alpha_equivalent_programs_share_an_entry(self):
        cache = CompilationCache()
        build = lambda: L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        p1, p2 = build(), build()
        assert structural_key(p1) == structural_key(p2)
        k1 = cache.get_or_compile(p1, [[1.0]])
        k2 = cache.get_or_compile(p2, [[1.0]])
        assert k1 is k2

    def test_different_shapes_compile_separately(self):
        cache = CompilationCache()
        program = L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        cache.get_or_compile(program, [[1.0, 2.0]])
        cache.get_or_compile(program, [[1.0, 2.0, 3.0]])
        assert len(cache) == 2

    def test_eviction_respects_max_entries(self):
        cache = CompilationCache(max_entries=2)
        program = L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        for n in range(4):
            cache.get_or_compile(program, [list(np.arange(float(n + 1)))])
        assert len(cache) == 2

    def test_clear_resets_statistics(self):
        cache = CompilationCache()
        program = L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        cache.get_or_compile(program, [[1.0]])
        cache.clear()
        assert cache.stats() == {
            "entries": 0, "max_entries": 256,
            "hits": 0, "misses": 0, "evictions": 0,
        }


class TestCompileErrors:
    def test_arity_mismatch(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        kernel = compile_program(program)
        with pytest.raises(ExecutionError):
            kernel([[1.0], [2.0]])

    def test_first_class_functions_are_rejected(self):
        from repro.core.ir import FunCall, Lambda, Param
        # A program whose body evaluates a bare lambda as a value.
        p = Param("x")
        inner = Lambda([Param("y")], L.lit(1.0))
        program = Lambda([p], inner)
        with pytest.raises(CompileError):
            compile_program(program)

    def test_numpy_backend_falls_back_to_interpreter(self, monkeypatch):
        import repro.backend.base as base

        def refuse(program, size_env=None):
            raise CompileError("unsupported on purpose")

        monkeypatch.setattr(base, "compile_program", refuse)
        program = L.fun([array(Float, Var("N"))], lambda a: L.map(L.id_, a))
        strict = NumpyBackend(cache=None, fallback=False)
        with pytest.raises(CompileError):
            strict.run(program, [[1.0, 2.0]])
        result = NumpyBackend(cache=None, fallback=True).run(program, [[1.0, 2.0]])
        np.testing.assert_array_equal(result, [1.0, 2.0])
