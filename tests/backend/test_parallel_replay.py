"""Parallel tiled replay: bit-identity, zero allocations, failure hygiene.

The acceptance property for the replay worker pool: for every suite
application, dtype, tile shape and worker count, dispatching a fused
region's independent tile chunks across N pool threads produces results
**bit-identical** to the serial replay (which is itself verified
bit-identical to the generic path at capture time), the steady parallel
loop allocates nothing from the buffer pool, and a failing worker leaves
no scratch leaked and the plan fully recoverable.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.apps.suite import ALL_BENCHMARKS, ITERATIVE_BENCHMARKS, get_benchmark
from repro.backend.base import NumpyBackend
from repro.backend.fuse import (
    MAX_REPLAY_WORKERS,
    FusedOp,
    ReplayWorkerPool,
    normalize_workers,
    replay_pool,
)
from repro.backend.numpy_backend import ExecutionError
from repro.backend.plan import PlanCache, iterate_generic

SMALL_SHAPES = {2: (13, 11), 3: (5, 7, 9)}


def small_inputs(bench, seed=7, dtype=None):
    inputs = bench.make_inputs(SMALL_SHAPES[bench.ndims], seed)
    if dtype is not None:
        inputs = [np.asarray(grid, dtype=dtype) for grid in inputs]
    return inputs


def fused_ops_of(plan):
    """Every FusedOp reachable from the plan's captured tapes."""
    found = []
    for tape in plan._tapes.values():
        for op in tape.ops:
            owner = getattr(op, "__self__", None)
            if isinstance(owner, FusedOp):
                found.append(owner)
    return found


class TestParallelBitIdentity:
    """The property sweep: app × dtype × tile × workers, parallel == serial."""

    @pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("tile", [None, (4, 3)])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_parallel_run_matches_generic(self, key, dtype, tile, workers):
        bench = ALL_BENCHMARKS[key]
        inputs = small_inputs(bench, dtype=dtype)
        program = bench.build_program()
        backend = NumpyBackend(cache=None)
        generic = backend.run(program, inputs)
        plan = backend.plan(program, inputs, tile_shape=tile,
                            parallel_workers=workers)
        assert np.array_equal(generic, plan.run(inputs))   # capture sweep
        assert np.array_equal(generic, plan.run(inputs))   # parallel replay
        assert plan.stats()["fusion_fallbacks"] == 0, key
        assert plan.stats()["parallel_workers"] == workers

    @pytest.mark.parametrize("key", ITERATIVE_BENCHMARKS)
    def test_parallel_iterate_matches_per_sweep_loop(self, key):
        bench = get_benchmark(key)
        inputs = small_inputs(bench)
        program = bench.build_program()
        carry = bench.carry_spec()
        backend = NumpyBackend(cache=None)
        reference = iterate_generic(backend, program, inputs, 7, carry=carry)
        plan = backend.plan(program, inputs, tile_shape=(4, None),
                            parallel_workers=3)
        assert np.array_equal(reference,
                              plan.iterate(inputs, 7, carry=carry))

    def test_parallel_regions_actually_chunk_across_workers(self):
        # The tape must really hold multi-part fused ops — otherwise the
        # sweep above only proves the serial path twice.
        bench = get_benchmark("hotspot2d")
        inputs = small_inputs(bench)
        plan = NumpyBackend(cache=None).plan(
            bench.build_program(), inputs, tile_shape=(4, 4),
            parallel_workers=3,
        )
        plan.run(inputs)
        parallel = [op for op in fused_ops_of(plan) if op.workers > 1]
        assert parallel, "no fused op was split into parallel chunks"
        for op in parallel:
            assert op.workers <= 3
            assert sum(len(part) for part in op.parts) == op.step_count


class TestParallelPlanCaching:
    def test_distinct_worker_counts_are_distinct_cached_plans(self):
        cache = PlanCache()
        bench = get_benchmark("stencil2d")
        program = bench.build_program()
        serial = cache.get_or_compile(program, small_inputs(bench),
                                      tile_shape=(4, 4))
        parallel = cache.get_or_compile(program, small_inputs(bench),
                                        tile_shape=(4, 4), parallel_workers=2)
        assert serial is not parallel
        again = cache.get_or_compile(program, small_inputs(bench),
                                     tile_shape=(4, 4), parallel_workers=2)
        assert again is parallel

    def test_normalize_workers(self):
        assert normalize_workers(None) == 1
        assert normalize_workers(False) == 1
        assert normalize_workers(0) == 1
        assert normalize_workers(3) == 3
        assert normalize_workers(10_000) == MAX_REPLAY_WORKERS
        with pytest.raises(ExecutionError):
            normalize_workers(-2)


class TestParallelZeroAllocation:
    @pytest.mark.parametrize("key", ["hotspot2d", "acoustic"])
    def test_steady_parallel_iterate_does_not_allocate(self, key):
        # The pool contract under parallelism: each worker chunk owns its
        # pre-acquired scratch set, so the steady parallel loop draws no
        # fresh pool buffers; net traced allocations stay at the transient
        # latch/queue-item noise the threading layer unavoidably produces.
        bench = get_benchmark(key)
        inputs = small_inputs(bench)
        plan = NumpyBackend(cache=None).plan(bench.build_program(), inputs,
                                             tile_shape=(4, 4),
                                             parallel_workers=3)
        carry = bench.carry_spec()
        plan.iterate(inputs, 12, carry=carry)  # warm every binding's tape
        assert plan.stats()["fused_regions"] >= 1
        pool_before = plan._pool.allocations

        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            plan.iterate(inputs, 64, carry=carry, copy=False)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        assert plan._pool.allocations == pool_before
        delta = after.compare_to(before, "filename")
        grown = sum(max(0, entry.size_diff) for entry in delta)
        assert grown < 64 * 1024, f"steady parallel loop grew {grown} bytes"


class _Boom(RuntimeError):
    pass


def _raising_ufunc(*args, out=None):
    raise _Boom("injected worker failure")


class TestWorkerFailureHygiene:
    def test_worker_failure_propagates_and_plan_recovers(self):
        bench = get_benchmark("hotspot2d")
        inputs = small_inputs(bench)
        backend = NumpyBackend(cache=None)
        generic = backend.run(bench.build_program(), inputs)
        plan = backend.plan(bench.build_program(), inputs, tile_shape=(4, 4),
                            parallel_workers=3)
        plan.run(inputs)
        victims = [op for op in fused_ops_of(plan) if op.workers > 1]
        assert victims
        victim = victims[0]
        live_before = plan._pool.stats()["live_buffers"]
        allocations_before = plan._pool.allocations

        # Inject a raising micro-op into a *worker* chunk (not the inline
        # part), so the failure surfaces on a pool thread and must cross
        # the latch back to the caller.
        injected = (0, _raising_ufunc, (), None)
        victim.parts[1].append(injected)
        try:
            for _ in range(3):  # repeated failures must not leak either
                with pytest.raises(_Boom):
                    plan.run(inputs)
        finally:
            victim.parts[1].remove(injected)

        # No scratch leaked: replay draws on pre-acquired buffers only, so
        # the pool's accounting is untouched by the aborted replays.
        assert plan._pool.stats()["live_buffers"] == live_before
        assert plan._pool.allocations == allocations_before
        # And the plan still serves bit-identical results afterwards.
        assert np.array_equal(generic, plan.run(inputs))

    def test_inline_failure_still_joins_the_workers(self):
        # run_parts must wait for the dispatched tail even when the inline
        # chunk raises first — returning early would leave pool threads
        # racing scratch the caller believes is quiescent.  Observable
        # contract: the tail's writes have all landed when the error
        # arrives.
        pool = ReplayWorkerPool(max_threads=4)
        landed = np.zeros(8)
        tail_parts = [
            [(1, landed[index:index + 1], np.float64(1.0))]  # _COPY steps
            for index in range(8)
        ]
        inline = [(0, _raising_ufunc, (), None)]
        with pytest.raises(_Boom):
            pool.run_parts([inline] + tail_parts)
        assert np.array_equal(landed, np.ones(8))

    def test_pool_reports_first_worker_error_and_survives(self):
        pool = ReplayWorkerPool(max_threads=2)
        out = np.zeros(4)
        with pytest.raises(_Boom):
            pool.run_parts([
                [(1, out, np.float64(2.0))],          # inline: fine
                [(0, _raising_ufunc, (), None)],       # worker: raises
            ])
        # The pool is a process-wide singleton in production: after an
        # error it must keep replaying subsequent runs normally.
        pool.run_parts([
            [(1, out[:2], np.float64(3.0))],
            [(1, out[2:], np.float64(3.0))],
        ])
        assert np.array_equal(out, np.full(4, 3.0))

    def test_process_pool_singleton(self):
        assert replay_pool() is replay_pool()
