"""SearchEngine: resumability, workers=1 vs workers=N determinism, batching."""

import pickle

import pytest

from repro.apps.suite import get_benchmark
from repro.backend.cache import CompilationCache
from repro.engine import (
    CostModelPruner,
    EngineError,
    ResultsStore,
    SearchEngine,
    VariantSpec,
    make_jobs,
)
from repro.engine.worker import evaluate_job
from repro.experiments.pipeline import lift_best_result
from repro.runtime.simulator.device import DEVICES

SHAPE = (64, 64)
BUDGET = 40


def run_engine(store, workers=1, strategy="exhaustive", seed=0,
               budget=BUDGET, **kwargs):
    with SearchEngine(store=store, workers=workers, seed=seed) as engine:
        return engine.run("stencil2d", shape=SHAPE, budget=budget,
                          strategy=strategy, **kwargs)


class TestSerialEquivalence:
    def test_engine_matches_legacy_serial_pipeline(self):
        serial = lift_best_result(
            get_benchmark("stencil2d"), shape=SHAPE,
            device=DEVICES["nvidia"], tuner_budget=BUDGET,
        )
        outcome = run_engine(store=None, workers=1)
        assert outcome.best.variant.describe() == serial.strategy
        assert outcome.best.best_config == serial.configuration
        assert outcome.best.best_cost == serial.result.runtime_s

    def test_lift_best_result_with_store_routes_through_engine(self):
        store = ResultsStore(":memory:")
        outcome = lift_best_result(
            get_benchmark("stencil2d"), shape=SHAPE,
            device=DEVICES["nvidia"], tuner_budget=BUDGET, store=store,
        )
        serial = lift_best_result(
            get_benchmark("stencil2d"), shape=SHAPE,
            device=DEVICES["nvidia"], tuner_budget=BUDGET,
        )
        assert store.count() > 0
        assert outcome.strategy == serial.strategy
        assert outcome.configuration == serial.configuration
        assert outcome.result.runtime_s == serial.result.runtime_s


class TestDeterminismAcrossWorkers:
    @pytest.mark.parametrize("strategy", ["exhaustive", "random", "hillclimb"])
    def test_workers_1_vs_4_same_best(self, strategy):
        one = run_engine(ResultsStore(":memory:"), workers=1,
                         strategy=strategy, seed=7)
        four = run_engine(ResultsStore(":memory:"), workers=4,
                          strategy=strategy, seed=7)
        assert one.best.variant == four.best.variant
        assert one.best.best_config == four.best.best_config
        assert one.best.best_cost == four.best.best_cost
        assert one.evaluations == four.evaluations
        # Full per-variant agreement, not just the winner.
        assert [(v.variant, v.best_cost) for v in one.per_variant] == [
            (v.variant, v.best_cost) for v in four.per_variant
        ]


class TestResumability:
    def test_interrupted_session_resumes_to_identical_best(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        # A "killed" session: a smaller budget evaluates only a prefix of
        # each variant's configuration enumeration, then the driver dies.
        with ResultsStore(path) as store:
            partial = run_engine(store, budget=10, session="sess")
            assert partial.fresh_evaluations > 0

        # Resume against the same store: the prefix is recalled, only the
        # remainder is evaluated, and the final best matches a clean run.
        with ResultsStore(path) as store:
            resumed = run_engine(store, session="sess")
            assert resumed.store_hits > 0
            assert resumed.fresh_evaluations < resumed.evaluations

        clean = run_engine(ResultsStore(":memory:"))
        assert resumed.best.variant == clean.best.variant
        assert resumed.best.best_config == clean.best.best_config
        assert resumed.best.best_cost == clean.best.best_cost

    def test_second_full_run_performs_zero_reevaluations(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with ResultsStore(path) as store:
            first = run_engine(store, session="sess")
            assert first.fresh_evaluations == first.evaluations
        with ResultsStore(path) as store:
            second = run_engine(store, session="sess")
        assert second.fresh_evaluations == 0
        assert second.store_hits == second.evaluations
        assert second.best.best_cost == first.best.best_cost

    def test_session_spec_is_recorded(self, tmp_path):
        with ResultsStore(str(tmp_path / "store.sqlite")) as store:
            run_engine(store, session="sess")
            spec = store.session_spec("sess")
        assert spec["benchmark"] == "Stencil2D"
        assert spec["budget"] == BUDGET
        assert tuple(spec["shape"]) == SHAPE


class TestBatchAPI:
    def _jobs(self, count=6):
        return make_jobs(
            "stencil2d", SHAPE, "nvidia",
            VariantSpec(name="naive"),
            [{"wg_x": 2 ** i, "wg_y": 4, "work_per_thread": 1}
             for i in range(count)],
        )

    def test_results_are_in_submission_order(self):
        engine = SearchEngine(store=ResultsStore(":memory:"))
        jobs = self._jobs()
        results = engine.evaluate(jobs)
        assert len(results) == len(jobs)
        again = engine.evaluate(jobs)
        assert all(result.from_store for result in again)
        assert [r.cost for r in again] == [r.cost for r in results]

    def test_duplicate_jobs_evaluated_once(self):
        engine = SearchEngine(store=ResultsStore(":memory:"))
        jobs = list(self._jobs(2)) * 3
        results = engine.evaluate(jobs)
        assert len(results) == 6
        assert engine.store.count() == 2
        assert results[0].cost == results[2].cost == results[4].cost

    def test_as_completed_yields_every_job(self):
        with SearchEngine(workers=2) as engine:
            jobs = self._jobs()
            seen = dict(engine.submit(jobs).as_completed())
        assert sorted(seen) == list(range(len(jobs)))

    def test_gather_is_awaitable(self):
        import asyncio

        with SearchEngine(workers=2) as engine:
            batch = engine.submit(self._jobs())
            results = asyncio.run(batch.gather())
        assert len(results) == 6

    def test_suite_batch_submission(self):
        engine = SearchEngine(store=ResultsStore(":memory:"))
        outcomes = engine.run_suite(["stencil2d", "heat"], budget=10,
                                    shapes={"Stencil2D": SHAPE, "Heat": (16, 16, 16)})
        assert set(outcomes) == {"Stencil2D", "Heat"}
        for outcome in outcomes.values():
            assert outcome.best.best_cost > 0
            assert outcome.evaluations > 0

    def test_worker_errors_surface_in_band(self):
        bad = make_jobs(
            "stencil2d", SHAPE, "nvidia",
            # Tiling with an invalid (too small) tile cannot lower.
            VariantSpec(name="tiled", use_tiling=True, tile_size=1),
            [{"wg_x": 4, "wg_y": 4, "work_per_thread": 1}],
        )
        result = evaluate_job(bad[0])
        assert not result.ok and result.cost == float("inf")
        engine = SearchEngine()
        with pytest.raises(EngineError):
            engine.evaluate(bad)


class TestScorersAndValidation:
    def test_measured_scorer_ranks_variants_by_execution(self):
        with SearchEngine(store=ResultsStore(":memory:"), scorer="measured",
                          measure_runs=1, measure_size=24) as engine:
            outcome = engine.run("stencil2d", shape=SHAPE, budget=4)
        assert outcome.best.best_cost > 0
        # Measured cost is per-variant: every config of a variant ties.
        for variant in outcome.per_variant:
            assert variant.best_cost > 0

    def test_measured_and_simulated_points_never_share_memo_entries(self):
        sim = make_jobs("stencil2d", SHAPE, "nvidia", VariantSpec(name="naive"),
                        [{"wg_x": 4, "wg_y": 4, "work_per_thread": 1}])[0]
        measured = make_jobs("stencil2d", SHAPE, "nvidia", VariantSpec(name="naive"),
                             [{"wg_x": 4, "wg_y": 4, "work_per_thread": 1}],
                             measure_runs=2, measure_size=24)[0]
        assert sim.fingerprint() != measured.fingerprint()

    def test_unknown_scorer_rejected(self):
        with pytest.raises(ValueError):
            SearchEngine(scorer="psychic")

    def test_crosscheck_validation_accepts_all_variants(self):
        with SearchEngine(store=ResultsStore(":memory:"),
                          validate="crosscheck", validate_size=16) as engine:
            outcome = engine.run("stencil2d", shape=SHAPE, budget=4)
        assert outcome.best.best_cost > 0

    def test_validation_shape_respects_min_size_and_coverage(self):
        from repro.engine.worker import validation_shape
        from repro.rewriting.strategies import lower_program, tiled_strategy

        benchmark = get_benchmark("stencil2d")
        lowered = lower_program(benchmark.build_program(), tiled_strategy(18))
        shape = validation_shape(3, 2, lowered, min_size=64)
        assert all(extent >= 64 for extent in shape)
        # Exact tile coverage of the padded input: (padded - u) % v == 0.
        u, v = 18, 18 - 2
        padded = shape[0] + 2  # radius 1 per side
        assert (padded - u) % v == 0


class TestReviewRegressions:
    def test_validate_jobs_do_not_reuse_unvalidated_costs(self):
        plain = make_jobs("stencil2d", SHAPE, "nvidia", VariantSpec(name="naive"),
                          [{"wg_x": 4, "wg_y": 4, "work_per_thread": 1}])[0]
        validating = make_jobs("stencil2d", SHAPE, "nvidia", VariantSpec(name="naive"),
                               [{"wg_x": 4, "wg_y": 4, "work_per_thread": 1}],
                               validate=True)[0]
        # Same point, but a validating job must not be answered by a cost
        # produced without validation.
        assert plain.fingerprint() != validating.fingerprint()

        store = ResultsStore(":memory:")
        engine = SearchEngine(store=store)
        engine.evaluate([plain])
        results = engine.evaluate([validating])
        assert not results[0].from_store

    def test_measured_session_resumes_with_zero_fresh(self, tmp_path):
        path = str(tmp_path / "store.sqlite")

        def run(store):
            with SearchEngine(store=store, scorer="measured",
                              measure_runs=1, measure_size=24) as engine:
                return engine.run("stencil2d", shape=SHAPE, budget=3)

        with ResultsStore(path) as store:
            first = run(store)
            assert first.fresh_evaluations > 0
        with ResultsStore(path) as store:
            second = run(store)
        assert second.fresh_evaluations == 0
        assert second.best.best_cost == first.best.best_cost

    def test_measured_throughput_uses_measurement_grid(self):
        with SearchEngine(scorer="measured", measure_runs=1,
                          measure_size=24) as engine:
            outcome = engine.run("stencil2d", shape=(4096, 4096), budget=2)
        assert outcome.scorer == "measured"
        # Elements must refer to the ~24-per-dim grid the workers timed,
        # not the 4096x4096 problem shape.
        assert outcome.output_elements < 4096 * 4096 / 100

    def test_as_completed_early_break_persists_completed_results(self):
        store = ResultsStore(":memory:")
        engine = SearchEngine(store=store)
        jobs = make_jobs("stencil2d", SHAPE, "nvidia", VariantSpec(name="naive"),
                         [{"wg_x": 2 ** i, "wg_y": 4, "work_per_thread": 1}
                          for i in range(5)])
        for _index, _result in engine.submit(jobs).as_completed():
            break  # early exit must not lose the completed evaluations
        assert store.count() >= 1

    def test_session_spec_records_pruner_configuration(self, tmp_path):
        from repro.cli import main

        store_path = str(tmp_path / "store.sqlite")
        args = ["tune", "stencil2d", "--budget", "10", "--scale", "0.02",
                "--store", store_path, "--session", "s"]
        assert main(args + ["--no-prune"]) == 0
        with ResultsStore(store_path) as store:
            assert store.session_spec("s")["prune_margin"] is None
        # The resumed run must re-derive the identical (unpruned) job set:
        # zero fresh evaluations even though the CLI default would prune.
        import io
        from contextlib import redirect_stdout

        out = io.StringIO()
        with redirect_stdout(out):
            assert main(["tune", "--resume", "s", "--store", store_path]) == 0
        assert "zero re-evaluations" in out.getvalue()

    def test_run_suite_reports_prune_decisions(self):
        with SearchEngine(store=ResultsStore(":memory:"),
                          pruner=CostModelPruner(margin=1.0)) as engine:
            outcomes = engine.run_suite(["stencil2d"], budget=4,
                                        shapes={"Stencil2D": SHAPE})
        outcome = outcomes["Stencil2D"]
        assert outcome.pruned  # decisions surfaced, not dropped
        assert any(not decision.kept for decision in outcome.pruned)
        # prune=False bypasses the pruner entirely.
        with SearchEngine(store=ResultsStore(":memory:"),
                          pruner=CostModelPruner(margin=1.0)) as engine:
            unpruned = engine.run_suite(["stencil2d"], budget=4,
                                        shapes={"Stencil2D": SHAPE},
                                        prune=False)
        assert len(unpruned["Stencil2D"].per_variant) > len(outcome.per_variant)


class TestPruner:
    def test_pruner_keeps_front_runner_and_cuts_dominated(self):
        benchmark = get_benchmark("stencil2d")
        device = DEVICES["nvidia"]
        from repro.experiments.pipeline import explore_variants_for

        variants = [
            (VariantSpec(**result.strategy.to_spec()), result.lowered)
            for result in explore_variants_for(benchmark, SHAPE)
        ]
        pruner = CostModelPruner(margin=1.0)  # keep only the front-runner(s)
        kept, decisions = pruner.prune(benchmark, SHAPE, device, variants)
        assert kept and len(kept) < len(variants)
        assert len(decisions) == len(variants)
        best = min(d.estimate for d in decisions)
        assert all(d.estimate == best for d in decisions if d.kept)

    def test_pruned_search_same_winner_at_any_worker_count(self):
        def run(workers):
            with SearchEngine(store=ResultsStore(":memory:"), workers=workers,
                              pruner=CostModelPruner(margin=4.0)) as engine:
                return engine.run("stencil2d", shape=SHAPE, budget=BUDGET)

        one, four = run(1), run(4)
        assert one.best.variant == four.best.variant
        assert one.best.best_cost == four.best.best_cost
        assert [d.kept for d in one.pruned] == [d.kept for d in four.pruned]

    def test_margin_below_one_rejected(self):
        with pytest.raises(ValueError):
            CostModelPruner(margin=0.5)


class TestPickling:
    def test_compilation_cache_pickles_as_empty(self):
        import numpy as np

        from repro.backend import NumpyBackend

        cache = CompilationCache(max_entries=17)
        benchmark = get_benchmark("stencil2d")
        backend = NumpyBackend(cache=cache)
        inputs = benchmark.make_inputs((8, 8), 3)
        backend.run(benchmark.build_program(), list(inputs))
        assert len(cache) > 0

        clone = pickle.loads(pickle.dumps(cache))
        assert len(clone) == 0 and clone.max_entries == 17
        assert clone.stats() == {
            "entries": 0, "max_entries": 17,
            "hits": 0, "misses": 0, "evictions": 0,
        }

        # A backend holding a cache round-trips and recompiles on first use.
        backend_clone = pickle.loads(pickle.dumps(backend))
        result = backend_clone.run(benchmark.build_program(), list(inputs))
        assert np.allclose(result, backend.run(benchmark.build_program(), list(inputs)))

    def test_jobs_pickle(self):
        job = make_jobs("heat", (8, 8, 8), "amd", VariantSpec(name="naive"),
                        [{"wg_x": 4}])[0]
        assert pickle.loads(pickle.dumps(job)) == job


class TestStructuralDigest:
    def test_digest_stable_for_rebuilt_programs(self):
        from repro.core.ir import structural_digest

        benchmark = get_benchmark("acoustic")  # uses ArrayConstructor closures
        first = structural_digest(benchmark.build_program())
        second = structural_digest(benchmark.build_program())
        assert first == second
        assert len(first) == 64

    def test_digest_distinguishes_programs(self):
        from repro.core.ir import structural_digest

        a = structural_digest(get_benchmark("heat").build_program())
        b = structural_digest(get_benchmark("poisson").build_program())
        assert a != b


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
