"""ResultsStore: schema round-trip, memo counters, sessions."""

import math

import pytest

from repro.engine import ResultsStore
from repro.engine.jobs import EvaluationJob, VariantSpec, config_items


def make_job(benchmark="stencil2d", tile=18, wg=16, device="nvidia"):
    return EvaluationJob(
        benchmark=benchmark,
        shape=(64, 64),
        device=device,
        variant=VariantSpec(name="tiled", use_tiling=True, tile_size=tile,
                            use_local_memory=True, unroll_reduce=True),
        config=config_items({"wg_x": wg, "wg_y": wg, "work_per_thread": 1}),
        expr_digest="d" * 64,
    )


class TestFingerprints:
    def test_fingerprint_is_stable_and_sensitive(self):
        job = make_job()
        assert job.fingerprint() == make_job().fingerprint()
        assert job.fingerprint() != make_job(tile=34).fingerprint()
        assert job.fingerprint() != make_job(wg=8).fingerprint()
        assert job.fingerprint() != make_job(device="amd").fingerprint()

    def test_config_items_canonicalises_order(self):
        a = config_items({"wg_x": 1, "wg_y": 2})
        b = config_items({"wg_y": 2, "wg_x": 1})
        assert a == b


class TestSchemaRoundTrip:
    def test_round_trip_through_disk(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        job = make_job()
        cost = 1.2345e-5
        with ResultsStore(path) as store:
            fingerprint = store.put(job, cost, session="sess-1")
        with ResultsStore(path) as store:
            stored = store.get(fingerprint)
        assert stored is not None
        assert stored.benchmark == "stencil2d"
        assert stored.device == "nvidia"
        assert stored.shape == (64, 64)
        assert stored.expr_digest == "d" * 64
        assert stored.variant == job.variant
        assert stored.config == job.config_dict
        assert stored.cost == cost  # REAL is an IEEE double: exact round-trip
        assert stored.session == "sess-1"

    def test_put_many_and_get_many(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        jobs = [make_job(wg=wg) for wg in (2, 4, 8, 16)]
        with ResultsStore(path) as store:
            store.put_many(
                [(job, float(index), job.fingerprint())
                 for index, job in enumerate(jobs)],
                session="bulk",
            )
        with ResultsStore(path) as store:
            found = store.get_many([job.fingerprint() for job in jobs] + ["missing"])
            assert len(found) == 4
            assert store.hits == 4 and store.misses == 1

    def test_best_for_orders_by_cost(self, tmp_path):
        with ResultsStore(str(tmp_path / "store.sqlite")) as store:
            store.put(make_job(wg=8), 3.0)
            store.put(make_job(wg=16), 1.0)
            store.put(make_job(wg=4), 2.0)
            store.put(make_job(benchmark="heat"), 0.1)
            best = store.best_for("stencil2d", "nvidia")
            assert best is not None and best.cost == 1.0
            assert store.best_for("stencil2d", "arm") is None


class TestCounters:
    def test_hit_and_miss_counting(self):
        store = ResultsStore(":memory:")
        job = make_job()
        assert store.get(job.fingerprint()) is None
        assert (store.hits, store.misses) == (0, 1)
        store.put(job, 1.0)
        assert store.get(job.fingerprint()) is not None
        assert (store.hits, store.misses) == (1, 1)
        store.reset_counters()
        assert store.stats() == {"entries": 1, "hits": 0, "misses": 0}

    def test_put_is_idempotent_by_fingerprint(self):
        store = ResultsStore(":memory:")
        job = make_job()
        store.put(job, 1.0)
        store.put(job, 2.0)  # re-evaluation overwrites, no duplicate rows
        assert store.count() == 1
        assert store.get(job.fingerprint()).cost == 2.0


class TestSessions:
    def test_session_spec_round_trip(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        spec = {"benchmark": "heat", "budget": 20, "shape": [64, 64, 64]}
        with ResultsStore(path) as store:
            store.save_session("abc", spec)
        with ResultsStore(path) as store:
            assert store.session_spec("abc") == spec
            assert store.session_spec("nope") is None
            assert ("abc", "running") in store.sessions()
            store.finish_session("abc")
            assert ("abc", "done") in store.sessions()

    def test_infinite_cost_round_trips(self):
        store = ResultsStore(":memory:")
        job = make_job()
        store.put(job, float("inf"))
        assert math.isinf(store.get(job.fingerprint()).cost)


class TestDurability:
    def test_opens_in_wal_mode_with_busy_timeout(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with ResultsStore(path, busy_timeout_s=2.5) as store:
            conn = store._conn
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
            assert conn.execute("PRAGMA busy_timeout").fetchone()[0] == 2500

    def test_corrupt_file_is_moved_aside_and_recreated(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with ResultsStore(path) as store:
            store.put(make_job(), 1.0)
        with open(path, "wb") as fh:
            fh.write(b"definitely not a sqlite file" * 64)
        with ResultsStore(path) as store:
            assert store.count() == 0  # fresh schema, usable again
            store.put(make_job(), 2.0)
            assert store.count() == 1
        assert (tmp_path / "store.sqlite.corrupt").exists()

    def test_second_corruption_does_not_clobber_the_first_parked_file(
            self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        for _ in range(2):
            with open(path, "wb") as fh:
                fh.write(b"garbage" * 64)
            ResultsStore(path).close()
        parked = [p.name for p in tmp_path.iterdir()
                  if ".corrupt" in p.name]
        assert len(parked) == 2, parked

    def test_missing_parent_directory_is_still_created(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "store.sqlite")
        with ResultsStore(path) as store:
            store.put(make_job(), 1.0)
        with ResultsStore(path) as store:
            assert store.count() == 1

    def test_injected_lock_surfaces_as_operational_error(self):
        import sqlite3

        from repro import faults

        faults.disarm()
        try:
            faults.arm("store.locked:at=1")
            store = ResultsStore(":memory:")
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                store.put(make_job(), 1.0)
            # The schedule fired once; the store itself is unharmed.
            store.put(make_job(), 1.0)
            assert store.count() == 1
        finally:
            faults.disarm()


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
