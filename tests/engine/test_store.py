"""ResultsStore: schema round-trip, memo counters, sessions."""

import math

import pytest

from repro.engine import ResultsStore
from repro.engine.jobs import EvaluationJob, VariantSpec, config_items


def make_job(benchmark="stencil2d", tile=18, wg=16, device="nvidia"):
    return EvaluationJob(
        benchmark=benchmark,
        shape=(64, 64),
        device=device,
        variant=VariantSpec(name="tiled", use_tiling=True, tile_size=tile,
                            use_local_memory=True, unroll_reduce=True),
        config=config_items({"wg_x": wg, "wg_y": wg, "work_per_thread": 1}),
        expr_digest="d" * 64,
    )


class TestFingerprints:
    def test_fingerprint_is_stable_and_sensitive(self):
        job = make_job()
        assert job.fingerprint() == make_job().fingerprint()
        assert job.fingerprint() != make_job(tile=34).fingerprint()
        assert job.fingerprint() != make_job(wg=8).fingerprint()
        assert job.fingerprint() != make_job(device="amd").fingerprint()

    def test_config_items_canonicalises_order(self):
        a = config_items({"wg_x": 1, "wg_y": 2})
        b = config_items({"wg_y": 2, "wg_x": 1})
        assert a == b


class TestSchemaRoundTrip:
    def test_round_trip_through_disk(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        job = make_job()
        cost = 1.2345e-5
        with ResultsStore(path) as store:
            fingerprint = store.put(job, cost, session="sess-1")
        with ResultsStore(path) as store:
            stored = store.get(fingerprint)
        assert stored is not None
        assert stored.benchmark == "stencil2d"
        assert stored.device == "nvidia"
        assert stored.shape == (64, 64)
        assert stored.expr_digest == "d" * 64
        assert stored.variant == job.variant
        assert stored.config == job.config_dict
        assert stored.cost == cost  # REAL is an IEEE double: exact round-trip
        assert stored.session == "sess-1"

    def test_put_many_and_get_many(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        jobs = [make_job(wg=wg) for wg in (2, 4, 8, 16)]
        with ResultsStore(path) as store:
            store.put_many(
                [(job, float(index), job.fingerprint())
                 for index, job in enumerate(jobs)],
                session="bulk",
            )
        with ResultsStore(path) as store:
            found = store.get_many([job.fingerprint() for job in jobs] + ["missing"])
            assert len(found) == 4
            assert store.hits == 4 and store.misses == 1

    def test_best_for_orders_by_cost(self, tmp_path):
        with ResultsStore(str(tmp_path / "store.sqlite")) as store:
            store.put(make_job(wg=8), 3.0)
            store.put(make_job(wg=16), 1.0)
            store.put(make_job(wg=4), 2.0)
            store.put(make_job(benchmark="heat"), 0.1)
            best = store.best_for("stencil2d", "nvidia")
            assert best is not None and best.cost == 1.0
            assert store.best_for("stencil2d", "arm") is None


class TestCounters:
    def test_hit_and_miss_counting(self):
        store = ResultsStore(":memory:")
        job = make_job()
        assert store.get(job.fingerprint()) is None
        assert (store.hits, store.misses) == (0, 1)
        store.put(job, 1.0)
        assert store.get(job.fingerprint()) is not None
        assert (store.hits, store.misses) == (1, 1)
        store.reset_counters()
        assert store.stats() == {"entries": 1, "hits": 0, "misses": 0}

    def test_put_is_idempotent_by_fingerprint(self):
        store = ResultsStore(":memory:")
        job = make_job()
        store.put(job, 1.0)
        store.put(job, 2.0)  # re-evaluation overwrites, no duplicate rows
        assert store.count() == 1
        assert store.get(job.fingerprint()).cost == 2.0


class TestSessions:
    def test_session_spec_round_trip(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        spec = {"benchmark": "heat", "budget": 20, "shape": [64, 64, 64]}
        with ResultsStore(path) as store:
            store.save_session("abc", spec)
        with ResultsStore(path) as store:
            assert store.session_spec("abc") == spec
            assert store.session_spec("nope") is None
            assert ("abc", "running") in store.sessions()
            store.finish_session("abc")
            assert ("abc", "done") in store.sessions()

    def test_infinite_cost_round_trips(self):
        store = ResultsStore(":memory:")
        job = make_job()
        store.put(job, float("inf"))
        assert math.isinf(store.get(job.fingerprint()).cost)


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
