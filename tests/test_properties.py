"""Property-based tests (hypothesis) for core invariants.

These cover the algebraic properties the paper's rewrite-rule approach relies
on: the typing rules of ``pad``/``slide``, the semantics-preservation of the
overlapped-tiling rewrite for arbitrary valid parameters, the symbolic
arithmetic laws used by the type checker, and the view-free data-layout
round-trips (split/join, transpose).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import builders as L
from repro.core.arithmetic import Cst, Var, exact_div
from repro.core.ir import Lambda
from repro.core.types import Float, array
from repro.core.typecheck import check_program
from repro.core.userfuns import add
from repro.rewriting.algorithmic_rules import TileStencil1DRule, tiling_is_valid
from repro.rewriting.rules import apply_at, find_applications
from repro.runtime.interpreter import evaluate_program

floats = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# Symbolic arithmetic laws
# ---------------------------------------------------------------------------

@given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
def test_arithmetic_matches_python_integers(a, b, c):
    n = Var("n")
    expr = (n + a) * b + c
    assert expr.evaluate({"n": 7}) == (7 + a) * b + c


@given(st.integers(-20, 20), st.integers(-20, 20))
def test_addition_is_commutative_symbolically(a, b):
    n, m = Var("n"), Var("m")
    assert (n * a + m * b) == (m * b + n * a)


@given(st.integers(1, 40), st.integers(1, 12))
def test_exact_division_inverts_multiplication(value, divisor):
    n = Var("n")
    assert exact_div(n * (value * divisor), Cst(divisor)) == n * value


@given(st.integers(2, 64), st.integers(1, 8))
def test_split_type_sizes_multiply_back(length_factor, chunk):
    length = chunk * length_factor
    program = L.fun([array(Float, length)], lambda a: L.join(L.split(chunk, a)))
    assert check_program(program, [array(Float, length)]) == array(Float, length)


# ---------------------------------------------------------------------------
# pad / slide semantics
# ---------------------------------------------------------------------------

@given(st.lists(floats, min_size=1, max_size=30), st.integers(0, 3), st.integers(0, 3))
def test_pad_clamp_length_and_boundary_values(data, left, right):
    program = L.fun([array(Float, Var("N"))], lambda a: L.pad(left, right, L.CLAMP, a))
    out = evaluate_program(program, [data])
    assert len(out) == left + len(data) + right
    assert all(v == data[0] for v in out[:left])
    assert all(v == data[-1] for v in out[len(out) - right:])
    assert out[left:left + len(data)] == data


@given(st.lists(floats, min_size=1, max_size=30), st.integers(1, 3))
def test_pad_wrap_is_periodic(data, amount):
    program = L.fun([array(Float, Var("N"))], lambda a: L.pad(amount, amount, L.WRAP, a))
    out = evaluate_program(program, [data])
    n = len(data)
    for i, value in enumerate(out):
        assert value == data[(i - amount) % n]


@given(
    st.lists(floats, min_size=3, max_size=40),
    st.integers(2, 5),
    st.integers(1, 3),
)
def test_slide_window_count_and_content(data, size, step):
    if len(data) < size:
        data = data + [0.0] * (size - len(data))
    program = L.fun([array(Float, Var("N"))], lambda a: L.slide(size, step, a))
    windows = evaluate_program(program, [data])
    expected_count = (len(data) - size) // step + 1
    assert len(windows) == expected_count
    for index, window in enumerate(windows):
        start = index * step
        assert window == data[start:start + size]


@given(st.lists(floats, min_size=1, max_size=25))
def test_pad_then_slide_preserves_element_count(data):
    """The canonical stencil shape keeps one output per input element."""
    program = L.fun(
        [array(Float, Var("N"))],
        lambda a: L.map(lambda nbh: L.reduce(add, 0.0, nbh),
                        L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))),
    )
    out = evaluate_program(program, [data])
    assert len(out) == len(data)


@given(
    st.integers(2, 6).flatmap(
        lambda rows: st.integers(2, 6).map(lambda cols: (rows, cols))
    ),
    st.integers(0, 1000),
)
def test_transpose_is_an_involution(shape, seed):
    rows, cols = shape
    grid = np.random.default_rng(seed).random((rows, cols))
    program = L.fun(
        [array(Float, Var("N"), Var("M"))], lambda a: L.transpose(L.transpose(a))
    )
    out = np.array(evaluate_program(program, [grid]))
    assert np.allclose(out, grid)


@given(st.lists(floats, min_size=2, max_size=40), st.integers(1, 5))
def test_split_join_is_identity(data, chunk):
    remainder = len(data) % chunk
    if remainder:
        data = data + [0.0] * (chunk - remainder)
    program = L.fun([array(Float, Var("N"))], lambda a: L.join(L.split(chunk, a)))
    assert evaluate_program(program, [data]) == data


# ---------------------------------------------------------------------------
# Overlapped tiling: semantics preservation for arbitrary valid parameters
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=40)
@given(
    st.integers(2, 12),   # tiles
    st.integers(1, 8),    # outputs per tile
    st.integers(0, 1000), # data seed
)
def test_overlapped_tiling_preserves_semantics_for_valid_parameters(tiles, per_tile, seed):
    """For every valid (u, v) choice, both sides of the rewrite agree (paper §4.1)."""
    size, step = 3, 1
    overlap = size - step
    tile_step = per_tile * step
    tile_size = tile_step + overlap
    padded_length = tiles * tile_step + overlap
    n = padded_length - 2  # the program pads by 1 on each side
    assert tiling_is_valid(padded_length, size, step, tile_size)

    program = L.fun(
        [array(Float, Var("N"))],
        lambda a: L.map(lambda nbh: L.reduce(add, 0.0, nbh),
                        L.slide(size, step, L.pad(1, 1, L.CLAMP, a))),
    )
    rule = TileStencil1DRule(tile_size=tile_size)
    target = find_applications(program.body, rule)[0]
    tiled = Lambda(program.params, apply_at(program.body, rule, target))

    data = list(np.random.default_rng(seed).random(n))
    assert np.allclose(
        np.array(evaluate_program(program, [data])),
        np.array(evaluate_program(tiled, [data])),
    )


# ---------------------------------------------------------------------------
# Multi-dimensional wrappers
# ---------------------------------------------------------------------------

@settings(deadline=None, max_examples=25)
@given(
    st.integers(3, 8),
    st.integers(3, 8),
    st.integers(0, 10_000),
)
def test_2d_box_stencil_matches_numpy_for_random_grids(rows, cols, seed):
    program = L.fun(
        [array(Float, Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, a, 2), 2),
            2,
        ),
    )
    grid = np.random.default_rng(seed).random((rows, cols))
    out = np.array(evaluate_program(program, [grid]))[..., 0]
    padded = np.pad(grid, 1, mode="edge")
    golden = sum(padded[i:i + rows, j:j + cols] for i in range(3) for j in range(3))
    assert np.allclose(out, golden)


@settings(deadline=None, max_examples=20)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(0, 100))
def test_zip_nd_pairs_every_element(rows, cols, seed):
    rng = np.random.default_rng(seed)
    a, b = rng.random((rows, cols)), rng.random((rows, cols))
    program = L.fun(
        [array(Float, Var("N"), Var("M"))] * 2,
        lambda x, y: L.map_nd(
            lambda t: L.get(0, t), L.zip_nd([x, y], 2), 2
        ),
    )
    out = np.array(evaluate_program(program, [a, b]))
    assert np.allclose(out, a)
