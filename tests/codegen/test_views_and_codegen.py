"""Tests for the view system and the OpenCL code generator (paper §5)."""


import pytest

from repro.core import builders as L
from repro.core.typecheck import check_program
from repro.core.types import Float, array
from repro.codegen import CodegenError, generate_kernel
from repro.rewriting.strategies import NAIVE, lower_program, tiled_strategy
from repro.views.view import (
    ViewError,
    ViewMemory,
    ViewPad,
    ViewScalar,
    ViewSlide,
    ViewTranspose,
    ViewZip,
    build_view,
)
from repro.apps.jacobi import build_jacobi2d_5pt
from repro.apps.hotspot import build_hotspot2d
from repro.apps.gaussian import build_gaussian


class TestViews:
    def test_memory_view_flat_index(self):
        view = ViewMemory("grid", ["4", "5"])
        ref = view.access("i").access("j").scalar_ref()
        assert "grid[" in ref and "i" in ref and "j" in ref and "5" in ref

    def test_memory_view_requires_full_indexing(self):
        view = ViewMemory("grid", ["4", "5"]).access("i")
        with pytest.raises(ViewError):
            view.scalar_ref()

    def test_pad_view_maps_indices_with_boundary(self):
        from repro.core.primitives.stencil import CLAMP

        base = ViewMemory("a", ["10"])
        padded = ViewPad(base, 1, 1, "10", CLAMP.c_template)
        ref = padded.access("0").scalar_ref()
        assert "a[" in ref and "?" in ref  # clamped ternary indexing

    def test_slide_view_offsets_window(self):
        base = ViewMemory("a", ["10"])
        windows = ViewSlide(base, "3", "1")
        ref = windows.access("w").access("j").scalar_ref()
        assert "w" in ref and "j" in ref

    def test_transpose_view_swaps_indices(self):
        base = ViewMemory("a", ["4", "6"])
        swapped = ViewTranspose(base)
        direct = base.access("i").access("j").scalar_ref()
        transposed = swapped.access("j").access("i").scalar_ref()
        assert direct == transposed

    def test_zip_view_yields_tuple_components(self):
        a = ViewMemory("a", ["8"])
        b = ViewMemory("b", ["8"])
        zipped = ViewZip([a, b])
        assert "a[" in zipped.access("i").get(0).scalar_ref()
        assert "b[" in zipped.access("i").get(1).scalar_ref()

    def test_build_view_for_pad_slide_composition(self):
        program = L.fun(
            [array(Float, 16)],
            lambda a: L.slide(3, 1, L.pad(1, 1, L.CLAMP, a)),
            names=["input"],
        )
        check_program(program, [array(Float, 16)])
        view = build_view(program.body, {program.params[0]: ViewMemory("input", ["16"])})
        ref = view.access("5").access("2").scalar_ref()
        assert "input[" in ref

    def test_scalar_view_passthrough(self):
        assert ViewScalar("1.0f").scalar_ref() == "1.0f"


class TestNaiveCodegen:
    def test_generates_valid_looking_kernel(self):
        lowered = lower_program(build_jacobi2d_5pt(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 64, 64)], "jacobi5")
        assert "__kernel void jacobi5" in kernel.source
        assert "get_global_id(0)" in kernel.source
        assert "get_global_id(1)" in kernel.source
        assert kernel.global_size == (64, 64)
        assert kernel.local_memory_bytes == 0

    def test_no_memory_copies_for_pad_and_slide(self):
        """pad/slide become index arithmetic, not loops copying memory (paper §5)."""
        lowered = lower_program(build_jacobi2d_5pt(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 32, 32)], "jacobi5")
        body = kernel.source.split("__kernel")[1]
        assert "for" not in body  # fully unrolled 5-point stencil, no copies

    def test_output_buffer_size_matches_grid(self):
        lowered = lower_program(build_jacobi2d_5pt(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 48, 32)], "jacobi5")
        assert kernel.output_buffer.element_count == 48 * 32

    def test_boundary_clamp_appears_in_indexing(self):
        lowered = lower_program(build_jacobi2d_5pt(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 32, 32)], "jacobi5")
        assert "? 0 :" in kernel.source or "< 0" in kernel.source

    def test_multi_grid_kernel_has_two_input_buffers(self):
        lowered = lower_program(build_hotspot2d(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 32, 32)] * 2, "hotspot2d")
        names = [b.name for b in kernel.buffers]
        assert "temp" in names and "power" in names and "output" in names

    def test_userfun_definition_emitted_once(self):
        lowered = lower_program(build_jacobi2d_5pt(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 32, 32)], "jacobi5")
        assert kernel.source.count("inline float jacobi2d5pt") == 1

    def test_array_argument_userfun_is_inlined(self):
        lowered = lower_program(build_gaussian(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 32, 32)], "gaussian")
        # The 25 weights are inlined as literal multiplications.
        assert kernel.source.count("*") > 25

    def test_3d_kernel_uses_three_dimensions(self):
        from repro.apps.heat import build_heat

        lowered = lower_program(build_heat(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 16, 16, 16)], "heat")
        assert "get_global_id(2)" in kernel.source
        assert kernel.global_size == (16, 16, 16)


class TestTiledCodegen:
    def test_tiled_kernel_structure(self):
        lowered = lower_program(build_jacobi2d_5pt(), tiled_strategy(6))
        kernel = generate_kernel(lowered, [array(Float, 16, 16)], "jacobi5_tiled")
        assert "get_group_id" in kernel.source
        assert "get_local_id" in kernel.source
        assert "__local float" in kernel.source
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in kernel.source
        assert kernel.local_memory_bytes == 6 * 6 * 4

    def test_tiled_kernel_without_local_memory_has_no_barrier(self):
        lowered = lower_program(
            build_jacobi2d_5pt(), tiled_strategy(6, use_local_memory=False)
        )
        kernel = generate_kernel(lowered, [array(Float, 16, 16)], "jacobi5_tiled")
        assert "barrier" not in kernel.source
        assert kernel.local_memory_bytes == 0

    def test_tiled_kernel_nd_range(self):
        lowered = lower_program(build_jacobi2d_5pt(), tiled_strategy(6))
        kernel = generate_kernel(lowered, [array(Float, 16, 16)], "jacobi5_tiled")
        # padded 18 → 4 tiles of step 4 per dimension, 4 outputs per tile
        assert kernel.local_size == (4, 4)
        assert kernel.global_size == (16, 16)

    def test_metadata_records_strategy(self):
        lowered = lower_program(build_jacobi2d_5pt(), tiled_strategy(6))
        kernel = generate_kernel(lowered, [array(Float, 16, 16)], "k")
        assert kernel.metadata["uses_tiling"] is True
        assert kernel.metadata["ndims"] == 2


class TestCodegenErrors:
    def test_scalar_arguments_rejected(self):
        from repro.core.types import TypeError_

        lowered_like = lower_program(build_jacobi2d_5pt(), NAIVE)
        with pytest.raises((CodegenError, TypeError_)):
            generate_kernel(lowered_like, [Float], "bad")

    def test_kernel_describe_mentions_sizes(self):
        lowered = lower_program(build_jacobi2d_5pt(), NAIVE)
        kernel = generate_kernel(lowered, [array(Float, 16, 16)], "k")
        assert "16x16" in kernel.describe()
