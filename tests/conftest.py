"""Shared pytest fixtures and helpers for the Lift stencil reproduction tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.types import Float
from repro.core.userfuns import add
from repro.runtime.interpreter import evaluate_program


def interpret_to_array(program, inputs, **kwargs):
    """Run the interpreter and convert the (possibly nested) result to NumPy."""
    raw = evaluate_program(program, inputs, **kwargs)
    arr = np.array(raw, dtype=np.float64)
    while arr.ndim > 1 and arr.shape[-1] == 1:
        arr = arr[..., 0]
    return arr


@pytest.fixture
def jacobi3_1d_program():
    """The paper's Listing 2: a 3-point Jacobi summing stencil in 1D."""
    return L.fun(
        [L.array_type(Float, Var("N"))],
        lambda a: L.map(
            lambda nbh: L.reduce(add, 0.0, nbh),
            L.slide(3, 1, L.pad(1, 1, L.CLAMP, a)),
        ),
        names=["A"],
    )


@pytest.fixture
def sum2d_program():
    """A 3x3 box-sum stencil in 2D built from the multi-dimensional wrappers."""
    return L.fun(
        [L.array_type(Float, Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, a, 2), 2),
            2,
        ),
        names=["grid"],
    )


def golden_box_sum_2d(grid: np.ndarray) -> np.ndarray:
    padded = np.pad(grid, 1, mode="edge")
    n, m = grid.shape
    return sum(
        padded[i:i + n, j:j + m] for i in range(3) for j in range(3)
    )


def golden_sum_1d_clamp(data, size=3):
    n = len(data)
    radius = (size - 1) // 2
    out = []
    for i in range(n):
        total = 0.0
        for offset in range(-radius, radius + 1):
            j = min(max(i + offset, 0), n - 1)
            total += data[j]
        out.append(total)
    return out
