"""Tests for the reference interpreter (the correctness oracle)."""

import numpy as np
import pytest

from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.ir import FunCall
from repro.core.types import Float, array
from repro.core.userfuns import add, id_fn, mult
from repro.runtime.interpreter import InterpreterError, evaluate_program

from ..conftest import golden_sum_1d_clamp, interpret_to_array


class TestBasicPrimitives:
    def test_map_applies_function(self):
        program = L.fun([array(Float, Var("N"))],
                        lambda a: L.map(lambda x: FunCall(mult, x, L.lit(2.0)), a))
        assert evaluate_program(program, [[1.0, 2.0, 3.0]]) == [2.0, 4.0, 6.0]

    def test_reduce_sums(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.reduce(add, 0.0, a))
        assert evaluate_program(program, [[1.0, 2.0, 3.0, 4.0]]) == [10.0]

    def test_zip_and_get(self):
        program = L.fun(
            [array(Float, Var("N"))] * 2,
            lambda a, b: L.map(lambda t: FunCall(add, L.get(0, t), L.get(1, t)), L.zip(a, b)),
        )
        assert evaluate_program(program, [[1.0, 2.0], [10.0, 20.0]]) == [11.0, 22.0]

    def test_split_join_roundtrip(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.join(L.split(2, a)))
        data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert evaluate_program(program, [data]) == data

    def test_split_requires_divisible_length(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.split(4, a))
        with pytest.raises(InterpreterError):
            evaluate_program(program, [[1.0, 2.0, 3.0]])

    def test_transpose(self):
        program = L.fun([array(Float, Var("N"), Var("M"))], lambda a: L.transpose(a))
        out = evaluate_program(program, [[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]]])
        assert out == [[1.0, 4.0], [2.0, 5.0], [3.0, 6.0]]

    def test_at_indexing(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.at(2, a))
        assert evaluate_program(program, [[5.0, 6.0, 7.0]]) == 7.0

    def test_iterate_applies_repeatedly(self):
        program = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.iterate(3, lambda arr: L.map(
                lambda x: FunCall(add, x, L.lit(1.0)), arr), a),
        )
        assert evaluate_program(program, [[0.0, 1.0]]) == [3.0, 4.0]

    def test_array_generator(self):
        program = L.fun([], lambda: L.array(4, lambda i, n: float(i * 10)))
        assert evaluate_program(program, []) == [0.0, 10.0, 20.0, 30.0]

    def test_unbound_parameter_raises(self):
        program = L.fun([array(Float, 4)], lambda a: a)
        with pytest.raises(InterpreterError):
            evaluate_program(program, [])


class TestStencilPrimitives:
    def test_pad_clamp(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.pad(2, 1, L.CLAMP, a))
        assert evaluate_program(program, [[1.0, 2.0, 3.0]]) == [1.0, 1.0, 1.0, 2.0, 3.0, 3.0]

    def test_pad_mirror(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.pad(2, 2, L.MIRROR, a))
        assert evaluate_program(program, [[1.0, 2.0, 3.0]]) == [
            2.0, 1.0, 1.0, 2.0, 3.0, 3.0, 2.0,
        ]

    def test_pad_wrap(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.pad(1, 1, L.WRAP, a))
        assert evaluate_program(program, [[1.0, 2.0, 3.0]]) == [3.0, 1.0, 2.0, 3.0, 1.0]

    def test_pad_constant_scalar(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.pad_constant(1, 2, 9.0, a))
        assert evaluate_program(program, [[1.0, 2.0]]) == [9.0, 1.0, 2.0, 9.0, 9.0]

    def test_pad_constant_outer_dimension_appends_rows(self):
        program = L.fun([array(Float, Var("N"), Var("M"))],
                        lambda a: L.pad_constant(1, 1, 0.0, a))
        out = evaluate_program(program, [[[1.0, 2.0], [3.0, 4.0]]])
        assert out == [[0.0, 0.0], [1.0, 2.0], [3.0, 4.0], [0.0, 0.0]]

    def test_slide_windows(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.slide(3, 1, a))
        assert evaluate_program(program, [[0.0, 1.0, 2.0, 3.0]]) == [
            [0.0, 1.0, 2.0],
            [1.0, 2.0, 3.0],
        ]

    def test_slide_with_larger_step(self):
        program = L.fun([array(Float, Var("N"))], lambda a: L.slide(5, 3, a))
        data = [float(i) for i in range(11)]
        out = evaluate_program(program, [data])
        assert out == [[0.0, 1.0, 2.0, 3.0, 4.0], [3.0, 4.0, 5.0, 6.0, 7.0],
                       [6.0, 7.0, 8.0, 9.0, 10.0]]

    def test_listing2_jacobi_semantics(self, jacobi3_1d_program):
        data = [float(i) for i in range(8)]
        out = [v[0] for v in evaluate_program(jacobi3_1d_program, [data])]
        assert out == golden_sum_1d_clamp(data)

    def test_lowered_primitives_interpret_like_high_level(self, jacobi3_1d_program):
        """mapGlb / reduceSeq behave exactly like map / reduce in the interpreter."""
        lowered = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.map_glb(
                lambda nbh: L.reduce_seq(add, 0.0, nbh),
                L.slide(3, 1, L.pad(1, 1, L.CLAMP, a)),
            ),
        )
        data = [3.0, 1.0, 4.0, 1.0, 5.0]
        assert evaluate_program(lowered, [data]) == evaluate_program(
            jacobi3_1d_program, [data]
        )

    def test_to_local_is_semantically_transparent(self):
        program = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.to_local(lambda arr: L.map_lcl(id_fn, arr), a),
        )
        assert evaluate_program(program, [[1.0, 2.0]]) == [1.0, 2.0]


class TestNumpyInterop:
    def test_numpy_inputs_are_accepted(self, sum2d_program):
        grid = np.arange(16, dtype=np.float64).reshape(4, 4)
        out = interpret_to_array(sum2d_program, [grid])
        assert out.shape == (4, 4)

    def test_wrong_input_count_raises(self, sum2d_program):
        with pytest.raises(InterpreterError):
            evaluate_program(sum2d_program, [])
