"""The service's plan-based serving path: caching, bit-identity, stats."""

import numpy as np

from repro.apps.suite import get_benchmark
from repro.service import ExecutionRequest, ServiceClient, StencilService
from repro.service.loadgen import build_requests


def make_client(**kwargs) -> ServiceClient:
    kwargs.setdefault("batch_window", 0.05)
    return ServiceClient(StencilService(**kwargs))


class TestServicePlanPath:
    def test_batched_plan_serving_is_bit_identical_to_generic(self):
        requests = build_requests("hotspot2d", 16, shape=(13, 11),
                                  identical=False, return_result=True)
        with make_client(use_plans=True, crosscheck=True) as client:
            responses = client.execute_many(requests)
            stats = client.stats()
        assert all(response.ok for response in responses)
        # crosscheck re-executes every batched request through the generic
        # backend and requires bit-identity with the plan-path sweep.
        assert stats["service"]["crosschecks_passed"] >= 16
        plan_stats = stats["service"]["plans"]
        assert plan_stats is not None and plan_stats["entries"] >= 1

    def test_plan_reuse_across_batches(self):
        bench = get_benchmark("stencil2d")
        with make_client(use_plans=True) as client:
            for seed in range(3):
                requests = [
                    ExecutionRequest.for_benchmark("stencil2d", shape=(13, 11),
                                                   seed=seed + copy)
                    for copy in range(8)
                ]
                responses = client.execute_many(requests)
                for request, response in zip(requests, responses):
                    expected = bench.run_lift(request.inputs)
                    assert np.array_equal(response.result, expected)
            stats = client.stats()
        plan_stats = stats["service"]["plans"]
        # One batched plan compiled, then reused for the later batches.
        assert plan_stats["misses"] <= 2  # batched (+ possibly single) plan
        assert plan_stats["hits"] >= 1
        # Exactly one kernel compilation across every batch.
        assert stats["compilation_cache"]["misses"] == 1

    def test_plans_disabled_falls_back_to_generic_path(self):
        requests = build_requests("stencil2d", 8, shape=(13, 11),
                                  identical=True, return_result=True)
        with make_client(use_plans=False, crosscheck=True) as client:
            responses = client.execute_many(requests)
            stats = client.stats()
        assert all(response.ok for response in responses)
        assert stats["service"]["plans"] is None

    def test_mixed_shapes_get_separate_plans(self):
        with make_client(use_plans=True) as client:
            small = [ExecutionRequest.for_benchmark("stencil2d", shape=(13, 11),
                                                    seed=s) for s in range(4)]
            large = [ExecutionRequest.for_benchmark("stencil2d", shape=(16, 16),
                                                    seed=s) for s in range(4)]
            responses = client.execute_many(small + large)
            stats = client.stats()
        assert all(response.ok for response in responses)
        assert stats["service"]["plans"]["entries"] >= 2


class TestBatchSizeBucketing:
    def test_variable_batch_sizes_share_bucketed_plans(self):
        # Groups of size 3, 5, 6 all round up to one capacity-8 batched
        # plan (padding slots discarded), so variable load does not pin a
        # resident stacked buffer set per distinct batch size.
        bench = get_benchmark("stencil2d")
        with make_client(use_plans=True, crosscheck=True) as client:
            for size in (3, 5, 6):
                requests = [
                    ExecutionRequest.for_benchmark("stencil2d", shape=(13, 11),
                                                   seed=100 * size + copy)
                    for copy in range(size)
                ]
                responses = client.execute_many(requests)
                for request, response in zip(requests, responses):
                    expected = bench.run_lift(request.inputs)
                    assert np.array_equal(response.result, expected)
            stats = client.stats()
        plan_stats = stats["service"]["plans"]
        batched_misses = plan_stats["misses"]
        assert batched_misses <= 2  # one capacity-8 plan (+ maybe a single)
        assert stats["compilation_cache"]["misses"] == 1
