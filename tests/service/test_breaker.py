"""The digest circuit breaker state machine (injected clock, no sleeping)."""

from __future__ import annotations

from repro.service import DigestCircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _breaker(threshold=3, cooldown_s=5.0):
    clock = FakeClock()
    return DigestCircuitBreaker(threshold=threshold, cooldown_s=cooldown_s,
                                clock=clock), clock


class TestClosedToOpen:
    def test_allows_until_threshold_consecutive_failures(self):
        breaker, _ = _breaker(threshold=3)
        for _ in range(2):
            assert breaker.allow("d")
            breaker.record_failure("d", "plan capture")
        assert breaker.state("d") == "closed"
        breaker.record_failure("d", "plan capture")
        assert breaker.state("d") == "open"
        assert not breaker.allow("d")
        assert breaker.opens == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = _breaker(threshold=2)
        breaker.record_failure("d")
        breaker.record_success("d")
        breaker.record_failure("d")
        assert breaker.state("d") == "closed"
        assert breaker.allow("d")

    def test_digests_are_independent(self):
        breaker, _ = _breaker(threshold=1)
        breaker.record_failure("bad")
        assert not breaker.allow("bad")
        assert breaker.allow("good")


class TestHalfOpenProbe:
    def test_cooldown_admits_exactly_one_probe(self):
        breaker, clock = _breaker(threshold=1, cooldown_s=5.0)
        breaker.record_failure("d")
        assert not breaker.allow("d")
        clock.advance(5.0)
        assert breaker.state("d") == "half_open"
        assert breaker.allow("d")        # the probe
        assert not breaker.allow("d")    # concurrent traffic stays out

    def test_probe_success_closes(self):
        breaker, clock = _breaker(threshold=1, cooldown_s=5.0)
        breaker.record_failure("d")
        clock.advance(5.0)
        assert breaker.allow("d")
        breaker.record_success("d")
        assert breaker.state("d") == "closed"
        assert breaker.allow("d")
        assert breaker.closes == 1
        assert breaker.stats()["digests"] == {}

    def test_probe_failure_reopens_for_another_cooldown(self):
        breaker, clock = _breaker(threshold=1, cooldown_s=5.0)
        breaker.record_failure("d")
        clock.advance(5.0)
        assert breaker.allow("d")
        breaker.record_failure("d", "probe failed")
        assert not breaker.allow("d")
        assert breaker.opens == 2
        clock.advance(4.9)
        assert not breaker.allow("d")
        clock.advance(0.1)
        assert breaker.allow("d")


class TestConfiguration:
    def test_threshold_zero_disables(self):
        breaker, _ = _breaker(threshold=0)
        for _ in range(10):
            breaker.record_failure("d")
        assert breaker.allow("d")
        assert breaker.state("d") == "closed"

    def test_stats_shape(self):
        breaker, _ = _breaker(threshold=1)
        digest = "a" * 64
        breaker.record_failure(digest, "shard dispatch")
        stats = breaker.stats()
        assert stats["opens"] == 1 and stats["closes"] == 0
        row = stats["digests"][digest[:16]]
        assert row["state"] == "open"
        assert row["last_reason"] == "shard dispatch"
        assert breaker.open_count() == 1
