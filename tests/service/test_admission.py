"""Admission control: priorities, deadlines, backpressure, drain, TCP bounds."""

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import ExecutionRequest, ServiceClient, StencilService
from repro.service.requests import (
    ADMISSION_REJECTED,
    DEADLINE_EXCEEDED,
    REQUEST_TOO_LARGE,
    UNAUTHORIZED,
)
from repro.service.server import _PriorityQueues, serve_tcp


def _request(priority="normal", deadline_ms=None, seed=0):
    return ExecutionRequest.for_benchmark(
        "stencil2d", shape=(8, 8), seed=seed, return_result=False,
        priority=priority, deadline_ms=deadline_ms,
    )


class TestPriorityQueues:
    def test_drain_order_high_before_normal_before_batch(self):
        async def run():
            queues = _PriorityQueues()
            service = StencilService()
            order = ["batch", "high", "normal", "batch", "high"]
            for index, priority in enumerate(order):
                pending = service._admit(_request(priority=priority))
                pending.request.size_env["i"] = index  # tag for identity
                queues.put(pending)
            drained = []
            while not queues.empty():
                drained.append(queues.get_nowait().priority)
            return drained

        assert asyncio.run(run()) == ["high", "high", "normal", "batch",
                                      "batch"]

    def test_evict_below_picks_lowest_priority_oldest_first(self):
        async def run():
            queues = _PriorityQueues()
            service = StencilService()
            first_batch = service._admit(_request(priority="batch", seed=1))
            second_batch = service._admit(_request(priority="batch", seed=2))
            normal = service._admit(_request(priority="normal"))
            for item in (normal, first_batch, second_batch):
                queues.put(item)
            victim = queues.evict_below("high")
            assert victim is first_batch  # lowest lane, oldest entry
            assert queues.evict_below("high") is second_batch
            assert queues.evict_below("high") is normal
            assert queues.evict_below("high") is None
            # normal arrivals may only evict batch work
            queues.put(service._admit(_request(priority="normal")))
            assert queues.evict_below("normal") is None
            # and batch arrivals evict nothing
            assert queues.evict_below("batch") is None

        asyncio.run(run())


class TestAdmissionControl:
    """White-box admission checks: no batcher running, nothing drains."""

    @staticmethod
    def _frozen_service(**kwargs):
        service = StencilService(**kwargs)
        service._queues = _PriorityQueues()  # admission without a drain loop
        return service

    @settings(max_examples=25, deadline=None)
    @given(
        fill=st.lists(st.sampled_from(["normal", "batch"]), min_size=0,
                      max_size=8),
        high_count=st.integers(min_value=1, max_value=6),
        depth=st.integers(min_value=1, max_value=6),
    )
    def test_saturated_queue_never_denies_high_while_lower_queued(
            self, fill, high_count, depth):
        """Property (i): high is shed/rejected only once no lower-priority
        work remains queued — a full queue evicts batch/normal instead."""

        async def run():
            service = self._frozen_service(max_queue_depth=depth)
            for index, priority in enumerate(fill):
                pending = service._admit(_request(priority=priority,
                                                  seed=index))
                if service._admission_control(pending) is None:
                    service._queues.put(pending)
            for index in range(high_count):
                lower_queued = (service._queues.depth("normal")
                                + service._queues.depth("batch"))
                pending = service._admit(_request(priority="high",
                                                  seed=100 + index))
                rejection = service._admission_control(pending)
                if rejection is not None:
                    # A high-priority denial is legal only with no
                    # lower-priority work left to evict.
                    assert lower_queued == 0, (
                        f"high rejected while {lower_queued} lower-priority "
                        f"requests were queued"
                    )
                    assert rejection.rejected
                    assert rejection.retry_after_ms is not None
                else:
                    service._queues.put(pending)
            assert service.sheds["high"] == 0

        asyncio.run(run())

    def test_queue_full_rejects_equal_priority_with_retry_hint(self):
        async def run():
            service = self._frozen_service(max_queue_depth=2)
            for seed in range(2):
                pending = service._admit(_request(seed=seed))
                assert service._admission_control(pending) is None
                service._queues.put(pending)
            overflow = service._admit(_request(seed=9))
            rejection = service._admission_control(overflow)
            assert rejection is not None and rejection.rejected
            assert rejection.code == ADMISSION_REJECTED
            assert rejection.retry_after_ms > 0
            assert service.rejects == {"queue_full": 1}

        asyncio.run(run())

    def test_eviction_answers_the_victim_not_the_arrival(self):
        async def run():
            service = self._frozen_service(max_queue_depth=1)
            victim = service._admit(_request(priority="batch"))
            assert service._admission_control(victim) is None
            service._queues.put(victim)
            arrival = service._admit(_request(priority="high"))
            assert service._admission_control(arrival) is None  # admitted
            assert victim.future.done()
            evicted = victim.future.result()
            assert evicted.rejected and "evicted" in evicted.error
            assert service.rejects == {"evicted": 1}

        asyncio.run(run())

    def test_per_digest_inflight_limit(self):
        async def run():
            service = self._frozen_service(max_inflight_per_digest=2)
            for seed in range(2):
                pending = service._admit(_request(seed=seed))
                assert service._admission_control(pending) is None
                service._track_inflight(pending)
                service._queues.put(pending)
            third = service._admit(_request(seed=3))
            rejection = service._admission_control(third)
            assert rejection is not None and rejection.rejected
            assert service.rejects == {"digest_limit": 1}

        asyncio.run(run())

    def test_dead_on_arrival_deadline_is_shed_not_queued(self):
        async def run():
            service = self._frozen_service()
            pending = service._admit(_request(deadline_ms=0.0001))
            await asyncio.sleep(0.001)
            shed = service._admission_control(pending)
            assert shed is not None and shed.shed
            assert shed.code == DEADLINE_EXCEEDED
            assert service._queues.empty()
            assert service.sheds["normal"] == 1

        asyncio.run(run())


class TestDeadlinesEndToEnd:
    @settings(max_examples=10, deadline=None)
    @given(
        pattern=st.lists(st.booleans(), min_size=1, max_size=6),
    )
    def test_expired_requests_are_never_executed(self, pattern):
        """Property (ii): a shed response implies the request did not run —
        requests_served counts exactly the ok responses."""
        requests = [
            _request(deadline_ms=0.0001 if expired else None, seed=index)
            for index, expired in enumerate(pattern)
        ]
        with ServiceClient(StencilService(batch_window=0.01)) as client:
            responses = client.execute_many(requests, raise_on_error=False)
            stats = client.stats()
        served = stats["service"]["requests_served"]
        assert served == sum(1 for response in responses if response.ok)
        for expired, response in zip(pattern, responses):
            if expired:
                assert response.shed
                assert response.code == DEADLINE_EXCEEDED
                assert response.result is None
            else:
                assert response.ok

    def test_shed_response_carries_structured_form(self):
        with ServiceClient(StencilService(batch_window=0.01)) as client:
            response = client.execute(_request(deadline_ms=0.0001),
                                      raise_on_error=False)
        assert response.shed and not response.ok
        assert response.code == DEADLINE_EXCEEDED
        assert "deadline" in response.error

    def test_mixed_saturation_serves_high_within_tail_bound(self):
        """The acceptance shape: saturating mixed stream with deadlines —
        batch work is pushed back while every high request is served, with
        its p99 within 2x of the unloaded p99."""
        from repro.service.loadgen import run_mixed_loadgen

        report = run_mixed_loadgen(
            benchmark="stencil2d", requests=48,
            mix={"high": 1, "normal": 4, "batch": 3},
            shape=(8, 8), deadline_ms=5_000.0, window_ms=10.0, max_batch=4,
            max_queue_depth=10,
        )
        high = report["per_priority"]["high"]
        assert high["shed"] == 0 and high["rejected"] == 0
        assert high["served"] == high["requests"]
        assert report["sheds_total"] + report["rejects_total"] > 0, (
            "the run did not saturate admission at all"
        )
        batch = report["per_priority"]["batch"]
        assert batch["shed"] + batch["rejected"] > 0
        assert report["high_p99_ratio"] is not None
        assert report["high_p99_ratio"] <= 2.0


class TestDrainShedding:
    def test_shed_queued_answers_everything_in_band(self):
        async def run():
            service = StencilService()
            service._queues = _PriorityQueues()
            queued = []
            for priority in ("high", "normal", "batch"):
                pending = service._admit(_request(priority=priority))
                service._queues.put(pending)
                queued.append(pending)
            shed = service.shed_queued("shutdown drain deadline reached")
            assert shed == 3
            for pending in queued:
                response = pending.future.result()
                assert response.code == DEADLINE_EXCEEDED
                assert "drain" in response.error
            assert service._queues.empty()

        asyncio.run(run())


class TestTcpBoundsAndAuth:
    @staticmethod
    async def _roundtrip_lines(port, lines):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        replies = []
        for line in lines:
            writer.write(line)
            await writer.drain()
            raw = await reader.readline()
            if not raw:
                break
            replies.append(json.loads(raw))
        writer.close()
        return replies

    def test_oversized_line_gets_in_band_error(self):
        async def run():
            async with StencilService(batch_window=0.01) as service:
                server = await serve_tcp(service, "127.0.0.1", 0,
                                         max_request_bytes=4096)
                port = server.sockets[0].getsockname()[1]
                async with server:
                    huge = (b'{"benchmark": "stencil2d", "pad": "'
                            + b"x" * 8192 + b'"}\n')
                    replies = await self._roundtrip_lines(port, [huge])
            assert len(replies) == 1
            assert replies[0]["ok"] is False
            assert replies[0]["code"] == REQUEST_TOO_LARGE

        asyncio.run(run())

    def test_auth_key_required_and_ping_exempt(self):
        async def run():
            async with StencilService(batch_window=0.01) as service:
                server = await serve_tcp(service, "127.0.0.1", 0,
                                         auth_key="sekrit")
                port = server.sockets[0].getsockname()[1]
                async with server:
                    wire = ExecutionRequest.for_benchmark(
                        "stencil2d", shape=(8, 8), return_result=False
                    ).to_wire()
                    unauthed = dict(wire)
                    authed = dict(wire, auth="sekrit")
                    replies = await self._roundtrip_lines(port, [
                        (json.dumps({"op": "ping"}) + "\n").encode(),
                        (json.dumps(unauthed) + "\n").encode(),
                        (json.dumps(authed) + "\n").encode(),
                    ])
            ping, denied, accepted = replies
            assert ping["ok"] and ping["pong"]
            assert denied["ok"] is False
            assert denied["code"] == UNAUTHORIZED
            assert accepted["ok"] is True

        asyncio.run(run())


class TestAdmissionStats:
    def test_admission_section_in_service_stats(self):
        with ServiceClient(StencilService(max_queue_depth=4,
                                          max_inflight_per_digest=8)) as client:
            client.execute(_request())
            stats = client.stats()
        admission = stats["service"]["admission"]
        assert admission["max_queue_depth"] == 4
        assert admission["max_inflight_per_digest"] == 8
        assert set(admission["queue_depth"]) == {"high", "normal", "batch"}
        assert admission["sheds"] == {"high": 0, "normal": 0, "batch": 0}
        assert admission["rejects"] == {}
