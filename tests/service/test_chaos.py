"""Chaos loadgen plumbing: spec parsing, the contract check, formatting.

The end-to-end run (real signals, real respawns) lives in
``tests/service/test_supervisor.py`` and the CI ``chaos-smoke`` job; these
are the cheap process-free pieces.
"""

from __future__ import annotations

import pytest

from repro.service import check_chaos, format_chaos_loadgen, parse_chaos


def _report(**overrides):
    report = {
        "benchmark": "stencil2d", "mode": "in-process", "shards": 2,
        "requests": 100, "served": 100, "failed": 0, "lost": 0,
        "shed": 0, "rejected": 0, "high_p99_ms": 4.2, "wall_s": 6.0,
        "chaos": [{"action": "kill-shard", "t": 2.0, "shard": 0,
                   "pid": 123, "requests_at_event": 40}],
        "shard_restarts": 1, "shard_redispatches": 1,
        "shard_requests": [55, 45], "recovered": True,
    }
    report.update(overrides)
    return report


class TestParseChaos:
    def test_events_sorted_by_time_with_defaults(self):
        events = parse_chaos("hang-shard:t=4,kill-shard:t=2:shard=1")
        assert [e["action"] for e in events] == ["kill-shard", "hang-shard"]
        assert events[0]["t"] == 2.0 and events[0]["shard"] == 1
        assert events[1]["shard"] is None  # victim picked at runtime

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            parse_chaos("corrupt-shard:t=1")

    def test_unknown_qualifier_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos qualifier"):
            parse_chaos("kill-shard:when=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_chaos("kill-shard:t=soon")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty chaos spec"):
            parse_chaos(" , ")


class TestCheckChaos:
    def test_clean_report_passes(self):
        assert check_chaos(_report()) == []

    def test_failed_or_lost_requests_fail_the_gate(self):
        assert any("failed" in p for p in check_chaos(_report(failed=2)))
        assert any("lost" in p for p in check_chaos(_report(lost=1)))

    def test_missing_restarts_fail_the_gate(self):
        problems = check_chaos(_report(shard_restarts=0))
        assert any("restart" in p for p in problems)

    def test_unrecovered_fleet_fails_the_gate(self):
        problems = check_chaos(_report(recovered=False))
        assert any("recover" in p for p in problems)

    def test_optional_p99_bound(self):
        assert check_chaos(_report(), p99_ms=10.0) == []
        problems = check_chaos(_report(high_p99_ms=50.0), p99_ms=10.0)
        assert any("p99" in p for p in problems)


class TestFormatChaos:
    def test_format_includes_the_healing_line(self):
        text = format_chaos_loadgen(_report())
        assert "shard_restarts=1" in text
        assert "failed=0" in text
        assert "kill-shard shard 0" in text
