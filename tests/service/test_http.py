"""The HTTP endpoint: wire codec, transport parity with TCP, status codes."""

import asyncio
import http.client
import json
import threading

import numpy as np
import pytest

from repro.apps.suite import execution_requests
from repro.client import ClientConfig, StencilClient
from repro.service import ExecutionRequest, StencilService, serve_http, serve_tcp
from repro.service.requests import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    REQUEST_TOO_LARGE,
    UNAUTHORIZED,
)
from repro.service.wire import (
    CONTENT_TYPE_GRIDS,
    WireFormatError,
    decode_grid_payload,
    encode_grid_payload,
    iter_chunks,
    payload_length,
)

AUTH_KEY = "test-http-key"


class TestWireCodec:
    def test_round_trip_preserves_bits_and_meta(self):
        rng = np.random.default_rng(7)
        grids = [rng.random((5, 7)), rng.random((3, 4, 2))]
        meta = {"benchmark": "stencil2d", "priority": "high", "steps": 3}
        prefix, buffers = encode_grid_payload(meta, grids)
        body = prefix + b"".join(buffers)
        assert payload_length(prefix, buffers) == len(body)
        decoded_meta, decoded = decode_grid_payload(body)
        assert decoded_meta == meta
        assert len(decoded) == 2
        for original, copy in zip(grids, decoded):
            assert copy.shape == original.shape
            assert copy.dtype == original.dtype
            assert copy.tobytes() == original.tobytes()
            assert copy.flags.writeable

    def test_iter_chunks_reassembles_exactly_and_bounds_chunks(self):
        grids = [np.arange(1000, dtype=np.float64).reshape(25, 40)]
        prefix, buffers = encode_grid_payload({"benchmark": "x"}, grids)
        chunks = list(iter_chunks(prefix, buffers, chunk_bytes=512))
        assert all(len(chunk) <= 512 for chunk in chunks)
        assert len(chunks) > 1  # an 8000-byte grid must actually be split
        assert b"".join(chunks) == prefix + b"".join(buffers)

    def test_bad_magic_and_truncation_raise(self):
        prefix, buffers = encode_grid_payload(
            {}, [np.ones((2, 2))]
        )
        body = prefix + b"".join(buffers)
        with pytest.raises(WireFormatError):
            decode_grid_payload(b"NOPE" + body[4:])
        with pytest.raises(WireFormatError):
            decode_grid_payload(body[:-3])
        with pytest.raises(WireFormatError):
            decode_grid_payload(body + b"\x00")


@pytest.fixture(scope="module")
def live_server():
    """One service exposed over both transports with shared-key auth."""
    started = threading.Event()
    holder = {}

    def serve():
        async def main():
            service = StencilService(batch_window=0.01)
            async with service:
                tcp = await serve_tcp(service, "127.0.0.1", 0,
                                      auth_key=AUTH_KEY)
                web = await serve_http(service, "127.0.0.1", 0,
                                       auth_key=AUTH_KEY,
                                       max_request_bytes=1024 * 1024)
                holder["tcp_port"] = tcp.sockets[0].getsockname()[1]
                holder["http_port"] = web.sockets[0].getsockname()[1]
                async with tcp:
                    started.set()
                    await holder["stop"]
                web.close()
                await web.wait_closed()
                await asyncio.sleep(0.05)

        loop = asyncio.new_event_loop()
        holder["loop"] = loop
        holder["stop"] = loop.create_future()
        loop.run_until_complete(main())
        loop.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(10)
    yield holder
    holder["loop"].call_soon_threadsafe(holder["stop"].set_result, None)
    thread.join(timeout=10)


def _raw_http(holder, method, path, body=b"", headers=None):
    """One raw request, returning (status, headers dict, body bytes)."""
    conn = http.client.HTTPConnection("127.0.0.1", holder["http_port"],
                                      timeout=10)
    try:
        conn.request(method, path, body=body, headers=dict(headers or {}))
        response = conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


def _auth_headers(extra=None):
    headers = {"Authorization": f"Bearer {AUTH_KEY}",
               "Content-Type": "application/json"}
    headers.update(extra or {})
    return headers


class TestTransportParity:
    def test_http_and_tcp_results_are_bit_identical_for_the_suite(
            self, live_server):
        """Property (iii): every benchmark's grid is bit-identical over
        HTTP (binary body both ways) and TCP (JSON lists both ways)."""
        http_client = StencilClient(ClientConfig(
            port=live_server["http_port"], transport="http",
            auth_key=AUTH_KEY, binary_threshold_bytes=0,  # force binary
        ))
        tcp_client = StencilClient(ClientConfig(
            port=live_server["tcp_port"], transport="tcp", auth_key=AUTH_KEY,
        ))
        checked = 0
        with http_client, tcp_client:
            for request in execution_requests():
                over_http = http_client.execute(request)
                over_tcp = tcp_client.execute(request)
                assert over_http.ok, over_http.error
                assert over_tcp.ok, over_tcp.error
                assert over_http.result is not None
                assert over_http.result.dtype == over_tcp.result.dtype
                assert over_http.result.shape == over_tcp.result.shape
                assert (over_http.result.tobytes()
                        == over_tcp.result.tobytes()), (
                    f"{request.benchmark}: HTTP and TCP grids differ"
                )
                checked += 1
        assert checked >= 6  # the whole suite, not a subset

    def test_json_body_and_binary_body_agree(self, live_server):
        request = ExecutionRequest.for_benchmark("jacobi2d5pt",
                                                 shape=(12, 10), seed=5)
        json_client = StencilClient(ClientConfig(
            port=live_server["http_port"], transport="http",
            auth_key=AUTH_KEY, binary_threshold_bytes=1 << 30,  # force JSON
        ))
        binary_client = StencilClient(ClientConfig(
            port=live_server["http_port"], transport="http",
            auth_key=AUTH_KEY, binary_threshold_bytes=0,
        ))
        with json_client, binary_client:
            via_json = json_client.execute(request)
            via_binary = binary_client.execute(request)
        assert via_json.ok and via_binary.ok
        assert via_json.result.tobytes() == via_binary.result.tobytes()

    def test_iterate_runs_steps_and_matches_over_both_transports(
            self, live_server):
        request = ExecutionRequest.for_benchmark("jacobi2d5pt",
                                                 shape=(10, 9), seed=2)
        with StencilClient(ClientConfig(
            port=live_server["http_port"], transport="http",
            auth_key=AUTH_KEY,
        )) as client:
            one = client.execute(ExecutionRequest.for_benchmark(
                "jacobi2d5pt", shape=(10, 9), seed=2))
            stepped = client.iterate(request, steps=4)
        assert stepped.ok, stepped.error
        assert stepped.result.shape == one.result.shape
        assert stepped.result.tobytes() != one.result.tobytes()
        with StencilClient(ClientConfig(
            port=live_server["tcp_port"], transport="tcp", auth_key=AUTH_KEY,
        )) as tcp_client:
            tcp_stepped = tcp_client.iterate(
                ExecutionRequest.for_benchmark("jacobi2d5pt", shape=(10, 9),
                                               seed=2),
                steps=4,
            )
        assert tcp_stepped.ok, tcp_stepped.error
        assert tcp_stepped.result.tobytes() == stepped.result.tobytes()

    def test_ping_and_stats_over_http(self, live_server):
        with StencilClient(ClientConfig(
            port=live_server["http_port"], transport="http",
            auth_key=AUTH_KEY,
        )) as client:
            assert client.ping()
            assert client.stats() is None  # HTTP does not expose op=stats
        with StencilClient(ClientConfig(
            port=live_server["tcp_port"], transport="tcp", auth_key=AUTH_KEY,
        )) as tcp_client:
            stats = tcp_client.stats()
        assert stats["service"]["requests_served"] >= 1


class TestStatusMapping:
    @staticmethod
    def _wire(**kwargs):
        request = ExecutionRequest.for_benchmark(
            "stencil2d", shape=(6, 6), **kwargs)
        return json.dumps(request.to_wire()).encode()

    def test_healthz_needs_no_auth(self, live_server):
        status, _, body = _raw_http(live_server, "GET", "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_missing_or_wrong_auth_is_401(self, live_server):
        status, _, body = _raw_http(
            live_server, "POST", "/v1/execute", body=self._wire(),
            headers={"Content-Type": "application/json"})
        assert status == 401
        assert json.loads(body)["code"] == UNAUTHORIZED
        status, _, body = _raw_http(
            live_server, "POST", "/v1/execute", body=self._wire(),
            headers=_auth_headers({"Authorization": "Bearer wrong"}))
        assert status == 401

    def test_expired_deadline_is_504_with_structured_body(self, live_server):
        status, _, body = _raw_http(
            live_server, "POST", "/v1/execute",
            body=self._wire(deadline_ms=0.0001),
            headers=_auth_headers())
        assert status == 504
        decoded = json.loads(body)
        assert decoded["ok"] is False
        assert decoded["code"] == DEADLINE_EXCEEDED

    def test_malformed_json_is_400(self, live_server):
        status, _, body = _raw_http(
            live_server, "POST", "/v1/execute", body=b"{nope",
            headers=_auth_headers())
        assert status == 400
        assert json.loads(body)["code"] == BAD_REQUEST

    def test_iterate_without_steps_is_400(self, live_server):
        status, _, body = _raw_http(
            live_server, "POST", "/v1/iterate", body=self._wire(),
            headers=_auth_headers())
        assert status == 400
        assert json.loads(body)["code"] == BAD_REQUEST

    def test_unknown_path_is_404(self, live_server):
        status, _, _ = _raw_http(live_server, "GET", "/v1/nope",
                                 headers=_auth_headers())
        assert status == 404

    def test_oversized_body_is_413(self, live_server):
        status, _, body = _raw_http(
            live_server, "POST", "/v1/execute", body=b"x" * 16,
            headers=_auth_headers({"Content-Length": str(64 * 1024 * 1024)}))
        assert status == 413
        assert json.loads(body)["code"] == REQUEST_TOO_LARGE

    def test_binary_garbage_is_400(self, live_server):
        status, _, body = _raw_http(
            live_server, "POST", "/v1/execute", body=b"NOTAGRIDPAYLOAD",
            headers=_auth_headers({"Content-Type": CONTENT_TYPE_GRIDS}))
        assert status == 400
        assert json.loads(body)["code"] == BAD_REQUEST
