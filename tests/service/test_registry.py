"""Tuned-kernel registry + store lookup API: digest routing, fallbacks."""

import pytest

from repro.engine import ResultsStore
from repro.engine.jobs import EvaluationJob, VariantSpec, config_items
from repro.service import TunedKernelRegistry
from repro.apps.suite import get_benchmark


def stored_best(store, benchmark="Stencil2D", tile=18, cost=1e-5,
                device="nvidia", digest="d" * 64, name="tiled"):
    job = EvaluationJob(
        benchmark=benchmark,
        shape=(64, 64),
        device=device,
        variant=VariantSpec(name=name, use_tiling=(name == "tiled"),
                            tile_size=tile, use_local_memory=(name == "tiled"),
                            unroll_reduce=True),
        config=config_items({"wg_x": 16, "wg_y": 16, "work_per_thread": 1}),
        expr_digest=digest,
    )
    store.put(job, cost)
    return job


class TestStoreLookupAPI:
    def test_best_for_digest(self, tmp_path):
        with ResultsStore(str(tmp_path / "s.sqlite")) as store:
            stored_best(store, digest="a" * 64, cost=2e-5, tile=18)
            stored_best(store, digest="a" * 64, cost=1e-5, tile=34)
            stored_best(store, digest="b" * 64, cost=5e-6, tile=10)
            best = store.best_for_digest("a" * 64)
            assert best is not None and best.variant.tile_size == 34
            assert store.best_for_digest("a" * 64, device="amd") is None
            assert store.best_for_digest("c" * 64) is None

    def test_best_per_benchmark_and_benchmarks(self, tmp_path):
        with ResultsStore(str(tmp_path / "s.sqlite")) as store:
            stored_best(store, benchmark="Stencil2D", cost=2e-5, tile=18)
            stored_best(store, benchmark="Stencil2D", cost=1e-5, tile=34)
            stored_best(store, benchmark="Gaussian", cost=9e-6, tile=10)
            best = store.best_per_benchmark()
            assert set(best) == {"Stencil2D", "Gaussian"}
            assert best["Stencil2D"].variant.tile_size == 34
            assert store.benchmarks() == ["Gaussian", "Stencil2D"]


class TestRegistryRouting:
    def test_cold_digest_gets_default_plan(self):
        registry = TunedKernelRegistry(store=None)
        plan = registry.plan_for(benchmark="stencil2d")
        assert plan.tuned is None
        assert plan.source == "default"
        program, variant, source = plan.program_for((16, 16))
        assert source == "default" and "naive" in variant

    def test_plan_is_cached_per_digest(self):
        registry = TunedKernelRegistry(store=None)
        first = registry.plan_for(benchmark="stencil2d")
        second = registry.plan_for(benchmark="stencil2d")
        assert first is second
        assert registry.stats()["plans_cached"] == 1

    def test_program_request_routes_to_benchmark_plan(self):
        registry = TunedKernelRegistry(store=None)
        by_name = registry.plan_for(benchmark="stencil2d")
        program = get_benchmark("stencil2d").build_program()
        by_program = registry.plan_for(program=program)
        assert by_program is by_name
        assert by_program.benchmark == "stencil2d"

    def test_tuned_variant_is_applied(self, tmp_path):
        store = ResultsStore(str(tmp_path / "s.sqlite"))
        stored_best(store, benchmark="Stencil2D", tile=18)
        registry = TunedKernelRegistry(store=store)
        plan = registry.plan_for(benchmark="stencil2d")
        assert plan.tuned is not None and plan.source == "tuned"
        # tile 18, window 3, step 1: v = 16, radius 1; 16+2 == 18 covers.
        program, variant, source = plan.program_for((16, 16))
        assert source == "tuned" and "tile=18" in variant
        # 24+2 = 26; (26-18) % 16 != 0: tiling does not cover, fall back.
        program, variant, source = plan.program_for((24, 24))
        assert source == "fallback" and "naive" in variant
        store.close()

    def test_refresh_picks_up_new_results(self, tmp_path):
        store = ResultsStore(str(tmp_path / "s.sqlite"))
        registry = TunedKernelRegistry(store=store)
        plan = registry.plan_for(benchmark="stencil2d")
        assert plan.tuned is None
        stored_best(store, benchmark="Stencil2D", tile=18)
        refreshed = registry.refresh(plan.digest)
        assert refreshed is not None and refreshed.tuned is not None
        assert registry.plan_for(benchmark="stencil2d").source == "tuned"
        store.close()

    def test_unknown_program_recalls_stored_lowered_digest(self, tmp_path):
        from repro.core import builders as L
        from repro.core.arithmetic import Var
        from repro.core.ir import structural_digest
        from repro.core.types import Float
        from repro.core.userfuns import add
        from repro.rewriting.strategies import NAIVE, lower_program

        program = L.fun(
            [L.array_type(Float, Var("N"))],
            lambda a: L.map(lambda nbh: L.reduce(add, 0.0, nbh),
                            L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))),
        )
        lowered_digest = structural_digest(lower_program(program, NAIVE).program)
        store = ResultsStore(str(tmp_path / "s.sqlite"))
        stored_best(store, benchmark="custom-1d", name="naive",
                    tile=0, digest=lowered_digest)
        registry = TunedKernelRegistry(store=store)
        plan = registry.plan_for(program=program)
        assert plan.benchmark is None
        assert plan.tuned is not None and plan.source == "tuned"
        assert plan.tuned_config == {"wg_x": 16, "wg_y": 16,
                                     "work_per_thread": 1}
        store.close()

    def test_requires_benchmark_or_program(self):
        from repro.service import ServiceError

        registry = TunedKernelRegistry(store=None)
        with pytest.raises(ServiceError):
            registry.plan_for()


class TestGenerationInvalidation:
    """Mid-flight store improvements reach serving without explicit refresh."""

    def test_store_generation_advances_on_writes(self, tmp_path):
        with ResultsStore(str(tmp_path / "s.sqlite")) as store:
            assert store.generation() == 0
            stored_best(store, cost=2e-5, tile=18)
            first = store.generation()
            assert first > 0
            stored_best(store, cost=1e-5, tile=34, digest="e" * 64)
            assert store.generation() > first

    def test_better_result_mid_flight_invalidates_cached_plans(self, tmp_path):
        store = ResultsStore(str(tmp_path / "s.sqlite"))
        registry = TunedKernelRegistry(store=store, poll_interval=0.0)
        plan = registry.plan_for(benchmark="stencil2d")
        assert plan.tuned is None  # cold store: default lowering

        # A tune session lands a result while the registry keeps serving.
        stored_best(store, benchmark="Stencil2D", tile=18)
        refreshed = registry.plan_for(benchmark="stencil2d")
        assert refreshed is not plan
        assert refreshed.tuned is not None and refreshed.source == "tuned"
        assert registry.stats()["invalidations"] >= 1
        store.close()

    def test_improvement_from_another_connection_is_noticed(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        store = ResultsStore(path)
        stored_best(store, benchmark="Stencil2D", tile=18, cost=1e-4)
        registry = TunedKernelRegistry(store=store, poll_interval=0.0)
        plan = registry.plan_for(benchmark="stencil2d")
        assert plan.tuned_config is not None

        # A second connection (e.g. a background tune worker) writes a
        # strictly better configuration for the same benchmark.
        with ResultsStore(path) as other:
            stored_best(other, benchmark="Stencil2D", tile=34, cost=1e-6)
        updated = registry.plan_for(benchmark="stencil2d")
        assert updated.tuned is not None
        assert updated.tuned_cost == pytest.approx(1e-6)
        store.close()

    def test_poll_interval_throttles_store_queries(self, tmp_path):
        store = ResultsStore(str(tmp_path / "s.sqlite"))
        registry = TunedKernelRegistry(store=store, poll_interval=3600.0)
        plan = registry.plan_for(benchmark="stencil2d")
        stored_best(store, benchmark="Stencil2D", tile=18)
        # Inside the poll window the cached plan keeps serving untouched...
        assert registry.plan_for(benchmark="stencil2d") is plan
        # ...and an explicit refresh still applies the improvement at once.
        registry.refresh(plan.digest)
        assert registry.plan_for(benchmark="stencil2d").tuned is not None
        store.close()

    def test_unrelated_store_write_does_not_rebuild_plans(self, tmp_path):
        store = ResultsStore(str(tmp_path / "s.sqlite"))
        stored_best(store, benchmark="Stencil2D", tile=18, cost=1e-4)
        registry = TunedKernelRegistry(store=store, poll_interval=0.0)
        plan = registry.plan_for(benchmark="stencil2d")
        # A tune for a *different* benchmark advances the generation…
        stored_best(store, benchmark="Gaussian", tile=10, cost=5e-6,
                    digest="f" * 64)
        # …but stencil2d's best is unchanged: same plan object, no rebuild.
        assert registry.plan_for(benchmark="stencil2d") is plan
        assert registry.stats()["invalidations"] == 0
        store.close()

    def test_worse_result_does_not_rebuild_plans(self, tmp_path):
        store = ResultsStore(str(tmp_path / "s.sqlite"))
        stored_best(store, benchmark="Stencil2D", tile=18, cost=1e-6)
        registry = TunedKernelRegistry(store=store, poll_interval=0.0)
        plan = registry.plan_for(benchmark="stencil2d")
        stored_best(store, benchmark="Stencil2D", tile=34, cost=1e-3,
                    digest="f" * 64)  # strictly worse: best is unchanged
        assert registry.plan_for(benchmark="stencil2d") is plan
        assert registry.stats()["invalidations"] == 0
        store.close()
