"""The execution service: batching, bit-identity, stats, TCP endpoint."""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.apps.suite import execution_requests, get_benchmark
from repro.backend.numpy_backend import compile_program
from repro.rewriting.strategies import NAIVE, lower_program
from repro.service import (
    ExecutionRequest,
    ServiceClient,
    StencilService,
    serve_tcp,
)
from repro.service.loadgen import build_requests


def make_client(**kwargs) -> ServiceClient:
    kwargs.setdefault("batch_window", 0.05)
    return ServiceClient(StencilService(**kwargs))


class TestBatchedKernel:
    @pytest.mark.parametrize("key", ["stencil2d", "hotspot2d", "jacobi3d7pt"])
    def test_run_batched_bit_identical(self, key):
        benchmark = get_benchmark(key)
        shape = (12, 10) if benchmark.ndims == 2 else (6, 7, 8)
        kernel = compile_program(
            lower_program(benchmark.build_program(), NAIVE).program
        )
        singles = [benchmark.make_inputs(shape, seed) for seed in range(6)]
        stacked = [
            np.stack([inputs[i] for inputs in singles])
            for i in range(len(singles[0]))
        ]
        swept = kernel.run_batched(stacked)
        for index, inputs in enumerate(singles):
            np.testing.assert_array_equal(swept[index], kernel(inputs))

    def test_batch_extent_mismatch_raises(self):
        from repro.backend.numpy_backend import ExecutionError

        benchmark = get_benchmark("hotspot2d")
        kernel = compile_program(
            lower_program(benchmark.build_program(), NAIVE).program
        )
        grids = benchmark.make_inputs((8, 8), 0)
        with pytest.raises(ExecutionError):
            kernel.run_batched(
                [np.stack([grids[0]] * 3), np.stack([grids[1]] * 2)]
            )


class TestServiceBatching:
    def test_identical_requests_form_one_batch_one_compile(self):
        with make_client() as client:
            requests = build_requests("stencil2d", 32, shape=(13, 11),
                                      identical=True, return_result=True)
            responses = client.execute_many(requests)
            stats = client.stats()
        assert all(response.ok for response in responses)
        assert all(response.batch_size == 32 for response in responses)
        assert all(response.batched for response in responses)
        service = stats["service"]
        assert service["requests_served"] == 32
        assert service["batches_formed"] < service["requests_served"]
        assert stats["compilation_cache"]["misses"] == 1

    def test_batched_result_matches_single_request(self):
        request = ExecutionRequest.for_benchmark("stencil2d", shape=(13, 11),
                                                 seed=5)
        with make_client() as client:
            solo = client.execute(request)
        with make_client() as client:
            copies = [
                ExecutionRequest(
                    inputs=[np.array(g) for g in request.inputs],
                    benchmark="stencil2d",
                )
                for _ in range(8)
            ]
            batched = client.execute_many(copies)
        for response in batched:
            assert response.batched
            np.testing.assert_array_equal(response.result, solo.result)

    def test_crosscheck_mode_accepts_batched_execution(self):
        with make_client(crosscheck=True) as client:
            requests = build_requests("jacobi2d5pt", 6, shape=(9, 8),
                                      identical=False, return_result=True)
            responses = client.execute_many(requests)
            stats = client.stats()
        assert all(response.ok for response in responses)
        assert stats["service"]["crosschecks_passed"] >= 6
        reference = get_benchmark("jacobi2d5pt").run_reference(
            requests[0].inputs
        )
        np.testing.assert_allclose(responses[0].result, reference,
                                   rtol=1e-6, atol=1e-9)

    def test_mixed_shapes_batch_separately_and_stay_correct(self):
        with make_client() as client:
            small = build_requests("stencil2d", 4, shape=(9, 8),
                                   identical=True, return_result=True)
            large = build_requests("stencil2d", 4, shape=(13, 11),
                                   identical=True, return_result=True)
            responses = client.execute_many(small + large)
        for response, request in zip(responses, small + large):
            assert response.ok
            assert response.result.shape == request.inputs[0].shape
            reference = get_benchmark("stencil2d").run_reference(request.inputs)
            np.testing.assert_allclose(response.result, reference, rtol=1e-6)

    def test_serialized_program_request_shares_the_hot_batch(self):
        benchmark = get_benchmark("stencil2d")
        program = benchmark.build_program()
        inputs = benchmark.make_inputs((9, 8), 11)
        with make_client() as client:
            by_name = [
                ExecutionRequest(
                    inputs=[np.array(g) for g in inputs],
                    benchmark="stencil2d",
                )
                for _ in range(3)
            ]
            by_program = ExecutionRequest.for_program(
                program, [np.array(g) for g in inputs]
            )
            responses = client.execute_many(by_name + [by_program])
            stats = client.stats()
        digests = {response.digest for response in responses}
        assert len(digests) == 1  # program request routed to the same digest
        assert all(response.batch_size == 4 for response in responses)
        assert stats["compilation_cache"]["misses"] == 1

    def test_bad_request_is_answered_in_band(self):
        with make_client() as client:
            good = ExecutionRequest.for_benchmark("stencil2d", shape=(9, 8))
            bad = ExecutionRequest.for_benchmark("stencil2d", shape=(9, 8))
            bad.benchmark = "no_such_benchmark"
            responses = client.execute_many([good, bad],
                                            raise_on_error=False)
        assert responses[0].ok
        assert not responses[1].ok and "no_such_benchmark" in responses[1].error

    def test_cancelled_submit_does_not_kill_the_batcher(self):
        async def scenario():
            service = StencilService(batch_window=0.1)
            await service.start()
            request = ExecutionRequest.for_benchmark("stencil2d", shape=(9, 8))
            with pytest.raises(asyncio.TimeoutError):
                # The caller gives up mid-window, cancelling its future.
                await asyncio.wait_for(service.submit(request), 0.01)
            # The serving loop must survive and answer later requests.
            response = await asyncio.wait_for(
                service.submit(
                    ExecutionRequest.for_benchmark("stencil2d", shape=(9, 8))
                ),
                10,
            )
            assert response.ok
            await service.stop()

        asyncio.run(scenario())

    def test_stop_fails_pending_requests_in_band(self):
        async def scenario():
            service = StencilService(batch_window=30.0)  # never flushes
            await service.start()
            request = ExecutionRequest.for_benchmark("stencil2d", shape=(9, 8))
            submitted = asyncio.ensure_future(service.submit(request))
            await asyncio.sleep(0.05)  # admitted, sitting in the batch window
            await service.stop()
            response = await asyncio.wait_for(submitted, 5)
            assert not response.ok and "stopped" in response.error

        asyncio.run(scenario())

    def test_suite_request_helper_drives_the_service(self):
        requests = execution_requests(["stencil2d", "jacobi2d5pt"], copies=2)
        assert len(requests) == 4
        with make_client() as client:
            responses = client.execute_many(requests)
        assert all(response.ok for response in responses)


class TestBackgroundTune:
    def test_cold_benchmark_enqueues_one_background_tune(self, tmp_path):
        store_path = str(tmp_path / "tuned.sqlite")
        service = StencilService(store=store_path, auto_tune=True,
                                 tune_budget=4, batch_window=0.01)
        with ServiceClient(service) as client:
            first = client.execute(
                ExecutionRequest.for_benchmark("stencil2d", shape=(9, 8))
            )
            assert first.plan_source == "default"
            # close() stops the service, which awaits the background tune.
        assert service.background_tunes == 1
        # The registry was refreshed: a fresh service over the same store
        # now serves the tuned variant.
        follow_up = StencilService(store=store_path, batch_window=0.01)
        with ServiceClient(follow_up) as client:
            response = client.execute(
                ExecutionRequest.for_benchmark("stencil2d", shape=(9, 8))
            )
        assert response.plan_source in ("tuned", "fallback")


class TestTcpEndpoint:
    def test_execute_and_stats_over_tcp(self):
        started = threading.Event()
        port_holder = {}

        def serve():
            async def main():
                service = StencilService(batch_window=0.01)
                async with service:
                    server = await serve_tcp(service, "127.0.0.1", 0)
                    port_holder["port"] = server.sockets[0].getsockname()[1]
                    async with server:
                        started.set()
                        await port_holder["stop"]
                    # Let the per-connection handler task finish cleanly
                    # before the loop is torn down.
                    await asyncio.sleep(0.05)

            loop = asyncio.new_event_loop()
            port_holder["loop"] = loop
            port_holder["stop"] = loop.create_future()
            loop.run_until_complete(main())
            loop.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10)
        try:
            with socket.create_connection(
                ("127.0.0.1", port_holder["port"]), timeout=10
            ) as conn:
                stream = conn.makefile("rw", encoding="utf-8")
                stream.write(json.dumps({
                    "id": 1, "benchmark": "stencil2d",
                    "shape": [9, 8], "seed": 3, "return_result": True,
                }) + "\n")
                stream.flush()
                replies = [json.loads(stream.readline())]
                # Responses are pipelined/out-of-order, so fetch the stats
                # only after the execute op was answered.
                stream.write(json.dumps({"id": 2, "op": "stats"}) + "\n")
                stream.flush()
                replies.append(json.loads(stream.readline()))
                stream.close()  # drops the makefile dup so the server sees EOF
            by_id = {reply["id"]: reply for reply in replies}
            assert by_id[1]["ok"] and by_id[1]["benchmark"] == "stencil2d"
            reference = get_benchmark("stencil2d").run_reference(
                get_benchmark("stencil2d").make_inputs((9, 8), 3)
            )
            np.testing.assert_allclose(np.asarray(by_id[1]["result"]),
                                       reference, rtol=1e-6)
            assert by_id[2]["ok"]
            assert by_id[2]["stats"]["service"]["requests_served"] == 1
        finally:
            port_holder["loop"].call_soon_threadsafe(
                port_holder["stop"].set_result, None
            )
            thread.join(timeout=10)
