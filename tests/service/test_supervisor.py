"""Self-healing: watchdog, redispatch, supervised respawn, fault injection.

These tests kill and wedge *real* shard processes.  They are kept small
(tiny grids, few requests) because every spawned shard imports the package
fresh; the heavier sustained-load story lives in the chaos loadgen and its
CI job.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro import faults
from repro.apps.suite import get_benchmark
from repro.service import (
    ExecutionRequest,
    ServiceClient,
    ShardUnavailable,
    StencilService,
)
from repro.service.shards import ShardedExecutor


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


def _stream(benchmark="stencil2d", count=8, shape=(12, 12)):
    bench = get_benchmark(benchmark)
    return [
        ExecutionRequest(benchmark=benchmark,
                         inputs=bench.make_inputs(shape, seed))
        for seed in range(count)
    ]


def _wait_for(predicate, timeout_s=20.0, interval_s=0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestWatchdog:
    def test_wedged_shard_trips_the_watchdog_and_respawns(self):
        # SIGSTOP leaves the process alive, so only the per-round-trip
        # watchdog can notice; SIGKILL (used by respawn) works on stopped
        # processes.
        executor = ShardedExecutor(shards=1, timeout_s=0.5)
        handle = executor.handles[0]
        try:
            os.kill(handle.process.pid, signal.SIGSTOP)
            with pytest.raises(ShardUnavailable, match="watchdog"):
                handle._roundtrip({"op": "stats"}, timeout_s=0.5)
            assert handle.failed and not handle.available
            assert executor.pick() is None  # whole fleet down
            handle.respawn()
            handle.failed = False
            assert handle.available
            assert handle.respawns == 1
            reply = handle._roundtrip({"op": "stats"}, timeout_s=5.0)
            assert reply.get("ok")
        finally:
            executor.close()

    def test_dead_shard_raises_shard_unavailable_not_in_band(self):
        executor = ShardedExecutor(shards=1, timeout_s=5.0)
        handle = executor.handles[0]
        try:
            handle.process.kill()
            handle.process.join(timeout=5)
            with pytest.raises(ShardUnavailable):
                handle._roundtrip({"op": "stats"}, timeout_s=5.0)
            assert handle.failed
        finally:
            executor.close()


class TestSupervisedRespawn:
    def test_killed_shard_mid_load_heals_with_bit_identical_replies(self):
        requests = _stream(count=8)
        with ServiceClient(StencilService(store=None)) as client:
            reference = [np.asarray(r.result)
                         for r in client.execute_many(requests)]

        service = StencilService(store=None, shards=2, max_batch=2,
                                 shard_timeout_s=5.0)
        with ServiceClient(service) as client:
            responses = client.execute_many(requests)
            for got, expected in zip(responses, reference):
                assert np.array_equal(np.asarray(got.result), expected)

            victim = service.executor.handles[0]
            victim.process.kill()

            def restarted():
                stats = client.stats()["service"]
                return int(stats.get("shard_restarts") or 0) >= 1
            assert _wait_for(restarted), client.stats()["service"]

            # The healed fleet serves the same stream, still bit-identical,
            # and round-robin reaches the respawned shard again.
            responses = client.execute_many(requests)
            for got, expected in zip(responses, reference):
                assert got.ok, got.error
                assert np.array_equal(np.asarray(got.result), expected)
            shards = client.stats()["service"]["shards"]
            assert shards["alive"] == 2, shards
            assert shards["respawns"] >= 1, shards
            for row in shards["per_shard"]:
                assert row["alive"], row
                assert row["requests"] >= 1, row

    def test_in_flight_group_is_redispatched_exactly_once_per_request(self):
        # Arm the crash *in the shard children* (export=True → the spawned
        # process arms from the environment): each shard exits before its
        # first reply.  The reply never arrived, so redispatching is
        # idempotent — every request must be answered exactly once, ok.
        faults.arm("shard.crash_before_reply:at=1", export=True)
        requests = _stream(count=4)
        service = StencilService(store=None, shards=2, max_batch=2,
                                 shard_timeout_s=5.0, supervise=False,
                                 breaker_threshold=0)
        with ServiceClient(service) as client:
            faults.disarm()  # keep the *parent* process clean
            responses = client.execute_many(requests)
            assert len(responses) == len(requests)
            assert all(r.ok for r in responses), [r.error for r in responses]
            stats = client.stats()["service"]
            assert stats["shard_redispatches"] >= 1, stats
            # Crashed-and-unsupervised shards never answered: the serves
            # landed on surviving shards or the local fallback, once each.
            assert stats["requests_served"] == len(requests)


class TestBreakerIntegration:
    def test_repeated_plan_capture_failures_quarantine_the_digest(self):
        # Bare point: every plan capture in this process fails.  The service
        # must keep serving (generic fallback), and after `threshold`
        # consecutive plan fallbacks the breaker quarantines the digest so
        # later groups skip capture entirely.
        faults.arm("plan.capture_fail")
        service = StencilService(store=None, breaker_threshold=2,
                                 breaker_cooldown_s=60.0)
        requests = _stream(count=6)
        with ServiceClient(service) as client:
            responses = [client.execute(request) for request in requests]
            assert all(r.ok for r in responses), [r.error for r in responses]
            stats = client.stats()["service"]
            breakers = stats["breakers"]
            assert breakers["opens"] >= 1, breakers
            assert breakers["quarantined_requests"] >= 1, breakers
            (row,) = breakers["digests"].values()
            assert row["state"] == "open", breakers
            assert "plan capture" in row["last_reason"]

    def test_breaker_disabled_never_quarantines(self):
        faults.arm("plan.capture_fail")
        service = StencilService(store=None, breaker_threshold=0)
        with ServiceClient(service) as client:
            responses = [client.execute(r) for r in _stream(count=4)]
            assert all(r.ok for r in responses)
            breakers = client.stats()["service"]["breakers"]
            assert breakers["opens"] == 0
            assert breakers["quarantined_requests"] == 0
