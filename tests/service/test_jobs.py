"""Durable jobs: checkpointed execution, crash recovery, payload integrity.

The load-bearing property: a job that crashes mid-trajectory and resumes
from its checkpoint produces a final grid **bit-identical** to the
uninterrupted run — for every suite app, for float64 and float32 client
inputs, and for checkpoint segments of 1 step, 7 steps, and the whole
trajectory.  Around it: corrupt-checkpoint fallback, idempotent
re-submission, retention bounds, wire-level payload integrity, and the
sync path's between-segment deadline shedding.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import faults
from repro.apps.suite import ALL_BENCHMARKS, get_benchmark
from repro.backend.base import NumpyBackend
from repro.service.jobs import (
    COMPLETED,
    FAILED,
    JOB_CANCELLED,
    JobError,
    JobIntegrityError,
    JobManager,
    JobNotFound,
    _frame,
    _unframe,
)
from repro.service.requests import DEADLINE_EXCEEDED, ExecutionRequest
from repro.service.server import ServiceClient, StencilService
from repro.service.wire import (
    WireFormatError,
    decode_grid_payload,
    encode_grid_payload,
)

STEPS = 9
SEGMENTS = (1, 7, STEPS)


@pytest.fixture(autouse=True)
def _disarmed():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def backend():
    """One backend for the module: each app's plan compiles exactly once."""
    return NumpyBackend()


def _shape_for(key: str):
    bench = get_benchmark(key)
    return (13, 11) if bench.ndims == 2 else (5, 7, 9)


def _request_for(key: str, dtype, steps: int = STEPS) -> ExecutionRequest:
    bench = get_benchmark(key)
    inputs = [np.asarray(grid, dtype=dtype)
              for grid in bench.make_inputs(_shape_for(key), 3)]
    return ExecutionRequest(inputs=inputs, benchmark=key, steps=steps)


def _reference(key: str, dtype, steps: int = STEPS) -> np.ndarray:
    """The uninterrupted run on the service's float64 view of the inputs."""
    bench = get_benchmark(key)
    inputs = [np.asarray(np.asarray(grid, dtype=dtype), dtype=np.float64)
              for grid in bench.make_inputs(_shape_for(key), 3)]
    return np.asarray(bench.iterate(inputs, steps), dtype=np.float64)


def _wait_for_worker_death(manager: JobManager, timeout_s: float = 30.0):
    """Block until the injected crash has abandoned the worker thread."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        worker = manager._worker
        if worker is not None and not worker.is_alive():
            return
        time.sleep(0.005)
    raise AssertionError("worker never hit the injected crash")


class TestResumeBitIdentity:
    """The tentpole property, across the whole suite."""

    @pytest.mark.parametrize("segment", SEGMENTS)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
    def test_crash_resume_is_bit_identical_to_uninterrupted(
            self, key, dtype, segment, backend, tmp_path):
        expected = _reference(key, dtype)

        faults.arm("job.crash_after_checkpoint:at=1")
        crashed = JobManager(backend, job_dir=str(tmp_path),
                             checkpoint_every=segment)
        job = crashed.submit(_request_for(key, dtype))
        _wait_for_worker_death(crashed)
        faults.disarm()

        # On-disk state is exactly what kill -9 leaves: manifest still
        # "running", newest checkpoint at the first segment boundary.
        interrupted = crashed.status(job["job_id"])
        assert interrupted["status"] == "running"
        assert 0 < interrupted["completed_steps"] <= STEPS

        recovered = JobManager(backend, job_dir=str(tmp_path),
                               checkpoint_every=segment)
        assert recovered.recover() == 1
        final = recovered.wait(job["job_id"], timeout_s=30.0)
        assert final["status"] == COMPLETED
        assert final["resumes"] == 1
        _descriptor, result = recovered.result(job["job_id"])
        assert result.dtype == expected.dtype
        assert result.shape == expected.shape
        assert result.tobytes() == expected.tobytes()
        recovered.close()
        crashed.close()


class TestCheckpointIntegrity:
    def test_corrupt_newest_checkpoint_falls_back_to_previous(
            self, backend, tmp_path):
        expected = _reference("hotspot2d", np.float64)
        # Hit 1 of checkpoint_corrupt is the step-0 checkpoint written at
        # submit; hit 2 is the first segment's — the one the crash leaves
        # newest on disk.
        faults.arm("job.checkpoint_corrupt:at=2,"
                   "job.crash_after_checkpoint:at=1")
        crashed = JobManager(backend, job_dir=str(tmp_path),
                             checkpoint_every=4)
        job = crashed.submit(_request_for("hotspot2d", np.float64))
        _wait_for_worker_death(crashed)
        faults.disarm()

        recovered = JobManager(backend, job_dir=str(tmp_path),
                               checkpoint_every=4)
        assert recovered.recover() == 1
        assert recovered.corrupt_checkpoints == 1
        final = recovered.wait(job["job_id"], timeout_s=30.0)
        assert final["status"] == COMPLETED
        _descriptor, result = recovered.result(job["job_id"])
        assert result.tobytes() == expected.tobytes()
        recovered.close()
        crashed.close()

    def test_no_valid_checkpoint_fails_instead_of_silent_rerun(
            self, backend, tmp_path):
        # Every checkpoint corrupted: recovery must refuse, loudly.
        faults.arm("job.checkpoint_corrupt,job.crash_after_checkpoint:at=2")
        crashed = JobManager(backend, job_dir=str(tmp_path),
                             checkpoint_every=2)
        job = crashed.submit(_request_for("stencil2d", np.float64))
        _wait_for_worker_death(crashed)
        faults.disarm()

        recovered = JobManager(backend, job_dir=str(tmp_path),
                               checkpoint_every=2)
        assert recovered.recover() == 0
        final = recovered.status(job["job_id"])
        assert final["status"] == FAILED
        assert "no valid checkpoint" in final["error"]
        assert recovered.corrupt_checkpoints >= 2
        with pytest.raises(JobError):
            recovered.result(job["job_id"])
        recovered.close()
        crashed.close()

    def test_frame_rejects_tampered_metadata_and_data(self):
        grids = [np.arange(12, dtype=np.float64).reshape(3, 4)]
        data = _frame({"job_id": "j1", "step": 7}, grids)
        meta, decoded = _unframe(data)
        assert meta["step"] == 7
        assert decoded[0].tobytes() == grids[0].tobytes()
        flipped = bytearray(data)
        flipped[-1] ^= 0xFF  # grid byte
        with pytest.raises(JobIntegrityError):
            _unframe(bytes(flipped))
        with pytest.raises(JobIntegrityError):
            _unframe(data.replace(b'"step": 7', b'"step": 8'))


class TestIdempotency:
    def test_double_submit_returns_the_same_job(self, backend, tmp_path):
        manager = JobManager(backend, job_dir=str(tmp_path))
        first = manager.submit(_request_for("heat", np.float64),
                               job_key="k-1")
        again = manager.submit(_request_for("heat", np.float64),
                               job_key="k-1")
        assert again["job_id"] == first["job_id"]
        assert manager.stats()["jobs"] != {}
        manager.wait(first["job_id"], timeout_s=30.0)
        manager.close()

    def test_submit_after_restart_dedups_from_disk(self, backend, tmp_path):
        manager = JobManager(backend, job_dir=str(tmp_path))
        first = manager.submit(_request_for("heat", np.float64),
                               job_key="k-2")
        manager.wait(first["job_id"], timeout_s=30.0)
        manager.close()

        restarted = JobManager(backend, job_dir=str(tmp_path))
        restarted.recover()
        again = restarted.submit(_request_for("heat", np.float64),
                                 job_key="k-2")
        assert again["job_id"] == first["job_id"]
        assert again["status"] == COMPLETED
        restarted.close()

    def test_program_carrying_requests_are_rejected(self, backend):
        manager = JobManager(backend)
        bench = get_benchmark("stencil2d")
        request = ExecutionRequest.for_program(
            bench.build_program(), bench.make_inputs((13, 11), 0))
        with pytest.raises(JobError, match="benchmark-keyed"):
            manager.submit(request)
        manager.close()


class TestLifecycle:
    def test_deadline_sheds_between_segments_with_structured_code(
            self, backend):
        manager = JobManager(backend, checkpoint_every=1)
        request = _request_for("stencil2d", np.float64, steps=50)
        request.deadline_ms = 0.001  # expired by the first boundary check
        job = manager.submit(request)
        final = manager.wait(job["job_id"], timeout_s=30.0)
        assert final["status"] == FAILED
        assert final["code"] == DEADLINE_EXCEEDED
        assert "deadline exceeded after" in final["error"]
        manager.close()

    def test_cancel_takes_effect_and_result_is_refused(self, backend):
        manager = JobManager(backend, checkpoint_every=1)
        job = manager.submit(_request_for("heat", np.float64, steps=100000))
        manager.cancel(job["job_id"])
        final = manager.wait(job["job_id"], timeout_s=30.0)
        assert final["status"] == JOB_CANCELLED
        with pytest.raises(JobError, match="not completed"):
            manager.result(job["job_id"])
        manager.close()

    def test_unknown_job_raises_not_found(self, backend):
        manager = JobManager(backend)
        with pytest.raises(JobNotFound):
            manager.status("nope")
        manager.close()


class TestRetention:
    def test_ttl_purges_terminal_jobs_from_memory_and_disk(
            self, backend, tmp_path):
        manager = JobManager(backend, job_dir=str(tmp_path), job_ttl_s=0.05)
        job = manager.submit(_request_for("heat", np.float64))
        manager.wait(job["job_id"], timeout_s=30.0)
        job_path = tmp_path / job["job_id"]
        assert job_path.is_dir()
        time.sleep(0.1)
        manager.list_jobs()  # any query sweeps
        with pytest.raises(JobNotFound):
            manager.status(job["job_id"])
        assert not job_path.exists()
        manager.close()

    def test_max_resident_evicts_to_disk_and_reloads_bit_identically(
            self, backend, tmp_path):
        expected = _reference("heat", np.float64)
        manager = JobManager(backend, job_dir=str(tmp_path), max_resident=2)
        jobs = []
        for index in range(4):
            job = manager.submit(_request_for("heat", np.float64),
                                 job_key=f"resident-{index}")
            manager.wait(job["job_id"], timeout_s=30.0)
            jobs.append(job)
        stats = manager.stats()
        assert stats["results_evicted"] >= 2
        assert stats["resident_results"] <= 2
        # The evicted results are still served — reloaded and re-validated
        # from their result file.
        for job in jobs:
            _descriptor, result = manager.result(job["job_id"])
            assert result.tobytes() == expected.tobytes()
        manager.close()


class TestWireIntegrity:
    def test_payload_roundtrip_carries_and_validates_checksums(self):
        rng = np.random.default_rng(11)
        grids = [rng.random((5, 7)),
                 rng.random((3, 4)).astype(np.float32)]
        prefix, buffers = encode_grid_payload({"benchmark": "x"}, grids)
        body = prefix + b"".join(bytes(buffer) for buffer in buffers)
        meta, decoded = decode_grid_payload(body)
        assert meta == {"benchmark": "x"}
        for original, copy in zip(grids, decoded):
            assert copy.dtype == original.dtype
            assert copy.tobytes() == original.tobytes()

    def test_flipped_grid_byte_is_detected_at_decode(self):
        grids = [np.arange(20, dtype=np.float64).reshape(4, 5)]
        prefix, buffers = encode_grid_payload({}, grids)
        body = bytearray(prefix + b"".join(bytes(b) for b in buffers))
        body[-1] ^= 0x01
        with pytest.raises(WireFormatError, match="checksum mismatch"):
            decode_grid_payload(bytes(body))

    def test_wire_payload_corrupt_fault_is_caught_by_the_receiver(self):
        faults.arm("wire.payload_corrupt")
        grids = [np.ones((3, 3), dtype=np.float64)]
        prefix, buffers = encode_grid_payload({}, grids)
        faults.disarm()
        body = prefix + b"".join(bytes(buffer) for buffer in buffers)
        with pytest.raises(WireFormatError, match="corrupted in transit"):
            decode_grid_payload(body)


class TestSyncPathDeadline:
    def test_multistep_request_is_shed_between_segments(self):
        # A trajectory long enough that the deadline expires mid-run: the
        # sync path must stop at a segment boundary with a structured
        # DeadlineExceeded, not run the remaining steps to completion.
        service = StencilService(batch_window=0.001, checkpoint_every=8)
        with ServiceClient(service) as client:
            request = ExecutionRequest.for_benchmark(
                "heat", shape=(16, 16, 16), steps=50_000, deadline_ms=40.0)
            response = client.execute(request, raise_on_error=False)
        assert response.shed
        assert response.code == DEADLINE_EXCEEDED
        assert "mid-trajectory" in response.error

    def test_multistep_without_deadline_still_completes(self):
        service = StencilService(batch_window=0.001, checkpoint_every=4)
        bench = get_benchmark("hotspot2d")
        inputs = bench.make_inputs((13, 11), seed=2)
        expected = np.asarray(bench.iterate(inputs, 11), dtype=np.float64)
        with ServiceClient(service) as client:
            response = client.execute(ExecutionRequest(
                inputs=[np.array(grid) for grid in inputs],
                benchmark="hotspot2d", steps=11))
        assert response.ok
        assert response.result.tobytes() == expected.tobytes()


class TestServiceJobsSection:
    def test_stats_expose_the_job_manager(self, tmp_path):
        service = StencilService(job_dir=str(tmp_path), checkpoint_every=4)
        with ServiceClient(service) as client:
            stats = client.stats()
        section = stats["service"]["jobs"]
        assert section["checkpoint_every"] == 4
        assert section["job_dir"] == str(tmp_path)
