"""Plan-aware service pre-warming: tapes captured off the request path."""

import numpy as np

from repro.apps.suite import execution_requests
from repro.service import ExecutionRequest, ServiceClient, StencilService


def test_prewarm_captures_plans_before_first_request():
    with ServiceClient(StencilService(batch_window=0.01)) as client:
        service = client.service
        requests = [ExecutionRequest.for_benchmark("hotspot2d",
                                                   shape=(12, 10), seed=3)]
        warmed = service.prewarm(requests)
        assert warmed == {"prewarmed": 1, "skipped": 0}
        plans_after_warm = service.backend.plans.stats()
        assert plans_after_warm["entries"] >= 1
        assert plans_after_warm["misses"] >= 1

        # The live request hits the prewarmed plan: no new plan build.
        response = client.execute(
            ExecutionRequest.for_benchmark("hotspot2d", shape=(12, 10),
                                           seed=9)
        )
        assert response.ok
        plans_after_request = service.backend.plans.stats()
        assert plans_after_request["misses"] == plans_after_warm["misses"]
        assert plans_after_request["hits"] > plans_after_warm["hits"]
        assert service.stats()["service"]["plans_prewarmed"] == 1


def test_prewarm_batch_capacities_warm_the_batched_plans():
    with ServiceClient(StencilService(batch_window=0.05)) as client:
        service = client.service
        request = ExecutionRequest.for_benchmark("stencil2d", shape=(12, 10))
        warmed = service.prewarm([request], batch_capacities=(3,))
        assert warmed == {"prewarmed": 2, "skipped": 0}  # single + capacity-4
        misses_after_warm = service.backend.plans.stats()["misses"]

        # A concurrent group of 3 stacks into the prewarmed capacity-4
        # batched plan: no new plan build on the request path.
        responses = client.execute_many(
            [ExecutionRequest.for_benchmark("stencil2d", shape=(12, 10),
                                            seed=s) for s in range(3)]
        )
        assert all(r.ok for r in responses)
        assert any(r.batched for r in responses)
        assert service.backend.plans.stats()["misses"] == misses_after_warm


def test_prewarm_suite_requests_and_bit_identity():
    with ServiceClient(StencilService(batch_window=0.01,
                                      crosscheck=True)) as client:
        service = client.service
        requests = execution_requests(["stencil2d", "jacobi2d5pt"], copies=1)
        warmed = service.prewarm(requests)
        assert warmed["prewarmed"] == 2
        # Prewarmed digests serve correctly (crosscheck asserts plan vs
        # generic bit-identity inside the service on batched groups).
        responses = client.execute_many(
            [ExecutionRequest.for_benchmark("stencil2d", shape=(13, 11),
                                            seed=s) for s in range(4)]
        )
        assert all(r.ok for r in responses)
        results = [np.asarray(r.result) for r in responses]
        assert results[0].shape == results[1].shape


def test_prewarm_skips_unplannable_requests():
    with ServiceClient(StencilService(batch_window=0.01)) as client:
        bad = ExecutionRequest.for_benchmark("hotspot2d", shape=(12, 10))
        bad.inputs = []  # no grids: routing still works, capture cannot
        warmed = client.service.prewarm([bad])
        assert warmed["skipped"] == 1
