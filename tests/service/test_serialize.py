"""Program serialization: digest-preserving round-trips for requests."""

import numpy as np
import pytest

from repro.apps.suite import ALL_BENCHMARKS, get_benchmark
from repro.backend import get_backend
from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.ir import structural_digest
from repro.core.serialize import (
    SerializationError,
    program_from_json,
    program_to_json,
)
from repro.core.types import Float
from repro.core.userfuns import add


class TestRoundTrip:
    @pytest.mark.parametrize("key", sorted(ALL_BENCHMARKS))
    def test_every_benchmark_round_trips(self, key):
        benchmark = get_benchmark(key)
        program = benchmark.build_program()
        restored = program_from_json(program_to_json(program))
        assert structural_digest(restored) == structural_digest(program)

    def test_round_tripped_program_executes_identically(self):
        benchmark = get_benchmark("stencil2d")
        program = benchmark.build_program()
        restored = program_from_json(program_to_json(program))
        inputs = benchmark.make_inputs((9, 8), 7)
        backend = get_backend("numpy")
        np.testing.assert_array_equal(
            backend.run(restored, inputs), backend.run(program, inputs)
        )

    def test_handwritten_program_round_trips(self):
        program = L.fun(
            [L.array_type(Float, Var("N"))],
            lambda a: L.map(
                lambda nbh: L.reduce(add, 0.0, nbh),
                L.slide(3, 1, L.pad(1, 1, L.CLAMP, a)),
            ),
        )
        restored = program_from_json(program_to_json(program))
        assert structural_digest(restored) == structural_digest(program)
        result = get_backend("numpy").run(restored, [[1.0, 2.0, 3.0, 4.0]])
        np.testing.assert_allclose(np.squeeze(result), [4.0, 6.0, 9.0, 11.0])


class TestRegistrySeeding:
    def test_custom_registration_does_not_mask_stock_functions(self, monkeypatch):
        from repro.core import serialize
        from repro.core.userfuns import make_userfun

        monkeypatch.setattr(serialize, "_USERFUNS", {})
        monkeypatch.setattr(serialize, "_STOCK_SEEDED", False)
        monkeypatch.setattr(serialize, "_SOURCES_DRAINED", 0)
        serialize.register_userfun(
            make_userfun("custom_fn_xyz", ["x"], "return x + x;",
                         lambda x: x + x)
        )
        program = L.fun(
            [L.array_type(Float, Var("N"))],
            lambda a: L.map(lambda nbh: L.reduce(add, 0.0, nbh),
                            L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))),
        )
        # Resolving stock 'add' must still work after a custom registration.
        restored = program_from_json(program_to_json(program))
        assert structural_digest(restored) == structural_digest(program)


class TestErrors:
    def test_unknown_userfun_is_rejected(self):
        from repro.core.serialize import program_from_dict

        wire = {
            "node": "lambda",
            "params": [{"name": "x", "pid": 0}],
            "body": {
                "node": "call",
                "fun": {"node": "userfun", "name": "no_such_fn",
                        "body_c": "return x;"},
                "args": [{"node": "param", "pid": 0}],
            },
        }
        with pytest.raises(SerializationError):
            program_from_dict(wire)

    def test_userfun_body_mismatch_is_rejected(self):
        from repro.core.serialize import program_from_dict

        wire = {
            "node": "lambda",
            "params": [{"name": "x", "pid": 0}],
            "body": {
                "node": "call",
                # Stock name, wrong body: must not silently resolve.
                "fun": {"node": "userfun", "name": "add",
                        "body_c": "return x - y;"},
                "args": [{"node": "param", "pid": 0}],
            },
        }
        with pytest.raises(SerializationError):
            program_from_dict(wire)
