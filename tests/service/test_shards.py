"""The sharded batch executor: bit-identity, balance, failure, roll-ups.

Process-spawning tests are deliberately few and small (spawned shards
import the package fresh), and everything else — stats roll-up, report
checks — is exercised without forking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.suite import get_benchmark
from repro.service import (
    ExecutionRequest,
    ServiceClient,
    ShardError,
    StencilService,
    check_batching,
    check_sharding,
)
from repro.service.metrics import shards_section


def _stream(benchmark="stencil2d", count=16, shape=(16, 16), identical=True):
    bench = get_benchmark(benchmark)
    requests = []
    for seed in range(count):
        inputs = bench.make_inputs(shape, 3 if identical else seed)
        requests.append(ExecutionRequest(benchmark=benchmark, inputs=inputs))
    return requests


class TestShardedService:
    def test_sharded_results_bit_identical_and_both_shards_serve(self):
        requests = _stream(count=16, identical=False)
        with ServiceClient(StencilService(store=None)) as client:
            reference = [
                np.asarray(response.result)
                for response in client.execute_many(requests)
            ]
        # max_batch 4 forces >= 4 groups out of 16 requests, so the
        # round-robin demonstrably reaches both shards in one stream.
        service = StencilService(store=None, shards=2, max_batch=4)
        with ServiceClient(service) as client:
            responses = client.execute_many(requests)
            stats = client.stats()["service"]
            for got, expected in zip(responses, reference):
                assert np.array_equal(np.asarray(got.result), expected)
            shards = stats["shards"]
            assert shards["count"] == 2 and shards["alive"] == 2
            assert shards["requests"] == len(requests)
            for row in shards["per_shard"]:
                assert row["requests"] >= 1, row
            assert stats["shard_fallbacks"] == 0

    def test_sharded_hot_digest_compiles_once_per_shard(self):
        requests = _stream(count=8, identical=True)
        service = StencilService(store=None, shards=2, max_batch=2)
        with ServiceClient(service) as client:
            client.execute_many(requests)
            client.execute_many(requests)  # warm replays, no new compiles
            shards = client.stats()["service"]["shards"]
            assert shards["compilations"] == 2  # one per shard, total
            for row in shards["per_shard"]:
                assert row.get("compilations") == 1, row

    def test_dead_shard_falls_back_locally_without_failing_requests(self):
        # Supervision off: with the only shard dead, pick() returns None and
        # the service must serve the group on the local path, in-band and
        # bit-identical — requests never observe the crash.
        requests = _stream(count=2)
        with ServiceClient(StencilService(store=None)) as client:
            reference = [
                np.asarray(response.result)
                for response in client.execute_many(requests)
            ]
        service = StencilService(store=None, shards=1, max_batch=4,
                                 supervise=False)
        with ServiceClient(service) as client:
            client.execute_many(requests)
            handle = service.executor.handles[0]
            handle.process.terminate()
            handle.process.join(timeout=5)
            responses = client.execute_many(requests, raise_on_error=False)
            assert all(response.ok for response in responses)
            for got, expected in zip(responses, reference):
                assert np.array_equal(np.asarray(got.result), expected)
            stats = client.stats()["service"]
            assert stats["shard_fallbacks"] >= 1
            assert stats["shard_restarts"] == 0


class TestShardStatsRollup:
    def test_shards_section_sums_the_fleet(self):
        per_shard = [
            {"shard": 0, "alive": True, "requests": 10, "groups": 3,
             "errors": 0, "compilations": 1},
            {"shard": 1, "alive": False, "requests": 4, "groups": 1,
             "errors": 2, "compilations": 1},
        ]
        section = shards_section(per_shard)
        assert section["count"] == 2
        assert section["alive"] == 1
        assert section["requests"] == 14
        assert section["groups"] == 4
        assert section["errors"] == 2
        assert section["compilations"] == 2
        assert section["per_shard"] == per_shard

    def test_shards_section_empty_fleet(self):
        section = shards_section([])
        assert section["count"] == 0 and section["requests"] == 0


class TestLoadgenShardChecks:
    def test_check_sharding_flags_idle_shards(self):
        assert check_sharding({"shard_requests": [8, 8]}) == []
        problems = check_sharding({"shard_requests": [16, 0]})
        assert problems and "shard 1" in problems[0]
        assert check_sharding({"shard_requests": []})  # no data = problem

    def test_check_batching_expects_one_compilation_per_active_shard(self):
        base = {
            "requests": 8, "requests_served": 8, "batches_formed": 2,
            "identical": True,
        }
        assert check_batching({**base, "compilations": 1}) == []
        assert check_batching({
            **base, "compilations": 2, "shard_requests": [4, 4],
        }) == []
        problems = check_batching({
            **base, "compilations": 1, "shard_requests": [4, 4],
        })
        assert problems and "expected 2" in problems[0]


class TestShardErrorType:
    def test_shard_error_is_a_service_error(self):
        from repro.service.requests import ServiceError

        assert issubclass(ShardError, ServiceError)
        with pytest.raises(ServiceError):
            raise ShardError("boom")
