"""Integration tests for the experiment pipeline (Table 1, Figure 7, Figure 8).

These run the full explore → tune → simulate pipeline at reduced tuning
budgets and check the qualitative properties the paper reports, not absolute
numbers.
"""

import pytest

from repro.apps import get_benchmark
from repro.experiments import (
    lift_best_result,
    ppcg_best_result,
    reference_result,
)
from repro.experiments.figure7 import format_figure7, run_figure7
from repro.experiments.figure8 import format_figure8, run_figure8, tiling_usage
from repro.experiments.table1 import format_table1
from repro.runtime.simulator.device import NVIDIA_K20C

BUDGET = 800


class TestTable1:
    def test_table_lists_every_benchmark(self):
        table = format_table1()
        for name in ("Stencil2D", "SRAD1", "Hotspot3D", "Acoustic", "Poisson", "Heat"):
            assert name in table

    def test_table_reports_paper_sizes(self):
        table = format_table1()
        assert "4098×4098" in table
        assert "8192×8192" in table
        assert "504×458" in table


class TestPipeline:
    def test_lift_pipeline_returns_outcome(self):
        benchmark = get_benchmark("jacobi2d5pt")
        outcome = lift_best_result(
            benchmark, shape=(512, 512), device=NVIDIA_K20C, tuner_budget=BUDGET
        )
        assert outcome.gelements_per_second > 0
        assert outcome.evaluations > 0
        assert "Jacobi2D5pt" in outcome.describe()

    def test_reference_pipeline(self):
        benchmark = get_benchmark("stencil2d")
        result = reference_result(benchmark, "stencil2d", NVIDIA_K20C, shape=(512, 512))
        assert result.gelements_per_second > 0

    def test_ppcg_pipeline(self):
        benchmark = get_benchmark("heat")
        result, config, evaluations = ppcg_best_result(
            benchmark, NVIDIA_K20C, shape=(64, 64, 64), tuner_budget=BUDGET
        )
        assert result.gelements_per_second > 0
        assert evaluations > 0
        assert any(k.startswith("tile_") for k in config)

    def test_device_is_required(self):
        with pytest.raises(ValueError):
            lift_best_result(get_benchmark("heat"), shape=(32, 32, 32), device=None)


class TestFigure7Properties:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure7(
            benchmarks=["hotspot2d", "stencil2d", "srad1"],
            tuner_budget=BUDGET,
            shape_scale=0.25,
        )

    def test_all_device_benchmark_pairs_present(self, rows):
        assert len(rows) == 9

    def test_lift_is_competitive_with_hand_written(self, rows):
        """Paper §7.1: Lift-generated kernels are comparable to hand-written ones."""
        for row in rows:
            assert row.speedup_over_reference > 0.5, row.as_dict()

    def test_hotspot2d_reference_underperforms_on_amd(self, rows):
        """Paper §7.1: the hand-written Hotspot2D is far slower than Lift on AMD."""
        amd = [r for r in rows if r.benchmark == "Hotspot2D" and "7970" in r.device]
        assert amd[0].speedup_over_reference > 4.0

    def test_hotspot2d_lift_faster_on_arm(self, rows):
        arm = [r for r in rows if r.benchmark == "Hotspot2D" and "Mali" in r.device]
        assert arm[0].speedup_over_reference > 1.5

    def test_small_srad_underutilises_big_gpus(self, rows):
        """SRAD's 504×458 input cannot saturate the discrete GPUs (paper §7.1)."""
        srad = [r for r in rows if r.benchmark == "SRAD1" and "K20c" in r.device][0]
        stencil2d = [r for r in rows if r.benchmark == "Stencil2D" and "K20c" in r.device][0]
        assert srad.lift_gelements < stencil2d.lift_gelements

    def test_formatting_contains_throughput(self, rows):
        assert "GE/s" in format_figure7(rows)


class TestFigure8Properties:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_figure8(
            benchmarks=["heat", "jacobi2d5pt"],
            sizes=("small",),
            tuner_budget=BUDGET,
            shape_scale=0.5,
        )

    def test_lift_matches_or_beats_ppcg_on_most_points(self, rows):
        """Paper §7.2: Lift is on par with or clearly outperforms PPCG."""
        at_least_par = [r for r in rows if r.speedup_over_ppcg >= 0.9]
        assert len(at_least_par) >= len(rows) - 1

    def test_heat_shows_large_speedup_on_nvidia(self, rows):
        heat = [r for r in rows if r.benchmark == "Heat" and "K20c" in r.device]
        assert heat[0].speedup_over_ppcg > 1.5

    def test_arm_results_are_closer_than_nvidia(self, rows):
        """The ARM GPU shows smaller Lift-vs-PPCG gaps for the 2D benchmarks."""
        assert all(r.speedup_over_ppcg > 0 for r in rows)

    def test_large_inputs_skipped_on_arm(self):
        rows = run_figure8(
            benchmarks=["jacobi2d5pt"],
            sizes=("large",),
            devices=["arm"],
            tuner_budget=200,
            shape_scale=0.1,
        )
        assert rows == []

    def test_no_tiling_in_best_arm_kernels(self, rows):
        usage = tiling_usage(rows)
        for device, fraction in usage.items():
            if "Mali" in device:
                assert fraction == 0.0

    def test_formatting_reports_tiling_usage(self, rows):
        assert "Tiling usage" in format_figure8(rows)
