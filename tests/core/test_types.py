"""Unit tests for the Lift type system."""

import pytest

from repro.core.arithmetic import Var
from repro.core.types import (
    ArrayType,
    Float,
    Int,
    TupleType,
    FunctionType,
    TypeError_,
    array,
    check_same_size,
    element_count,
)


class TestScalarTypes:
    def test_float_repr_and_size(self):
        assert repr(Float) == "float"
        assert Float.size_bytes == 4

    def test_scalar_equality(self):
        assert Float == Float
        assert Float != Int


class TestArrayTypes:
    def test_array_carries_size_in_type(self):
        t = ArrayType(Float, 10)
        assert t.size == 10
        assert t.elem_type == Float

    def test_symbolic_size(self):
        n = Var("N")
        t = ArrayType(Float, n)
        assert t.size == n

    def test_nested_array_shape(self):
        t = array(Float, 4, 5, 6)
        assert t.ndims() == 3
        assert [s.evaluate() for s in t.shape()] == [4, 5, 6]
        assert t.base_element_type() == Float

    def test_array_helper_outermost_first(self):
        t = array(Float, 2, 3)
        assert t.size == 2
        assert t.elem_type.size == 3

    def test_equality_is_structural(self):
        assert array(Float, 4, 5) == array(Float, 4, 5)
        assert array(Float, 4, 5) != array(Float, 5, 4)

    def test_element_count(self):
        assert element_count(array(Float, 4, 5)).evaluate() == 20

    def test_array_requires_a_size(self):
        with pytest.raises(ValueError):
            array(Float)


class TestTupleAndFunctionTypes:
    def test_tuple_type_components(self):
        t = TupleType(Float, Int)
        assert t.elem_types == (Float, Int)
        assert repr(t) == "{float, int}"

    def test_tuple_equality(self):
        assert TupleType(Float, Int) == TupleType(Float, Int)
        assert TupleType(Float, Int) != TupleType(Int, Float)

    def test_function_type_repr(self):
        f = FunctionType([Float, Float], Float)
        assert "->" in repr(f)

    def test_types_are_hashable(self):
        assert len({array(Float, 3), array(Float, 3), array(Float, 4)}) == 2


class TestSizeChecks:
    def test_check_same_size_accepts_equal(self):
        n = Var("N")
        check_same_size(n, n, "zip")  # must not raise

    def test_check_same_size_rejects_different(self):
        with pytest.raises(TypeError_):
            check_same_size(Var("N"), Var("M"), "zip")
