"""Tests for the eDSL builders (incl. the multi-dimensional wrappers) and the printer."""

import numpy as np
import pytest

from repro.core import builders as L
from repro.core import pretty
from repro.core.arithmetic import Var
from repro.core.ir import FunCall, Lambda
from repro.core.types import Float, array
from repro.core.userfuns import add, constant, id_fn, make_userfun, weighted_sum
from repro.runtime.interpreter import evaluate_program

from ..conftest import interpret_to_array


class TestBuilders:
    def test_fun_builds_typed_lambda(self):
        program = L.fun([array(Float, 4)], lambda a: L.join(L.split(2, a)), names=["A"])
        assert isinstance(program, Lambda)
        assert program.params[0].name == "A"
        assert program.params[0].type == array(Float, 4)

    def test_python_lambda_coerced_to_lift_lambda(self):
        call = L.map(lambda x: x, L.lit(0.0))
        assert isinstance(call.fun.f, Lambda)

    def test_lit_passes_expressions_through(self):
        expr = L.lit(3.5)
        assert L.lit(expr) is expr

    def test_boolean_literal_rejected(self):
        with pytest.raises(TypeError):
            L.lit(True)

    def test_pad_accepts_boundary_by_name(self):
        call = L.pad(1, 1, "mirror", L.lit(0.0))
        assert call.fun.boundary.name == "mirror"

    def test_zip_nd_requires_two_arrays(self):
        with pytest.raises(ValueError):
            L.zip_nd([L.lit(0.0)], 2)

    def test_map_nd_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            L.map_nd(id_fn, L.lit(0.0), 0)

    def test_pad_nd_per_dimension_amounts(self):
        program = L.fun(
            [array(Float, 4, 4)],
            lambda a: L.pad_nd((1, 2), (1, 2), L.CLAMP, a, 2),
        )
        from repro.core.typecheck import check_program

        assert check_program(program, [array(Float, 4, 4)]) == array(Float, 6, 8)

    def test_pad_nd_wrong_number_of_amounts(self):
        with pytest.raises(ValueError):
            L.pad_nd((1, 2, 3), 1, L.CLAMP, L.lit(0.0), 2)


class TestMultiDimensionalSemantics:
    def test_map_nd_applies_at_depth(self):
        program = L.fun(
            [array(Float, Var("N"), Var("M"))],
            lambda a: L.map_nd(lambda x: FunCall(add, x, L.lit(1.0)), a, 2),
        )
        grid = np.zeros((3, 4))
        out = interpret_to_array(program, [grid])
        assert np.allclose(out, np.ones((3, 4)))

    def test_zip_nd_pairs_elements(self):
        program = L.fun(
            [array(Float, Var("N"), Var("M"))] * 2,
            lambda a, b: L.map_nd(
                lambda t: FunCall(add, L.get(0, t), L.get(1, t)),
                L.zip_nd([a, b], 2),
                2,
            ),
        )
        a = np.full((3, 3), 2.0)
        b = np.full((3, 3), 5.0)
        assert np.allclose(interpret_to_array(program, [a, b]), 7.0)

    def test_slide_nd_2d_matches_explicit_composition(self):
        """slide2 must equal the paper's map(transpose, slide(map(slide)))."""
        explicit = L.fun(
            [array(Float, Var("N"), Var("M"))],
            lambda a: L.map(
                lambda w: L.transpose(w),
                L.slide(3, 1, L.map(lambda row: L.slide(3, 1, row), a)),
            ),
        )
        wrapper = L.fun(
            [array(Float, Var("N"), Var("M"))],
            lambda a: L.slide_nd(3, 1, a, 2),
        )
        grid = np.arange(30, dtype=float).reshape(5, 6)
        out_explicit = evaluate_program(explicit, [grid])
        out_wrapper = evaluate_program(wrapper, [grid])
        assert out_explicit == out_wrapper

    def test_paper_pad2_example(self):
        """The worked pad2 example from §3.4 of the paper."""
        program = L.fun(
            [array(Float, Var("N"), Var("M"))],
            lambda a: L.pad_nd(1, 1, L.CLAMP, a, 2),
        )
        out = evaluate_program(program, [[[1.0, 2.0], [3.0, 4.0]]])
        assert out == [
            [1.0, 1.0, 2.0, 2.0],
            [1.0, 1.0, 2.0, 2.0],
            [3.0, 3.0, 4.0, 4.0],
            [3.0, 3.0, 4.0, 4.0],
        ]

    def test_paper_slide2_example(self):
        """The worked slide2 example from §3.4 of the paper (2×2 windows)."""
        program = L.fun(
            [array(Float, Var("N"), Var("M"))],
            lambda a: L.slide_nd(2, 1, a, 2),
        )
        grid = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]
        out = evaluate_program(program, [grid])
        assert out[0][0] == [[1.0, 2.0], [4.0, 5.0]]
        assert out[0][1] == [[2.0, 3.0], [5.0, 6.0]]
        assert out[1][1] == [[5.0, 6.0], [8.0, 9.0]]


class TestUserFunHelpers:
    def test_constant_userfun(self):
        fn = constant(3.0)
        assert fn(123.0) == 3.0

    def test_weighted_sum_flattens_nested_neighbourhoods(self):
        fn = weighted_sum([1.0, 2.0, 3.0, 4.0])
        assert fn([[1.0, 1.0], [1.0, 1.0]]) == 10.0

    def test_weighted_sum_wrong_length_raises(self):
        fn = weighted_sum([1.0, 2.0])
        with pytest.raises(ValueError):
            fn([1.0, 2.0, 3.0])

    def test_make_userfun_defaults_to_float_params(self):
        fn = make_userfun("triple", ["x"], "return 3.0f * x;", lambda x: 3.0 * x)
        assert fn.param_types == (Float,)
        assert fn(2.0) == 6.0


class TestPrinter:
    def test_listing2_shape(self, jacobi3_1d_program):
        text = pretty(jacobi3_1d_program)
        assert "map(" in text
        assert "slide(3, 1," in text
        assert "pad(1, 1, clamp," in text
        assert "reduce(add, 0.0," in text

    def test_printer_covers_tuple_and_at(self):
        program = L.fun_n(1, lambda t: L.at(1, L.get(0, t)))
        text = pretty(program)
        assert "[1]" in text
        assert ".0" in text

    def test_printer_handles_lowered_primitives(self):
        call = L.map_glb(id_fn, L.lit(0.0), dim=1)
        assert "mapGlb" in pretty(call)
