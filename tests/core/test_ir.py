"""Unit tests for IR expression nodes and structural utilities."""

import pytest

from repro.core import builders as L
from repro.core.ir import (
    FunCall,
    Lambda,
    Literal,
    Param,
    collect,
    replace,
    structurally_equal,
    substitute_params,
)
from repro.core.primitives.algorithmic import Map, Split
from repro.core.types import Float
from repro.core.userfuns import add, id_fn


class TestConstruction:
    def test_param_gets_fresh_name(self):
        assert Param().name != Param().name

    def test_funcall_requires_callable(self):
        with pytest.raises(TypeError):
            FunCall("not a function", Param())

    def test_lambda_is_both_expr_and_decl(self):
        p = Param("x")
        lam = Lambda([p], p)
        assert lam.arity() == 1
        assert lam.children() == (p,)

    def test_userfun_arity_and_call(self):
        assert add.arity() == 2
        assert add(2.0, 3.0) == 5.0

    def test_userfun_mismatched_names_types_raises(self):
        from repro.core.ir import UserFun

        with pytest.raises(ValueError):
            UserFun("bad", ["x"], "return x;", [Float, Float], Float, lambda x: x)


class TestTraversal:
    def test_walk_is_postorder(self):
        p = Param("x")
        call = L.map(id_fn, p)
        nodes = list(call.walk())
        assert nodes[-1] is call
        assert p in nodes

    def test_contains_by_identity(self):
        p = Param("x")
        expr = L.slide(3, 1, L.pad(1, 1, L.CLAMP, p))
        assert expr.contains(p)
        assert not expr.contains(Param("x"))

    def test_collect_finds_matching_nodes(self):
        p = Param("x")
        expr = L.map(id_fn, L.map(id_fn, p))
        maps = collect(expr, lambda e: isinstance(e, FunCall) and isinstance(e.fun, Map))
        assert len(maps) == 2


class TestReplace:
    def test_replace_argument(self):
        p, q = Param("x"), Param("y")
        expr = L.slide(3, 1, p)
        replaced = replace(expr, p, q)
        assert replaced.args[0] is q
        assert expr.args[0] is p  # original untouched

    def test_replace_deep_inside_lambda(self):
        p = Param("x")
        inner = L.pad(1, 1, L.CLAMP, p)
        expr = L.map(lambda nbh: L.reduce(add, 0.0, nbh), L.slide(3, 1, inner))
        replacement = L.pad(2, 2, L.MIRROR, p)
        rewritten = replace(expr, inner, replacement)
        pads = collect(rewritten, lambda e: isinstance(e, FunCall) and e.fun.name == "pad")
        assert any(f.fun.left == 2 for f in pads)

    def test_replace_returns_same_object_when_target_absent(self):
        p = Param("x")
        expr = L.join(p)
        assert replace(expr, Param("unrelated"), p) is expr


class TestSubstituteParams:
    def test_substitution_binds_free_params(self):
        p, q = Param("x"), Param("y")
        expr = L.split(2, p)
        substituted = substitute_params(expr, {p: q})
        assert substituted.args[0] is q

    def test_substitution_respects_shadowing(self):
        p = Param("x")
        lam = Lambda([p], p)
        substituted = substitute_params(lam, {p: Literal(1.0, Float)})
        # The lambda's own parameter shadows the outer binding.
        assert substituted.body is p


class TestStructuralEquality:
    def test_identical_structure_is_equal(self):
        a = L.fun_n(1, lambda x: L.slide(3, 1, L.pad(1, 1, L.CLAMP, x)))
        b = L.fun_n(1, lambda x: L.slide(3, 1, L.pad(1, 1, L.CLAMP, x)))
        assert structurally_equal(a, b)

    def test_different_static_parameters_differ(self):
        a = L.fun_n(1, lambda x: L.split(2, x))
        b = L.fun_n(1, lambda x: L.split(4, x))
        assert not structurally_equal(a, b)

    def test_literal_equality(self):
        assert structurally_equal(Literal(1.0, Float), Literal(1.0, Float))
        assert not structurally_equal(Literal(1.0, Float), Literal(2.0, Float))

    def test_primitive_static_key(self):
        assert Split(4).static_key() == Split(4).static_key()
        assert Split(4).static_key() != Split(8).static_key()
