"""Tests for the typing rules of the Lift primitives (paper §3.1 and §3.2)."""

import pytest

from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.typecheck import check_program
from repro.core.types import ArrayType, Float, TupleType, TypeError_, array
from repro.core.userfuns import add, id_fn, mult


def typed(builder, *input_types):
    program = L.fun(list(input_types), builder)
    return check_program(program, list(input_types))


class TestMapReduceTypes:
    def test_map_preserves_length(self):
        t = typed(lambda a: L.map(id_fn, a), array(Float, 10))
        assert t == array(Float, 10)

    def test_map_preserves_symbolic_length(self):
        n = Var("N")
        program = L.fun([array(Float, n)], lambda a: L.map(id_fn, a))
        assert check_program(program, [array(Float, n)]) == array(Float, n)

    def test_reduce_produces_singleton_array(self):
        t = typed(lambda a: L.reduce(add, 0.0, a), array(Float, 10))
        assert t == array(Float, 1)

    def test_reduce_operator_type_mismatch_rejected(self):
        bad = L.fun([array(Float, 4)], lambda a: L.reduce(lambda x, y: L.tuple_(x, y), 0.0, a))
        with pytest.raises(TypeError_):
            check_program(bad, [array(Float, 4)])

    def test_map_over_scalar_rejected(self):
        bad = L.fun([Float], lambda a: L.map(id_fn, a))
        with pytest.raises(TypeError_):
            check_program(bad, [Float])


class TestZipSplitJoin:
    def test_zip_builds_tuple_elements(self):
        t = typed(lambda a: L.zip(a, a), array(Float, 8))
        assert t == ArrayType(TupleType(Float, Float), 8)

    def test_zip_length_mismatch_rejected(self):
        program = L.fun([array(Float, 8), array(Float, 9)], lambda a, b: L.zip(a, b))
        with pytest.raises(TypeError_):
            check_program(program, [array(Float, 8), array(Float, 9)])

    def test_split_join_roundtrip_type(self):
        t = typed(lambda a: L.join(L.split(4, a)), array(Float, 12))
        assert t == array(Float, 12)

    def test_split_adds_dimension(self):
        t = typed(lambda a: L.split(4, a), array(Float, 12))
        assert t == array(Float, 3, 4)

    def test_transpose_swaps_dimensions(self):
        t = typed(lambda a: L.transpose(a), array(Float, 3, 5))
        assert t == array(Float, 5, 3)

    def test_at_and_get_types(self):
        t = typed(lambda a: L.at(2, a), array(Float, 5))
        assert t == Float
        t2 = typed(lambda a: L.get(1, L.at(0, L.zip(a, a))), array(Float, 5))
        assert t2 == Float

    def test_at_out_of_bounds_rejected(self):
        bad = L.fun([array(Float, 3)], lambda a: L.at(7, a))
        with pytest.raises(TypeError_):
            check_program(bad, [array(Float, 3)])


class TestStencilPrimitiveTypes:
    def test_pad_enlarges_array(self):
        t = typed(lambda a: L.pad(2, 3, L.CLAMP, a), array(Float, 10))
        assert t == array(Float, 15)

    def test_pad_constant_enlarges_array(self):
        t = typed(lambda a: L.pad_constant(1, 1, 0.0, a), array(Float, 10))
        assert t == array(Float, 12)

    def test_slide_window_count_matches_paper_formula(self):
        # (n - size + step) / step windows of length size
        t = typed(lambda a: L.slide(3, 1, a), array(Float, 10))
        assert t == array(Float, 8, 3)

    def test_slide_with_step(self):
        t = typed(lambda a: L.slide(5, 3, a), array(Float, 17))
        assert t == array(Float, 5, 5)

    def test_slide_symbolic_size(self):
        n = Var("N")
        program = L.fun([array(Float, n)], lambda a: L.slide(3, 1, a))
        t = check_program(program, [array(Float, n)])
        assert t.size == n - 2

    def test_pad_then_slide_is_length_preserving(self):
        # pad(1,1) followed by slide(3,1) keeps the original element count.
        t = typed(lambda a: L.slide(3, 1, L.pad(1, 1, L.CLAMP, a)), array(Float, 10))
        assert t == array(Float, 10, 3)

    def test_stencil_nd_type_2d(self):
        t = typed(
            lambda a: L.map_nd(
                lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
                L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, a, 2), 2),
                2,
            ),
            array(Float, 6, 7),
        )
        assert t == array(Float, 6, 7, 1)

    def test_slide_nd_creates_nd_neighbourhoods(self):
        t = typed(lambda a: L.slide_nd(3, 1, a, 2), array(Float, 6, 7))
        assert t == array(Float, 4, 5, 3, 3)

    def test_slide3_type(self):
        t = typed(lambda a: L.slide_nd(3, 1, a, 3), array(Float, 5, 6, 7))
        assert t == array(Float, 3, 4, 5, 3, 3, 3)


class TestUserFunctions:
    def test_userfun_applied_to_scalars(self):
        t = typed(lambda a: L.map(lambda x: L.lit(x), a), array(Float, 4))
        assert t == array(Float, 4)

    def test_userfun_wrong_arity_rejected(self):
        from repro.core.ir import FunCall

        bad = L.fun([array(Float, 4)], lambda a: L.map(lambda x: FunCall(add, x), a))
        with pytest.raises(TypeError_):
            check_program(bad, [array(Float, 4)])

    def test_userfun_scalar_argument_required(self):
        from repro.core.ir import FunCall

        bad = L.fun([array(Float, 4, 4)], lambda a: L.map(lambda row: FunCall(mult, row, row), a))
        with pytest.raises(TypeError_):
            check_program(bad, [array(Float, 4, 4)])

    def test_program_arity_mismatch(self):
        program = L.fun([array(Float, 4)], lambda a: L.join(L.split(2, a)))
        with pytest.raises(TypeError_):
            check_program(program, [array(Float, 4), array(Float, 4)])
