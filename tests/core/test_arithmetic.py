"""Unit tests for the symbolic arithmetic used in array sizes."""

import pytest

from repro.core.arithmetic import (
    ArithmeticError_,
    Cst,
    FloorDiv,
    Var,
    arith_max,
    exact_div,
    modulo,
)


class TestConstants:
    def test_constant_equality_with_int(self):
        assert Cst(4) == 4
        assert Cst(4) == Cst(4)
        assert Cst(4) != Cst(5)

    def test_addition_of_constants_folds(self):
        assert Cst(2) + Cst(3) == 6 - 1

    def test_subtraction_and_negation(self):
        assert Cst(5) - 3 == Cst(2)
        assert -Cst(3) == Cst(-3)

    def test_multiplication_by_zero(self):
        assert Cst(0) * Var("n") == Cst(0)

    def test_multiplication_by_one_is_identity(self):
        n = Var("n")
        assert Cst(1) * n == n


class TestVariables:
    def test_variable_plus_zero_is_variable(self):
        n = Var("n")
        assert n + 0 == n

    def test_like_terms_collect(self):
        n = Var("n")
        assert n + n == 2 * n
        assert 3 * n - n == 2 * n

    def test_terms_cancel_to_zero(self):
        n = Var("n")
        assert n - n == Cst(0)

    def test_sum_is_commutative(self):
        n, m = Var("n"), Var("m")
        assert n + m == m + n

    def test_product_is_commutative(self):
        n, m = Var("n"), Var("m")
        assert n * m == m * n

    def test_distribution_over_sum(self):
        n = Var("n")
        assert 2 * (n + 1) == 2 * n + 2

    def test_free_variables(self):
        n, m = Var("n"), Var("m")
        assert (n * m + 3).free_variables() == {"n", "m"}


class TestSubstitutionAndEvaluation:
    def test_substitute_to_constant(self):
        n = Var("n")
        assert (n + 2).substitute({"n": 5}) == Cst(7)

    def test_evaluate_with_environment(self):
        n, m = Var("n"), Var("m")
        assert (n * m + 1).evaluate({"n": 3, "m": 4}) == 13

    def test_evaluate_unbound_raises(self):
        with pytest.raises(ArithmeticError_):
            Var("n").evaluate({})

    def test_substitute_expression(self):
        n, m = Var("n"), Var("m")
        assert (n + 1).substitute({"n": m * 2}) == 2 * m + 1


class TestDivision:
    def test_exact_constant_division(self):
        assert exact_div(Cst(12), Cst(3)) == Cst(4)

    def test_division_by_one(self):
        n = Var("n")
        assert exact_div(n, Cst(1)) == n

    def test_division_of_product_cancels_factor(self):
        n, m = Var("n"), Var("m")
        assert exact_div(n * m, m) == n

    def test_division_distributes_over_sum(self):
        n = Var("n")
        assert exact_div(2 * n + 4, Cst(2)) == n + 2

    def test_inexact_division_raises_without_floor(self):
        with pytest.raises(ArithmeticError_):
            exact_div(Var("n"), Cst(2))

    def test_inexact_division_builds_floordiv_node(self):
        result = exact_div(Var("n"), Cst(2), allow_floor=True)
        assert isinstance(result, FloorDiv)
        assert result.substitute({"n": 9}) == Cst(4)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            exact_div(Var("n"), Cst(0))

    def test_slide_window_count_formula(self):
        # (n - size + step) / step with size=3, step=1 must simplify to n - 2.
        n = Var("n")
        assert exact_div(n - 3 + 1, Cst(1), allow_floor=True) == n - 2


class TestModuloAndMax:
    def test_constant_modulo(self):
        assert modulo(Cst(7), Cst(3)) == Cst(1)

    def test_modulo_by_one_is_zero(self):
        assert modulo(Var("n"), Cst(1)) == Cst(0)

    def test_modulo_self_is_zero(self):
        n = Var("n")
        assert modulo(n, n) == Cst(0)

    def test_max_of_constants(self):
        assert arith_max(3, 7) == Cst(7)

    def test_max_of_equal_expressions(self):
        n = Var("n")
        assert arith_max(n, n) == n


class TestHashingAndRepr:
    def test_equal_expressions_hash_equal(self):
        n = Var("n")
        assert hash(n + 1) == hash(1 + n)

    def test_repr_is_readable(self):
        n = Var("n")
        assert "n" in repr(n + 2)
