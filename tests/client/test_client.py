"""The client library: retry semantics, config, auth, pooling."""

import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import (
    ClientConfig,
    RetryPolicy,
    StencilClient,
    TcpTransport,
    Transport,
    TransportError,
    attach_auth,
    auth_headers,
)
from repro.service import ExecutionRequest, ExecutionResponse


def _response(**overrides):
    fields = dict(result=None, benchmark="stencil2d", digest="d", variant="v",
                  plan_source="default", batch_size=1, batched=False,
                  latency_s=0.001)
    fields.update(overrides)
    return ExecutionResponse(**fields)


class ScriptedTransport(Transport):
    """Raises the scripted errors in order, then succeeds."""

    def __init__(self, failures):
        self.failures = list(failures)
        self.attempts = 0

    def submit(self, request, timeout_s):
        self.attempts += 1
        if self.failures:
            raise self.failures.pop(0)
        return _response()

    def close(self):
        pass


class FixedRandom:
    def random(self):
        return 0.0


def _client(transport, retries=2):
    config = ClientConfig(retry=RetryPolicy(
        retries=retries, backoff_base_s=0.0, backoff_max_s=0.0))
    return StencilClient(config, transport=transport, rng=FixedRandom())


def _request():
    return ExecutionRequest.for_benchmark("stencil2d", shape=(6, 6),
                                          return_result=False)


class TestRetrySemantics:
    def test_retries_connect_class_failures_until_success(self):
        transport = ScriptedTransport([
            TransportError("connect refused", retryable=True),
            TransportError("timed out before response", retryable=True),
        ])
        client = _client(transport, retries=2)
        response = client.execute(_request())
        assert response.ok
        assert transport.attempts == 3
        assert client.retries_attempted == 2

    def test_never_retries_after_a_response_byte(self):
        """Property (iv): a non-retryable failure is surfaced immediately."""
        transport = ScriptedTransport([
            TransportError("connection lost mid-response", retryable=False),
        ])
        client = _client(transport, retries=5)
        with pytest.raises(TransportError):
            client.execute(_request())
        assert transport.attempts == 1
        assert client.retries_attempted == 0

    def test_retry_budget_is_bounded(self):
        transport = ScriptedTransport([
            TransportError("connect refused", retryable=True)
            for _ in range(10)
        ])
        client = _client(transport, retries=2)
        with pytest.raises(TransportError):
            client.execute(_request())
        assert transport.attempts == 3  # 1 try + 2 retries, never more

    @settings(max_examples=30, deadline=None)
    @given(script=st.lists(st.booleans(), min_size=0, max_size=6),
           retries=st.integers(min_value=0, max_value=4))
    def test_attempt_accounting_for_any_failure_script(self, script, retries):
        """For any sequence of retryable/final failures: one extra attempt
        per leading retryable failure (within budget), none after a final
        failure."""
        failures = [TransportError("e", retryable=flag) for flag in script]
        transport = ScriptedTransport(failures)
        client = _client(transport, retries=retries)
        leading_retryable = 0
        for flag in script:
            if not flag:
                break
            leading_retryable += 1
        try:
            response = client.execute(_request())
            succeeded = True
        except TransportError:
            succeeded = False
        if leading_retryable == len(script) and leading_retryable <= retries:
            assert succeeded
            assert transport.attempts == len(script) + 1
        elif leading_retryable >= retries:
            # Budget exhausted among the retryable prefix.
            assert not succeeded
            assert transport.attempts == retries + 1
        else:
            # A final failure inside the budget stops everything.
            assert not succeeded
            assert transport.attempts == leading_retryable + 1

    def test_connect_refused_is_retryable_for_real_sockets(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        transport = TcpTransport("127.0.0.1", free_port)
        with pytest.raises(TransportError) as excinfo:
            transport.submit(_request(), timeout_s=2.0)
        assert excinfo.value.retryable
        transport.close()

    def test_close_before_any_byte_is_retryable(self):
        """A server that accepts and drops the socket never sent a byte —
        the request provably did not execute, so the failure is retryable."""
        accepted = threading.Event()
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def drop_first_connection():
            conn, _ = listener.accept()
            conn.close()
            accepted.set()

        thread = threading.Thread(target=drop_first_connection, daemon=True)
        thread.start()
        transport = TcpTransport("127.0.0.1", port)
        try:
            with pytest.raises(TransportError) as excinfo:
                transport.submit(_request(), timeout_s=2.0)
            assert excinfo.value.retryable
        finally:
            transport.close()
            listener.close()
            thread.join(timeout=5)


class RespondingTransport(Transport):
    """Returns the scripted responses in order (the last one repeats)."""

    def __init__(self, responses):
        self.responses = list(responses)
        self.attempts = 0

    def submit(self, request, timeout_s):
        self.attempts += 1
        if len(self.responses) > 1:
            return self.responses.pop(0)
        return self.responses[0]

    def close(self):
        pass


def _rejection(retry_after_ms=20.0):
    from repro.service.requests import ADMISSION_REJECTED

    return _response(error="admission rejected", code=ADMISSION_REJECTED,
                     retry_after_ms=retry_after_ms)


class TestAdmissionRetry:
    """429-style rejections are retried honouring ``retry_after_ms``."""

    def test_rejection_is_retried_until_admitted(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.client.client.time.sleep", sleeps.append)
        transport = RespondingTransport([_rejection(retry_after_ms=20.0),
                                         _response()])
        client = _client(transport, retries=2)
        response = client.execute(_request())
        assert response.ok
        assert transport.attempts == 2
        assert client.retries_attempted == 1
        # Zero-backoff policy: the wait is exactly the server's hint.
        assert sleeps == [pytest.approx(0.02)]

    def test_wait_is_the_larger_of_hint_and_backoff(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.client.client.time.sleep", sleeps.append)
        config = ClientConfig(retry=RetryPolicy(
            retries=1, backoff_base_s=0.5, backoff_max_s=0.5))
        transport = RespondingTransport([_rejection(retry_after_ms=20.0),
                                         _response()])
        client = StencilClient(config, transport=transport, rng=FixedRandom())
        assert client.execute(_request()).ok
        assert sleeps == [pytest.approx(0.5)]  # backoff dominates the hint

    def test_exhausted_retries_return_the_rejection_not_raise(self,
                                                              monkeypatch):
        monkeypatch.setattr("repro.client.client.time.sleep", lambda s: None)
        transport = RespondingTransport([_rejection()])
        client = _client(transport, retries=2)
        response = client.execute(_request())
        assert response.rejected
        assert transport.attempts == 3  # 1 try + 2 retries, never more

    def test_hint_past_the_call_deadline_returns_immediately(self,
                                                             monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.client.client.time.sleep", sleeps.append)
        transport = RespondingTransport([_rejection(retry_after_ms=60_000.0)])
        client = _client(transport, retries=3)
        response = client.execute(_request(), timeout_s=0.5)
        assert response.rejected
        assert transport.attempts == 1  # a doomed retry is never attempted
        assert sleeps == []


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(retries=5, backoff_base_s=0.1, backoff_max_s=0.5)
        bare = [policy.delay_s(attempt, jitter=0.0) for attempt in range(5)]
        assert bare == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_extends_but_never_shrinks(self):
        policy = RetryPolicy(backoff_base_s=0.1)
        assert policy.delay_s(0, jitter=0.99) == pytest.approx(0.199)
        assert policy.delay_s(0, jitter=0.0) == pytest.approx(0.1)


class TestConfigAndAuth:
    def test_unknown_transport_is_rejected(self):
        with pytest.raises(ValueError):
            ClientConfig(transport="carrier-pigeon")

    def test_config_or_overrides_not_both(self):
        with pytest.raises(ValueError):
            StencilClient(ClientConfig(), port=1234)

    def test_overrides_build_a_config(self):
        client = StencilClient(transport=ScriptedTransport([]), port=9999,
                               deadline_ms=25.0)
        assert client.config.port == 9999
        assert client.config.deadline_ms == 25.0

    def test_config_default_deadline_is_stamped_onto_requests(self):
        class Capture(ScriptedTransport):
            def submit(self, request, timeout_s):
                self.last = request
                return super().submit(request, timeout_s)

        transport = Capture([])
        client = StencilClient(ClientConfig(deadline_ms=75.0),
                               transport=transport)
        client.execute(_request())
        assert transport.last.deadline_ms == 75.0
        explicit = _request()
        explicit.deadline_ms = 10.0
        client.execute(explicit)
        assert transport.last.deadline_ms == 10.0  # per-request wins

    def test_auth_helpers(self):
        assert auth_headers("k") == {"Authorization": "Bearer k"}
        assert auth_headers(None) == {}
        message = {"benchmark": "stencil2d"}
        assert attach_auth(dict(message), None) == message
        stamped = attach_auth(dict(message), "k")
        assert stamped["auth"] == "k"
