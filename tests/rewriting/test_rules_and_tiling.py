"""Tests for the rewrite-rule machinery and the overlapped-tiling rule (paper §4.1)."""

import numpy as np
import pytest

from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.ir import FunCall, Lambda
from repro.core.types import Float, array
from repro.core.userfuns import add
from repro.rewriting.algorithmic_rules import (
    MapFusionRule,
    MapJoinInterchangeRule,
    SlideTilingDecompositionRule,
    SplitJoinRule,
    TileStencil1DRule,
    TileStencilNDRule,
    match_slide_nd,
    match_stencil,
    tiling_is_valid,
)
from repro.rewriting.rules import (
    LambdaRule,
    RuleApplicationError,
    apply_at,
    apply_everywhere,
    apply_first,
    find_applications,
)
from repro.runtime.interpreter import evaluate_program

from ..conftest import interpret_to_array


def jacobi1d(n_var="N"):
    return L.fun(
        [array(Float, Var(n_var))],
        lambda a: L.map(lambda nbh: L.reduce(add, 0.0, nbh),
                        L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))),
    )


def boxsum2d():
    return L.fun(
        [array(Float, Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, a, 2), 2),
            2,
        ),
    )


def boxsum3d():
    return L.fun(
        [array(Float, Var("A"), Var("B"), Var("C"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(L.join(nbh))),
            L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, a, 3), 3),
            3,
        ),
    )


class TestRuleMachinery:
    def test_apply_at_unmatched_position_raises(self):
        program = jacobi1d()
        rule = MapJoinInterchangeRule()
        with pytest.raises(RuleApplicationError):
            rule.apply(program.body)

    def test_find_applications_returns_positions(self):
        program = jacobi1d()
        rule = TileStencil1DRule(tile_size=6)
        assert len(find_applications(program.body, rule)) == 1

    def test_apply_first_returns_none_without_match(self):
        program = jacobi1d()
        assert apply_first(program.body, MapJoinInterchangeRule()) is None

    def test_apply_everywhere_reaches_fixed_point(self):
        program = jacobi1d()
        from repro.rewriting.lowering_rules import LowerReduceSeqRule

        rewritten = apply_everywhere(program.body, LowerReduceSeqRule())
        assert apply_first(rewritten, LowerReduceSeqRule()) is None

    def test_lambda_rule_wraps_python_functions(self):
        rule = LambdaRule("never", lambda e: False, lambda e: e)
        assert not rule.matches(jacobi1d().body)


class TestStencilMatching:
    def test_match_1d_stencil(self):
        match = match_stencil(jacobi1d().body)
        assert match is not None and match.ndims == 1

    def test_match_2d_stencil(self):
        matches = [match_stencil(n) for n in boxsum2d().body.walk()]
        dims = [m.ndims for m in matches if m is not None]
        assert 2 in dims

    def test_match_3d_stencil(self):
        matches = [match_stencil(n) for n in boxsum3d().body.walk()]
        dims = [m.ndims for m in matches if m is not None]
        assert 3 in dims

    def test_match_slide_nd_depths(self):
        body2 = L.slide_nd(3, 1, L.fun_n(1, lambda x: x).params[0], 2)
        assert match_slide_nd(body2)[0] == 2

    def test_reorder_map_is_not_a_stencil(self):
        # The map(transpose, slide(...)) inside slideN must not be mistaken for
        # a stencil computation.
        p = L.fun_n(1, lambda x: L.slide_nd(3, 1, x, 2))
        inner_matches = [match_stencil(n) for n in p.body.walk()]
        assert all(m is None for m in inner_matches)

    def test_plain_map_is_not_a_stencil(self):
        program = L.fun([array(Float, 8)], lambda a: L.map(lambda x: x, a))
        assert match_stencil(program.body) is None


class TestClassicRules:
    def test_map_fusion_preserves_semantics(self):
        from repro.core.userfuns import mult

        program = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.map(lambda x: FunCall(mult, x, L.lit(2.0)),
                            L.map(lambda x: FunCall(add, x, L.lit(1.0)), a)),
        )
        rule = MapFusionRule()
        fused_body = apply_first(program.body, rule)
        assert fused_body is not None
        fused = Lambda(program.params, fused_body)
        data = [1.0, 2.0, 3.0]
        assert evaluate_program(program, [data]) == evaluate_program(fused, [data])
        # After fusion there is a single map left.
        assert apply_first(fused_body, rule) is None

    def test_split_join_preserves_semantics(self):
        program = L.fun(
            [array(Float, Var("N"))],
            lambda a: L.map(lambda x: FunCall(add, x, L.lit(1.0)), a),
        )
        rewritten = Lambda(program.params, apply_first(program.body, SplitJoinRule(2)))
        data = [float(i) for i in range(8)]
        assert evaluate_program(program, [data]) == evaluate_program(rewritten, [data])

    def test_slide_decomposition_rule(self):
        """slide(n,s) == join(map(slide(n,s), slide(u,v))) — half of the tiling proof."""
        program = L.fun([array(Float, Var("N"))], lambda a: L.slide(3, 1, a))
        rewritten = Lambda(
            program.params, apply_first(program.body, SlideTilingDecompositionRule(6))
        )
        data = [float(i) for i in range(14)]  # (14 - 6) % 4 == 0
        assert evaluate_program(program, [data]) == evaluate_program(rewritten, [data])

    def test_map_join_interchange(self):
        program = L.fun(
            [array(Float, Var("N"), Var("M"))],
            lambda a: L.map(lambda x: FunCall(add, x, L.lit(1.0)), L.join(a)),
        )
        rewritten = Lambda(
            program.params, apply_first(program.body, MapJoinInterchangeRule())
        )
        grid = np.arange(12, dtype=float).reshape(3, 4)
        assert evaluate_program(program, [grid]) == evaluate_program(rewritten, [grid])


class TestOverlappedTiling:
    """The paper's new rewrite rule, in 1, 2 and 3 dimensions."""

    @pytest.mark.parametrize("tile_size,n", [(4, 10), (6, 12), (10, 16)])
    def test_1d_tiling_preserves_semantics(self, tile_size, n):
        program = jacobi1d()
        rule = TileStencil1DRule(tile_size=tile_size)
        target = find_applications(program.body, rule)[0]
        tiled = Lambda(program.params, apply_at(program.body, rule, target))
        data = [float(i * i % 7) for i in range(n)]
        assert evaluate_program(program, [data]) == evaluate_program(tiled, [data])

    def test_validity_constraint(self):
        # size - step = u - v must hold and tiles must cover the input exactly.
        assert tiling_is_valid(input_length=14, size=3, step=1, tile_size=6)
        assert not tiling_is_valid(input_length=13, size=3, step=1, tile_size=6)
        assert not tiling_is_valid(input_length=14, size=3, step=1, tile_size=2)

    def test_2d_tiling_preserves_semantics(self):
        program = boxsum2d()
        rule = TileStencilNDRule(tile_size=6, ndims=2)
        candidates = [n for n in program.body.walk()
                      if rule.matches(n) and match_stencil(n).ndims == 2]
        tiled = Lambda(program.params, apply_at(program.body, rule, candidates[0]))
        grid = np.arange(144, dtype=float).reshape(12, 12)
        assert np.allclose(
            interpret_to_array(program, [grid]), interpret_to_array(tiled, [grid])
        )

    def test_3d_tiling_preserves_semantics(self):
        program = boxsum3d()
        rule = TileStencilNDRule(tile_size=6, ndims=3)
        candidates = [n for n in program.body.walk()
                      if rule.matches(n) and match_stencil(n).ndims == 3]
        assert candidates, "3D stencil must be matched by the ND tiling rule"
        tiled = Lambda(program.params, apply_at(program.body, rule, candidates[0]))
        # Padded extents (6, 10, 14) are exactly covered by tiles of width 6 / step 4.
        grid = np.arange(4 * 8 * 12, dtype=float).reshape(4, 8, 12) % 11
        assert np.allclose(
            interpret_to_array(program, [grid]), interpret_to_array(tiled, [grid])
        )

    def test_tiling_changes_expression_structure(self):
        program = jacobi1d()
        rule = TileStencil1DRule(tile_size=6)
        tiled_body = apply_first(program.body, rule)
        from repro.core.primitives.algorithmic import Join
        from repro.core.primitives.stencil import Slide

        joins = [n for n in tiled_body.walk()
                 if isinstance(n, FunCall) and isinstance(n.fun, Join)]
        slides = [n for n in tiled_body.walk()
                  if isinstance(n, FunCall) and isinstance(n.fun, Slide)]
        assert joins, "tiling introduces a join"
        assert len(slides) >= 2, "tiling uses slide twice (tiles + neighbourhoods)"
