"""Tests for the lowering rules, lowering strategies and macro exploration."""

import numpy as np
import pytest

from repro.core import builders as L
from repro.core.arithmetic import Var
from repro.core.ir import FunCall
from repro.core.primitives.opencl import (
    MapGlb,
    MapLcl,
    MapWrg,
    ReduceSeq,
    ReduceUnroll,
    ToLocal,
)
from repro.core.types import Float, array
from repro.core.userfuns import add, id_fn
from repro.rewriting.lowering_rules import (
    IdInsertionRule,
    LowerMapRule,
    LowerReduceSeqRule,
    LowerReduceUnrollRule,
    ToLocalRule,
)
from repro.rewriting.exploration import candidate_strategies, explore
from repro.rewriting.rules import apply_everywhere, apply_first, find_applications
from repro.rewriting.strategies import (
    LoweringError,
    NAIVE,
    Strategy,
    lower_program,
    tiled_strategy,
)

from ..conftest import golden_box_sum_2d, interpret_to_array


def boxsum2d():
    return L.fun(
        [array(Float, Var("N"), Var("M"))],
        lambda a: L.map_nd(
            lambda nbh: L.reduce(add, 0.0, L.join(nbh)),
            L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, a, 2), 2),
            2,
        ),
        names=["grid"],
    )


def multigrid2d():
    """A Hotspot-like two-grid stencil."""
    return L.fun(
        [array(Float, Var("N"), Var("M"))] * 2,
        lambda t, p: L.map_nd(
            lambda pair: FunCall(
                add, L.at(1, L.at(1, L.get(0, pair))), L.get(1, pair)
            ),
            L.zip_nd([L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, t, 2), 2), p], 2),
            2,
        ),
        names=["temp", "power"],
    )


class TestLoweringRules:
    def test_reduce_lowered_to_sequential(self):
        program = boxsum2d()
        lowered = apply_everywhere(program.body, LowerReduceSeqRule())
        assert any(
            isinstance(n, FunCall) and isinstance(n.fun, ReduceSeq) for n in lowered.walk()
        )

    def test_reduce_lowered_to_unrolled(self):
        program = boxsum2d()
        lowered = apply_everywhere(program.body, LowerReduceUnrollRule())
        assert any(
            isinstance(n, FunCall) and isinstance(n.fun, ReduceUnroll) for n in lowered.walk()
        )

    def test_map_lowered_to_mapglb(self):
        program = L.fun([array(Float, 8)], lambda a: L.map(id_fn, a))
        lowered = apply_first(program.body, LowerMapRule(MapGlb, dim=0))
        assert isinstance(lowered.fun, MapGlb)

    def test_to_local_rule_matches_map_id_only(self):
        copy = L.map(id_fn, L.fun_n(1, lambda x: x).params[0])
        rule = ToLocalRule()
        assert rule.matches(copy)
        rewritten = rule.apply(copy)
        assert isinstance(rewritten.fun, ToLocal)
        compute = L.map(lambda nbh: L.reduce(add, 0.0, nbh), copy)
        assert not rule.matches(compute)

    def test_id_insertion_rule_wraps_arrays(self):
        program = boxsum2d()
        from repro.core.typecheck import check_program

        check_program(program, [array(Float, 6, 6)])
        rule = IdInsertionRule()
        positions = find_applications(program.body, rule)
        assert positions
        rewritten = rule.apply(positions[0])
        # The inserted copy is semantically the identity.
        assert rewritten.fun.name == "map"


class TestStrategies:
    def test_naive_lowering_uses_global_threads(self):
        lowered = lower_program(boxsum2d(), NAIVE)
        assert not lowered.uses_tiling
        glbs = [n for n in lowered.program.body.walk()
                if isinstance(n, FunCall) and isinstance(n.fun, MapGlb)]
        assert len(glbs) == 2  # one per dimension

    def test_naive_lowering_preserves_semantics(self):
        program = boxsum2d()
        lowered = lower_program(program, NAIVE)
        grid = np.random.default_rng(0).random((8, 9))
        assert np.allclose(
            interpret_to_array(lowered.program, [grid]), golden_box_sum_2d(grid)
        )

    def test_tiled_lowering_uses_workgroups_and_local_memory(self):
        lowered = lower_program(boxsum2d(), tiled_strategy(6))
        body = lowered.program.body
        assert lowered.uses_tiling and lowered.uses_local_memory
        assert any(isinstance(n, FunCall) and isinstance(n.fun, MapWrg) for n in body.walk())
        assert any(isinstance(n, FunCall) and isinstance(n.fun, MapLcl) for n in body.walk())
        assert any(isinstance(n, FunCall) and isinstance(n.fun, ToLocal) for n in body.walk())

    def test_tiled_lowering_preserves_semantics(self):
        program = boxsum2d()
        lowered = lower_program(program, tiled_strategy(6))
        grid = np.random.default_rng(1).random((12, 12))
        assert np.allclose(
            interpret_to_array(lowered.program, [grid]), golden_box_sum_2d(grid)
        )

    def test_tiled_without_local_memory(self):
        lowered = lower_program(boxsum2d(), tiled_strategy(6, use_local_memory=False))
        assert lowered.uses_tiling and not lowered.uses_local_memory
        assert not any(
            isinstance(n, FunCall) and isinstance(n.fun, ToLocal)
            for n in lowered.program.body.walk()
        )

    def test_multigrid_program_lowers_naively(self):
        lowered = lower_program(multigrid2d(), NAIVE)
        assert lowered.multi_grid
        assert lowered.ndims == 2

    def test_multigrid_program_rejects_tiling(self):
        with pytest.raises(LoweringError):
            lower_program(multigrid2d(), tiled_strategy(6))

    def test_multigrid_naive_lowering_preserves_semantics(self):
        program = multigrid2d()
        lowered = lower_program(program, NAIVE)
        rng = np.random.default_rng(2)
        temp, power = rng.random((6, 7)), rng.random((6, 7))
        assert np.allclose(
            interpret_to_array(program, [temp, power]),
            interpret_to_array(lowered.program, [temp, power]),
        )


class TestExploration:
    def test_candidate_strategies_respect_tiling_validity(self):
        strategies = candidate_strategies(
            stencil_size=3, stencil_step=1, padded_length=14, tile_sizes=(4, 6, 7)
        )
        tiled = [s for s in strategies if s.use_tiling]
        assert {s.tile_size for s in tiled} == {4, 6}  # 7 does not divide evenly

    def test_candidate_strategies_include_naive(self):
        strategies = candidate_strategies(3, 1, 14, tile_sizes=())
        assert any(not s.use_tiling for s in strategies)

    def test_explore_produces_multiple_variants(self):
        results = explore(boxsum2d(), stencil_size=3, stencil_step=1,
                          padded_length=14, tile_sizes=(6,))
        descriptions = {r.strategy.describe() for r in results}
        assert any("naive" in d for d in descriptions)
        assert any("tile=6" in d for d in descriptions)

    def test_explore_multigrid_falls_back_to_naive(self):
        results = explore(multigrid2d(), stencil_size=3, stencil_step=1,
                          padded_length=14, tile_sizes=(6,))
        assert results
        assert all(not r.lowered.uses_tiling for r in results)

    def test_strategy_describe_mentions_choices(self):
        assert "tile=8" in tiled_strategy(8).describe()
        assert "localMem" in Strategy("tiled", True, 8, True, True).describe()
