"""The user-facing embedded DSL for constructing Lift expressions.

These helpers mirror the surface syntax used in the paper's listings.  A
3-point Jacobi stencil (Listing 2) is written as::

    from repro.core import builders as L
    from repro.core.userfuns import add

    sum_nbh = L.fun_n(1, lambda nbh: L.reduce(add, 0.0, nbh))
    stencil = L.fun([L.array_type(L.Float, "N")], lambda a:
        L.map(sum_nbh, L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))))

Multi-dimensional wrappers (``map_nd``, ``pad_nd``, ``slide_nd``) follow the
recursive definitions of Section 3.4 of the paper, composing the 1-D
primitives with ``map`` and ``transpose``.
"""

from __future__ import annotations

import builtins

from typing import Callable, List, Optional, Sequence, Union

from .arithmetic import ArithLike, Var
from .ir import Expr, FunCall, FunDecl, Lambda, Literal, Param
from .primitives.algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Id,
    Iterate,
    Join,
    Map,
    Reduce,
    Split,
    Transpose,
    TupleCons,
    Zip,
)
from .primitives.opencl import (
    MapGlb,
    MapLcl,
    MapSeq,
    MapWrg,
    ReduceSeq,
    ReduceUnroll,
    ToGlobal,
    ToLocal,
    ToPrivate,
)
from .primitives.stencil import BOUNDARIES, Boundary, CLAMP, MIRROR, WRAP, Pad, PadConstant, Slide
from .types import Float, Int, Type
from .types import array as array_type

FunLike = Union[FunDecl, Callable[..., Expr]]
ExprLike = Union[Expr, float, int]


# ---------------------------------------------------------------------------
# Coercions
# ---------------------------------------------------------------------------

def lit(value: ExprLike, type_: Type = Float) -> Expr:
    """Coerce a Python number into a :class:`Literal` (expressions pass through)."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("boolean literals are not supported")
    if isinstance(value, int) and type_ is Float:
        type_ = Int if not isinstance(value, float) else Float
    return Literal(value, type_)


def fun_n(arity: int, builder: Callable[..., Expr], names: Optional[Sequence[str]] = None) -> Lambda:
    """Build a :class:`Lambda` of the given arity from a Python body builder."""
    if names is None:
        names = [None] * arity
    params = [Param(name) for name in names]
    body = builder(*params)
    return Lambda(params, lit(body))


def fun(param_types: Sequence[Type], builder: Callable[..., Expr],
        names: Optional[Sequence[str]] = None) -> Lambda:
    """Build a closed top-level :class:`Lambda` with typed parameters.

    ``param_types`` gives the types of the program inputs; the Python
    ``builder`` receives the parameter expressions and returns the body.
    """
    if names is None:
        names = [None] * len(param_types)
    params = [
        Param(name, type_) for name, type_ in builtins.zip(names, param_types)
    ]
    body = builder(*params)
    return Lambda(params, lit(body))


def _as_fundecl(f: FunLike, arity: int = 1) -> FunDecl:
    """Coerce a Python callable into a :class:`Lambda`; pass declarations through."""
    if isinstance(f, FunDecl):
        return f
    if callable(f):
        return fun_n(arity, f)
    raise TypeError(f"expected a function, got {f!r}")


# ---------------------------------------------------------------------------
# Algorithmic primitives
# ---------------------------------------------------------------------------

def map(f: FunLike, arg: Expr) -> FunCall:  # noqa: A001 - mirrors the paper's name
    """``map(f, in)`` — apply ``f`` to every element of ``in``."""
    return FunCall(Map(_as_fundecl(f)), arg)


def reduce(f: FunLike, init: ExprLike, arg: Expr) -> FunCall:  # noqa: A001
    """``reduce(init, f, in)`` — reduce ``in`` with operator ``f``."""
    return FunCall(Reduce(_as_fundecl(f, 2), lit(init)), arg)


def iterate(count: int, f: FunLike, arg: Expr) -> FunCall:
    """``iterate(in, f, m)`` — apply ``f`` to ``in`` ``m`` times."""
    return FunCall(Iterate(count, _as_fundecl(f)), arg)


def zip(*args: Expr) -> FunCall:  # noqa: A001
    """``zip(in1, in2, ...)`` — combine equal-length arrays into tuples."""
    return FunCall(Zip(len(args)), *args)


def split(chunk: ArithLike, arg: Expr) -> FunCall:
    """``split(m, in)`` — split into chunks of ``m`` elements."""
    return FunCall(Split(chunk), arg)


def join(arg: Expr) -> FunCall:
    """``join(in)`` — flatten the two outermost dimensions."""
    return FunCall(Join(), arg)


def transpose(arg: Expr) -> FunCall:
    """``transpose(in)`` — swap the two outermost dimensions."""
    return FunCall(Transpose(), arg)


def at(index: int, arg: Expr) -> FunCall:
    """``in[i]`` — constant-index array access."""
    return FunCall(At(index), arg)


def get(index: int, arg: Expr) -> FunCall:
    """``in.i`` — tuple component access."""
    return FunCall(Get(index), arg)


def tuple_(*args: ExprLike) -> FunCall:
    """Construct a tuple value."""
    return FunCall(TupleCons(len(args)), *[lit(a) for a in args])


def array(size: ArithLike, generator: Callable[[int, int], object],
          elem_type: Type = Float, c_expression: Optional[str] = None) -> FunCall:
    """``array(n, f)`` — lazily generated array (e.g. the acoustic obstacle mask)."""
    return FunCall(ArrayConstructor(size, generator, elem_type, c_expression))


def id_(arg: Expr) -> FunCall:
    """Identity application, used to introduce explicit copies."""
    return FunCall(Id(), arg)


# ---------------------------------------------------------------------------
# Stencil primitives (the paper's additions)
# ---------------------------------------------------------------------------

def pad(left: int, right: int, boundary: Union[Boundary, str], arg: Expr) -> FunCall:
    """``pad(l, r, h, in)`` — boundary handling by re-indexing (clamp/mirror/wrap)."""
    if isinstance(boundary, str):
        boundary = BOUNDARIES[boundary]
    return FunCall(Pad(left, right, boundary), arg)


def pad_constant(left: int, right: int, value: ExprLike, arg: Expr) -> FunCall:
    """``pad(l, r, value, in)`` — boundary handling by appending a constant value."""
    return FunCall(PadConstant(left, right, lit(value)), arg)


def slide(size: ArithLike, step: ArithLike, arg: Expr) -> FunCall:
    """``slide(size, step, in)`` — create overlapping neighbourhoods/tiles."""
    return FunCall(Slide(size, step), arg)


# ---------------------------------------------------------------------------
# Low-level (OpenCL) primitives — used by lowering and by hand-written tests
# ---------------------------------------------------------------------------

def map_glb(f: FunLike, arg: Expr, dim: int = 0) -> FunCall:
    return FunCall(MapGlb(_as_fundecl(f), dim), arg)


def map_wrg(f: FunLike, arg: Expr, dim: int = 0) -> FunCall:
    return FunCall(MapWrg(_as_fundecl(f), dim), arg)


def map_lcl(f: FunLike, arg: Expr, dim: int = 0) -> FunCall:
    return FunCall(MapLcl(_as_fundecl(f), dim), arg)


def map_seq(f: FunLike, arg: Expr) -> FunCall:
    return FunCall(MapSeq(_as_fundecl(f)), arg)


def reduce_seq(f: FunLike, init: ExprLike, arg: Expr) -> FunCall:
    return FunCall(ReduceSeq(_as_fundecl(f, 2), lit(init)), arg)


def reduce_unroll(f: FunLike, init: ExprLike, arg: Expr) -> FunCall:
    return FunCall(ReduceUnroll(_as_fundecl(f, 2), lit(init)), arg)


def to_local(f: FunLike, arg: Expr) -> FunCall:
    return FunCall(ToLocal(_as_fundecl(f)), arg)


def to_global(f: FunLike, arg: Expr) -> FunCall:
    return FunCall(ToGlobal(_as_fundecl(f)), arg)


def to_private(f: FunLike, arg: Expr) -> FunCall:
    return FunCall(ToPrivate(_as_fundecl(f)), arg)


# ---------------------------------------------------------------------------
# Multi-dimensional wrappers (paper §3.4)
# ---------------------------------------------------------------------------

def map_nd(f: FunLike, arg: Expr, ndims: int) -> Expr:
    """``mapN(f, in)`` — apply ``f`` to the elements at nesting depth ``ndims``.

    Defined recursively as ``map1 = map`` and
    ``mapN(f, in) = mapN-1(map(f), in)``.
    """
    if ndims < 1:
        raise ValueError("map_nd requires ndims >= 1")
    f_decl = _as_fundecl(f)
    for _ in range(ndims - 1):
        inner = f_decl
        f_decl = fun_n(1, lambda x, inner=inner: map(inner, x))
    return map(f_decl, arg)


def pad_nd(
    left: Union[int, Sequence[int]],
    right: Union[int, Sequence[int]],
    boundary: Union[Boundary, str, Sequence[Union[Boundary, str]]],
    arg: Expr,
    ndims: int,
) -> Expr:
    """``padN(l, r, h, in)`` — boundary handling in every dimension.

    Defined recursively as ``pad1 = pad`` and
    ``padN(l, r, h, in) = mapN-1(pad(l, r, h), padN-1(l, r, h, in))``.

    ``left``, ``right`` and ``boundary`` may be given per dimension
    (outermost first) to support different boundary handling per dimension.
    """
    lefts = _per_dim(left, ndims)
    rights = _per_dim(right, ndims)
    boundaries = _per_dim(boundary, ndims)

    result = arg
    for dim in range(ndims):
        bnd = boundaries[dim]
        if isinstance(bnd, str):
            bnd = BOUNDARIES[bnd]
        pad_fn = fun_n(1, lambda x, l=lefts[dim], r=rights[dim], b=bnd: pad(l, r, b, x))
        if dim == 0:
            result = pad(lefts[0], rights[0], bnd, result)
        else:
            result = map_nd(pad_fn, result, dim)
    return result


def pad_constant_nd(
    left: Union[int, Sequence[int]],
    right: Union[int, Sequence[int]],
    value: ExprLike,
    arg: Expr,
    ndims: int,
) -> Expr:
    """``padN`` with the constant-value variant (e.g. zero boundaries)."""
    lefts = _per_dim(left, ndims)
    rights = _per_dim(right, ndims)
    result = arg
    for dim in range(ndims):
        if dim == 0:
            result = pad_constant(lefts[0], rights[0], value, result)
        else:
            pad_fn = fun_n(
                1, lambda x, l=lefts[dim], r=rights[dim], v=value: pad_constant(l, r, v, x)
            )
            result = map_nd(pad_fn, result, dim)
    return result


def slide_nd(size: ArithLike, step: ArithLike, arg: Expr, ndims: int) -> Expr:
    """``slideN(size, step, in)`` — create N-dimensional neighbourhoods.

    Defined recursively (paper §3.4): slide the inner dimensions via
    ``map(slideN-1)``, slide the outermost dimension, then move the new
    outermost window dimension inwards with ``map``/``transpose`` so that the
    window dimensions end up innermost.
    """
    if ndims < 1:
        raise ValueError("slide_nd requires ndims >= 1")
    if ndims == 1:
        return slide(size, step, arg)

    inner_slide = fun_n(1, lambda x: slide_nd(size, step, x, ndims - 1))
    outer = slide(size, step, map(inner_slide, arg))
    reorder = fun_n(1, lambda w: _move_outer_dim_in(w, ndims - 1))
    return map(reorder, outer)


def _move_outer_dim_in(window: Expr, depth: int) -> Expr:
    """Move the outermost dimension of ``window`` past ``depth`` inner dimensions.

    Realised purely as a combination of ``transpose`` and ``map`` as described
    in the paper: ``move(0) = id`` and
    ``move(k)(w) = map(move(k-1), transpose(w))``.
    """
    if depth <= 0:
        return window
    transposed = transpose(window)
    if depth == 1:
        return transposed
    mover = fun_n(1, lambda x: _move_outer_dim_in(x, depth - 1))
    return map(mover, transposed)


def zip_nd(args: Sequence[Expr], ndims: int) -> Expr:
    """``zipN`` — element-wise zip of equally-shaped N-dimensional arrays.

    Defined by composition: ``zip1 = zip`` and
    ``zipN(a, b, ...) = map(t ⇒ zipN-1(t.0, t.1, ...), zip(a, b, ...))``.
    The acoustic benchmark (paper Listing 3) uses ``zip3``.
    """
    args = list(args)
    if len(args) < 2:
        raise ValueError("zip_nd requires at least two arrays")
    if ndims < 1:
        raise ValueError("zip_nd requires ndims >= 1")
    if ndims == 1:
        return zip(*args)

    def zip_rows(t: Expr) -> Expr:
        components = [get(i, t) for i in range(len(args))]
        return zip_nd(components, ndims - 1)

    return map(fun_n(1, zip_rows), zip(*args))


def stencil_nd(
    f: FunLike,
    size: int,
    step: int,
    left: int,
    right: int,
    boundary: Union[Boundary, str],
    arg: Expr,
    ndims: int,
) -> Expr:
    """The canonical N-dimensional stencil skeleton from the paper:

    ``mapN(f, slideN(size, step, padN(l, r, h, in)))``
    """
    padded = pad_nd(left, right, boundary, arg, ndims)
    windows = slide_nd(size, step, padded, ndims)
    return map_nd(f, windows, ndims)


def _per_dim(value, ndims: int) -> List:
    """Broadcast a scalar setting to one entry per dimension."""
    if isinstance(value, (list, tuple)):
        if len(value) != ndims:
            raise ValueError(f"expected {ndims} per-dimension values, got {len(value)}")
        return list(value)
    return [value] * ndims


__all__ = [
    "Float",
    "Int",
    "CLAMP",
    "MIRROR",
    "WRAP",
    "array_type",
    "Var",
    "lit",
    "fun",
    "fun_n",
    "map",
    "reduce",
    "iterate",
    "zip",
    "split",
    "join",
    "transpose",
    "at",
    "get",
    "tuple_",
    "array",
    "id_",
    "pad",
    "pad_constant",
    "slide",
    "map_glb",
    "map_wrg",
    "map_lcl",
    "map_seq",
    "reduce_seq",
    "reduce_unroll",
    "to_local",
    "to_global",
    "to_private",
    "map_nd",
    "pad_nd",
    "pad_constant_nd",
    "slide_nd",
    "zip_nd",
    "stencil_nd",
]
