"""Core Lift intermediate representation.

This package hosts the paper's primary contribution: the Lift IR extended with
the ``pad`` and ``slide`` primitives, its type system, the eDSL builders used
to write stencil programs, and the pretty printer.

Typical usage::

    from repro.core import builders as L
    from repro.core.userfuns import add
    from repro.core.typecheck import infer_type

    program = L.fun([L.array_type(L.Float, "N")], lambda a:
        L.map(lambda nbh: L.reduce(add, 0.0, nbh),
              L.slide(3, 1, L.pad(1, 1, L.CLAMP, a))))
"""

from . import arithmetic, builders, ir, printer, typecheck, types, userfuns
from .arithmetic import Cst, Var
from .ir import Expr, FunCall, Lambda, Literal, Param, Primitive, UserFun
from .printer import pretty
from .typecheck import check_program, infer_type
from .types import ArrayType, Float, Int, TupleType, Type, TypeError_
from .types import array as array_type

__all__ = [
    "arithmetic",
    "builders",
    "ir",
    "printer",
    "typecheck",
    "types",
    "userfuns",
    "Cst",
    "Var",
    "Expr",
    "FunCall",
    "Lambda",
    "Literal",
    "Param",
    "Primitive",
    "UserFun",
    "pretty",
    "check_program",
    "infer_type",
    "ArrayType",
    "Float",
    "Int",
    "TupleType",
    "Type",
    "TypeError_",
    "array_type",
]
