"""The Lift type system.

Lift types describe the shape of the data flowing between primitives.  They
are central to the stencil extension of the paper: ``slide`` and ``pad`` are
defined purely by how they change array lengths, and the multi-dimensional
wrappers (``pad2``, ``slide3`` ...) are checked by composing those length
transformations.

Types implemented here:

* scalar types (``float``, ``double``, ``int``, ``bool``),
* :class:`VectorType` for OpenCL vector data (``float4`` ...),
* :class:`ArrayType` — an array ``[T]_n`` whose length ``n`` is a symbolic
  :class:`~repro.core.arithmetic.ArithExpr`,
* :class:`TupleType` — ``{T1, T2, ...}`` as produced by ``zip``,
* :class:`FunctionType` — used for user functions and lambdas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from .arithmetic import ArithExpr, ArithLike, Cst, _as_arith


class Type:
    """Base class of every Lift type."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Type):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> Tuple:
        raise NotImplementedError

    # Convenience shape helpers -------------------------------------------
    def ndims(self) -> int:
        """Number of nested array dimensions (0 for scalars and tuples)."""
        if isinstance(self, ArrayType):
            return 1 + self.elem_type.ndims()
        return 0

    def shape(self) -> Tuple[ArithExpr, ...]:
        """Sizes of the nested array dimensions, outermost first."""
        if isinstance(self, ArrayType):
            return (self.size,) + self.elem_type.shape()
        return ()

    def base_element_type(self) -> "Type":
        """The innermost non-array type."""
        if isinstance(self, ArrayType):
            return self.elem_type.base_element_type()
        return self


@dataclass(frozen=True, eq=False)
class ScalarType(Type):
    """A scalar OpenCL type such as ``float`` or ``int``."""

    name: str
    size_bytes: int

    def _key(self) -> Tuple:
        return ("scalar", self.name)

    def __repr__(self) -> str:
        return self.name


#: The scalar types used throughout the benchmarks.
Float = ScalarType("float", 4)
Double = ScalarType("double", 8)
Int = ScalarType("int", 4)
Bool = ScalarType("bool", 1)


@dataclass(frozen=True, eq=False)
class VectorType(Type):
    """An OpenCL vector type, e.g. ``float4``."""

    elem_type: ScalarType
    width: int

    def _key(self) -> Tuple:
        return ("vector", self.elem_type._key(), self.width)

    @property
    def size_bytes(self) -> int:
        return self.elem_type.size_bytes * self.width

    def __repr__(self) -> str:
        return f"{self.elem_type.name}{self.width}"


@dataclass(frozen=True, eq=False)
class ArrayType(Type):
    """An array ``[T]_n`` carrying its (possibly symbolic) length ``n``."""

    elem_type: Type
    size: ArithExpr

    def __init__(self, elem_type: Type, size: ArithLike) -> None:
        object.__setattr__(self, "elem_type", elem_type)
        object.__setattr__(self, "size", _as_arith(size))

    def _key(self) -> Tuple:
        return ("array", self.elem_type._key(), self.size._key())

    def __repr__(self) -> str:
        return f"[{self.elem_type!r}]_{self.size!r}"


@dataclass(frozen=True, eq=False)
class TupleType(Type):
    """A tuple type ``{T1, T2, ...}`` as produced by ``zip`` and ``tuple``."""

    elem_types: Tuple[Type, ...]

    def __init__(self, *elem_types: Type) -> None:
        if len(elem_types) == 1 and isinstance(elem_types[0], (tuple, list)):
            elem_types = tuple(elem_types[0])
        object.__setattr__(self, "elem_types", tuple(elem_types))

    def _key(self) -> Tuple:
        return ("tuple", tuple(t._key() for t in self.elem_types))

    def __repr__(self) -> str:
        return "{" + ", ".join(repr(t) for t in self.elem_types) + "}"


@dataclass(frozen=True, eq=False)
class FunctionType(Type):
    """A function type ``(T1, ..., Tk) -> U``."""

    param_types: Tuple[Type, ...]
    return_type: Type

    def __init__(self, param_types: Sequence[Type], return_type: Type) -> None:
        object.__setattr__(self, "param_types", tuple(param_types))
        object.__setattr__(self, "return_type", return_type)

    def _key(self) -> Tuple:
        return (
            "fun",
            tuple(t._key() for t in self.param_types),
            self.return_type._key(),
        )

    def __repr__(self) -> str:
        params = ", ".join(repr(t) for t in self.param_types)
        return f"({params}) -> {self.return_type!r}"


@dataclass(frozen=True, eq=False)
class NoType(Type):
    """Placeholder used before type inference has run."""

    def _key(self) -> Tuple:
        return ("notype",)

    def __repr__(self) -> str:
        return "?"


UNTYPED = NoType()


class TypeError_(Exception):
    """Raised when type inference rejects an expression."""


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------

def array(elem_type: Type, *sizes: ArithLike) -> Type:
    """Build a (possibly multi-dimensional) array type.

    ``array(Float, n, m)`` is ``[[float]_m]_n`` — the first size is the
    outermost dimension, matching the order of nested ``map`` calls.
    """
    if not sizes:
        raise ValueError("array() requires at least one size")
    result: Type = elem_type
    for size in reversed(sizes):
        result = ArrayType(result, size)
    return result


def element_count(array_type: Type) -> ArithExpr:
    """Total number of base elements of a (nested) array type."""
    if not isinstance(array_type, ArrayType):
        return Cst(1)
    total: ArithExpr = Cst(1)
    for dim in array_type.shape():
        total = total * dim
    return total


def check_same_size(a: ArithExpr, b: ArithExpr, context: str) -> None:
    """Raise a :class:`TypeError_` unless the two sizes are (symbolically) equal."""
    if a != b:
        raise TypeError_(f"{context}: array lengths {a} and {b} differ")


__all__ = [
    "Type",
    "ScalarType",
    "VectorType",
    "ArrayType",
    "TupleType",
    "FunctionType",
    "NoType",
    "UNTYPED",
    "Float",
    "Double",
    "Int",
    "Bool",
    "TypeError_",
    "array",
    "element_count",
    "check_same_size",
]
