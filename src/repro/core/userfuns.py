"""Commonly used scalar user functions.

User functions are the only place where actual arithmetic happens in a Lift
program; everything else is data reorganisation.  Each :class:`UserFun`
carries a C body (spliced into the generated OpenCL kernel) and an equivalent
Python callable (used by the reference interpreter).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .ir import UserFun
from .types import Float, Type


def make_userfun(
    name: str,
    param_names: Sequence[str],
    body_c: str,
    python_fn: Callable,
    param_types: Sequence[Type] | None = None,
    return_type: Type = Float,
    numpy_fn: Callable | None = None,
) -> UserFun:
    """Convenience constructor defaulting all parameters to ``float``.

    ``numpy_fn`` supplies a whole-array implementation for the compiled NumPy
    backend; it is only needed when ``python_fn`` does not broadcast (i.e. it
    branches on its scalar arguments).
    """
    if param_types is None:
        param_types = [Float] * len(param_names)
    return UserFun(
        name, param_names, body_c, param_types, return_type, python_fn, numpy_fn
    )


#: Binary addition, the reduction operator of almost every Jacobi-style stencil.
add = make_userfun("add", ["x", "y"], "return x + y;", lambda x, y: x + y)

#: Binary subtraction.
subtract = make_userfun("subtract", ["x", "y"], "return x - y;", lambda x, y: x - y)

#: Binary multiplication.
mult = make_userfun("mult", ["x", "y"], "return x * y;", lambda x, y: x * y)

#: Binary division.
divide = make_userfun("divide", ["x", "y"], "return x / y;", lambda x, y: x / y)

#: Binary maximum.
max_fn = make_userfun(
    "max_fn", ["x", "y"], "return fmax(x, y);",
    lambda x, y: x if x >= y else y,
    numpy_fn=np.maximum,
)

#: Binary minimum.
min_fn = make_userfun(
    "min_fn", ["x", "y"], "return fmin(x, y);",
    lambda x, y: x if x <= y else y,
    numpy_fn=np.minimum,
)

#: The identity used to introduce copies (e.g. into local memory).
id_fn = make_userfun("id_fn", ["x"], "return x;", lambda x: x)


def constant(value: float, name: str | None = None) -> UserFun:
    """A nullary-style user function returning a fixed value (takes and ignores one input)."""
    fn_name = name or f"const_{str(value).replace('.', '_').replace('-', 'm')}"
    return make_userfun(fn_name, ["x"], f"return {value}f;", lambda x, v=value: v)


def weighted_sum(weights: Sequence[float], name: str = "weighted_sum") -> UserFun:
    """A user function computing a dot product with compile-time constant weights.

    This is how convolution-style stencils (e.g. the 25-point Gaussian) express
    their per-neighbourhood computation: the neighbourhood is flattened and
    combined with the weight vector.
    """
    weights = [float(w) for w in weights]
    terms = " + ".join(f"({w}f * nbh[{i}])" for i, w in enumerate(weights))
    body_c = f"return {terms};"

    def python_fn(nbh, _weights=tuple(weights)):
        flat = _flatten(nbh)
        if len(flat) != len(_weights):
            raise ValueError(
                f"{name}: expected {len(_weights)} neighbourhood values, got {len(flat)}"
            )
        return sum(w * v for w, v in zip(_weights, flat))

    def numpy_fn(nbh, _weights=tuple(weights)):
        # ``nbh`` arrives as an array whose *last* axis is the flattened
        # neighbourhood; leading axes are batch axes.  Accumulate in the same
        # left-to-right order as ``python_fn`` so results match bit-for-bit.
        if nbh.shape[-1] != len(_weights):
            raise ValueError(
                f"{name}: expected {len(_weights)} neighbourhood values, "
                f"got {nbh.shape[-1]}"
            )
        acc = _weights[0] * nbh[..., 0]
        for i in range(1, len(_weights)):
            acc = acc + _weights[i] * nbh[..., i]
        return acc

    from .types import ArrayType

    return UserFun(
        name,
        ["nbh"],
        body_c,
        [ArrayType(Float, len(weights))],
        Float,
        python_fn,
        numpy_fn,
    )


def _flatten(value):
    """Flatten arbitrarily nested sequences into a flat list of scalars."""
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            out.extend(_flatten(item))
        return out
    try:  # NumPy arrays
        import numpy as np

        if isinstance(value, np.ndarray):
            return list(value.ravel())
    except ImportError:  # pragma: no cover
        pass
    return [value]


__all__ = [
    "make_userfun",
    "add",
    "subtract",
    "mult",
    "divide",
    "max_fn",
    "min_fn",
    "id_fn",
    "constant",
    "weighted_sum",
]
