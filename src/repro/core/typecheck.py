"""Bottom-up type inference for Lift expressions.

Types are inferred by walking an expression from the leaves upwards:
parameters carry their types (supplied when building the top-level lambda via
:func:`repro.core.builders.fun`), literals carry their types, and every
:class:`~repro.core.ir.FunCall` asks its callee to compute the result type from
the argument types.  Primitives implement their typing rules themselves (see
:mod:`repro.core.primitives`); lambdas are typed by binding their parameters
and recursing into the body; user functions check that they receive scalars.

The inferred type is stored on every node's ``type`` attribute so later stages
(rewriting validity checks, the view system and the code generator) can read
it without re-running inference.
"""

from __future__ import annotations

from typing import Sequence

from .ir import Expr, FunCall, FunDecl, Lambda, Literal, Param, Primitive, UserFun
from .types import (
    ArrayType,
    ScalarType,
    TupleType,
    Type,
    TypeError_,
    UNTYPED,
    VectorType,
)


def infer_type(expr: Expr) -> Type:
    """Infer (and annotate) the type of ``expr``, returning it.

    Parameters must already have concrete types; otherwise a
    :class:`~repro.core.types.TypeError_` is raised.
    """
    if isinstance(expr, Param):
        if expr.type is UNTYPED:
            raise TypeError_(f"parameter {expr.name!r} has no type")
        return expr.type

    if isinstance(expr, Literal):
        return expr.type

    if isinstance(expr, Lambda):
        # A bare lambda (not applied) is only typed through its call sites.
        return expr.type

    if isinstance(expr, UserFun):
        return expr.type

    if isinstance(expr, Primitive):
        # A bare primitive is a function value; typed at its call site.
        return expr.type

    if isinstance(expr, FunCall):
        arg_types = [infer_type(arg) for arg in expr.args]
        result = infer_call_type(expr.fun, arg_types, expr.args)
        expr.type = result
        return result

    raise TypeError_(f"cannot type expression of class {type(expr).__name__}")


def infer_call_type(
    fun: FunDecl,
    arg_types: Sequence[Type],
    args: Sequence[Expr] = (),
) -> Type:
    """Type a callee applied to arguments of the given types."""
    if isinstance(fun, Lambda):
        if len(fun.params) != len(arg_types):
            raise TypeError_(
                f"lambda expects {len(fun.params)} arguments, got {len(arg_types)}"
            )
        for param, arg_type in zip(fun.params, arg_types):
            param.type = arg_type
        result = infer_type(fun.body)
        fun.type = result
        return result

    if isinstance(fun, UserFun):
        if len(fun.param_types) != len(arg_types):
            raise TypeError_(
                f"user function {fun.name!r} expects {len(fun.param_types)} arguments, "
                f"got {len(arg_types)}"
            )
        for expected, actual in zip(fun.param_types, arg_types):
            _check_scalar_compatible(fun.name, expected, actual)
        fun.type = fun.return_type
        return fun.return_type

    if isinstance(fun, Primitive):
        if fun.arity() != len(arg_types):
            raise TypeError_(
                f"{fun.name} expects {fun.arity()} arguments, got {len(arg_types)}"
            )
        result = fun.infer_type(list(arg_types), list(args))
        fun.type = result
        return result

    raise TypeError_(f"cannot call object of class {type(fun).__name__}")


def _check_scalar_compatible(name: str, expected: Type, actual: Type) -> None:
    """User functions operate on scalars (or tuples of scalars)."""
    if isinstance(expected, (ScalarType, VectorType)):
        if not isinstance(actual, (ScalarType, VectorType)):
            raise TypeError_(
                f"user function {name!r} expects scalar {expected!r}, got {actual!r}"
            )
        return
    if isinstance(expected, TupleType):
        if not isinstance(actual, TupleType) or len(actual.elem_types) != len(
            expected.elem_types
        ):
            raise TypeError_(
                f"user function {name!r} expects tuple {expected!r}, got {actual!r}"
            )
        for e, a in zip(expected.elem_types, actual.elem_types):
            _check_scalar_compatible(name, e, a)
        return
    if isinstance(expected, ArrayType):
        # Some user functions legitimately take small fixed-size arrays.
        if not isinstance(actual, ArrayType):
            raise TypeError_(
                f"user function {name!r} expects array {expected!r}, got {actual!r}"
            )
        return
    raise TypeError_(f"user function {name!r} has unsupported parameter type {expected!r}")


def check_program(lambda_expr: Lambda, input_types: Sequence[Type]) -> Type:
    """Type-check a closed top-level program against concrete input types."""
    return infer_call_type(lambda_expr, list(input_types))


__all__ = ["infer_type", "infer_call_type", "check_program"]
