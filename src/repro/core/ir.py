"""Expression nodes of the Lift intermediate representation.

A Lift program is a closed :class:`Lambda` whose body is a composition of
*function calls*.  Callees are either other lambdas, :class:`UserFun`
definitions (scalar C functions embedded into the generated OpenCL code) or
*primitives* (``map``, ``reduce``, ``slide``, ``pad``, ...).

The representation is deliberately small:

``Param``
    a named function parameter,
``Literal``
    a scalar constant,
``Lambda``
    an anonymous function,
``FunCall``
    application of a callee to argument expressions,
``UserFun``
    a scalar function with both a C body (for code generation) and a Python
    callable (for the reference interpreter),
``Primitive``
    the base class of all built-in patterns; concrete primitives live in
    :mod:`repro.core.primitives`.

Every expression carries a ``type`` attribute which is filled in by
:mod:`repro.core.typecheck`.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .types import Type, UNTYPED


_param_counter = itertools.count()


class Expr:
    """Base class of all IR expressions."""

    def __init__(self) -> None:
        self.type: Type = UNTYPED

    # -- traversal ----------------------------------------------------------
    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions (not including callee *declarations*)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Post-order traversal over the expression tree."""
        for child in self.children():
            yield from child.walk()
        yield self

    def contains(self, node: "Expr") -> bool:
        """True when ``node`` (by identity) occurs inside this expression."""
        return any(sub is node for sub in self.walk())

    # -- pretty printing ----------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .printer import pretty

        return pretty(self)


class Param(Expr):
    """A named function parameter (also used as a free variable)."""

    def __init__(self, name: Optional[str] = None, type_: Type = UNTYPED) -> None:
        super().__init__()
        self.name = name if name is not None else f"p{next(_param_counter)}"
        self.type = type_

    def children(self) -> Tuple[Expr, ...]:
        return ()


class Literal(Expr):
    """A scalar literal such as ``0.0f`` used to initialise reductions."""

    def __init__(self, value, type_: Type) -> None:
        super().__init__()
        self.value = value
        self.type = type_

    def children(self) -> Tuple[Expr, ...]:
        return ()


class FunDecl:
    """Base class for things that can be called: lambdas, user functions, primitives."""

    name: str = "<fun>"

    def arity(self) -> int:
        raise NotImplementedError


class Lambda(Expr, FunDecl):
    """An anonymous function ``λ(p1, ..., pk). body``.

    Lambdas are both expressions (so they can be passed to ``map``) and
    callable declarations (so they can head a :class:`FunCall`).
    """

    name = "λ"

    def __init__(self, params: Sequence[Param], body: Expr) -> None:
        Expr.__init__(self)
        self.params: Tuple[Param, ...] = tuple(params)
        self.body = body

    def arity(self) -> int:
        return len(self.params)

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)


class UserFun(Expr, FunDecl):
    """A scalar user function embedded in the generated OpenCL code.

    Parameters
    ----------
    name:
        The C identifier used in generated code.
    param_names:
        Names of the formal parameters (used in the C body).
    body_c:
        The C expression/statement list forming the function body.
    param_types / return_type:
        Scalar (or tuple-of-scalar) Lift types.
    python_fn:
        A Python callable with the same semantics, used by the reference
        interpreter and by the simulator's functional check.
    numpy_fn:
        Optional whole-array implementation used by the compiled NumPy
        backend.  It receives NumPy arrays (with arbitrary leading batch
        axes) instead of scalars and must vectorise over them.  When absent
        the backend applies ``python_fn`` to full arrays, which is correct
        for purely arithmetic bodies (they broadcast) but not for bodies
        with data-dependent branches.
    """

    def __init__(
        self,
        name: str,
        param_names: Sequence[str],
        body_c: str,
        param_types: Sequence[Type],
        return_type: Type,
        python_fn: Callable,
        numpy_fn: Optional[Callable] = None,
    ) -> None:
        Expr.__init__(self)
        self.name = name
        self.param_names = tuple(param_names)
        self.body_c = body_c
        self.param_types = tuple(param_types)
        self.return_type = return_type
        self.python_fn = python_fn
        self.numpy_fn = numpy_fn
        if len(self.param_names) != len(self.param_types):
            raise ValueError("UserFun parameter names and types differ in length")

    def arity(self) -> int:
        return len(self.param_types)

    def __call__(self, *args):
        return self.python_fn(*args)


class Primitive(Expr, FunDecl):
    """Base class of built-in Lift patterns.

    A primitive instance may carry *static* parameters (e.g. the chunk size of
    ``split`` or the window size of ``slide``); the *data* arguments are
    supplied through a :class:`FunCall`.
    """

    name = "<primitive>"

    def __init__(self) -> None:
        Expr.__init__(self)

    def children(self) -> Tuple["Expr", ...]:
        # Nested functions (the f of a map, the operator and init of a reduce)
        # are part of the expression tree: traversals and rewrites must see them.
        return tuple(f for f in self.nested_functions() if isinstance(f, Expr))

    def arity(self) -> int:
        raise NotImplementedError

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        """Compute the result type given already-typed arguments."""
        raise NotImplementedError

    # Primitives with an embedded function argument (map, reduce, ...) expose
    # it so generic traversals (rewriting, code generation) can find it.
    def nested_functions(self) -> Tuple[Expr, ...]:
        return ()

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "Primitive":
        """Rebuild this primitive with replaced nested functions."""
        if nested:
            raise NotImplementedError(
                f"{type(self).__name__} does not support nested-function replacement"
            )
        return self

    def static_key(self) -> Tuple:
        """Static (non-expression) parameters, used for structural equality."""
        return ()


class FunCall(Expr):
    """Application of a callee to one or more argument expressions."""

    def __init__(self, fun: FunDecl, *args: Expr) -> None:
        super().__init__()
        if not isinstance(fun, FunDecl):
            raise TypeError(f"FunCall callee must be a FunDecl, got {type(fun)!r}")
        self.fun = fun
        self.args: Tuple[Expr, ...] = tuple(args)

    def children(self) -> Tuple[Expr, ...]:
        callee_children: Tuple[Expr, ...] = ()
        if isinstance(self.fun, (Lambda, Primitive)):
            callee_children = (self.fun,)
        return callee_children + self.args


# ---------------------------------------------------------------------------
# Structural utilities
# ---------------------------------------------------------------------------

def replace(root: Expr, target: Expr, replacement: Expr) -> Expr:
    """Return a copy of ``root`` with ``target`` (by identity) replaced.

    Shared structure outside the replaced path is reused; the path from the
    root to the target is rebuilt so the original expression is not mutated.
    """
    if root is target:
        return replacement
    if isinstance(root, FunCall):
        new_fun = root.fun
        if isinstance(root.fun, (Lambda, Primitive)) and root.fun.contains(target):
            new_fun = replace(root.fun, target, replacement)  # type: ignore[assignment]
        new_args = tuple(
            replace(arg, target, replacement) if arg.contains(target) else arg
            for arg in root.args
        )
        if new_fun is root.fun and all(a is b for a, b in zip(new_args, root.args)):
            return root
        return FunCall(new_fun, *new_args)  # type: ignore[arg-type]
    if isinstance(root, Lambda):
        if not root.body.contains(target):
            return root
        return Lambda(root.params, replace(root.body, target, replacement))
    if isinstance(root, Primitive):
        return _replace_in_primitive(root, target, replacement)
    return root


def _replace_in_primitive(prim: Primitive, target: Expr, replacement: Expr) -> Expr:
    """Rebuild a primitive whose nested function contains ``target``."""
    nested = prim.nested_functions()
    if not nested:
        return prim
    new_nested = tuple(
        replace(f, target, replacement) if f.contains(target) else f for f in nested
    )
    if all(a is b for a, b in zip(new_nested, nested)):
        return prim
    return prim.with_nested_functions(new_nested)  # type: ignore[attr-defined]


def substitute_params(expr: Expr, mapping: Dict[Param, Expr]) -> Expr:
    """Replace occurrences of parameters by the mapped expressions (copying)."""
    if isinstance(expr, Param):
        return mapping.get(expr, expr)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, FunCall):
        new_fun = expr.fun
        if isinstance(expr.fun, (Lambda, Primitive)):
            new_fun = substitute_params(expr.fun, mapping)  # type: ignore[assignment]
        new_args = tuple(substitute_params(a, mapping) for a in expr.args)
        return FunCall(new_fun, *new_args)  # type: ignore[arg-type]
    if isinstance(expr, Lambda):
        inner = {p: e for p, e in mapping.items() if p not in expr.params}
        return Lambda(expr.params, substitute_params(expr.body, inner))
    if isinstance(expr, Primitive):
        nested = expr.nested_functions()
        if not nested:
            return expr
        new_nested = tuple(substitute_params(f, mapping) for f in nested)
        if all(a is b for a, b in zip(new_nested, nested)):
            return expr
        return expr.with_nested_functions(new_nested)  # type: ignore[attr-defined]
    return expr


def collect(root: Expr, predicate: Callable[[Expr], bool]) -> List[Expr]:
    """All sub-expressions satisfying ``predicate`` (post-order)."""
    return [node for node in root.walk() if predicate(node)]


def structurally_equal(a: Expr, b: Expr) -> bool:
    """Structural equality over expressions (ignoring object identity)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Param):
        return a is b or a.name == b.name  # type: ignore[union-attr]
    if isinstance(a, Literal) and isinstance(b, Literal):
        return a.value == b.value and a.type == b.type
    if isinstance(a, UserFun) and isinstance(b, UserFun):
        return a.name == b.name and a.body_c == b.body_c
    if isinstance(a, Lambda) and isinstance(b, Lambda):
        if len(a.params) != len(b.params):
            return False
        renamed = substitute_params(b.body, dict(zip(b.params, a.params)))
        return structurally_equal(a.body, renamed)
    if isinstance(a, FunCall) and isinstance(b, FunCall):
        if len(a.args) != len(b.args):
            return False
        if not _decl_equal(a.fun, b.fun):
            return False
        return all(structurally_equal(x, y) for x, y in zip(a.args, b.args))
    if isinstance(a, Primitive) and isinstance(b, Primitive):
        return _decl_equal(a, b)
    return False


def structural_key(expr: Expr) -> Tuple:
    """A hashable key identifying an expression up to structural equality.

    Parameters are numbered by binding order (de Bruijn style), so
    alpha-equivalent programs produce the same key.  The key is the basis of
    the compiled backend's compilation cache: two expressions with equal keys
    compile to the same kernel.

    Caveat: embedded Python callables (an ``ArrayConstructor``'s generator)
    have no structural identity, so they are keyed by object identity.  Keys
    are therefore only valid while the expressions they were derived from
    are alive — holding a key without the expression (as a dedup table
    might) can conflate two programs whose generator ids were reused after
    garbage collection.  The compilation cache is safe: its cached kernels
    keep their expressions (and thus the generators) alive.
    """
    return _structural_key(expr, {})


def _structural_key(expr: Expr, param_ids: Dict[Param, int],
                    stable: bool = False) -> Tuple:
    if isinstance(expr, Param):
        if expr in param_ids:
            return ("param", param_ids[expr])
        return ("free", expr.name)
    if isinstance(expr, Literal):
        return ("lit", expr.value, repr(expr.type))
    if isinstance(expr, Lambda):
        inner = dict(param_ids)
        for param in expr.params:
            inner[param] = len(inner)
        return ("lambda", len(expr.params),
                _structural_key(expr.body, inner, stable))
    if isinstance(expr, UserFun):
        return ("userfun", expr.name, expr.body_c)
    if isinstance(expr, FunCall):
        fun = expr.fun
        if isinstance(fun, Expr):
            fun_key = _structural_key(fun, param_ids, stable)
        else:  # pragma: no cover - FunDecl that is not an Expr
            fun_key = ("decl", type(fun).__name__, id(fun))
        return ("call", fun_key) + tuple(
            _structural_key(arg, param_ids, stable) for arg in expr.args
        )
    if isinstance(expr, Primitive):
        static = tuple(
            repr(item) if not isinstance(item, (int, float, str, bool, type(None))) else item
            for item in expr.static_key()
        )
        extra: Tuple = ()
        generator = getattr(expr, "generator", None)
        if generator is not None:  # ArrayConstructor: the closure is part of identity
            if stable:
                # Key the generator by its code location, which survives
                # process boundaries, instead of the process-local ``id``.
                extra = (
                    getattr(generator, "__module__", ""),
                    getattr(generator, "__qualname__", repr(type(generator))),
                )
            else:
                extra = (id(generator),)
        nested = tuple(
            _structural_key(f, param_ids, stable) for f in expr.nested_functions()
        )
        return ("prim", type(expr).__name__, static, extra) + nested
    raise TypeError(f"cannot key expression {type(expr).__name__}")


def structural_hash(expr: Expr) -> int:
    """A stable (within one process) hash of :func:`structural_key`."""
    return hash(structural_key(expr))


def structural_digest(expr: Expr) -> str:
    """A hex digest of the structure of ``expr``, stable across processes.

    Unlike :func:`structural_hash` (which relies on Python's salted ``hash``
    and on object ids for embedded generator callables), the digest keys
    generators by their code location (module + qualname), so the same
    program built in different processes — or in different runs — produces
    the same digest.  It is the identity used by the persistent
    :class:`~repro.engine.store.ResultsStore`.

    Caveat: two *distinct* closures created at the same code location (e.g.
    the same factory called with different captured constants) share a
    digest; callers keying persisted results additionally include the
    benchmark / strategy / configuration that produced the expression, which
    disambiguates every case arising in practice.
    """
    import hashlib

    key = _structural_key(expr, {}, stable=True)
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


def _decl_equal(a: FunDecl, b: FunDecl) -> bool:
    if isinstance(a, (Lambda, UserFun)) and isinstance(b, (Lambda, UserFun)):
        return structurally_equal(a, b)  # type: ignore[arg-type]
    if isinstance(a, Primitive) and isinstance(b, Primitive):
        if type(a) is not type(b):
            return False
        if a.static_key() != b.static_key():
            return False
        nested_a, nested_b = a.nested_functions(), b.nested_functions()
        if len(nested_a) != len(nested_b):
            return False
        return all(structurally_equal(x, y) for x, y in zip(nested_a, nested_b))
    return a is b


__all__ = [
    "Expr",
    "Param",
    "Literal",
    "Lambda",
    "UserFun",
    "Primitive",
    "FunDecl",
    "FunCall",
    "replace",
    "substitute_params",
    "collect",
    "structurally_equal",
    "structural_key",
    "structural_hash",
]
