"""Symbolic arithmetic expressions used for array sizes in Lift types.

Array types in Lift carry their length in the type (``[T]_n``).  Lengths are
not always known constants: a stencil program is usually written for an input
of symbolic size ``N`` and only specialised to a concrete size when a kernel
is generated or executed.  This module provides a small symbolic arithmetic
language that supports exactly the operations the type checker and the view
system need:

* constants and named variables,
* addition, subtraction, multiplication,
* exact (assumed-divisible) division as used by ``split``/``slide``,
* substitution of variables by values or other expressions,
* simplification of the common patterns produced by the stencil primitives
  (for example ``(n + 2 - 3 + 1) / 1``).

The implementation intentionally favours clarity over algebraic completeness:
expressions are normalised into a sum-of-products form with rational-free
integer coefficients, plus opaque ``FloorDiv`` nodes when an expression cannot
be proven divisible.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Number = Union[int, Fraction]
ArithLike = Union["ArithExpr", int]


class ArithmeticError_(Exception):
    """Raised when an arithmetic operation cannot be performed symbolically."""


def _as_arith(value: ArithLike) -> "ArithExpr":
    """Coerce an ``int`` (or existing expression) into an :class:`ArithExpr`."""
    if isinstance(value, ArithExpr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not valid arithmetic operands")
    if isinstance(value, int):
        return Cst(value)
    raise TypeError(f"cannot convert {value!r} to an arithmetic expression")


class ArithExpr:
    """Base class of all symbolic arithmetic expressions.

    Instances are immutable and support the usual Python operators, returning
    new (simplified) expressions.
    """

    # -- operator overloads -------------------------------------------------
    def __add__(self, other: ArithLike) -> "ArithExpr":
        return simplify_sum([self, _as_arith(other)])

    def __radd__(self, other: ArithLike) -> "ArithExpr":
        return simplify_sum([_as_arith(other), self])

    def __sub__(self, other: ArithLike) -> "ArithExpr":
        return simplify_sum([self, simplify_product([Cst(-1), _as_arith(other)])])

    def __rsub__(self, other: ArithLike) -> "ArithExpr":
        return simplify_sum([_as_arith(other), simplify_product([Cst(-1), self])])

    def __mul__(self, other: ArithLike) -> "ArithExpr":
        return simplify_product([self, _as_arith(other)])

    def __rmul__(self, other: ArithLike) -> "ArithExpr":
        return simplify_product([_as_arith(other), self])

    def __floordiv__(self, other: ArithLike) -> "ArithExpr":
        return exact_div(self, _as_arith(other), allow_floor=True)

    def __truediv__(self, other: ArithLike) -> "ArithExpr":
        return exact_div(self, _as_arith(other), allow_floor=True)

    def __mod__(self, other: ArithLike) -> "ArithExpr":
        return modulo(self, _as_arith(other))

    def __neg__(self) -> "ArithExpr":
        return simplify_product([Cst(-1), self])

    # -- queries ------------------------------------------------------------
    def free_variables(self) -> frozenset:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, ArithLike]) -> "ArithExpr":
        """Replace variables by the given values/expressions and simplify."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, int] | None = None) -> int:
        """Evaluate to a concrete integer; raise if variables remain unbound."""
        env = env or {}
        result = self.substitute(env)
        if isinstance(result, Cst):
            if result.value != int(result.value):
                raise ArithmeticError_(f"{self} does not evaluate to an integer")
            return int(result.value)
        raise ArithmeticError_(
            f"cannot evaluate {self}: unbound variables {sorted(result.free_variables())}"
        )

    def is_constant(self) -> bool:
        return isinstance(self, Cst)

    # -- comparisons --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Cst(other)
        if not isinstance(other, ArithExpr):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def _key(self) -> Tuple:
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class Cst(ArithExpr):
    """An integer (or exact rational, internally) constant."""

    value: Number

    def __post_init__(self) -> None:
        value = self.value
        if isinstance(value, Fraction) and value.denominator == 1:
            object.__setattr__(self, "value", int(value))

    def free_variables(self) -> frozenset:
        return frozenset()

    def substitute(self, mapping: Mapping[str, ArithLike]) -> ArithExpr:
        return self

    def _key(self) -> Tuple:
        return ("cst", Fraction(self.value))

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, eq=False)
class Var(ArithExpr):
    """A named size variable, e.g. the ``N`` in ``[float]_N``."""

    name: str

    def free_variables(self) -> frozenset:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, ArithLike]) -> ArithExpr:
        if self.name in mapping:
            return _as_arith(mapping[self.name])
        return self

    def _key(self) -> Tuple:
        return ("var", self.name)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Sum(ArithExpr):
    """A sum of two or more terms (kept flat and sorted)."""

    terms: Tuple[ArithExpr, ...]

    def free_variables(self) -> frozenset:
        out: frozenset = frozenset()
        for term in self.terms:
            out = out | term.free_variables()
        return out

    def substitute(self, mapping: Mapping[str, ArithLike]) -> ArithExpr:
        return simplify_sum([t.substitute(mapping) for t in self.terms])

    def _key(self) -> Tuple:
        return ("sum", tuple(sorted(t._key() for t in self.terms)))

    def __repr__(self) -> str:
        return "(" + " + ".join(repr(t) for t in self.terms) + ")"


@dataclass(frozen=True, eq=False)
class Prod(ArithExpr):
    """A product of two or more factors (kept flat and sorted)."""

    factors: Tuple[ArithExpr, ...]

    def free_variables(self) -> frozenset:
        out: frozenset = frozenset()
        for factor in self.factors:
            out = out | factor.free_variables()
        return out

    def substitute(self, mapping: Mapping[str, ArithLike]) -> ArithExpr:
        return simplify_product([f.substitute(mapping) for f in self.factors])

    def _key(self) -> Tuple:
        return ("prod", tuple(sorted(f._key() for f in self.factors)))

    def __repr__(self) -> str:
        return "(" + " * ".join(repr(f) for f in self.factors) + ")"


@dataclass(frozen=True, eq=False)
class FloorDiv(ArithExpr):
    """An integer division that could not be resolved symbolically."""

    numerator: ArithExpr
    denominator: ArithExpr

    def free_variables(self) -> frozenset:
        return self.numerator.free_variables() | self.denominator.free_variables()

    def substitute(self, mapping: Mapping[str, ArithLike]) -> ArithExpr:
        return exact_div(
            self.numerator.substitute(mapping),
            self.denominator.substitute(mapping),
            allow_floor=True,
        )

    def _key(self) -> Tuple:
        return ("floordiv", self.numerator._key(), self.denominator._key())

    def __repr__(self) -> str:
        return f"({self.numerator!r} / {self.denominator!r})"


@dataclass(frozen=True, eq=False)
class Mod(ArithExpr):
    """A modulo operation that could not be resolved symbolically."""

    numerator: ArithExpr
    denominator: ArithExpr

    def free_variables(self) -> frozenset:
        return self.numerator.free_variables() | self.denominator.free_variables()

    def substitute(self, mapping: Mapping[str, ArithLike]) -> ArithExpr:
        return modulo(
            self.numerator.substitute(mapping),
            self.denominator.substitute(mapping),
        )

    def _key(self) -> Tuple:
        return ("mod", self.numerator._key(), self.denominator._key())

    def __repr__(self) -> str:
        return f"({self.numerator!r} % {self.denominator!r})"


# ---------------------------------------------------------------------------
# Normalisation helpers
# ---------------------------------------------------------------------------

def _flatten_sum(terms: Iterable[ArithExpr]) -> list:
    flat: list = []
    for term in terms:
        if isinstance(term, Sum):
            flat.extend(_flatten_sum(term.terms))
        else:
            flat.append(term)
    return flat


def _split_coefficient(expr: ArithExpr) -> Tuple[Fraction, Tuple[ArithExpr, ...]]:
    """Split ``expr`` into (numeric coefficient, non-constant factor tuple)."""
    if isinstance(expr, Cst):
        return Fraction(expr.value), ()
    if isinstance(expr, Prod):
        coeff = Fraction(1)
        rest = []
        for factor in expr.factors:
            if isinstance(factor, Cst):
                coeff *= Fraction(factor.value)
            else:
                rest.append(factor)
        return coeff, tuple(sorted(rest, key=lambda e: e._key()))
    return Fraction(1), (expr,)


def simplify_sum(terms: Iterable[ArithExpr]) -> ArithExpr:
    """Build a simplified :class:`Sum` (collecting like terms and constants)."""
    collected: Dict[Tuple, Tuple[Fraction, Tuple[ArithExpr, ...]]] = {}
    constant = Fraction(0)
    for term in _flatten_sum(terms):
        coeff, factors = _split_coefficient(term)
        if not factors:
            constant += coeff
            continue
        key = tuple(f._key() for f in factors)
        if key in collected:
            prev_coeff, _ = collected[key]
            collected[key] = (prev_coeff + coeff, factors)
        else:
            collected[key] = (coeff, factors)

    result_terms: list = []
    for coeff, factors in collected.values():
        if coeff == 0:
            continue
        if coeff == 1 and len(factors) == 1:
            result_terms.append(factors[0])
        else:
            result_terms.append(simplify_product([Cst(coeff), *factors]))
    if constant != 0:
        result_terms.append(Cst(constant))

    if not result_terms:
        return Cst(0)
    if len(result_terms) == 1:
        return result_terms[0]
    result_terms.sort(key=lambda e: e._key())
    return Sum(tuple(result_terms))


def _flatten_product(factors: Iterable[ArithExpr]) -> list:
    flat: list = []
    for factor in factors:
        if isinstance(factor, Prod):
            flat.extend(_flatten_product(factor.factors))
        else:
            flat.append(factor)
    return flat


def simplify_product(factors: Iterable[ArithExpr]) -> ArithExpr:
    """Build a simplified :class:`Prod` (multiplying constants, distributing over sums)."""
    coeff = Fraction(1)
    rest: list = []
    for factor in _flatten_product(factors):
        if isinstance(factor, Cst):
            coeff *= Fraction(factor.value)
        else:
            rest.append(factor)

    if coeff == 0:
        return Cst(0)

    # Distribute a constant over a single sum so that e.g. 2*(n+1) == 2n+2.
    if rest and isinstance(rest[0], Sum) and len(rest) == 1 and coeff != 1:
        return simplify_sum(
            [simplify_product([Cst(coeff), term]) for term in rest[0].terms]
        )

    if not rest:
        return Cst(coeff)
    if coeff == 1 and len(rest) == 1:
        return rest[0]

    result = sorted(rest, key=lambda e: e._key())
    if coeff != 1:
        result.insert(0, Cst(coeff))
    if len(result) == 1:
        return result[0]
    return Prod(tuple(result))


def exact_div(num: ArithExpr, den: ArithExpr, *, allow_floor: bool = False) -> ArithExpr:
    """Divide ``num`` by ``den``.

    When the division can be performed exactly (constant/constant with zero
    remainder, identical expressions, or a product containing the denominator
    as a factor) the simplified quotient is returned.  Otherwise, a
    :class:`FloorDiv` node is produced when ``allow_floor`` is true, or an
    :class:`ArithmeticError_` is raised.
    """
    num = _as_arith(num)
    den = _as_arith(den)
    if isinstance(den, Cst) and den.value == 0:
        raise ZeroDivisionError("symbolic division by zero")
    if isinstance(den, Cst) and den.value == 1:
        return num
    if num == den:
        return Cst(1)
    if isinstance(num, Cst) and num.value == 0:
        return Cst(0)
    if isinstance(num, Cst) and isinstance(den, Cst):
        quotient = Fraction(num.value) / Fraction(den.value)
        if quotient.denominator == 1:
            return Cst(int(quotient))
        if allow_floor:
            return Cst(int(Fraction(num.value) // Fraction(den.value)))
        raise ArithmeticError_(f"{num} is not divisible by {den}")

    # Try to cancel a factor: (a*den)/den == a, and divide constant coefficients.
    if isinstance(den, Cst):
        coeff, factors = _split_coefficient(num)
        new_coeff = coeff / Fraction(den.value)
        if new_coeff.denominator == 1:
            return simplify_product([Cst(new_coeff), *factors])
        # Distribute over sums: (2n + 4)/2 == n + 2 when every term divides.
        if isinstance(num, Sum):
            divided = []
            ok = True
            for term in num.terms:
                t_coeff, t_factors = _split_coefficient(term)
                t_new = t_coeff / Fraction(den.value)
                if t_new.denominator != 1:
                    ok = False
                    break
                divided.append(simplify_product([Cst(t_new), *t_factors]))
            if ok:
                return simplify_sum(divided)
    else:
        coeff, factors = _split_coefficient(num)
        den_coeff, den_factors = _split_coefficient(den)
        if den_factors and all(f in factors for f in den_factors):
            remaining = list(factors)
            for f in den_factors:
                remaining.remove(f)
            new_coeff = coeff / den_coeff
            if new_coeff.denominator == 1:
                return simplify_product([Cst(new_coeff), *remaining])

    if allow_floor:
        return FloorDiv(num, den)
    raise ArithmeticError_(f"cannot divide {num} by {den} exactly")


def modulo(num: ArithExpr, den: ArithExpr) -> ArithExpr:
    """Compute ``num mod den`` where possible, otherwise return a :class:`Mod` node."""
    num = _as_arith(num)
    den = _as_arith(den)
    if isinstance(den, Cst) and den.value == 0:
        raise ZeroDivisionError("symbolic modulo by zero")
    if isinstance(den, Cst) and den.value == 1:
        return Cst(0)
    if isinstance(num, Cst) and isinstance(den, Cst):
        return Cst(int(Fraction(num.value) % Fraction(den.value)))
    if num == den:
        return Cst(0)
    return Mod(num, den)


def arith_max(a: ArithLike, b: ArithLike) -> ArithExpr:
    """Maximum of two expressions (resolved only when both are constants)."""
    a = _as_arith(a)
    b = _as_arith(b)
    if isinstance(a, Cst) and isinstance(b, Cst):
        return a if a.value >= b.value else b
    if a == b:
        return a
    raise ArithmeticError_(f"cannot compute max({a}, {b}) symbolically")


__all__ = [
    "ArithExpr",
    "ArithLike",
    "ArithmeticError_",
    "Cst",
    "Var",
    "Sum",
    "Prod",
    "FloorDiv",
    "Mod",
    "simplify_sum",
    "simplify_product",
    "exact_div",
    "modulo",
    "arith_max",
]
