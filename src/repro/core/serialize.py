"""Wire-format (de)serialization of Lift programs.

The execution service accepts requests that carry *either* a benchmark name
*or* a full program; for the latter the program must cross a process
boundary as data.  This module converts a closed :class:`~repro.core.ir.Lambda`
to a JSON-able dict and back, preserving :func:`~repro.core.ir.structural_digest`
— a deserialized program routes to the same service execution plan and the
same compiled kernel as the original.

Two kinds of node embed Python callables and therefore cannot be serialized
structurally:

* :class:`~repro.core.ir.UserFun` — serialized by *name* (plus its C body as
  a consistency check) and resolved against a registry on deserialization.
  The registry is seeded with the stock functions from
  :mod:`repro.core.userfuns`; additional sources (e.g. the benchmark apps'
  module-level user functions) register themselves via
  :func:`add_userfun_source`, and ad-hoc functions via :func:`register_userfun`.
* :class:`~repro.core.primitives.stencil.Pad` boundaries — serialized by
  name and resolved against ``BOUNDARIES`` (clamp / mirror / wrap).

``ArrayConstructor`` (a closure-generated array) has no wire form and raises
:class:`SerializationError`; such programs must be submitted by benchmark
name instead.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Iterable, List

from .arithmetic import ArithExpr
from .ir import Expr, FunCall, FunDecl, Lambda, Literal, Param, Primitive, UserFun
from .primitives.algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Id,
    Iterate,
    Join,
    Map,
    Reduce,
    Split,
    Transpose,
    TupleCons,
    Zip,
)
from .primitives.opencl import (
    MapGlb,
    MapLcl,
    MapSeq,
    MapWrg,
    ReduceSeq,
    ReduceUnroll,
    ToGlobal,
    ToLocal,
    ToPrivate,
    _MapLike,
)
from .primitives.stencil import BOUNDARIES, Pad, PadConstant, Slide
from .types import Bool, Double, Float, Int, Type, UNTYPED


class SerializationError(Exception):
    """A program contains a node with no wire representation."""


# ---------------------------------------------------------------------------
# The user-function registry
# ---------------------------------------------------------------------------

_USERFUNS: Dict[str, UserFun] = {}
_USERFUN_SOURCES: List[Callable[[], Iterable[UserFun]]] = []
_SOURCES_DRAINED = 0
_STOCK_SEEDED = False


def register_userfun(fun: UserFun) -> UserFun:
    """Make a user function resolvable by name during deserialization."""
    existing = _USERFUNS.get(fun.name)
    if existing is not None and existing.body_c != fun.body_c:
        raise SerializationError(
            f"user function name {fun.name!r} already registered with a "
            "different body"
        )
    _USERFUNS[fun.name] = fun
    return fun


def add_userfun_source(source: Callable[[], Iterable[UserFun]]) -> None:
    """Register a lazy provider of user functions (drained on first lookup)."""
    _USERFUN_SOURCES.append(source)


def _resolve_userfun(name: str, body_c: str) -> UserFun:
    global _SOURCES_DRAINED, _STOCK_SEEDED
    if not _STOCK_SEEDED:
        # One-shot, not conditioned on the registry being empty: a user
        # registering a custom function first must not mask the stock ones.
        _STOCK_SEEDED = True
        from . import userfuns as stock

        for value in vars(stock).values():
            # An explicit earlier registration (even of a stock name) wins.
            if isinstance(value, UserFun) and value.name not in _USERFUNS:
                register_userfun(value)
    while _SOURCES_DRAINED < len(_USERFUN_SOURCES) and name not in _USERFUNS:
        source = _USERFUN_SOURCES[_SOURCES_DRAINED]
        _SOURCES_DRAINED += 1
        for fun in source():
            if fun.name not in _USERFUNS:
                register_userfun(fun)
    fun = _USERFUNS.get(name)
    if fun is None:
        raise SerializationError(
            f"unknown user function {name!r}; register it with "
            "repro.core.serialize.register_userfun"
        )
    if fun.body_c != body_c:
        raise SerializationError(
            f"user function {name!r} has a different body than the "
            "serialized program expects"
        )
    return fun


# ---------------------------------------------------------------------------
# Scalar types and arithmetic sizes
# ---------------------------------------------------------------------------

_SCALARS = {"float": Float, "double": Double, "int": Int, "bool": Bool}


def _type_name(type_: Type) -> str:
    for name, scalar in _SCALARS.items():
        if type_ == scalar:
            return name
    raise SerializationError(f"cannot serialize literal type {type_!r}")


def _concrete_int(size: ArithExpr, what: str) -> int:
    if not size.is_constant():
        raise SerializationError(f"cannot serialize symbolic {what} {size!r}")
    return int(size.evaluate())


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _encode(expr: Expr, param_ids: Dict[Param, int]) -> Dict[str, object]:
    if isinstance(expr, Param):
        if expr in param_ids:
            return {"node": "param", "pid": param_ids[expr]}
        return {"node": "free", "name": expr.name}
    if isinstance(expr, Literal):
        return {
            "node": "lit",
            "value": expr.value,
            "type": _type_name(expr.type),
        }
    if isinstance(expr, Lambda):
        inner = dict(param_ids)
        params = []
        for param in expr.params:
            inner[param] = len(inner)
            params.append({"name": param.name, "pid": inner[param]})
        return {
            "node": "lambda",
            "params": params,
            "body": _encode(expr.body, inner),
        }
    if isinstance(expr, UserFun):
        return {"node": "userfun", "name": expr.name, "body_c": expr.body_c}
    if isinstance(expr, FunCall):
        fun = expr.fun
        if not isinstance(fun, Expr):
            raise SerializationError(
                f"cannot serialize callee {type(fun).__name__}"
            )
        return {
            "node": "call",
            "fun": _encode(fun, param_ids),
            "args": [_encode(arg, param_ids) for arg in expr.args],
        }
    if isinstance(expr, Primitive):
        return _encode_primitive(expr, param_ids)
    raise SerializationError(f"cannot serialize {type(expr).__name__}")


def _encode_primitive(prim: Primitive, param_ids: Dict[Param, int]) -> Dict[str, object]:
    kind = type(prim).__name__
    out: Dict[str, object] = {"node": "prim", "kind": kind}
    if isinstance(prim, ArrayConstructor):
        raise SerializationError(
            "ArrayConstructor closures have no wire form; submit this "
            "program by benchmark name instead"
        )
    if isinstance(prim, (Map, Reduce, Iterate)) or isinstance(
        prim, (ToGlobal, ToLocal, ToPrivate)
    ):
        out["f"] = _encode(prim.f, param_ids)  # type: ignore[attr-defined]
    if isinstance(prim, _MapLike):
        out["dim"] = prim.dim
    if isinstance(prim, Reduce):
        out["init"] = _encode(prim.init, param_ids)
    if isinstance(prim, Iterate):
        out["count"] = prim.count
    if isinstance(prim, (Zip, TupleCons)):
        out["n"] = prim.n
    if isinstance(prim, Split):
        out["chunk"] = _concrete_int(prim.chunk, "split chunk")
    if isinstance(prim, (At, Get)):
        out["index"] = prim.index
    if isinstance(prim, Pad):
        if prim.boundary.name not in BOUNDARIES:
            raise SerializationError(
                f"cannot serialize custom pad boundary {prim.boundary.name!r}"
            )
        out.update(left=prim.left, right=prim.right, boundary=prim.boundary.name)
    if isinstance(prim, PadConstant):
        out.update(
            left=prim.left,
            right=prim.right,
            value=_encode(prim.value, param_ids),
        )
    if isinstance(prim, Slide):
        out["size"] = _concrete_int(prim.size, "slide size")
        out["step"] = _concrete_int(prim.step, "slide step")
    known = (
        Map, Reduce, Iterate, Zip, Split, Join, Transpose, At, Get,
        TupleCons, Id, Pad, PadConstant, Slide, ToGlobal, ToLocal, ToPrivate,
    )
    if not isinstance(prim, known):
        raise SerializationError(f"no wire form for primitive {kind!r}")
    return out


# ---------------------------------------------------------------------------
# Deserialization
# ---------------------------------------------------------------------------

_SIMPLE_PRIMS = {"Join": Join, "Transpose": Transpose, "Id": Id}
_MAP_PRIMS = {"Map": Map, "MapSeq": MapSeq}
_MAPLIKE_PRIMS = {"MapGlb": MapGlb, "MapWrg": MapWrg, "MapLcl": MapLcl}
_REDUCE_PRIMS = {"Reduce": Reduce, "ReduceSeq": ReduceSeq, "ReduceUnroll": ReduceUnroll}
_SPACE_PRIMS = {"ToGlobal": ToGlobal, "ToLocal": ToLocal, "ToPrivate": ToPrivate}


def _decode(data: Dict[str, object], params: Dict[int, Param]) -> Expr:
    node = data.get("node")
    if node == "param":
        pid = int(data["pid"])  # type: ignore[arg-type]
        if pid not in params:
            raise SerializationError(f"reference to unbound parameter id {pid}")
        return params[pid]
    if node == "free":
        return Param(str(data["name"]), UNTYPED)
    if node == "lit":
        return Literal(data["value"], _SCALARS[str(data["type"])])
    if node == "lambda":
        inner = dict(params)
        new_params = []
        for spec in data["params"]:  # type: ignore[union-attr]
            param = Param(str(spec["name"]), UNTYPED)
            inner[int(spec["pid"])] = param
            new_params.append(param)
        return Lambda(new_params, _decode(data["body"], inner))  # type: ignore[arg-type]
    if node == "userfun":
        return _resolve_userfun(str(data["name"]), str(data["body_c"]))
    if node == "call":
        fun = _decode(data["fun"], params)  # type: ignore[arg-type]
        if not isinstance(fun, FunDecl):
            raise SerializationError(
                f"call head decodes to non-callable {type(fun).__name__}"
            )
        args = [_decode(arg, params) for arg in data["args"]]  # type: ignore[union-attr]
        return FunCall(fun, *args)
    if node == "prim":
        return _decode_primitive(data, params)
    raise SerializationError(f"unknown node kind {node!r}")


def _decode_fun(data: Dict[str, object], params: Dict[int, Param]) -> FunDecl:
    fun = _decode(data, params)
    if not isinstance(fun, FunDecl):
        raise SerializationError(
            f"expected a function, decoded {type(fun).__name__}"
        )
    return fun


def _decode_primitive(data: Dict[str, object], params: Dict[int, Param]) -> Primitive:
    kind = str(data["kind"])
    if kind in _SIMPLE_PRIMS:
        return _SIMPLE_PRIMS[kind]()
    if kind in _MAP_PRIMS:
        return _MAP_PRIMS[kind](_decode_fun(data["f"], params))  # type: ignore[arg-type]
    if kind in _MAPLIKE_PRIMS:
        return _MAPLIKE_PRIMS[kind](
            _decode_fun(data["f"], params), int(data.get("dim", 0))  # type: ignore[arg-type]
        )
    if kind in _REDUCE_PRIMS:
        return _REDUCE_PRIMS[kind](
            _decode_fun(data["f"], params),  # type: ignore[arg-type]
            _decode(data["init"], params),  # type: ignore[arg-type]
        )
    if kind in _SPACE_PRIMS:
        return _SPACE_PRIMS[kind](_decode_fun(data["f"], params))  # type: ignore[arg-type]
    if kind == "Iterate":
        return Iterate(int(data["count"]), _decode_fun(data["f"], params))  # type: ignore[arg-type]
    if kind == "Zip":
        return Zip(int(data["n"]))  # type: ignore[arg-type]
    if kind == "TupleCons":
        return TupleCons(int(data["n"]))  # type: ignore[arg-type]
    if kind == "Split":
        return Split(int(data["chunk"]))  # type: ignore[arg-type]
    if kind == "At":
        return At(int(data["index"]))  # type: ignore[arg-type]
    if kind == "Get":
        return Get(int(data["index"]))  # type: ignore[arg-type]
    if kind == "Pad":
        return Pad(
            int(data["left"]), int(data["right"]),  # type: ignore[arg-type]
            BOUNDARIES[str(data["boundary"])],
        )
    if kind == "PadConstant":
        return PadConstant(
            int(data["left"]), int(data["right"]),  # type: ignore[arg-type]
            _decode(data["value"], params),  # type: ignore[arg-type]
        )
    if kind == "Slide":
        return Slide(int(data["size"]), int(data["step"]))  # type: ignore[arg-type]
    raise SerializationError(f"unknown primitive kind {kind!r}")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------

def program_to_dict(program: Lambda) -> Dict[str, object]:
    """Serialize a closed top-level lambda to a JSON-able dict."""
    if not isinstance(program, Lambda):
        raise SerializationError("only closed top-level lambdas serialize")
    return _encode(program, {})


def program_from_dict(data: Dict[str, object]) -> Lambda:
    """Reconstruct a program serialized by :func:`program_to_dict`."""
    program = _decode(dict(data), {})
    if not isinstance(program, Lambda):
        raise SerializationError("serialized program is not a lambda")
    return program


def program_to_json(program: Lambda) -> str:
    return json.dumps(program_to_dict(program), sort_keys=True)


def program_from_json(text: str) -> Lambda:
    return program_from_dict(json.loads(text))


__all__ = [
    "SerializationError",
    "add_userfun_source",
    "program_from_dict",
    "program_from_json",
    "program_to_dict",
    "program_to_json",
    "register_userfun",
]
