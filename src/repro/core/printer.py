"""Human-readable pretty printer for Lift expressions.

The output follows the notation used in the paper's listings, e.g.::

    map(λ(nbh). reduce(add, 0.0, nbh), slide(3, 1, pad(1, 1, clamp, A)))
"""

from __future__ import annotations

from .ir import Expr, FunCall, FunDecl, Lambda, Literal, Param, Primitive, UserFun
from .primitives.algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Iterate,
    Map,
    Reduce,
    Split,
    TupleCons,
    Zip,
)
from .primitives.opencl import _MemorySpaceModifier
from .primitives.stencil import Pad, PadConstant, Slide


def pretty(expr: Expr | FunDecl, *, indent: int = 0) -> str:
    """Render an expression (or callee declaration) as a single-line string."""
    if isinstance(expr, Param):
        return expr.name
    if isinstance(expr, Literal):
        return repr(expr.value)
    if isinstance(expr, UserFun):
        return expr.name
    if isinstance(expr, Lambda):
        params = ", ".join(p.name for p in expr.params)
        return f"λ({params}). {pretty(expr.body)}"
    if isinstance(expr, FunCall):
        return _pretty_call(expr)
    if isinstance(expr, Primitive):
        return _pretty_primitive_value(expr)
    return repr(expr)


def _pretty_primitive_value(prim: Primitive) -> str:
    """A primitive used as a function value (not applied)."""
    statics = _static_args(prim)
    nested = [pretty(f) for f in prim.nested_functions()]
    inner = ", ".join(statics + nested)
    return f"{prim.name}({inner})" if inner else prim.name


def _static_args(prim: Primitive) -> list:
    if isinstance(prim, (Pad, PadConstant)):
        third = prim.boundary.name if isinstance(prim, Pad) else None
        parts = [str(prim.left), str(prim.right)]
        if third is not None:
            parts.append(third)
        return parts
    if isinstance(prim, Slide):
        return [str(prim.size), str(prim.step)]
    if isinstance(prim, Split):
        return [str(prim.chunk)]
    if isinstance(prim, (At, Get)):
        return [str(prim.index)]
    if isinstance(prim, Iterate):
        return [str(prim.count)]
    if isinstance(prim, ArrayConstructor):
        return [str(prim.size), "<generator>"]
    if hasattr(prim, "dim"):
        return [str(prim.dim)]
    return []


def _pretty_call(call: FunCall) -> str:
    fun = call.fun
    args = [pretty(a) for a in call.args]

    if isinstance(fun, (Map,)) and type(fun).__name__.startswith("Map"):
        name = fun.name
        return f"{name}({pretty(fun.f)}, {', '.join(args)})"
    if isinstance(fun, Reduce):
        return f"{fun.name}({pretty(fun.f)}, {pretty(fun.init)}, {', '.join(args)})"
    if isinstance(fun, Iterate):
        return f"iterate({fun.count}, {pretty(fun.f)}, {', '.join(args)})"
    if isinstance(fun, Pad):
        return f"pad({fun.left}, {fun.right}, {fun.boundary.name}, {', '.join(args)})"
    if isinstance(fun, PadConstant):
        return f"padConstant({fun.left}, {fun.right}, {pretty(fun.value)}, {', '.join(args)})"
    if isinstance(fun, Slide):
        return f"slide({fun.size}, {fun.step}, {', '.join(args)})"
    if isinstance(fun, Split):
        return f"split({fun.chunk}, {', '.join(args)})"
    if isinstance(fun, At):
        return f"{args[0]}[{fun.index}]"
    if isinstance(fun, Get):
        return f"{args[0]}.{fun.index}"
    if isinstance(fun, TupleCons):
        return "(" + ", ".join(args) + ")"
    if isinstance(fun, Zip):
        return f"zip({', '.join(args)})"
    if isinstance(fun, ArrayConstructor):
        return f"array({fun.size}, <generator>)"
    if isinstance(fun, _MemorySpaceModifier):
        return f"{fun.name}({pretty(fun.f)}, {', '.join(args)})"
    if isinstance(fun, Primitive):
        statics = _static_args(fun)
        nested = [pretty(f) for f in fun.nested_functions()]
        inner = ", ".join(statics + nested + args)
        return f"{fun.name}({inner})"
    if isinstance(fun, Lambda):
        return f"({pretty(fun)})({', '.join(args)})"
    if isinstance(fun, UserFun):
        return f"{fun.name}({', '.join(args)})"
    return f"{fun!r}({', '.join(args)})"


__all__ = ["pretty"]
