"""Low-level, OpenCL-specific Lift primitives.

The high-level primitives say *what* is computed; these primitives say *how*
it is mapped onto the OpenCL execution and memory model.  They are introduced
exclusively by the lowering rewrite rules in
:mod:`repro.rewriting.lowering_rules` — user programs never mention them.

Thread-hierarchy mappings
    ``mapGlb(d)``  — one global work-item per element along dimension ``d``;
    ``mapWrg(d)``  — one work-group per element along dimension ``d``;
    ``mapLcl(d)``  — one local work-item (inside a work-group) per element;
    ``mapSeq``     — a sequential loop inside a single work-item.

Sequential reductions
    ``reduceSeq`` — a sequential accumulation loop;
    ``reduceUnroll`` — the same loop fully unrolled (legal only when the input
    length is a compile-time constant, which is always the case for stencil
    neighbourhoods).

Memory-space modifiers
    ``toLocal`` / ``toGlobal`` / ``toPrivate`` wrap a function and direct its
    output into the respective OpenCL address space.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..ir import Expr, FunDecl, Primitive
from ..types import ArrayType, Type, TypeError_
from .algorithmic import Map, Reduce


class _MapLike(Map):
    """Shared implementation for the lowered map variants."""

    def __init__(self, f: FunDecl, dim: int = 0) -> None:
        super().__init__(f)
        self.dim = int(dim)
        if self.dim not in (0, 1, 2):
            raise ValueError("OpenCL exposes at most three thread dimensions (0, 1, 2)")

    def static_key(self) -> Tuple:
        return (self.dim,)

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "_MapLike":
        return type(self)(nested[0], self.dim)  # type: ignore[arg-type]


class MapGlb(_MapLike):
    """Map each element to one global work-item along OpenCL dimension ``dim``."""

    name = "mapGlb"


class MapWrg(_MapLike):
    """Map each element to one work-group along OpenCL dimension ``dim``."""

    name = "mapWrg"


class MapLcl(_MapLike):
    """Map each element to one local work-item along OpenCL dimension ``dim``."""

    name = "mapLcl"


class MapSeq(Map):
    """Execute the map as a sequential loop within a single work-item."""

    name = "mapSeq"

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "MapSeq":
        return type(self)(nested[0])  # type: ignore[arg-type]


class ReduceSeq(Reduce):
    """Execute the reduction as a sequential accumulation loop."""

    name = "reduceSeq"


class ReduceUnroll(Reduce):
    """A sequential reduction whose loop is fully unrolled by the code generator.

    Unrolling is only legal when the length of the reduced array is a
    compile-time constant; :meth:`infer_type` enforces this.
    """

    name = "reduceUnroll"

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = arg_types[0]
        if isinstance(in_type, ArrayType) and not in_type.size.is_constant():
            raise TypeError_(
                "reduceUnroll requires a compile-time constant input length, "
                f"got {in_type.size!r}"
            )
        return super().infer_type(arg_types, args)


class _MemorySpaceModifier(Primitive):
    """Wrap a function so that its result is written to a specific address space."""

    space = "global"

    def __init__(self, f: FunDecl) -> None:
        super().__init__()
        self.f = f

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        return (self.space,)

    def nested_functions(self) -> Tuple[Expr, ...]:
        return (self.f,) if isinstance(self.f, Expr) else ()

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "_MemorySpaceModifier":
        return type(self)(nested[0])  # type: ignore[arg-type]

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        from ..typecheck import infer_call_type

        return infer_call_type(self.f, list(arg_types))


class ToLocal(_MemorySpaceModifier):
    """Write the wrapped function's result into OpenCL local (scratchpad) memory."""

    name = "toLocal"
    space = "local"


class ToGlobal(_MemorySpaceModifier):
    """Write the wrapped function's result into OpenCL global memory."""

    name = "toGlobal"
    space = "global"


class ToPrivate(_MemorySpaceModifier):
    """Write the wrapped function's result into private (register) memory."""

    name = "toPrivate"
    space = "private"


__all__ = [
    "MapGlb",
    "MapWrg",
    "MapLcl",
    "MapSeq",
    "ReduceSeq",
    "ReduceUnroll",
    "ToLocal",
    "ToGlobal",
    "ToPrivate",
]
