"""Built-in Lift primitives.

``algorithmic`` contains the original data-parallel patterns of Lift
(map, reduce, zip, split, join, transpose, ...).  ``stencil`` contains the two
primitives added by the CGO'18 paper (``pad`` and ``slide``).  ``opencl``
contains the low-level, OpenCL-specific primitives produced by the lowering
rewrite rules (mapGlb, mapLcl, toLocal, reduceSeq, ...).
"""

from .algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Id,
    Iterate,
    Join,
    Map,
    Reduce,
    Split,
    Transpose,
    TupleCons,
    Zip,
)
from .stencil import (
    CLAMP,
    MIRROR,
    WRAP,
    Boundary,
    Pad,
    PadConstant,
    Slide,
)
from .opencl import (
    MapGlb,
    MapLcl,
    MapSeq,
    MapWrg,
    ReduceSeq,
    ReduceUnroll,
    ToGlobal,
    ToLocal,
    ToPrivate,
)

__all__ = [
    "Map",
    "Reduce",
    "Iterate",
    "Zip",
    "Split",
    "Join",
    "Transpose",
    "At",
    "Get",
    "TupleCons",
    "ArrayConstructor",
    "Id",
    "Slide",
    "Pad",
    "PadConstant",
    "Boundary",
    "CLAMP",
    "MIRROR",
    "WRAP",
    "MapGlb",
    "MapWrg",
    "MapLcl",
    "MapSeq",
    "ReduceSeq",
    "ReduceUnroll",
    "ToLocal",
    "ToGlobal",
    "ToPrivate",
]
