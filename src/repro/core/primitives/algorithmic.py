"""The original data-parallel Lift primitives.

These are the primitives listed in Section 3.1 of the paper.  Each primitive
is an object holding its *static* parameters (the embedded function of a
``map``, the chunk size of a ``split``), while the data arguments are passed
through a :class:`~repro.core.ir.FunCall`.

Each class implements :meth:`infer_type`, the typing rule given in the paper:

==========  ==========================================================
map         ``(f : T → U, in : [T]_n) → [U]_n``
reduce      ``(init : U, f : (U, T) → U, in : [T]_n) → [U]_1``
zip         ``(in1 : [T]_n, in2 : [U]_n) → [{T, U}]_n``
iterate     ``(in : [T]_n, f : [T]_n → [T]_n, m) → [T]_n``
split       ``(m, in : [T]_n) → [[T]_m]_{n/m}``
join        ``(in : [[T]_m]_n) → [T]_{m×n}``
at          ``(i, in : [T]_n) → T``
get         ``(i, in : {T1, T2, ...}) → Ti``
array       ``(n, f : (i, n) → T) → [T]_n``
==========  ==========================================================
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from ..arithmetic import ArithLike, Cst, _as_arith, exact_div
from ..ir import Expr, FunDecl, Primitive
from ..types import ArrayType, TupleType, Type, TypeError_, check_same_size


def _infer_call(fun, arg_types: Sequence[Type]) -> Type:
    """Type a callee applied to arguments of the given types (lazy import)."""
    from ..typecheck import infer_call_type

    return infer_call_type(fun, list(arg_types))


def _expect_array(t: Type, who: str) -> ArrayType:
    if not isinstance(t, ArrayType):
        raise TypeError_(f"{who} expects an array argument, got {t!r}")
    return t


class Map(Primitive):
    """Apply a function to every element of an array (the source of parallelism)."""

    name = "map"

    def __init__(self, f: FunDecl) -> None:
        super().__init__()
        self.f = f

    def arity(self) -> int:
        return 1

    def nested_functions(self) -> Tuple[Expr, ...]:
        return (self.f,) if isinstance(self.f, Expr) else ()

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "Map":
        return type(self)(nested[0])  # type: ignore[arg-type]

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = _expect_array(arg_types[0], self.name)
        out_elem = _infer_call(self.f, [in_type.elem_type])
        return ArrayType(out_elem, in_type.size)


class Reduce(Primitive):
    """Reduce an array to a single-element array with a binary operator."""

    name = "reduce"

    def __init__(self, f: FunDecl, init: Expr) -> None:
        super().__init__()
        self.f = f
        self.init = init

    def arity(self) -> int:
        return 1

    def nested_functions(self) -> Tuple[Expr, ...]:
        nested = []
        if isinstance(self.f, Expr):
            nested.append(self.f)
        nested.append(self.init)
        return tuple(nested)

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "Reduce":
        if isinstance(self.f, Expr):
            return type(self)(nested[0], nested[1])  # type: ignore[arg-type]
        return type(self)(self.f, nested[0])

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = _expect_array(arg_types[0], self.name)
        from ..typecheck import infer_type as _infer

        init_type = _infer(self.init)
        acc_type = _infer_call(self.f, [init_type, in_type.elem_type])
        if acc_type != init_type:
            raise TypeError_(
                f"{self.name}: operator returns {acc_type!r} but accumulator is {init_type!r}"
            )
        return ArrayType(acc_type, Cst(1))


class Iterate(Primitive):
    """Apply a size-preserving function ``m`` times, feeding output to input."""

    name = "iterate"

    def __init__(self, count: int, f: FunDecl) -> None:
        super().__init__()
        self.count = int(count)
        self.f = f
        if self.count < 0:
            raise ValueError("iterate count must be non-negative")

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        return (self.count,)

    def nested_functions(self) -> Tuple[Expr, ...]:
        return (self.f,) if isinstance(self.f, Expr) else ()

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "Iterate":
        return type(self)(self.count, nested[0])  # type: ignore[arg-type]

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = arg_types[0]
        out_type = _infer_call(self.f, [in_type])
        if out_type != in_type:
            raise TypeError_(
                f"iterate requires a size-preserving function: {in_type!r} -> {out_type!r}"
            )
        return in_type


class Zip(Primitive):
    """Combine two or more equal-length arrays into an array of tuples."""

    name = "zip"

    def __init__(self, n: int = 2) -> None:
        super().__init__()
        self.n = int(n)
        if self.n < 2:
            raise ValueError("zip requires at least two arrays")

    def arity(self) -> int:
        return self.n

    def static_key(self) -> Tuple:
        return (self.n,)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        arrays = [_expect_array(t, self.name) for t in arg_types]
        size = arrays[0].size
        for other in arrays[1:]:
            check_same_size(size, other.size, "zip")
        return ArrayType(TupleType(*[a.elem_type for a in arrays]), size)


class Split(Primitive):
    """Split an array into chunks of ``m`` elements, adding a dimension."""

    name = "split"

    def __init__(self, chunk: ArithLike) -> None:
        super().__init__()
        self.chunk = _as_arith(chunk)

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        return (self.chunk,)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = _expect_array(arg_types[0], self.name)
        outer = exact_div(in_type.size, self.chunk, allow_floor=True)
        return ArrayType(ArrayType(in_type.elem_type, self.chunk), outer)


class Join(Primitive):
    """Flatten the two outermost dimensions of a nested array."""

    name = "join"

    def arity(self) -> int:
        return 1

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        outer = _expect_array(arg_types[0], self.name)
        inner = _expect_array(outer.elem_type, self.name)
        return ArrayType(inner.elem_type, outer.size * inner.size)


class Transpose(Primitive):
    """Swap the two outermost dimensions of a nested array."""

    name = "transpose"

    def arity(self) -> int:
        return 1

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        outer = _expect_array(arg_types[0], self.name)
        inner = _expect_array(outer.elem_type, self.name)
        return ArrayType(ArrayType(inner.elem_type, outer.size), inner.size)


class At(Primitive):
    """Index an array with a constant index (written ``in[i]`` in the paper)."""

    name = "at"

    def __init__(self, index: int) -> None:
        super().__init__()
        self.index = int(index)
        if self.index < 0:
            raise ValueError("at index must be non-negative")

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        return (self.index,)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = _expect_array(arg_types[0], self.name)
        if in_type.size.is_constant() and self.index >= in_type.size.evaluate():
            raise TypeError_(
                f"at({self.index}) out of bounds for array of length {in_type.size}"
            )
        return in_type.elem_type


class Get(Primitive):
    """Project a component out of a tuple (written ``in.i`` in the paper)."""

    name = "get"

    def __init__(self, index: int) -> None:
        super().__init__()
        self.index = int(index)

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        return (self.index,)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = arg_types[0]
        if not isinstance(in_type, TupleType):
            raise TypeError_(f"get expects a tuple argument, got {in_type!r}")
        if self.index >= len(in_type.elem_types):
            raise TypeError_(
                f"get({self.index}) out of bounds for tuple of {len(in_type.elem_types)}"
            )
        return in_type.elem_types[self.index]


class TupleCons(Primitive):
    """Construct a tuple out of its argument expressions."""

    name = "tuple"

    def __init__(self, n: int) -> None:
        super().__init__()
        self.n = int(n)

    def arity(self) -> int:
        return self.n

    def static_key(self) -> Tuple:
        return (self.n,)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        return TupleType(*arg_types)


class ArrayConstructor(Primitive):
    """Lazily construct an array by invoking ``f(i, n)`` for every index.

    Used in the paper's acoustic benchmark to build the obstacle mask on the
    fly instead of storing it in memory.
    """

    name = "array"

    def __init__(
        self,
        size: ArithLike,
        generator: Callable[[int, int], object],
        elem_type: Type,
        c_expression: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.size = _as_arith(size)
        self.generator = generator
        self.elem_type = elem_type
        #: C expression template with ``{i}`` and ``{n}`` placeholders used by codegen.
        self.c_expression = c_expression

    def arity(self) -> int:
        return 0

    def static_key(self) -> Tuple:
        return (self.size, self.elem_type, self.c_expression)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        return ArrayType(self.elem_type, self.size)


class Id(Primitive):
    """The identity function on scalars; used to introduce copies (e.g. to local memory)."""

    name = "id"

    def arity(self) -> int:
        return 1

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        return arg_types[0]


__all__ = [
    "Map",
    "Reduce",
    "Iterate",
    "Zip",
    "Split",
    "Join",
    "Transpose",
    "At",
    "Get",
    "TupleCons",
    "ArrayConstructor",
    "Id",
]
