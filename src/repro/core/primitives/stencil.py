"""The two stencil primitives added by the CGO'18 paper: ``pad`` and ``slide``.

``pad`` handles boundary conditions.  Its re-indexing variant (:class:`Pad`)
enlarges an array by ``l`` elements on the left and ``r`` elements on the
right; the extra elements are read from inside the original array via an index
function such as *clamp*, *mirror* or *wrap*.  The value variant
(:class:`PadConstant`) appends generated values instead (used for constant or
dampening boundaries).

``slide`` creates the stencil neighbourhoods: ``slide(size, step, in)`` groups
``size`` consecutive elements into a window and moves the window by ``step``,
producing ``(n − size + step) / step`` windows.

Both primitives are pure data-layout operations; during code generation they
are realised as *views* (index arithmetic) rather than memory copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from ..arithmetic import ArithLike, _as_arith, exact_div
from ..ir import Expr, Literal, Primitive
from ..types import ArrayType, Type, TypeError_


@dataclass(frozen=True)
class Boundary:
    """A re-indexing boundary condition for :class:`Pad`.

    Attributes
    ----------
    name:
        Human-readable name (appears in generated OpenCL code comments).
    index_fn:
        Python implementation ``(i, n) -> j`` mapping a possibly out-of-range
        index ``i`` into the valid range ``[0, n)``.
    c_template:
        C expression template with ``{i}`` and ``{n}`` placeholders producing
        the same mapping in generated code.
    """

    name: str
    index_fn: Callable[[int, int], int]
    c_template: str

    def __call__(self, i: int, n: int) -> int:
        j = self.index_fn(i, n)
        if not 0 <= j < n:
            raise ValueError(
                f"boundary function {self.name} mapped {i} to {j}, outside [0, {n})"
            )
        return j


def _clamp(i: int, n: int) -> int:
    return 0 if i < 0 else (n - 1 if i >= n else i)


def _mirror(i: int, n: int) -> int:
    if i < 0:
        i = -1 - i
    if i >= n:
        i = n - (i - n) - 1
    return _clamp(i, n)


def _wrap(i: int, n: int) -> int:
    return i % n


#: Repeat the value at the boundary (``A[-1] == A[0]``).
CLAMP = Boundary("clamp", _clamp, "(({i}) < 0 ? 0 : (({i}) >= ({n}) ? ({n}) - 1 : ({i})))")
#: Reflect indices at the boundary (``A[-1] == A[0]``, ``A[-2] == A[1]``).
MIRROR = Boundary(
    "mirror",
    _mirror,
    "((({i}) < 0 ? (-({i}) - 1) : (({i}) >= ({n}) ? (2 * ({n}) - ({i}) - 1) : ({i}))))",
)
#: Wrap indices around (periodic boundary).
WRAP = Boundary("wrap", _wrap, "((({i}) % ({n}) + ({n})) % ({n}))")

BOUNDARIES = {"clamp": CLAMP, "mirror": MIRROR, "wrap": WRAP}


class Pad(Primitive):
    """Enlarge an array by re-indexing into it at the boundaries.

    Type rule (paper §3.2)::

        pad : (l, r, h : (Int, Int) -> Int, in : [T]_n) -> [T]_{l+n+r}
    """

    name = "pad"

    def __init__(self, left: int, right: int, boundary: Boundary) -> None:
        super().__init__()
        self.left = int(left)
        self.right = int(right)
        self.boundary = boundary
        if self.left < 0 or self.right < 0:
            raise ValueError("pad amounts must be non-negative")

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        return (self.left, self.right, self.boundary.name)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = arg_types[0]
        if not isinstance(in_type, ArrayType):
            raise TypeError_(f"pad expects an array argument, got {in_type!r}")
        return ArrayType(in_type.elem_type, in_type.size + self.left + self.right)


class PadConstant(Primitive):
    """Enlarge an array by appending a constant value at the boundaries.

    This is the second ``pad`` variant described in the paper, used for
    constant (e.g. zero) boundary conditions such as the acoustic benchmark's
    ``pad3(1, 1, 1, zero, grid)``.
    """

    name = "padConstant"

    def __init__(self, left: int, right: int, value: Expr) -> None:
        super().__init__()
        self.left = int(left)
        self.right = int(right)
        self.value = value
        if self.left < 0 or self.right < 0:
            raise ValueError("pad amounts must be non-negative")

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        value_key = self.value.value if isinstance(self.value, Literal) else id(self.value)
        return (self.left, self.right, value_key)

    def nested_functions(self) -> Tuple[Expr, ...]:
        return (self.value,)

    def with_nested_functions(self, nested: Tuple[Expr, ...]) -> "PadConstant":
        return type(self)(self.left, self.right, nested[0])

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = arg_types[0]
        if not isinstance(in_type, ArrayType):
            raise TypeError_(f"padConstant expects an array argument, got {in_type!r}")
        return ArrayType(in_type.elem_type, in_type.size + self.left + self.right)


class Slide(Primitive):
    """Group elements into overlapping windows (neighbourhood creation).

    Type rule (paper §3.2)::

        slide : (size, step, in : [T]_n) -> [[T]_size]_{(n - size + step) / step}
    """

    name = "slide"

    def __init__(self, size: ArithLike, step: ArithLike) -> None:
        super().__init__()
        self.size = _as_arith(size)
        self.step = _as_arith(step)
        if self.size.is_constant() and self.size.evaluate() <= 0:
            raise ValueError("slide window size must be positive")
        if self.step.is_constant() and self.step.evaluate() <= 0:
            raise ValueError("slide step must be positive")

    def arity(self) -> int:
        return 1

    def static_key(self) -> Tuple:
        return (self.size, self.step)

    def infer_type(self, arg_types: Sequence[Type], args: Sequence[Expr]) -> Type:
        in_type = arg_types[0]
        if not isinstance(in_type, ArrayType):
            raise TypeError_(f"slide expects an array argument, got {in_type!r}")
        window_count = exact_div(
            in_type.size - self.size + self.step, self.step, allow_floor=True
        )
        return ArrayType(
            ArrayType(in_type.elem_type, self.size),
            window_count,
        )


__all__ = [
    "Boundary",
    "CLAMP",
    "MIRROR",
    "WRAP",
    "BOUNDARIES",
    "Pad",
    "PadConstant",
    "Slide",
]
