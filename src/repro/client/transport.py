"""Pluggable transports: JSON-lines TCP and HTTP, with pooled connections.

Both transports expose the same blocking surface — ``submit`` one
:class:`~repro.service.requests.ExecutionRequest`, get one
:class:`~repro.service.requests.ExecutionResponse` — and both keep a pool
of idle connections so sequential and multi-threaded callers reuse sockets
instead of reconnecting per request.

Failure classification is the load-bearing part: :class:`TransportError`
carries ``retryable``, and it is ``True`` **only** for connect failures and
timeouts observed before a single response byte arrived.  Once any byte of
a response has been read the server may have executed the request, so the
error is final — the retry loop in :mod:`repro.client.client` refuses to
replay it.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Dict, List, Optional

import numpy as np

from ..service.requests import ExecutionRequest, ExecutionResponse
from ..service.wire import (
    CONTENT_TYPE_GRIDS,
    CONTENT_TYPE_JSON,
    DEFAULT_CHUNK_BYTES,
    decode_grid_payload,
    encode_grid_payload,
    iter_chunks,
)
from .auth import attach_auth, auth_headers
from .config import DEFAULT_BINARY_THRESHOLD_BYTES


class TransportError(Exception):
    """A transport-level failure (vs. an in-band service error).

    ``retryable`` marks failures that are provably safe to replay: the
    connection never opened, or it timed out before one response byte.
    """

    def __init__(self, message: str, retryable: bool = False,
                 code: Optional[str] = None) -> None:
        super().__init__(message)
        self.retryable = retryable
        self.code = code


class _Pool:
    """A tiny LIFO pool of reusable connections (thread-safe)."""

    def __init__(self) -> None:
        self._idle: List[object] = []
        self._lock = threading.Lock()
        self.closed = False

    def acquire(self) -> Optional[object]:
        with self._lock:
            if self.closed:
                raise TransportError("transport is closed")
            return self._idle.pop() if self._idle else None

    def release(self, connection: object) -> None:
        with self._lock:
            if self.closed:
                self._close_one(connection)
            else:
                self._idle.append(connection)

    def close_all(self) -> None:
        with self._lock:
            self.closed = True
            idle, self._idle = self._idle, []
        for connection in idle:
            self._close_one(connection)

    @staticmethod
    def _close_one(connection: object) -> None:
        try:
            connection.close()  # type: ignore[attr-defined]
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass


class Transport:
    """The transport surface :class:`StencilClient` drives."""

    def submit(self, request: ExecutionRequest,
               timeout_s: float) -> ExecutionResponse:
        raise NotImplementedError

    def ping(self, timeout_s: float = 5.0) -> bool:
        raise NotImplementedError

    def stats(self, timeout_s: float = 30.0) -> Optional[Dict[str, object]]:
        """Server-side stats, when the protocol exposes them (else None)."""
        return None

    # -- durable jobs --------------------------------------------------------
    # All job ops are idempotent on the server (submission dedups on
    # ``job_key``; the rest are reads or at-most-once cancels), so every
    # in-band failure below surfaces as a non-retryable TransportError
    # carrying the server's structured ``code`` — the caller decides.
    def job_submit(self, request: ExecutionRequest,
                   job_key: Optional[str] = None,
                   checkpoint_every: Optional[int] = None,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        """Submit a checkpointed multi-timestep job; returns its descriptor."""
        raise NotImplementedError

    def job_status(self, job_id: str,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        raise NotImplementedError

    def job_result(self, job_id: str, timeout_s: float = 30.0):
        """The final grid of a completed job: ``(descriptor, ndarray)``."""
        raise NotImplementedError

    def job_cancel(self, job_id: str,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        raise NotImplementedError

    def job_list(self, timeout_s: float = 30.0) -> List[Dict[str, object]]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def _job_refused(reply: Dict[str, object]) -> TransportError:
    """An in-band job-op refusal shaped as a (non-retryable) error."""
    return TransportError(
        str(reply.get("error", "job operation refused")),
        retryable=False, code=reply.get("code"),
    )


class _TcpConnection:
    """One JSON-lines socket with its own read buffer + byte accounting."""

    def __init__(self, host: str, port: int, timeout_s: float) -> None:
        try:
            self.sock = socket.create_connection((host, port),
                                                 timeout=timeout_s)
        except OSError as error:
            raise TransportError(f"connect to {host}:{port} failed: {error}",
                                 retryable=True)
        self.buffer = b""

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def roundtrip(self, message: Dict[str, object],
                  timeout_s: float,
                  chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> Dict[str, object]:
        self.sock.settimeout(timeout_s)
        line = (json.dumps(message) + "\n").encode("utf-8")
        got_response_byte = bool(self.buffer)
        try:
            for start in range(0, len(line), chunk_bytes):
                self.sock.sendall(line[start:start + chunk_bytes])
        except socket.timeout:
            raise TransportError("send timed out", retryable=True)
        except OSError as error:
            # A dead keep-alive socket: nothing was executed, safe to retry
            # on a fresh connection.
            raise TransportError(f"send failed: {error}", retryable=True)
        while b"\n" not in self.buffer:
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                raise TransportError(
                    "response timed out", retryable=not got_response_byte
                )
            except OSError as error:
                raise TransportError(f"receive failed: {error}",
                                     retryable=not got_response_byte)
            if not chunk:
                raise TransportError("connection closed by server",
                                     retryable=not got_response_byte)
            got_response_byte = True
            self.buffer += chunk
        raw, _, self.buffer = self.buffer.partition(b"\n")
        try:
            reply = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TransportError(f"malformed response line: {error}")
        if not isinstance(reply, dict):
            raise TransportError("response line is not a JSON object")
        return reply


class TcpTransport(Transport):
    """The JSON-lines TCP endpoint of ``repro serve``, with pooled sockets."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7457,
                 auth_key: Optional[str] = None,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        self.host = host
        self.port = port
        self.auth_key = auth_key
        self.chunk_bytes = chunk_bytes
        self._pool = _Pool()

    def _roundtrip(self, message: Dict[str, object],
                   timeout_s: float) -> Dict[str, object]:
        attach_auth(message, self.auth_key)
        connection = self._pool.acquire()
        if connection is None:
            connection = _TcpConnection(self.host, self.port, timeout_s)
        try:
            reply = connection.roundtrip(message, timeout_s,
                                         chunk_bytes=self.chunk_bytes)
        except TransportError:
            connection.close()
            raise
        self._pool.release(connection)
        return reply

    def submit(self, request: ExecutionRequest,
               timeout_s: float) -> ExecutionResponse:
        message = request.to_wire()
        message["op"] = "execute"
        reply = self._roundtrip(message, timeout_s)
        return self._shape(reply)

    @staticmethod
    def _shape(reply: Dict[str, object]) -> ExecutionResponse:
        if not reply.get("ok", False) and "digest" not in reply:
            # A transport-level in-band refusal (auth, oversized line):
            # shape it like an ExecutionResponse so callers see one type.
            return ExecutionResponse(
                result=None, benchmark=None, digest="", variant="",
                plan_source="", batch_size=0, batched=False, latency_s=0.0,
                error=str(reply.get("error", "request refused")),
                code=reply.get("code"),
            )
        return ExecutionResponse.from_wire(reply)

    def ping(self, timeout_s: float = 5.0) -> bool:
        reply = self._roundtrip({"op": "ping"}, timeout_s)
        return bool(reply.get("pong"))

    def stats(self, timeout_s: float = 30.0) -> Optional[Dict[str, object]]:
        reply = self._roundtrip({"op": "stats"}, timeout_s)
        stats = reply.get("stats")
        return stats if isinstance(stats, dict) else None

    # -- durable jobs --------------------------------------------------------
    def _job_roundtrip(self, message: Dict[str, object],
                       timeout_s: float) -> Dict[str, object]:
        reply = self._roundtrip(message, timeout_s)
        if not reply.get("ok", False):
            raise _job_refused(reply)
        return reply

    def job_submit(self, request: ExecutionRequest,
                   job_key: Optional[str] = None,
                   checkpoint_every: Optional[int] = None,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        message = request.to_wire()
        message["op"] = "job_submit"
        if job_key is not None:
            message["job_key"] = job_key
        if checkpoint_every is not None:
            message["checkpoint_every"] = int(checkpoint_every)
        return self._job_roundtrip(message, timeout_s)["job"]

    def job_status(self, job_id: str,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        return self._job_roundtrip(
            {"op": "job_status", "job_id": job_id}, timeout_s
        )["job"]

    def job_result(self, job_id: str, timeout_s: float = 30.0):
        reply = self._job_roundtrip(
            {"op": "job_result", "job_id": job_id}, timeout_s
        )
        return reply["job"], np.asarray(reply["result"], dtype=np.float64)

    def job_cancel(self, job_id: str,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        return self._job_roundtrip(
            {"op": "job_cancel", "job_id": job_id}, timeout_s
        )["job"]

    def job_list(self, timeout_s: float = 30.0) -> List[Dict[str, object]]:
        return self._job_roundtrip({"op": "job_list"}, timeout_s)["jobs"]

    def close(self) -> None:
        self._pool.close_all()


class HttpTransport(Transport):
    """The ``/v1/*`` HTTP endpoint, with keep-alive connection reuse.

    Small requests travel as JSON; once the grids exceed
    ``binary_threshold_bytes`` the request switches to the binary
    ``application/x-repro-grids`` body, uploaded in bounded chunks
    (``Transfer-Encoding: chunked`` via a generator body) and downloaded as
    raw little-endian buffers — a 1024² float64 grid never exists as one
    JSON string on either side of the socket.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7458,
                 auth_key: Optional[str] = None,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 binary_threshold_bytes: int =
                 DEFAULT_BINARY_THRESHOLD_BYTES) -> None:
        self.host = host
        self.port = port
        self.auth_key = auth_key
        self.chunk_bytes = chunk_bytes
        self.binary_threshold_bytes = binary_threshold_bytes
        self._pool = _Pool()

    # -- request encoding ----------------------------------------------------
    def _encode(self, request: ExecutionRequest,
                extra: Optional[Dict[str, object]] = None):
        """Returns (headers, body) — body is bytes or a chunk generator.

        ``extra`` merges additional wire fields into the request meta
        (e.g. ``job_key`` for durable-job submission) on both the JSON
        and the binary-grids encodings.
        """
        headers = {"Accept": CONTENT_TYPE_GRIDS,
                   **auth_headers(self.auth_key)}
        grid_bytes = sum(grid.nbytes for grid in request.inputs)
        if grid_bytes < self.binary_threshold_bytes:
            wire = request.to_wire()
            wire.update(extra or {})
            body = json.dumps(wire).encode("utf-8")
            headers["Content-Type"] = CONTENT_TYPE_JSON
            headers["Content-Length"] = str(len(body))
            return headers, body
        meta = request.to_wire()
        meta.pop("inputs", None)
        meta.update(extra or {})
        prefix, buffers = encode_grid_payload(meta, request.inputs)
        headers["Content-Type"] = CONTENT_TYPE_GRIDS
        # No Content-Length: the generator body makes http.client send
        # Transfer-Encoding: chunked, one bounded piece at a time.
        return headers, iter_chunks(prefix, buffers,
                                    chunk_bytes=self.chunk_bytes)

    @staticmethod
    def _decode(content_type: str, body: bytes) -> ExecutionResponse:
        media = content_type.split(";")[0].strip().lower()
        if media == CONTENT_TYPE_GRIDS:
            meta, grids = decode_grid_payload(body)
            if grids:
                meta["result"] = grids[0]
            response = ExecutionResponse.from_wire(
                {key: value for key, value in meta.items() if key != "result"}
            )
            if grids:
                response.result = np.asarray(grids[0], dtype=np.float64)
            return response
        return ExecutionResponse.from_wire(json.loads(body.decode("utf-8")))

    # -- the wire ------------------------------------------------------------
    def _roundtrip(self, method: str, path: str, headers: Dict[str, str],
                   body, timeout_s: float):
        """One HTTP exchange; returns (status, content type, body bytes)."""
        connection = self._pool.acquire()
        fresh = connection is None
        if fresh:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout_s
            )
        else:
            connection.timeout = timeout_s
            if connection.sock is not None:
                connection.sock.settimeout(timeout_s)
        try:
            try:
                connection.request(method, path, body=body, headers=headers)
            except (ConnectionError, socket.timeout, socket.gaierror,
                    OSError) as error:
                # Connect failure, or a dead pooled keep-alive socket: the
                # request never reached a live server, safe to retry.
                raise TransportError(f"request failed: {error}",
                                     retryable=True)
            try:
                response = connection.getresponse()
            except socket.timeout:
                raise TransportError("response timed out", retryable=True)
            except (http.client.RemoteDisconnected, ConnectionError) as error:
                raise TransportError(
                    f"server closed the connection: {error}", retryable=True
                )
            try:
                payload = response.read()
            except (socket.timeout, OSError) as error:
                # Bytes of the response were consumed; never replay.
                raise TransportError(f"response truncated: {error}",
                                     retryable=False)
            content_type = response.headers.get("Content-Type", "")
            keep_alive = not response.will_close
        except TransportError:
            _Pool._close_one(connection)
            raise
        if keep_alive:
            self._pool.release(connection)
        else:
            _Pool._close_one(connection)
        return response.status, content_type, payload

    def submit(self, request: ExecutionRequest,
               timeout_s: float) -> ExecutionResponse:
        headers, body = self._encode(request)
        path = "/v1/iterate" if request.steps > 1 else "/v1/execute"
        _status, content_type, payload = self._roundtrip(
            "POST", path, headers, body, timeout_s
        )
        try:
            return self._decode(content_type, payload)
        except Exception as error:  # noqa: BLE001 - malformed server reply
            raise TransportError(f"malformed response body: {error}")

    def ping(self, timeout_s: float = 5.0) -> bool:
        status, _content_type, _payload = self._roundtrip(
            "GET", "/healthz", auth_headers(self.auth_key), None, timeout_s
        )
        return status == 200

    # -- durable jobs --------------------------------------------------------
    def _job_json(self, method: str, path: str, headers, body,
                  timeout_s: float) -> Dict[str, object]:
        """One job-route exchange that must come back 200 + JSON."""
        status, _content_type, payload = self._roundtrip(
            method, path, headers, body, timeout_s
        )
        try:
            reply = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise TransportError(f"malformed job response: {error}")
        if status != 200 or not reply.get("ok", False):
            raise _job_refused(reply)
        return reply

    def _job_headers(self) -> Dict[str, str]:
        return {"Accept": CONTENT_TYPE_JSON, **auth_headers(self.auth_key)}

    def job_submit(self, request: ExecutionRequest,
                   job_key: Optional[str] = None,
                   checkpoint_every: Optional[int] = None,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        extra: Dict[str, object] = {}
        if job_key is not None:
            extra["job_key"] = job_key
        if checkpoint_every is not None:
            extra["checkpoint_every"] = int(checkpoint_every)
        headers, body = self._encode(request, extra=extra)
        headers["Accept"] = CONTENT_TYPE_JSON
        return self._job_json("POST", "/v1/jobs", headers, body,
                              timeout_s)["job"]

    def job_status(self, job_id: str,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        return self._job_json("GET", f"/v1/jobs/{job_id}",
                              self._job_headers(), None, timeout_s)["job"]

    def job_result(self, job_id: str, timeout_s: float = 30.0):
        # Ask for the binary grids framing: the final grid travels as raw
        # little-endian bytes with a per-buffer checksum, never as JSON.
        headers = {"Accept": CONTENT_TYPE_GRIDS,
                   **auth_headers(self.auth_key)}
        status, content_type, payload = self._roundtrip(
            "GET", f"/v1/jobs/{job_id}/result", headers, None, timeout_s
        )
        media = content_type.split(";")[0].strip().lower()
        if status != 200 or media != CONTENT_TYPE_GRIDS:
            # Refusals mirror the request's Accept: a grids-framed error
            # meta when we asked for grids, JSON otherwise.
            try:
                if media == CONTENT_TYPE_GRIDS:
                    reply, _grids = decode_grid_payload(payload)
                else:
                    reply = json.loads(payload.decode("utf-8"))
            except Exception as error:  # noqa: BLE001 - malformed reply
                raise TransportError(f"malformed job response: {error}")
            raise _job_refused(reply)
        meta, grids = decode_grid_payload(payload)
        if not grids:
            raise TransportError("job result carried no grid")
        return meta.get("job", {}), np.asarray(grids[0], dtype=np.float64)

    def job_cancel(self, job_id: str,
                   timeout_s: float = 30.0) -> Dict[str, object]:
        return self._job_json("DELETE", f"/v1/jobs/{job_id}",
                              self._job_headers(), None, timeout_s)["job"]

    def job_list(self, timeout_s: float = 30.0) -> List[Dict[str, object]]:
        return self._job_json("GET", "/v1/jobs", self._job_headers(), None,
                              timeout_s)["jobs"]

    def close(self) -> None:
        self._pool.close_all()


__all__ = [
    "HttpTransport",
    "TcpTransport",
    "Transport",
    "TransportError",
]
