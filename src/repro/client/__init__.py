"""The production client library for the stencil execution service.

The service end of the wire lives in :mod:`repro.service`; this package is
what *callers* import:

* :class:`StencilClient` (:mod:`.client`) — blocking calls with per-call
  transport deadlines, default server-side ``deadline_ms`` stamping, and
  bounded exponential-backoff retries that replay only provably-unexecuted
  failures;
* :class:`TcpTransport` / :class:`HttpTransport` (:mod:`.transport`) —
  pluggable wire protocols with pooled, reused connections; the HTTP
  transport switches to the chunk-streamed binary grid body for large
  payloads;
* :class:`ClientConfig` / :class:`RetryPolicy` (:mod:`.config`) — endpoint,
  auth, deadline and backoff settings;
* :mod:`.auth` — the shared-key header/field helpers both transports use.
"""

from .auth import attach_auth, auth_headers
from .client import StencilClient, execute_many
from .config import ClientConfig, RetryPolicy
from .transport import HttpTransport, TcpTransport, Transport, TransportError

__all__ = [
    "ClientConfig",
    "HttpTransport",
    "RetryPolicy",
    "StencilClient",
    "TcpTransport",
    "Transport",
    "TransportError",
    "attach_auth",
    "auth_headers",
    "execute_many",
]
