"""Client configuration: endpoint, auth, deadlines and retry policy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..service.wire import DEFAULT_CHUNK_BYTES

#: Grid payloads above this many bytes switch the HTTP transport from the
#: JSON body to the binary ``application/x-repro-grids`` framing.
DEFAULT_BINARY_THRESHOLD_BYTES = 64 * 1024


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with jitter, for *safe* failures only.

    A retry is attempted only when the transport failed to connect or timed
    out **before reading a single response byte** — once any byte of a
    response arrived the server may have executed the request, and replaying
    it could double work (idempotent-safe semantics).  Delays grow
    ``base * 2**attempt`` up to ``max_delay_s``, each with uniform jitter of
    up to its own magnitude so synchronized clients do not stampede.
    """

    retries: int = 2                  # retry attempts after the first try
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0

    def delay_s(self, attempt: int, jitter: float) -> float:
        """Backoff before retry ``attempt`` (0-based); jitter in [0, 1)."""
        delay = min(self.backoff_max_s,
                    self.backoff_base_s * (2.0 ** attempt))
        return delay * (1.0 + jitter)


@dataclass
class ClientConfig:
    """Where and how :class:`~repro.client.client.StencilClient` connects.

    ``transport`` selects the wire protocol: ``"tcp"`` is the JSON-lines
    endpoint of ``repro serve``, ``"http"`` the ``/v1/*`` endpoint of
    ``repro serve --http-port``.  ``timeout_s`` is the per-call transport
    deadline (connect + send + first response byte); ``deadline_ms`` is the
    default *server-side* freshness bound stamped onto requests that do not
    carry their own.
    """

    host: str = "127.0.0.1"
    port: int = 7457
    transport: str = "tcp"
    auth_key: Optional[str] = None
    timeout_s: float = 30.0
    deadline_ms: Optional[float] = None
    priority: str = "normal"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    binary_threshold_bytes: int = DEFAULT_BINARY_THRESHOLD_BYTES

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "http"):
            raise ValueError(
                f"transport must be 'tcp' or 'http', got {self.transport!r}"
            )


__all__ = [
    "ClientConfig",
    "DEFAULT_BINARY_THRESHOLD_BYTES",
    "RetryPolicy",
]
