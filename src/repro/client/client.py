""":class:`StencilClient` — the production client for the stencil service.

One client object, one configured endpoint, blocking calls:

.. code-block:: python

    from repro.client import ClientConfig, StencilClient

    with StencilClient(ClientConfig(transport="http", port=7458,
                                    auth_key="s3cret")) as client:
        response = client.execute_benchmark("stencil2d", shape=(512, 512),
                                            priority="high", deadline_ms=50)

The client owns deadlines and retries so callers do not reimplement them:

* every call has a *transport* deadline (``timeout_s``, per call or from
  the config) and every request may carry a *server-side* ``deadline_ms``
  freshness bound (the service sheds it once stale);
* failed calls are retried with bounded exponential backoff + jitter, but
  **only** when the transport reports the failure as provably-unexecuted
  (connect error, or timeout before a single response byte) — a failure
  after response bytes arrived is surfaced, never replayed;
* admission rejections (429-style) are retried the same way — a rejected
  request never executed — waiting at least the server's
  ``retry_after_ms`` hint before the next attempt.
"""

from __future__ import annotations

import random
import time
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..service.jobs import TERMINAL
from ..service.requests import ExecutionRequest, ExecutionResponse
from .config import ClientConfig
from .transport import HttpTransport, TcpTransport, Transport, TransportError


class StencilClient:
    """A blocking client over one pluggable transport (TCP or HTTP)."""

    def __init__(self, config: Optional[ClientConfig] = None,
                 transport: Optional[Transport] = None,
                 rng: Optional[random.Random] = None, **overrides) -> None:
        if config is None:
            config = ClientConfig(**overrides)
        elif overrides:
            raise ValueError("pass a ClientConfig or keyword overrides, "
                             "not both")
        self.config = config
        self._rng = rng if rng is not None else random.Random()
        self.retries_attempted = 0
        if transport is not None:
            self.transport = transport
        elif config.transport == "http":
            self.transport = HttpTransport(
                config.host, config.port, auth_key=config.auth_key,
                chunk_bytes=config.chunk_bytes,
                binary_threshold_bytes=config.binary_threshold_bytes,
            )
        else:
            self.transport = TcpTransport(
                config.host, config.port, auth_key=config.auth_key,
                chunk_bytes=config.chunk_bytes,
            )

    # -- calls ---------------------------------------------------------------
    def execute(self, request: ExecutionRequest,
                timeout_s: Optional[float] = None) -> ExecutionResponse:
        """Execute one request (the request's own priority/deadline apply)."""
        return self._call(self._stamp(request), timeout_s)

    def execute_benchmark(self, key: str, shape=None, seed: int = 0,
                          priority: Optional[str] = None,
                          deadline_ms: Optional[float] = None,
                          steps: int = 1,
                          timeout_s: Optional[float] = None,
                          ) -> ExecutionResponse:
        """Execute a registered benchmark with generated inputs."""
        request = ExecutionRequest.for_benchmark(
            key, shape=shape, seed=seed,
            priority=priority if priority is not None else self.config.priority,
            deadline_ms=(deadline_ms if deadline_ms is not None
                         else self.config.deadline_ms),
            steps=steps,
        )
        return self._call(request, timeout_s)

    def iterate(self, request: ExecutionRequest, steps: int,
                timeout_s: Optional[float] = None) -> ExecutionResponse:
        """Run ``steps`` timesteps of one request (``POST /v1/iterate``)."""
        request.steps = int(steps)
        if request.steps < 1:
            raise ValueError("steps must be >= 1")
        return self._call(self._stamp(request), timeout_s)

    # -- durable jobs --------------------------------------------------------
    def submit_job(self, request: ExecutionRequest,
                   job_key: Optional[str] = None,
                   checkpoint_every: Optional[int] = None,
                   timeout_s: Optional[float] = None) -> Dict[str, object]:
        """Submit a checkpointed multi-timestep job; returns its descriptor.

        When the caller supplies no ``job_key``, one is generated *before*
        the first network attempt, so a retried submission (connect error,
        timeout before a response byte) lands on the server's idempotency
        map and returns the already-created job instead of a duplicate.
        """
        if job_key is None:
            job_key = uuid.uuid4().hex
        return self._job_call(
            lambda remaining: self.transport.job_submit(
                self._stamp(request), job_key=job_key,
                checkpoint_every=checkpoint_every, timeout_s=remaining,
            ),
            timeout_s,
        )

    def job_status(self, job_id: str,
                   timeout_s: Optional[float] = None) -> Dict[str, object]:
        return self._job_call(
            lambda remaining: self.transport.job_status(job_id, remaining),
            timeout_s,
        )

    def job_result(self, job_id: str, timeout_s: Optional[float] = None
                   ) -> Tuple[Dict[str, object], np.ndarray]:
        """The ``(descriptor, final grid)`` of a completed job."""
        return self._job_call(
            lambda remaining: self.transport.job_result(job_id, remaining),
            timeout_s,
        )

    def cancel_job(self, job_id: str,
                   timeout_s: Optional[float] = None) -> Dict[str, object]:
        return self._job_call(
            lambda remaining: self.transport.job_cancel(job_id, remaining),
            timeout_s,
        )

    def list_jobs(self, timeout_s: Optional[float] = None
                  ) -> List[Dict[str, object]]:
        return self._job_call(
            lambda remaining: self.transport.job_list(remaining), timeout_s,
        )

    def wait_job(self, job_id: str, timeout_s: float = 60.0,
                 poll_s: float = 0.1) -> Dict[str, object]:
        """Poll until the job reaches a terminal status; returns it.

        Raises :class:`TransportError` if the job is still running when
        ``timeout_s`` elapses (the job itself keeps running server-side).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            job = self.job_status(job_id)
            if job.get("status") in TERMINAL:
                return job
            if time.monotonic() + poll_s >= deadline:
                raise TransportError(
                    f"job {job_id} still {job.get('status')!r} after "
                    f"{timeout_s:g}s"
                )
            time.sleep(poll_s)

    def run_job(self, request: ExecutionRequest,
                checkpoint_every: Optional[int] = None,
                timeout_s: float = 60.0) -> np.ndarray:
        """Submit + wait + fetch: the blocking convenience for one job."""
        job = self.submit_job(request, checkpoint_every=checkpoint_every)
        done = self.wait_job(job["job_id"], timeout_s=timeout_s)
        if done.get("status") != "completed":
            raise TransportError(
                f"job {job['job_id']} ended {done.get('status')!r}: "
                f"{done.get('error')}"
            )
        _job, result = self.job_result(job["job_id"])
        return result

    def ping(self, timeout_s: float = 5.0) -> bool:
        return self.transport.ping(timeout_s)

    def stats(self, timeout_s: Optional[float] = None
              ) -> Optional[Dict[str, object]]:
        return self.transport.stats(timeout_s if timeout_s is not None
                                    else self.config.timeout_s)

    # -- mechanics -----------------------------------------------------------
    def _stamp(self, request: ExecutionRequest) -> ExecutionRequest:
        """Apply the config's default server-side deadline when unset."""
        if request.deadline_ms is None and self.config.deadline_ms is not None:
            request.deadline_ms = float(self.config.deadline_ms)
        return request

    def _call(self, request: ExecutionRequest,
              timeout_s: Optional[float]) -> ExecutionResponse:
        """One logical call: attempts = 1 + retries, safe failures only.

        Admission rejections (429-style, in-band) are retried too — a
        rejected request was provably not executed — honouring the server's
        ``retry_after_ms`` hint: the wait is the *larger* of the hint and
        the policy's backoff, clipped to the call deadline.  The last
        rejection is returned (not raised) once retries are exhausted.
        """
        timeout = timeout_s if timeout_s is not None else self.config.timeout_s
        policy = self.config.retry
        call_deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            remaining = call_deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError("call deadline exhausted before "
                                     f"attempt {attempt + 1}")
            try:
                response = self.transport.submit(request, remaining)
            except TransportError as error:
                if not error.retryable or attempt >= policy.retries:
                    raise
                delay = policy.delay_s(attempt, self._rng.random())
            else:
                if not response.rejected or attempt >= policy.retries:
                    return response
                hint_s = (response.retry_after_ms or 0.0) / 1e3
                delay = max(hint_s, policy.delay_s(attempt, self._rng.random()))
                if delay > call_deadline - time.monotonic():
                    # Honouring the hint would blow the call deadline:
                    # hand the rejection back instead of a doomed retry.
                    return response
            delay = min(delay, max(0.0, call_deadline - time.monotonic()))
            attempt += 1
            self.retries_attempted += 1
            if delay > 0:
                time.sleep(delay)

    def _job_call(self, attempt_fn, timeout_s: Optional[float]):
        """One job operation under the same retry policy as :meth:`_call`.

        Job ops are idempotent server-side (submission dedups on its
        ``job_key``; status/result/list are reads; cancel is at-most-once),
        so *any* retryable transport failure is safe to replay — the
        provably-unexecuted restriction that guards ``execute`` is not
        needed here.  In-band refusals arrive as non-retryable
        :class:`TransportError` with a structured ``code`` and surface
        immediately.
        """
        timeout = timeout_s if timeout_s is not None else self.config.timeout_s
        policy = self.config.retry
        call_deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            remaining = call_deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError("call deadline exhausted before "
                                     f"attempt {attempt + 1}")
            try:
                return attempt_fn(remaining)
            except TransportError as error:
                if not error.retryable or attempt >= policy.retries:
                    raise
                delay = policy.delay_s(attempt, self._rng.random())
            delay = min(delay, max(0.0, call_deadline - time.monotonic()))
            attempt += 1
            self.retries_attempted += 1
            if delay > 0:
                time.sleep(delay)

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "StencilClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def execute_many(client: StencilClient,
                 requests: Sequence[ExecutionRequest],
                 timeout_s: Optional[float] = None) -> list:
    """Convenience: execute a sequence of requests through one client."""
    return [client.execute(request, timeout_s) for request in requests]


__all__ = ["StencilClient", "execute_many"]
