"""Shared-key authentication, kept apart from transport mechanics.

The service authenticates with one pre-shared key per deployment: HTTP
requests carry it as ``Authorization: Bearer <key>``, JSON-lines TCP
messages as an ``"auth"`` field.  Both sides compare with
:func:`hmac.compare_digest`, so lookups are constant-time.
"""

from __future__ import annotations

from typing import Dict, Optional


def auth_headers(auth_key: Optional[str]) -> Dict[str, str]:
    """The HTTP headers carrying the shared key (empty when auth is off)."""
    if not auth_key:
        return {}
    return {"Authorization": f"Bearer {auth_key}"}


def attach_auth(message: Dict[str, object],
                auth_key: Optional[str]) -> Dict[str, object]:
    """Stamp the shared key onto one JSON-lines TCP message, in place."""
    if auth_key:
        message["auth"] = auth_key
    return message


__all__ = ["attach_auth", "auth_headers"]
