"""Reference interpreter for Lift expressions.

The interpreter executes any (high-level or lowered) Lift expression directly
on Python data.  It is the correctness oracle for the whole system: rewrite
rules are checked by interpreting both sides, generated kernels are validated
against interpreted results, and every benchmark's Lift expression is compared
against an independent NumPy implementation.

Arrays are represented as (nested) Python lists, tuples as Python tuples and
scalars as Python numbers.  NumPy arrays are accepted as inputs and converted
on entry.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.arithmetic import ArithExpr
from ..core.ir import (
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Literal,
    Param,
    Primitive,
    UserFun,
)
from ..core.primitives.algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Id,
    Iterate,
    Join,
    Map,
    Reduce,
    Split,
    Transpose,
    TupleCons,
    Zip,
)
from ..core.primitives.opencl import _MemorySpaceModifier
from ..core.primitives.stencil import Pad, PadConstant, Slide


class InterpreterError(Exception):
    """Raised when an expression cannot be evaluated."""


def _to_nested_lists(value):
    """Convert NumPy arrays (recursively) into nested Python lists."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        converted = [_to_nested_lists(v) for v in value]
        return tuple(converted) if isinstance(value, tuple) else converted
    if isinstance(value, np.generic):
        return value.item()
    return value


def evaluate_program(
    program: Lambda,
    inputs: Sequence,
    size_env: Optional[Mapping[str, int]] = None,
):
    """Evaluate a closed top-level program on concrete input data.

    Parameters
    ----------
    program:
        The top-level lambda (as produced by :func:`repro.core.builders.fun`).
    inputs:
        One data value per program parameter (NumPy arrays or nested lists).
    size_env:
        Concrete values for symbolic size variables; needed only by
        primitives whose semantics depend on a size (``array`` generators).
    """
    if len(inputs) != len(program.params):
        raise InterpreterError(
            f"program expects {len(program.params)} inputs, got {len(inputs)}"
        )
    interpreter = Interpreter(size_env or {})
    env: Dict[Param, object] = {
        param: _to_nested_lists(value) for param, value in zip(program.params, inputs)
    }
    return interpreter.eval(program.body, env)


class Interpreter:
    """Evaluates expressions under an environment mapping parameters to data."""

    def __init__(self, size_env: Mapping[str, int]) -> None:
        self.size_env = dict(size_env)

    # -- expressions ---------------------------------------------------------
    def eval(self, expr: Expr, env: Dict[Param, object]):
        if isinstance(expr, Param):
            if expr not in env:
                raise InterpreterError(f"unbound parameter {expr.name!r}")
            return env[expr]
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, FunCall):
            args = [self.eval(arg, env) for arg in expr.args]
            return self.apply(expr.fun, args, env)
        if isinstance(expr, (Lambda, UserFun, Primitive)):
            # A function value: return a closure capturing the environment.
            return _Closure(expr, env)
        raise InterpreterError(f"cannot evaluate expression {type(expr).__name__}")

    # -- application ---------------------------------------------------------
    def apply(self, fun: FunDecl, args: List, env: Dict[Param, object]):
        if isinstance(fun, _Closure):
            return self.apply(fun.fun, args, fun.env)
        if isinstance(fun, Lambda):
            if len(fun.params) != len(args):
                raise InterpreterError(
                    f"lambda expects {len(fun.params)} arguments, got {len(args)}"
                )
            inner = dict(env)
            inner.update(dict(zip(fun.params, args)))
            return self.eval(fun.body, inner)
        if isinstance(fun, UserFun):
            return fun.python_fn(*args)
        if isinstance(fun, Primitive):
            return self._apply_primitive(fun, args, env)
        raise InterpreterError(f"cannot apply {type(fun).__name__}")

    # -- primitive semantics --------------------------------------------------
    def _apply_primitive(self, prim: Primitive, args: List, env: Dict[Param, object]):
        if isinstance(prim, Map):  # covers mapGlb/mapWrg/mapLcl/mapSeq subclasses
            (data,) = args
            _check_list(data, prim.name)
            return [self.apply(prim.f, [x], env) for x in data]

        if isinstance(prim, Reduce):  # covers reduceSeq / reduceUnroll subclasses
            (data,) = args
            _check_list(data, prim.name)
            acc = self.eval(prim.init, env)
            for x in data:
                acc = self.apply(prim.f, [acc, x], env)
            return [acc]

        if isinstance(prim, Iterate):
            (data,) = args
            for _ in range(prim.count):
                data = self.apply(prim.f, [data], env)
            return data

        if isinstance(prim, Zip):
            for data in args:
                _check_list(data, prim.name)
            length = len(args[0])
            for data in args[1:]:
                if len(data) != length:
                    raise InterpreterError("zip: arrays have different lengths")
            return [tuple(data[i] for data in args) for i in range(length)]

        if isinstance(prim, Split):
            (data,) = args
            _check_list(data, prim.name)
            chunk = self._concretise(prim.chunk)
            if len(data) % chunk != 0:
                raise InterpreterError(
                    f"split({chunk}): input length {len(data)} is not divisible"
                )
            return [data[i : i + chunk] for i in range(0, len(data), chunk)]

        if isinstance(prim, Join):
            (data,) = args
            _check_list(data, prim.name)
            out: List = []
            for chunk in data:
                _check_list(chunk, prim.name)
                out.extend(chunk)
            return out

        if isinstance(prim, Transpose):
            (data,) = args
            _check_list(data, prim.name)
            if not data:
                return []
            return [list(row) for row in zip(*data)]

        if isinstance(prim, At):
            (data,) = args
            _check_list(data, prim.name)
            return data[prim.index]

        if isinstance(prim, Get):
            (data,) = args
            if not isinstance(data, tuple):
                raise InterpreterError(f"get expects a tuple, got {type(data).__name__}")
            return data[prim.index]

        if isinstance(prim, TupleCons):
            return tuple(args)

        if isinstance(prim, ArrayConstructor):
            size = self._concretise(prim.size)
            return [prim.generator(i, size) for i in range(size)]

        if isinstance(prim, Id):
            (value,) = args
            return value

        if isinstance(prim, Pad):
            (data,) = args
            _check_list(data, prim.name)
            n = len(data)
            return [
                data[prim.boundary(i - prim.left, n)]
                for i in range(n + prim.left + prim.right)
            ]

        if isinstance(prim, PadConstant):
            (data,) = args
            _check_list(data, prim.name)
            value = self.eval(prim.value, env)
            # When padding an outer dimension of a nested array, the appended
            # boundary elements are whole sub-arrays filled with the constant.
            boundary = _constant_like(data[0], value) if data else value
            return (
                [_copy_nested(boundary) for _ in range(prim.left)]
                + list(data)
                + [_copy_nested(boundary) for _ in range(prim.right)]
            )

        if isinstance(prim, Slide):
            (data,) = args
            _check_list(data, prim.name)
            size = self._concretise(prim.size)
            step = self._concretise(prim.step)
            n = len(data)
            count = (n - size + step) // step
            if count < 0:
                raise InterpreterError(
                    f"slide({size}, {step}): input of length {n} is too short"
                )
            return [data[i * step : i * step + size] for i in range(count)]

        if isinstance(prim, _MemorySpaceModifier):
            return self.apply(prim.f, args, env)

        raise InterpreterError(f"no interpretation for primitive {prim.name!r}")

    def _concretise(self, size: ArithExpr) -> int:
        try:
            return size.evaluate(self.size_env)
        except Exception as exc:  # noqa: BLE001 - rewrap with context
            raise InterpreterError(
                f"cannot concretise symbolic size {size!r}: {exc}"
            ) from exc


class _Closure(FunDecl):
    """A function value paired with its defining environment."""

    def __init__(self, fun: FunDecl, env: Dict[Param, object]) -> None:
        self.fun = fun
        self.env = env

    def arity(self) -> int:
        return self.fun.arity()


def _constant_like(template, value):
    """A nested structure shaped like ``template`` but filled with ``value``."""
    if isinstance(template, list):
        return [_constant_like(item, value) for item in template]
    return value


def _copy_nested(value):
    if isinstance(value, list):
        return [_copy_nested(item) for item in value]
    return value


def _check_list(value, who: str) -> None:
    if not isinstance(value, list):
        raise InterpreterError(f"{who} expects an array, got {type(value).__name__}")


def to_numpy(value) -> np.ndarray:
    """Convert an interpreter result (nested lists) into a NumPy array."""
    return np.array(value, dtype=np.float64)


__all__ = ["evaluate_program", "Interpreter", "InterpreterError", "to_numpy"]
