"""The virtual OpenCL device: runs kernel profiles through the timing model.

The executor plays the role of the OpenCL runtime + profiling API in the
paper's experimental setup: it "executes" a kernel (described by a
:class:`KernelProfile`) on a :class:`DeviceModel` and reports the kernel time
and the throughput metric used throughout the evaluation — giga-elements
updated per second (output size divided by execution time, Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .device import DeviceModel
from .kernel_model import KernelProfile
from .model import TimingBreakdown, estimate_runtime


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one kernel launch."""

    device: DeviceModel
    profile: KernelProfile
    timing: TimingBreakdown

    @property
    def runtime_s(self) -> float:
        return self.timing.total_s

    @property
    def runtime_ms(self) -> float:
        return self.runtime_s * 1e3

    @property
    def gelements_per_second(self) -> float:
        """Giga-elements updated per second (the paper's Figure-7 metric)."""
        return self.profile.problem.output_elements / self.runtime_s / 1e9

    def describe(self) -> str:
        return (
            f"{self.profile.label} on {self.device.name}: "
            f"{self.runtime_ms:.3f} ms, {self.gelements_per_second:.3f} GElem/s"
        )


class VirtualDevice:
    """A device model wrapped with convenience execution helpers."""

    def __init__(self, device: DeviceModel) -> None:
        self.device = device

    def run(self, profile: KernelProfile) -> SimulationResult:
        timing = estimate_runtime(profile, self.device)
        return SimulationResult(device=self.device, profile=profile, timing=timing)

    def run_best(self, profiles: Iterable[KernelProfile]) -> SimulationResult:
        """Simulate several kernel variants and return the fastest one."""
        results: List[SimulationResult] = [self.run(p) for p in profiles]
        if not results:
            raise ValueError("run_best called with no kernel profiles")
        return min(results, key=lambda r: r.runtime_s)


__all__ = ["SimulationResult", "VirtualDevice"]
