"""Structural kernel profiles: what the performance model reasons about.

A :class:`KernelProfile` captures the features of one kernel launch that the
analytical model in :mod:`repro.runtime.simulator.model` consumes:

* how many work-items and work-groups are launched, and how much sequential
  work each work-item performs;
* how many bytes each output element causes to be read from global memory
  (after accounting for local-memory staging and cache reuse);
* how much local memory each work-group uses, and how many local-memory bytes
  are moved;
* how many floating-point operations each output element costs;
* whether global accesses are coalesced.

Profiles are built either from a Lift :class:`~repro.rewriting.strategies.LoweredProgram`
plus a tuning configuration (:func:`build_profile`), or directly by the
baseline kernel plans in :mod:`repro.baselines`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ...rewriting.strategies import LoweredProgram


@dataclass(frozen=True)
class ProblemInstance:
    """One benchmark instance: the stencil's arithmetic/geometry characteristics."""

    name: str
    output_shape: Tuple[int, ...]      # elements updated, per dimension (outermost first)
    stencil_points: int                # neighbourhood values read per output element
    num_input_grids: int = 1           # additional point-wise grids read (Hotspot, Acoustic, ...)
    flops_per_output: float = 0.0      # defaults to ~2 flops per read value
    bytes_per_element: int = 4         # single precision

    @property
    def output_elements(self) -> int:
        total = 1
        for extent in self.output_shape:
            total *= extent
        return total

    @property
    def ndims(self) -> int:
        return len(self.output_shape)

    def effective_flops(self) -> float:
        if self.flops_per_output > 0:
            return self.flops_per_output
        return 2.0 * (self.stencil_points + self.num_input_grids - 1)


@dataclass(frozen=True)
class KernelConfig:
    """Tunable numerical parameters of one kernel variant (the ATF search space)."""

    workgroup_size: Tuple[int, ...] = (256,)
    work_per_thread: int = 1            # output elements computed sequentially per work-item
    tile_size: int = 0                  # overlapped-tiling tile width (0 = untiled)
    use_local_memory: bool = False
    unrolled: bool = True

    @property
    def workgroup_items(self) -> int:
        total = 1
        for extent in self.workgroup_size:
            total *= extent
        return total


@dataclass(frozen=True)
class KernelProfile:
    """Everything the analytical timing model needs about one kernel launch."""

    problem: ProblemInstance
    global_threads: int
    workgroup_items: int
    work_per_thread: int
    global_read_bytes: float
    global_write_bytes: float
    local_traffic_bytes: float
    local_memory_per_wg: int
    flops: float
    coalesced_fraction: float = 1.0
    redundant_compute_factor: float = 1.0
    uses_local_memory: bool = False
    barriers_per_workgroup: int = 0
    label: str = "kernel"

    def describe(self) -> str:
        return (
            f"{self.label}: threads={self.global_threads} wg={self.workgroup_items} "
            f"wpt={self.work_per_thread} rd={self.global_read_bytes/1e6:.2f}MB "
            f"localMem={self.local_memory_per_wg}B"
        )


def halo_factor(tile_size: int, stencil_size: int, step: int, ndims: int) -> float:
    """Extra global reads caused by tile halos (tile volume / useful outputs)."""
    if tile_size <= 0:
        return 1.0
    outputs = max(1, (tile_size - stencil_size + step) // step)
    return (tile_size / outputs) ** ndims


def build_profile(
    lowered: LoweredProgram,
    problem: ProblemInstance,
    config: KernelConfig,
    label: Optional[str] = None,
) -> KernelProfile:
    """Derive a kernel profile from a lowered Lift variant and a tuning point.

    The derivation mirrors what the generated OpenCL code does:

    * untiled kernels read every neighbourhood value from global memory; the
      device's cache captures part of the reuse (modelled downstream via the
      device's ``cache_efficiency``), so the profile reports the *raw* bytes;
    * tiled kernels with local memory read each tile (plus halo) from global
      memory exactly once and serve the neighbourhood accesses from the
      scratchpad, trading global traffic for local traffic and barriers;
    * the per-thread sequential work divides the number of launched
      work-items.
    """
    elements = problem.output_elements
    bpe = problem.bytes_per_element
    reads_per_output = problem.stencil_points + (problem.num_input_grids - 1)

    work_per_thread = max(1, config.work_per_thread)
    global_threads = max(1, math.ceil(elements / work_per_thread))

    uses_local = bool(config.use_local_memory and config.tile_size > 0)
    if uses_local:
        halo = halo_factor(config.tile_size, lowered.stencil_size or 3,
                           lowered.stencil_step or 1, problem.ndims)
        global_read_bytes = elements * bpe * halo \
            + elements * bpe * (problem.num_input_grids - 1)
        local_traffic = elements * bpe * (halo + problem.stencil_points)
        local_per_wg = (config.tile_size ** problem.ndims) * bpe
        barriers = 1
    else:
        global_read_bytes = elements * bpe * reads_per_output
        local_traffic = 0.0
        local_per_wg = 0
        barriers = 0

    coalesced = 1.0
    if config.workgroup_size and config.workgroup_size[0] < 16:
        # Narrow work-groups in the fastest-varying dimension break coalescing.
        coalesced = max(0.25, config.workgroup_size[0] / 16.0)

    flops = elements * problem.effective_flops()
    profile = KernelProfile(
        problem=problem,
        global_threads=global_threads,
        workgroup_items=config.workgroup_items,
        work_per_thread=work_per_thread,
        global_read_bytes=float(global_read_bytes),
        global_write_bytes=float(elements * bpe),
        local_traffic_bytes=float(local_traffic),
        local_memory_per_wg=local_per_wg,
        flops=flops,
        coalesced_fraction=coalesced,
        uses_local_memory=uses_local,
        barriers_per_workgroup=barriers,
        label=label or f"lift-{lowered.strategy.describe()}",
    )
    return profile


__all__ = [
    "ProblemInstance",
    "KernelConfig",
    "KernelProfile",
    "build_profile",
    "halo_factor",
]
