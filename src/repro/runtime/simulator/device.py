"""Device models for the three GPUs used in the paper's evaluation.

The numbers are the devices' published characteristics (memory bandwidth,
single-precision throughput, local-memory sizes, work-group limits) plus a few
behavioural parameters of the performance model:

* ``full_occupancy_threads`` — how many concurrently resident work-items the
  device needs to hide memory latency; kernels launching fewer threads see a
  proportionally lower effective bandwidth.  Large sequential per-thread work
  (the hallmark of PPCG-generated kernels reported in the paper) reduces the
  thread count and is penalised through this term.
* ``dedicated_local_memory`` — Mali GPUs emulate OpenCL local memory in normal
  cache/DRAM, so staging tiles through local memory brings no bandwidth
  benefit there (one reason the paper finds no tiling in the best ARM
  kernels).
* ``cache_efficiency`` — how well the read-only/L2 cache captures the
  neighbourhood reuse of an untiled stencil (higher means fewer DRAM
  transactions per stencil read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DeviceModel:
    """Analytical description of one OpenCL device."""

    name: str
    vendor: str
    compute_units: int
    peak_bandwidth_gbps: float          # DRAM bandwidth, GB/s
    peak_compute_gflops: float          # single-precision GFLOP/s
    local_memory_bytes: int             # per work-group limit
    local_bandwidth_gbps: float         # aggregated scratchpad bandwidth, GB/s
    max_workgroup_size: int
    preferred_workgroup_multiple: int   # warp / wavefront width
    full_occupancy_threads: int         # threads needed to hide latency
    kernel_launch_overhead_us: float
    cache_efficiency: float             # 0..1, reuse captured by caches
    dedicated_local_memory: bool = True

    def describe(self) -> str:
        return (
            f"{self.name} ({self.vendor}): {self.peak_bandwidth_gbps} GB/s, "
            f"{self.peak_compute_gflops} GFLOP/s, "
            f"{self.compute_units} CUs, wg<= {self.max_workgroup_size}"
        )


#: Nvidia Tesla K20c (Kepler GK110), as used in the paper.
NVIDIA_K20C = DeviceModel(
    name="Tesla K20c",
    vendor="Nvidia",
    compute_units=13,
    peak_bandwidth_gbps=208.0,
    peak_compute_gflops=3524.0,
    local_memory_bytes=48 * 1024,
    local_bandwidth_gbps=1300.0,
    max_workgroup_size=1024,
    preferred_workgroup_multiple=32,
    full_occupancy_threads=13 * 2048,
    kernel_launch_overhead_us=12.0,
    cache_efficiency=0.88,
)

#: AMD Radeon HD 7970 (Tahiti / GCN).
AMD_HD7970 = DeviceModel(
    name="Radeon HD 7970",
    vendor="AMD",
    compute_units=32,
    peak_bandwidth_gbps=264.0,
    peak_compute_gflops=3789.0,
    local_memory_bytes=32 * 1024,
    local_bandwidth_gbps=1600.0,
    max_workgroup_size=256,
    preferred_workgroup_multiple=64,
    full_occupancy_threads=32 * 2560,
    kernel_launch_overhead_us=15.0,
    cache_efficiency=0.93,
)

#: ARM Mali-T628 MP6 on the Samsung Exynos 5422 (Odroid XU4).
ARM_MALI_T628 = DeviceModel(
    name="Mali-T628 MP6",
    vendor="ARM",
    compute_units=6,
    peak_bandwidth_gbps=14.9,
    peak_compute_gflops=102.0,
    local_memory_bytes=32 * 1024,
    local_bandwidth_gbps=14.9,        # local memory is emulated in main memory
    max_workgroup_size=256,
    preferred_workgroup_multiple=4,
    full_occupancy_threads=6 * 256,
    kernel_launch_overhead_us=60.0,
    cache_efficiency=0.90,
    dedicated_local_memory=False,
)


DEVICES: Dict[str, DeviceModel] = {
    "nvidia": NVIDIA_K20C,
    "amd": AMD_HD7970,
    "arm": ARM_MALI_T628,
}


__all__ = ["DeviceModel", "NVIDIA_K20C", "AMD_HD7970", "ARM_MALI_T628", "DEVICES"]
