"""A virtual OpenCL device: an analytical GPU performance model.

No GPU or OpenCL runtime is available in this reproduction, so kernel
*execution time* is estimated by a roofline-style analytical model driven by
the structural features of a kernel variant (thread counts, per-thread work,
global/local memory traffic, coalescing, local-memory staging).  The model is
deliberately simple and documented; its purpose is to reproduce the *shape* of
the paper's performance comparisons (who wins, by roughly what factor), not
absolute numbers from specific silicon.
"""

from .device import AMD_HD7970, ARM_MALI_T628, DEVICES, NVIDIA_K20C, DeviceModel
from .kernel_model import KernelConfig, KernelProfile, ProblemInstance, build_profile
from .model import estimate_runtime
from .executor import SimulationResult, VirtualDevice

__all__ = [
    "DeviceModel",
    "DEVICES",
    "NVIDIA_K20C",
    "AMD_HD7970",
    "ARM_MALI_T628",
    "KernelConfig",
    "KernelProfile",
    "ProblemInstance",
    "build_profile",
    "estimate_runtime",
    "SimulationResult",
    "VirtualDevice",
]
