"""The analytical (roofline-style) timing model.

``estimate_runtime`` combines a :class:`KernelProfile` with a
:class:`DeviceModel` and produces an estimated kernel execution time.  The
model is intentionally simple and fully documented so the benchmark results it
produces can be traced back to first principles:

1. **Global memory time** — raw read bytes are first reduced by the device's
   cache efficiency (stencil neighbourhoods are highly cache-friendly when the
   kernel is untiled), then divided by the *effective* bandwidth.  Effective
   bandwidth degrades when the launch does not expose enough parallel threads
   to hide DRAM latency, when accesses are uncoalesced, and when work-group
   sizes are not a multiple of the warp/wavefront width.
2. **Local memory time** — bytes staged through the scratchpad divided by the
   scratchpad bandwidth (on devices that emulate local memory, the main-memory
   bandwidth is used instead, which is why tiling does not pay off there).
3. **Compute time** — floating-point operations divided by the effective
   compute throughput (same utilisation factor).
4. The kernel time is the maximum of the three (memory- or compute-bound) plus
   barrier and launch overheads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceModel
from .kernel_model import KernelProfile


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-component timing of one simulated kernel launch (seconds)."""

    global_memory_s: float
    local_memory_s: float
    compute_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return max(self.global_memory_s, self.local_memory_s, self.compute_s) + self.overhead_s


def occupancy_factor(profile: KernelProfile, device: DeviceModel) -> float:
    """How well the launch hides memory latency (0..1).

    The device needs roughly ``full_occupancy_threads`` resident work-items to
    reach peak bandwidth.  Two effects reduce the resident count:

    * launching fewer work-items in total (e.g. kernels that give each thread
      a large amount of sequential work), and
    * local-memory usage per work-group, which limits how many work-groups fit
      on a compute unit at once (the classic shared-memory occupancy limit).
    """
    needed = device.full_occupancy_threads
    resident_limit = float(needed)
    if profile.local_memory_per_wg > 0 and profile.workgroup_items > 0:
        wgs_per_cu = max(1, device.local_memory_bytes // profile.local_memory_per_wg)
        resident_limit = min(
            resident_limit,
            float(device.compute_units * wgs_per_cu * profile.workgroup_items),
        )
    resident = min(float(profile.global_threads), resident_limit)
    raw = resident / needed
    return max(0.08, min(1.0, raw))


def workgroup_efficiency(profile: KernelProfile, device: DeviceModel) -> float:
    """Penalty for work-group sizes that do not map well onto the hardware.

    Work-groups that are not a multiple of the warp/wavefront width leave SIMD
    lanes idle; extremely small work-groups additionally limit how many
    work-groups the scheduler keeps in flight.
    """
    items = max(1, profile.workgroup_items)
    multiple = device.preferred_workgroup_multiple
    rounded = math.ceil(items / multiple) * multiple
    efficiency = items / rounded
    if items < multiple:
        efficiency *= items / multiple
    if items > device.max_workgroup_size:
        # Invalid configuration: heavily penalised rather than rejected so the
        # tuner can still rank it (it will never be chosen).
        efficiency *= 0.05
    return max(0.05, efficiency)


def estimate_runtime(profile: KernelProfile, device: DeviceModel) -> TimingBreakdown:
    """Estimate the execution time of one kernel launch on one device."""
    occupancy = occupancy_factor(profile, device)
    wg_eff = workgroup_efficiency(profile, device)
    utilisation = occupancy * wg_eff

    # --- global memory -----------------------------------------------------
    if profile.uses_local_memory:
        # Tiled kernels already read each element (plus halo) only once; the
        # cache cannot reduce that further.
        read_bytes = profile.global_read_bytes
    else:
        # Untiled stencils re-read neighbours; caches capture a large part of
        # that reuse.  cache_efficiency = fraction of repeated reads served
        # on-chip.
        reuse = profile.global_read_bytes - profile.global_write_bytes
        read_bytes = profile.global_write_bytes + reuse * (1.0 - device.cache_efficiency)
    effective_bandwidth = (
        device.peak_bandwidth_gbps * 1e9 * utilisation * profile.coalesced_fraction
    )
    global_bytes = read_bytes + profile.global_write_bytes
    global_time = global_bytes / effective_bandwidth

    # --- local memory -------------------------------------------------------
    if profile.uses_local_memory and profile.local_traffic_bytes > 0:
        if device.dedicated_local_memory:
            local_bw = device.local_bandwidth_gbps * 1e9 * max(0.25, utilisation)
        else:
            # Emulated local memory: the traffic goes through DRAM again.
            local_bw = device.peak_bandwidth_gbps * 1e9 * utilisation
        local_time = profile.local_traffic_bytes / local_bw
    else:
        local_time = 0.0

    # --- compute --------------------------------------------------------------
    effective_compute = device.peak_compute_gflops * 1e9 * max(0.15, utilisation)
    compute_time = (profile.flops * profile.redundant_compute_factor) / effective_compute

    # --- overheads --------------------------------------------------------------
    overhead = device.kernel_launch_overhead_us * 1e-6
    if profile.barriers_per_workgroup and profile.workgroup_items:
        workgroups = max(1, profile.global_threads // max(1, profile.workgroup_items))
        concurrent_wgs = max(1, device.compute_units * 4)
        overhead += profile.barriers_per_workgroup * 0.2e-6 * (workgroups / concurrent_wgs)

    return TimingBreakdown(
        global_memory_s=global_time,
        local_memory_s=local_time,
        compute_s=compute_time,
        overhead_s=overhead,
    )


__all__ = ["TimingBreakdown", "occupancy_factor", "workgroup_efficiency", "estimate_runtime"]
