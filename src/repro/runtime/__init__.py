"""Runtime components: the reference interpreter and the GPU performance-model simulator."""

from .interpreter import evaluate_program

__all__ = ["evaluate_program"]
