"""Execution backends for Lift programs.

* :mod:`repro.backend.numpy_backend` — compiles lowered Lift expressions
  into vectorized NumPy kernels (views, strided windows, batched maps);
* :mod:`repro.backend.plan` — allocation-free execution plans: pooled
  buffers, replayable ``out=`` tapes, double-buffered iteration;
* :mod:`repro.backend.pool` — the sized buffer pool behind the plans;
* :mod:`repro.backend.cache` — the compilation cache (expression hash +
  input signature → compiled kernel);
* :mod:`repro.backend.base` — the :class:`Backend` protocol, the backend
  registry and the interpreter cross-check mode.
"""

from .base import (
    BACKEND_ENV_VAR,
    Backend,
    BackendMismatch,
    CrossCheckBackend,
    InterpreterBackend,
    NumpyBackend,
    default_backend_name,
    get_backend,
    run_program,
)
from .cache import CompilationCache, default_cache, input_signature
from .numpy_backend import (
    CompiledKernel,
    CompileError,
    ExecutionError,
    compile_program,
)
from .plan import (
    ExecutionPlan,
    PlanCache,
    compile_plan,
    iterate_generic,
    normalize_carry,
)
from .pool import BufferPool

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "BackendMismatch",
    "BufferPool",
    "CompilationCache",
    "CompileError",
    "CompiledKernel",
    "CrossCheckBackend",
    "ExecutionError",
    "ExecutionPlan",
    "InterpreterBackend",
    "NumpyBackend",
    "PlanCache",
    "compile_plan",
    "compile_program",
    "default_backend_name",
    "default_cache",
    "get_backend",
    "input_signature",
    "iterate_generic",
    "normalize_carry",
    "run_program",
]
