"""Execution backends for Lift programs.

* :mod:`repro.backend.numpy_backend` — compiles lowered Lift expressions
  into vectorized NumPy kernels (views, strided windows, batched maps);
* :mod:`repro.backend.cache` — the compilation cache (expression hash +
  input signature → compiled kernel);
* :mod:`repro.backend.base` — the :class:`Backend` protocol, the backend
  registry and the interpreter cross-check mode.
"""

from .base import (
    BACKEND_ENV_VAR,
    Backend,
    BackendMismatch,
    CrossCheckBackend,
    InterpreterBackend,
    NumpyBackend,
    default_backend_name,
    get_backend,
    run_program,
)
from .cache import CompilationCache, default_cache, input_signature
from .numpy_backend import (
    CompiledKernel,
    CompileError,
    ExecutionError,
    compile_program,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "Backend",
    "BackendMismatch",
    "CompilationCache",
    "CompileError",
    "CompiledKernel",
    "CrossCheckBackend",
    "ExecutionError",
    "InterpreterBackend",
    "NumpyBackend",
    "compile_program",
    "default_backend_name",
    "default_cache",
    "get_backend",
    "input_signature",
    "run_program",
]
