"""Tape-level optimizer: ufunc fusion + cache-blocked tiled replay.

An execution plan's tape (:mod:`repro.backend.plan`) replays one full-array
pass per op: every traced user-function schedule streams its whole operand
grids through memory, so on large grids the steady state is bound by DRAM
bandwidth, not compute.  This module rewrites a captured tape before it is
first replayed:

1. **Region analysis** — scan the tape's :class:`~repro.backend.numpy_backend.TapeEntry`
   descriptors for maximal runs of *elementwise* traced schedules (every
   node a plain ufunc / ``where`` / ``clip`` whose shape broadcasts to the
   region's output shape), then extend each run backwards over the
   halo-gather ``pad`` writes whose buffers only the run reads.
2. **Fusion** — replace each region with a single :class:`FusedOp` that
   replays the same operations in the same order but **tile by tile** over
   cache-blocked slices of the output.  Per-tile intermediates live in a
   small scratch arena drawn from the plan's
   :class:`~repro.backend.pool.BufferPool` (sized to one tile, reused
   across tiles), so a value produced by one op is consumed by the next
   while still resident in L1/L2 instead of round-tripping through DRAM.
   Fused pad writes are *restricted*: each tile refreshes only the halo
   slab it actually reads.

Because every elementwise operation computes output element ``i`` from
element ``i`` of its (broadcast) operands, executing the identical
operation sequence on tiles is **bit-identical** to the full-array replay —
no reassociation, no reordering.  The analyzer is conservative: reductions,
opaque (re-executed) user functions, data-dependent gathers, non-aligned
producer/consumer views and anything else it cannot prove safe simply
breaks the region, and the plan falls back to the unfused tape.  On top of
that, :meth:`~repro.backend.plan.ExecutionPlan._capture` verifies every
fused tape against the unfused one bit for bit at capture time before
accepting it.

Tile shape is a first-class tuning parameter (see
:func:`repro.tuning.parameters.fuse_tile_candidates` and
:func:`measure_best_tile`): ``None`` selects a cache-sized row-block
heuristic, ``False`` disables fusion, and an explicit tuple blocks the
trailing output axes (``None`` entries keep an axis un-blocked).

**Parallel tiled replay.**  Tiles of a fused region are independent by
construction: each tile writes a disjoint box of every written-through
buffer, per-tile intermediates live in scratch, and the only overlapping
writes — adjacent tiles refreshing a shared halo slab — copy *identical
bytes* from the same source, so racing them is benign.  When a plan is
built with ``parallel_workers=N`` (see :func:`normalize_workers`), the
tile grid is partitioned into N contiguous chunks, each chunk gets its
**own pooled scratch set** (preserving the zero-steady-allocation
invariant — no sharing, no locking in the hot loop), and a persistent
process-wide :class:`ReplayWorkerPool` of daemon threads replays the
chunks concurrently.  Threads, not processes: NumPy ufuncs release the
GIL over their inner loops, so bandwidth-bound tile chunks scale across
cores without serialising on the interpreter.  The capture-time
bit-identity check in :meth:`~repro.backend.plan.ExecutionPlan._capture`
runs through this same parallel path, so an accepted parallel plan has
already proven itself bit-identical to the generic backend.
"""

from __future__ import annotations

import itertools
import queue
import threading
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults as _faults
from ..telemetry import registry as _telemetry
from ..telemetry.registry import RATIO_BUCKETS, metrics_enabled as _metrics_on
from .numpy_backend import ExecutionError, TapeEntry
from .ufunc_trace import TracedArray

#: Per-tile working-set target.  One tile of every live scratch buffer
#: should sit comfortably in L2: with the couple of buffers liveness reuse
#: leaves live, 256 KiB per buffer keeps the fused loop cache-resident.
TILE_TARGET_BYTES = 1 << 18

#: Upper bound on parallel replay workers per fused region.  Scratch cost
#: scales linearly with workers (one scratch set per chunk), so the cap
#: keeps a mis-tuned ``parallel_workers`` from ballooning the pool.
MAX_REPLAY_WORKERS = 16


class FusionError(Exception):
    """The tape optimizer could not (safely) fuse — callers fall back."""


# Fused-replay instruments.  All three sit on the steady path and are
# guarded by ``_metrics_on()`` where the clocks are read; observations are
# bucket increments, so the zero-allocation replay invariants survive.
_REGION_REPLAY_SECONDS = _telemetry.histogram(
    "repro_fused_region_replay_seconds",
    "Wall time of one fused region replay (all chunks).",
)
_CHUNK_SECONDS = _telemetry.histogram(
    "repro_replay_chunk_seconds",
    "Wall time of one parallel replay chunk (inline chunk included).",
)
_CHUNK_IMBALANCE = _telemetry.histogram(
    "repro_replay_chunk_imbalance",
    "(max - min) / max chunk wall time per parallel region replay.",
    buckets=RATIO_BUCKETS,
)


# ---------------------------------------------------------------------------
# Tile specifications
# ---------------------------------------------------------------------------

def normalize_tile_spec(tile_shape):
    """Canonicalise a user tile spec: ``None``/``"auto"`` (heuristic),
    ``False``/``"off"`` (unfused), or a tuple of positive ints / ``None``
    entries applied to trailing axes."""
    if tile_shape is None or tile_shape == "auto":
        return None
    if tile_shape is False or tile_shape == "off":
        return False
    if isinstance(tile_shape, (int, np.integer)):
        tile_shape = (int(tile_shape),)
    spec = tuple(
        None if entry is None else int(entry) for entry in tile_shape
    )
    if not spec:
        raise ExecutionError("tile shape must name at least one axis")
    for entry in spec:
        if entry is not None and entry < 1:
            raise ExecutionError(f"invalid tile extent {entry}")
    return spec


def normalize_workers(parallel_workers) -> int:
    """Canonicalise a parallel-replay worker spec to a concrete count.

    ``None``, ``False``, ``0`` and ``1`` all mean *serial replay* (the
    default, and the only useful setting on a single-core machine); an
    integer ``N >= 2`` requests N-way chunked replay, clamped to
    :data:`MAX_REPLAY_WORKERS`.  The canonical form is part of the
    :class:`~repro.backend.plan.PlanCache` key, so ``None`` and ``1``
    resolve to the same cached plan.
    """
    if parallel_workers is None or parallel_workers is False:
        return 1
    count = int(parallel_workers)
    if count < 0:
        raise ExecutionError(
            f"invalid parallel_workers {parallel_workers!r}"
        )
    return min(max(count, 1), MAX_REPLAY_WORKERS)


def auto_tile(shape: Sequence[int], itemsize: int = 8,
              target_bytes: int = TILE_TARGET_BYTES) -> Tuple[int, ...]:
    """A cache-sized row-block tile for ``shape``.

    Trailing axes are kept whole (contiguous, vectorisable rows) while the
    cumulative tile footprint stays under ``target_bytes``; the first axis
    that overflows is blocked to fit and every axis before it becomes an
    outer loop (tile extent 1).
    """
    tile = [1] * len(shape)
    footprint = itemsize
    for axis in range(len(shape) - 1, -1, -1):
        full = footprint * max(1, shape[axis])
        if full <= target_bytes:
            tile[axis] = max(1, shape[axis])
            footprint = full
        else:
            tile[axis] = max(1, target_bytes // footprint)
            break
    return tuple(tile)


def tile_extents(tile_spec, shape: Sequence[int],
                 itemsize: int = 8) -> Tuple[int, ...]:
    """Resolve a tile spec to concrete per-axis tile extents for ``shape``."""
    if tile_spec is None:
        return auto_tile(shape, itemsize)
    spec = tuple(tile_spec)
    if len(spec) > len(shape):
        spec = spec[len(spec) - len(shape):]
    extents = list(shape)
    offset = len(shape) - len(spec)
    for index, entry in enumerate(spec):
        if entry is not None:
            extents[offset + index] = max(1, min(int(entry),
                                                 max(1, shape[offset + index])))
    return tuple(max(1, extent) for extent in extents)


def _tile_grid(shape: Sequence[int],
               tiles: Sequence[int]) -> List[Tuple[Tuple[int, int], ...]]:
    """All tile boxes, row-major: one ``(start, stop)`` pair per axis."""
    ranges = [
        [(start, min(start + tiles[axis], shape[axis]))
         for start in range(0, shape[axis], tiles[axis])]
        for axis in range(len(shape))
    ]
    return list(itertools.product(*ranges))


# ---------------------------------------------------------------------------
# View geometry
# ---------------------------------------------------------------------------

def _address(array: np.ndarray) -> int:
    return array.__array_interface__["data"][0]


def _locate(view: np.ndarray, buffer: np.ndarray):
    """Decompose ``view`` as a rectangular selection of ``buffer``.

    Returns, per buffer axis, ``(offset, view_axis, extent)`` — where
    ``view_axis`` is the view axis sweeping that buffer axis (``None`` when
    the view reads a single index) — or ``None`` when the view is not a
    plain strided window (step-sliced, transposed onto equal strides,
    different dtype, …).  Broadcast (stride-0) view axes contribute nothing.
    """
    if view.dtype != buffer.dtype or not buffer.flags.c_contiguous:
        return None
    delta = _address(view) - _address(buffer)
    if delta < 0:
        return None
    matched: Dict[int, int] = {}
    for axis in range(view.ndim):
        if view.shape[axis] <= 1 or view.strides[axis] == 0:
            continue
        hits = [k for k in range(buffer.ndim)
                if buffer.shape[k] > 1
                and buffer.strides[k] == view.strides[axis]]
        if len(hits) != 1 or hits[0] in matched:
            return None
        matched[hits[0]] = axis
    locations = []
    remaining = delta
    for k in range(buffer.ndim):
        stride = buffer.strides[k]
        if buffer.shape[k] <= 1 or stride <= 0:
            locations.append((0, None, 1))
            continue
        offset = remaining // stride
        remaining -= offset * stride
        view_axis = matched.get(k)
        extent = view.shape[view_axis] if view_axis is not None else 1
        if offset + extent > buffer.shape[k]:
            return None
        locations.append((int(offset), view_axis, int(extent)))
    if remaining != 0:
        return None
    return locations


def _is_aligned(view: np.ndarray, buffer: np.ndarray) -> bool:
    """True when ``view`` reads all of ``buffer`` element-for-element —
    i.e. it is ``buffer`` itself modulo inserted broadcast/singleton axes
    (same order, no transposition, no offset)."""
    locations = _locate(view, buffer)
    if locations is None:
        return False
    swept = []
    for k, (offset, view_axis, extent) in enumerate(locations):
        if offset != 0 or extent != buffer.shape[k]:
            return False
        if view_axis is not None:
            swept.append(view_axis)
    return swept == sorted(swept)


def _broadcast_ok(shape: Sequence[int], region_shape: Sequence[int]) -> bool:
    if len(shape) > len(region_shape):
        return False
    offset = len(region_shape) - len(shape)
    return all(
        shape[axis] == 1 or shape[axis] == region_shape[offset + axis]
        for axis in range(len(shape))
    )


def _tile_view(array: np.ndarray, tile, region_shape) -> np.ndarray:
    """Slice ``array`` (trailing-aligned, broadcastable to the region shape)
    down to one tile box; broadcast (extent-1) axes stay extent 1."""
    offset = len(region_shape) - array.ndim
    selector = tuple(
        slice(tile[offset + axis][0], tile[offset + axis][1])
        if array.shape[axis] != 1 else slice(0, 1)
        for axis in range(array.ndim)
    )
    return array[selector]


# ---------------------------------------------------------------------------
# The fused replay op
# ---------------------------------------------------------------------------

# Step kinds (local ints keep the replay loop's dispatch cheap).
_UFUNC, _COPY, _WHERE, _CLIP = 0, 1, 2, 3


def _replay_steps(steps: Sequence[Tuple]) -> None:
    """Replay one chunk's pre-resolved micro-ops — the fused hot loop."""
    for step in steps:
        kind = step[0]
        if kind == _UFUNC:
            step[1](*step[2], out=step[3])
        elif kind == _COPY:
            np.copyto(step[1], step[2])
        elif kind == _WHERE:
            np.copyto(step[4], step[3], casting="unsafe")
            np.copyto(step[4], step[2], where=step[1], casting="unsafe")
        else:  # _CLIP
            np.clip(step[1], step[2], step[3], out=step[4])


class _Latch:
    """Countdown latch carrying the first worker error (if any).

    When built with ``collect_durations=True`` (telemetry enabled at
    dispatch time) workers report their chunk wall time through
    :meth:`finish`; the caller reads ``durations`` after :meth:`wait`.
    """

    __slots__ = ("_remaining", "error", "_cond", "durations")

    def __init__(self, count: int, collect_durations: bool = False) -> None:
        self._remaining = count
        self.error: Optional[BaseException] = None
        self._cond = threading.Condition(threading.Lock())
        self.durations: Optional[List[float]] = [] if collect_durations else None

    def finish(self, error: Optional[BaseException] = None,
               duration: Optional[float] = None) -> None:
        with self._cond:
            if error is not None and self.error is None:
                self.error = error
            if duration is not None and self.durations is not None:
                self.durations.append(duration)
            self._remaining -= 1
            if self._remaining <= 0:
                self._cond.notify_all()

    def wait(self) -> None:
        with self._cond:
            while self._remaining > 0:
                self._cond.wait()


class ReplayWorkerPool:
    """Process-wide pool of daemon threads replaying fused tile chunks.

    Threads (not processes) because NumPy ufuncs release the GIL over
    their inner loops — bandwidth-bound chunks genuinely overlap.  The
    pool is lazy and persistent: threads spawn on first parallel replay
    and idle on a queue between runs, so the steady serving path pays no
    thread-creation cost.  ``run_parts`` executes chunk 0 inline on the
    caller (one fewer handoff; the caller is otherwise idle) and always
    waits for every dispatched chunk before returning — even when a chunk
    raises — so plan scratch is never touched after the call returns and
    the first error propagates to the caller intact.
    """

    def __init__(self, max_threads: int = MAX_REPLAY_WORKERS) -> None:
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._spawn_lock = threading.Lock()
        self._threads = 0
        self._max_threads = max_threads
        #: Chunk wall times of the most recent timed run (telemetry only;
        #: request traces copy these when their replay used this pool).
        self.last_chunk_seconds: Tuple[float, ...] = ()
        self.last_run_at = 0.0

    def _ensure_threads(self, needed: int) -> None:
        target = min(needed, self._max_threads)
        if self._threads >= target:
            return
        with self._spawn_lock:
            while self._threads < target:
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-replay-{self._threads}",
                    daemon=True,
                )
                worker.start()
                self._threads += 1

    def _worker_loop(self) -> None:
        while True:
            latch, steps = self._queue.get()
            timed = latch.durations is not None
            started = perf_counter() if timed else 0.0
            try:
                _replay_steps(steps)
            except BaseException as error:  # noqa: BLE001 - must reach caller
                latch.finish(error,
                             perf_counter() - started if timed else None)
            else:
                latch.finish(None,
                             perf_counter() - started if timed else None)

    def run_parts(self, parts: Sequence[Sequence[Tuple]]) -> None:
        tail = parts[1:]
        self._ensure_threads(len(tail))
        timed = _metrics_on()
        latch = _Latch(len(tail), collect_durations=timed)
        for steps in tail:
            self._queue.put((latch, steps))
        inline_error: Optional[BaseException] = None
        inline_started = perf_counter() if timed else 0.0
        try:
            _replay_steps(parts[0])
        except BaseException as error:  # noqa: BLE001 - joined below
            inline_error = error
        inline_seconds = perf_counter() - inline_started if timed else 0.0
        latch.wait()  # never leave workers racing a returned-from replay
        if timed:
            self._record_chunks([inline_seconds] + (latch.durations or []))
        error = inline_error if inline_error is not None else latch.error
        if error is not None:
            raise error

    def _record_chunks(self, durations: List[float]) -> None:
        """File per-chunk wall times: histograms + the last-run snapshot
        the request tracer copies into slow-request traces."""
        self.last_chunk_seconds = tuple(durations)
        self.last_run_at = perf_counter()
        slowest = 0.0
        fastest = float("inf")
        for duration in durations:
            _CHUNK_SECONDS.observe(duration)
            slowest = max(slowest, duration)
            fastest = min(fastest, duration)
        if len(durations) > 1 and slowest > 0.0:
            _CHUNK_IMBALANCE.observe((slowest - fastest) / slowest)


_REPLAY_POOL: Optional[ReplayWorkerPool] = None
_REPLAY_POOL_LOCK = threading.Lock()


def replay_pool() -> ReplayWorkerPool:
    """The process-wide :class:`ReplayWorkerPool` (created on first use)."""
    global _REPLAY_POOL
    if _REPLAY_POOL is None:
        with _REPLAY_POOL_LOCK:
            if _REPLAY_POOL is None:
                _REPLAY_POOL = ReplayWorkerPool()
    return _REPLAY_POOL


class FusedOp:
    """One fused region: pre-resolved tile micro-ops, replayed in order.

    Every operand/output view was resolved at build time, so a replay is a
    flat loop of NumPy calls over existing views — zero allocations.
    ``parts`` holds one step list per worker chunk: serial plans have a
    single part replayed inline; parallel plans hand parts 1..N-1 to the
    :class:`ReplayWorkerPool` while part 0 runs on the caller.  Each part
    was built against its own scratch set, so parts share no mutable state
    beyond the benign identical-byte halo overlaps documented above.
    """

    __slots__ = ("parts", "tiles", "schedules", "pads")

    def __init__(self, parts: List[List[Tuple]], tiles: int,
                 schedules: int, pads: int) -> None:
        self.parts = parts
        self.tiles = tiles
        self.schedules = schedules
        self.pads = pads

    @property
    def step_count(self) -> int:
        return sum(len(part) for part in self.parts)

    @property
    def workers(self) -> int:
        return len(self.parts)

    def run(self) -> None:
        if _faults.ARMED and _faults.should_fail("replay.chunk_error"):
            raise ExecutionError("fault injected: replay.chunk_error")
        parts = self.parts
        if _metrics_on():
            started = perf_counter()
            if len(parts) == 1:
                _replay_steps(parts[0])
            else:
                replay_pool().run_parts(parts)
            _REGION_REPLAY_SECONDS.observe(perf_counter() - started)
        elif len(parts) == 1:
            _replay_steps(parts[0])
        else:
            replay_pool().run_parts(parts)


class FusionInfo:
    """What the optimizer did to one tape (reported via plan stats)."""

    __slots__ = ("regions", "tiles", "fused_schedules", "fused_pads", "steps")

    def __init__(self) -> None:
        self.regions = 0
        self.tiles = 0
        self.fused_schedules = 0
        self.fused_pads = 0
        self.steps = 0


# ---------------------------------------------------------------------------
# Region analysis
# ---------------------------------------------------------------------------

def _entry_reads(entry: TapeEntry) -> List[np.ndarray]:
    if entry.kind == "schedule":
        reads: List[np.ndarray] = []
        for node in entry.schedule.nodes:
            for operand in node.operands:
                if isinstance(operand, TracedArray):
                    if operand.node is None:
                        reads.append(operand.concrete)
                elif isinstance(operand, np.ndarray):
                    reads.append(operand)
        return reads
    return entry.reads


def _reads_buffer(reads: Sequence[np.ndarray], buffer: np.ndarray) -> bool:
    return any(np.may_share_memory(read, buffer) for read in reads)


class _Region:
    """One fusable candidate: ``[pad_start, end)`` entries of the tape."""

    def __init__(self, pad_start: int, start: int, end: int) -> None:
        self.pad_start = pad_start  # fused pads live in [pad_start, start)
        self.start = start          # schedules live in [start, end)
        self.end = end


def _validate_schedules(entries: List[TapeEntry], start: int, end: int,
                        region_shape) -> Dict[int, np.ndarray]:
    """Check every node/operand is tileable; returns the internal buffers."""
    internal: Dict[int, np.ndarray] = {}
    for index in range(start, end):
        for node in entries[index].schedule.nodes:
            if node.kind not in ("ufunc", "where", "clip"):
                raise FusionError(f"untileable node kind {node.kind!r}")
            if node.buffer is None or not _broadcast_ok(node.buffer.shape,
                                                        region_shape):
                raise FusionError("node shape does not broadcast to region")
            internal[id(node.buffer)] = node.buffer
    for index in range(start, end):
        for node in entries[index].schedule.nodes:
            for operand in node.operands:
                if isinstance(operand, TracedArray) and operand.node is None:
                    leaf = operand.concrete
                    if not _broadcast_ok(leaf.shape, region_shape):
                        raise FusionError("leaf does not broadcast to region")
                    for buffer in internal.values():
                        if np.may_share_memory(leaf, buffer) \
                                and not _is_aligned(leaf, buffer):
                            raise FusionError(
                                "non-aligned view of an internal buffer"
                            )
                elif isinstance(operand, np.ndarray):
                    if not _broadcast_ok(operand.shape, region_shape):
                        raise FusionError("operand does not broadcast")
                    for buffer in internal.values():
                        if np.may_share_memory(operand, buffer):
                            raise FusionError("raw view of an internal buffer")
    return internal


def _pad_reader_locations(entries: List[TapeEntry], start: int, end: int,
                          pad_buffer: np.ndarray, region_shape):
    """Locate every region leaf reading ``pad_buffer``; None if any fails."""
    locations = []
    for index in range(start, end):
        for node in entries[index].schedule.nodes:
            for operand in node.operands:
                leaf = None
                if isinstance(operand, TracedArray) and operand.node is None:
                    leaf = operand.concrete
                elif isinstance(operand, np.ndarray):
                    leaf = operand
                if leaf is None or not np.may_share_memory(leaf, pad_buffer):
                    continue
                located = _locate(leaf, pad_buffer)
                if located is None:
                    return None
                locations.append((leaf.ndim, located))
    return locations


def _leaf_box(locations, tile, region_shape):
    """The pad-buffer box (per-axis [lo, hi)) one tile's leaf reads cover."""
    ndim = len(locations[0][1])
    lows = [None] * ndim
    highs = [None] * ndim
    for leaf_ndim, located in locations:
        axis_offset = len(region_shape) - leaf_ndim
        for k, (offset, view_axis, extent) in enumerate(located):
            if view_axis is None:
                lo, hi = offset, offset + extent
            else:
                start, stop = tile[axis_offset + view_axis]
                lo, hi = offset + start, offset + stop
            lows[k] = lo if lows[k] is None else min(lows[k], lo)
            highs[k] = hi if highs[k] is None else max(highs[k], hi)
    return lows, highs


def _merge_box(box, other):
    if box is None:
        return other
    if other is None:
        return box
    lows = [min(a, b) for a, b in zip(box[0], other[0])]
    highs = [max(a, b) for a, b in zip(box[1], other[1])]
    return lows, highs


def find_regions(entries: List[TapeEntry], out_buffer: np.ndarray):
    """All fusable regions (with backward pad extension), non-overlapping."""
    regions: List[_Region] = []
    index = 0
    while index < len(entries):
        if entries[index].kind != "schedule":
            index += 1
            continue
        start = index
        while index < len(entries) and entries[index].kind == "schedule":
            index += 1
        regions.append(_Region(start, start, index))
    if not regions:
        return []

    for region in regions:
        # Extend backwards over halo-gather pads whose buffers nothing
        # outside this region reads.  Chains are welcome: an earlier pad
        # feeding a later fused pad is restricted transitively (the later
        # pad's per-tile gathers define the earlier one's required box).
        position = region.start - 1
        while position >= 0 and entries[position].kind == "pad":
            pad = entries[position].pad
            outside = [
                entry for k, entry in enumerate(entries)
                if not (position <= k < region.end)
            ]
            if any(_reads_buffer(_entry_reads(entry), pad.buffer)
                   for entry in outside):
                break
            if np.may_share_memory(pad.buffer, out_buffer):
                break
            region.pad_start = position
            position -= 1
    return regions


# ---------------------------------------------------------------------------
# Building the fused replay
# ---------------------------------------------------------------------------

def _partition_grid(grid: List, parts_count: int) -> List[List]:
    """Split the tile grid into ``parts_count`` contiguous, balanced chunks.

    Contiguity keeps each worker streaming adjacent tiles (prefetch- and
    TLB-friendly); balance keeps the slowest chunk within one tile of the
    fastest.
    """
    base, extra = divmod(len(grid), parts_count)
    chunks: List[List] = []
    start = 0
    for index in range(parts_count):
        size = base + (1 if index < extra else 0)
        chunks.append(grid[start:start + size])
        start += size
    return chunks


def _build_region(entries: List[TapeEntry], region: _Region,
                  out_buffer: np.ndarray, tile_spec, pool,
                  scratch: List[np.ndarray],
                  workers: int = 1) -> Optional[FusedOp]:
    schedules = [entries[k].schedule for k in range(region.start, region.end)]
    final_node = schedules[-1].nodes[-1]
    if final_node.buffer is None:
        raise FusionError("schedule has no output buffer")
    region_shape = final_node.buffer.shape

    internal = _validate_schedules(entries, region.start, region.end,
                                   region_shape)

    # Buffers whose full contents outlive the region must be written through
    # (per-tile slices of the real buffer), not into tile scratch.
    later_reads: List[np.ndarray] = []
    for entry in entries[region.end:]:
        later_reads.extend(_entry_reads(entry))
    through: Dict[int, np.ndarray] = {}
    for key, buffer in internal.items():
        outlives = np.may_share_memory(buffer, out_buffer) \
            or _reads_buffer(later_reads, buffer)
        if outlives:
            if buffer.shape != region_shape:
                raise FusionError("escaping buffer is not region-shaped")
            through[key] = buffer

    # Validate + locate the fused pads' readers.  A fused pad is read either
    # directly by region leaves (located below) or by a *later* fused pad
    # gathering from its buffer — a chained halo: pad₂'s restricted reads
    # define, per tile, the box pad₁ must have refreshed first.
    pads = []
    for k in range(region.pad_start, region.start):
        pad = entries[k].pad
        locations = _pad_reader_locations(entries, region.start, region.end,
                                          pad.buffer, region_shape)
        if locations is None:
            raise FusionError("cannot locate the halo reads of a fused pad")
        pads.append((pad, locations))
    for index, (pad, locations) in enumerate(pads):
        fed = False
        for later, _ in pads[index + 1:]:
            if np.may_share_memory(later.source, pad.buffer):
                if later.source.shape != pad.buffer.shape \
                        or not _is_aligned(later.source, pad.buffer):
                    raise FusionError("chained pad reads a reshaped buffer")
                fed = True
        if not locations and not fed:
            raise FusionError("fused pad has no reader inside the region")

    tiles = tile_extents(tile_spec, region_shape, final_node.buffer.itemsize)
    grid = _tile_grid(region_shape, tiles)
    parts_count = 1 if workers <= 1 else max(1, min(workers, len(grid)))

    if len(schedules) < 2 and not pads and parts_count < 2:
        return None  # a lone schedule gains nothing from serial tiling

    def allocate_scratch() -> Dict[int, np.ndarray]:
        # One tile-sized scratch buffer per internal (non-through) buffer.
        # Tiles *within* a chunk replay sequentially and share the set;
        # each chunk gets its own set so parallel workers never share
        # scratch.  Edge tiles use pre-sliced sub-views.
        scratch_for: Dict[int, np.ndarray] = {}
        for key, buffer in internal.items():
            if key in through:
                continue
            offset = len(region_shape) - buffer.ndim
            shape = tuple(
                1 if buffer.shape[axis] == 1
                else min(buffer.shape[axis], tiles[offset + axis])
                for axis in range(buffer.ndim)
            )
            tile_scratch = pool.acquire(shape, buffer.dtype)
            scratch.append(tile_scratch)
            scratch_for[key] = tile_scratch
        return scratch_for

    def buffer_tile(buffer: np.ndarray, tile, scratch_for) -> np.ndarray:
        key = id(buffer)
        if key in through:
            return _tile_view(buffer, tile, region_shape)
        base = scratch_for[key]
        offset = len(region_shape) - buffer.ndim
        selector = tuple(
            slice(0, 1) if buffer.shape[axis] == 1
            else slice(0, tile[offset + axis][1] - tile[offset + axis][0])
            for axis in range(buffer.ndim)
        )
        return base[selector]

    def operand_tile(operand, tile, scratch_for):
        if isinstance(operand, TracedArray):
            if operand.node is not None:
                return buffer_tile(operand.node.buffer, tile, scratch_for)
            leaf = operand.concrete
            for buffer in internal.values():
                if np.may_share_memory(leaf, buffer):
                    return buffer_tile(buffer, tile, scratch_for)
            return _tile_view(leaf, tile, region_shape)
        if isinstance(operand, np.ndarray):
            return _tile_view(operand, tile, region_shape)
        return operand

    def build_tile_steps(tile, scratch_for, steps: List[Tuple]) -> None:
        # Walk the fused pads backwards: each pad's required box is the
        # union of the region leaves' located reads and the restricted
        # gathers of every later pad chained onto its buffer.
        boxes: Dict[int, Tuple[List[int], List[int]]] = {}
        pad_steps_reversed: List[List[Tuple]] = []
        for pad, locations in reversed(pads):
            box = _leaf_box(locations, tile, region_shape) \
                if locations else None
            box = _merge_box(box, boxes.pop(_address(pad.buffer), None))
            if box is None:
                raise FusionError("fused pad has no reader for a tile")
            lows = [max(0, lo) for lo in box[0]]
            highs = [min(extent, hi)
                     for extent, hi in zip(pad.buffer.shape, box[1])]
            axis = pad.axis
            tile_steps: List[Tuple] = []
            src_box = None
            for dst_start, src_start, length in pad.runs:
                lo = max(dst_start, lows[axis])
                hi = min(dst_start + length, highs[axis])
                if hi <= lo:
                    continue
                dst_selector = []
                src_selector = []
                for m in range(pad.buffer.ndim):
                    if m == axis:
                        dst_selector.append(slice(lo, hi))
                        src_selector.append(slice(src_start + (lo - dst_start),
                                                  src_start + (hi - dst_start)))
                    else:
                        dst_selector.append(slice(lows[m], highs[m]))
                        src_selector.append(slice(lows[m], highs[m]))
                destination = pad.buffer[tuple(dst_selector)]
                if destination.size == 0:
                    continue
                tile_steps.append((_COPY, destination,
                                   pad.source[tuple(src_selector)]))
                src_box = _merge_box(src_box, (
                    [selector.start for selector in src_selector],
                    [selector.stop for selector in src_selector],
                ))
            if src_box is not None:
                key = _address(pad.source)
                boxes[key] = _merge_box(boxes.get(key), src_box)
            pad_steps_reversed.append(tile_steps)
        for tile_steps in reversed(pad_steps_reversed):
            steps.extend(tile_steps)
        for schedule in schedules:
            for node in schedule.nodes:
                out = buffer_tile(node.buffer, tile, scratch_for)
                if node.kind == "ufunc":
                    steps.append((
                        _UFUNC, node.fn,
                        tuple(operand_tile(op, tile, scratch_for)
                              for op in node.operands),
                        out,
                    ))
                elif node.kind == "where":
                    condition, x, y = (operand_tile(op, tile, scratch_for)
                                       for op in node.operands)
                    steps.append((_WHERE, condition, x, y, out))
                else:  # clip
                    a, lo, hi = (operand_tile(op, tile, scratch_for)
                                 for op in node.operands)
                    steps.append((_CLIP, a, lo, hi, out))

    parts: List[List[Tuple]] = []
    for chunk in _partition_grid(grid, parts_count):
        chunk_scratch = allocate_scratch()
        chunk_steps: List[Tuple] = []
        for tile in chunk:
            build_tile_steps(tile, chunk_scratch, chunk_steps)
        parts.append(chunk_steps)

    return FusedOp(parts, tiles=len(grid), schedules=len(schedules),
                   pads=len(pads))


def optimize_tape(entries: List[TapeEntry], out_buffer: np.ndarray,
                  tile_spec, pool, workers: int = 1):
    """Fuse every eligible region of a captured tape.

    Returns ``(ops, scratch_buffers, info)`` — the new op list with fused
    regions replaced by :class:`FusedOp` replays — or ``None`` when nothing
    fuses.  Raises :class:`FusionError` (after handing scratch back to the
    pool) when an analysis invariant fails; callers fall back to the
    unfused tape either way.  ``workers`` (already canonicalised through
    :func:`normalize_workers`) selects N-way chunked parallel replay; each
    chunk's scratch comes from the same ``pool``, so worker scratch is
    released with the rest on fallback or plan release.
    """
    regions = find_regions(entries, out_buffer)
    scratch: List[np.ndarray] = []
    info = FusionInfo()
    replacements = []
    try:
        for region in regions:
            fused = _build_region(entries, region, out_buffer, tile_spec,
                                  pool, scratch, workers=workers)
            if fused is None:
                continue
            replacements.append((region, fused))
            info.regions += 1
            info.tiles += fused.tiles
            info.fused_schedules += fused.schedules
            info.fused_pads += fused.pads
            info.steps += fused.step_count
    except FusionError:
        pool.release_all(scratch)
        raise
    except Exception as error:  # noqa: BLE001 - analysis must never corrupt
        pool.release_all(scratch)
        raise FusionError(f"{type(error).__name__}: {error}") from error
    if not replacements:
        pool.release_all(scratch)
        return None
    ops = []
    index = 0
    for region, fused in replacements:
        while index < region.pad_start:
            ops.append(entries[index].op)
            index += 1
        ops.append(fused.run)
        index = region.end
    while index < len(entries):
        ops.append(entries[index].op)
        index += 1
    return ops, scratch, info


# ---------------------------------------------------------------------------
# Tile-size search (the tuning hook)
# ---------------------------------------------------------------------------

def measure_best_tile(backend, program, inputs, candidates=None,
                      runs: int = 3, size_env=None,
                      worker_candidates=None):
    """Time warm fused-plan replays across tile × worker specs; return the
    winner.

    ``candidates`` defaults to
    :func:`repro.tuning.parameters.fuse_tile_candidates` for the input's
    dimensionality; ``worker_candidates`` defaults to
    :func:`repro.tuning.parameters.replay_worker_candidates` (just
    ``(1,)`` on a single-core machine, so the search stays serial there).
    Returns ``(steady_seconds, tile_spec, parallel_workers)`` for the
    fastest warm replay — the tuner's ``measure_best`` protocol, and the
    engine worker's measured-scoring primitive.  Worker counts above 1 are
    only timed for specs that actually fuse (``False`` replays the unfused
    tape, which has no tiles to parallelise).
    """
    from ..tuning.parameters import (
        fuse_tile_candidates,
        replay_worker_candidates,
    )
    from .plan import time_steady

    if candidates is None:
        ndims = max((np.ndim(grid) for grid in inputs), default=2)
        candidates = fuse_tile_candidates(ndims)
    if worker_candidates is None:
        worker_candidates = replay_worker_candidates()
    best_cost = float("inf")
    best_spec = False
    best_workers = 1
    for spec in candidates:
        workers_to_try = (1,) if spec is False else worker_candidates
        for workers in workers_to_try:
            plan = backend.plan(program, inputs, size_env, tile_shape=spec,
                                parallel_workers=workers)
            cost = time_steady(plan, inputs, runs=runs)
            if cost < best_cost:
                best_cost, best_spec, best_workers = cost, spec, workers
    return best_cost, best_spec, best_workers


__all__ = [
    "FusedOp",
    "FusionError",
    "FusionInfo",
    "MAX_REPLAY_WORKERS",
    "ReplayWorkerPool",
    "TILE_TARGET_BYTES",
    "auto_tile",
    "find_regions",
    "measure_best_tile",
    "normalize_tile_spec",
    "normalize_workers",
    "optimize_tape",
    "replay_pool",
    "tile_extents",
]
