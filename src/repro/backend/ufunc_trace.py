"""Tracing user functions into replayable ``out=``-threaded ufunc schedules.

The compiled backend evaluates a user function by calling its whole-array
implementation (``numpy_fn`` or a broadcasting ``python_fn``); every
arithmetic step inside it allocates a fresh temporary.  For steady-state
execution loops that cost dominates, so execution plans *trace* the
function once: the concrete argument arrays are wrapped in
:class:`TracedArray` proxies whose operators, ``__array_ufunc__`` and
``__array_function__`` hooks record each NumPy operation instead of hiding
it, yielding a schedule of ufunc applications.  Replaying the schedule
executes exactly the same operations in exactly the same order — results
are bit-identical — but every operation writes into a pre-allocated scratch
buffer via ``out=``, so the steady path performs **zero** array
allocations.

Supported operations: every NumPy ufunc (arithmetic, comparisons,
``np.sqrt``/``np.abs``/…), plus ``np.where`` (replayed as a pair of
``np.copyto`` selections) and ``np.clip`` (which accepts ``out=``).  A
function that cannot be traced — e.g. one that branches on array values —
raises :class:`UntraceableFunction` and the caller falls back to calling it
directly into a pooled result buffer (correct, just not allocation-free).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


class UntraceableFunction(Exception):
    """The user function performed an operation the tracer cannot record."""


class _Node:
    """One recorded operation: ``kind`` plus operands (nodes, arrays, scalars)."""

    __slots__ = ("kind", "fn", "operands", "buffer", "concrete")

    def __init__(self, kind: str, fn, operands: Tuple, concrete) -> None:
        self.kind = kind            # "ufunc" | "where" | "clip"
        self.fn = fn                # the ufunc (for kind == "ufunc")
        self.operands = operands    # mix of TracedArray / ndarray / scalar
        self.concrete = concrete    # eager result (drives scratch shape/dtype)
        self.buffer: Optional[np.ndarray] = None  # bound by the schedule


def _concrete(value):
    """The concrete array/scalar behind a traced or plain operand."""
    if isinstance(value, TracedArray):
        return value.concrete
    return value


class TracedArray:
    """A proxy recording NumPy operations applied to a concrete array.

    ``concrete`` always holds the materialised value (operations execute
    eagerly during tracing), so shapes and dtypes of every intermediate are
    known exactly when the replay schedule allocates its scratch buffers.
    ``node`` is ``None`` for leaves — arrays that exist independently of the
    traced function (the stable argument views of an execution plan).
    """

    __slots__ = ("concrete", "node")

    def __init__(self, concrete: np.ndarray, node: Optional[_Node] = None) -> None:
        self.concrete = concrete
        self.node = node

    # -- NumPy protocol hooks ------------------------------------------------
    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        if method != "__call__" or kwargs:
            raise UntraceableFunction(
                f"unsupported ufunc use: {ufunc.__name__}.{method} with {kwargs}"
            )
        concrete_inputs = [_concrete(value) for value in inputs]
        result = getattr(ufunc, method)(*concrete_inputs)
        if isinstance(result, tuple):  # multi-output ufuncs (divmod, …)
            raise UntraceableFunction(f"multi-output ufunc {ufunc.__name__}")
        result = np.asarray(result)
        return TracedArray(result, _Node("ufunc", ufunc, tuple(inputs), result))

    def __array_function__(self, func, types, args, kwargs):
        if func is np.where and len(args) == 3 and not kwargs:
            condition, x, y = args
            result = np.asarray(
                np.where(_concrete(condition), _concrete(x), _concrete(y))
            )
            return TracedArray(result, _Node("where", None, (condition, x, y), result))
        if func is np.clip and len(args) == 3 and not kwargs:
            a, lo, hi = args
            result = np.asarray(np.clip(_concrete(a), _concrete(lo), _concrete(hi)))
            return TracedArray(result, _Node("clip", None, (a, lo, hi), result))
        raise UntraceableFunction(f"unsupported function {getattr(func, '__name__', func)}")

    # -- structural access (views of leaves are themselves leaves) ----------
    def __getitem__(self, key) -> "TracedArray":
        if self.node is not None:
            raise UntraceableFunction("indexing a computed intermediate")
        result = self.concrete[key]
        # Only *views* of the leaf stay live across tape replays.  Advanced
        # indexing (index arrays, boolean masks) and scalar extraction copy
        # first-sweep data, which would silently go stale — force the safe
        # opaque (re-execute per sweep) fallback instead.
        if not isinstance(result, np.ndarray) \
                or not np.shares_memory(result, self.concrete):
            raise UntraceableFunction(
                "indexing a traced argument with a copying (advanced/scalar) "
                "selection"
            )
        return TracedArray(result)

    @property
    def shape(self):
        return self.concrete.shape

    @property
    def dtype(self):
        return self.concrete.dtype

    @property
    def ndim(self):
        return self.concrete.ndim

    def __len__(self) -> int:
        return len(self.concrete)

    def __iter__(self):
        raise UntraceableFunction("iterating over a traced array")

    def __bool__(self) -> bool:
        raise UntraceableFunction("branching on a traced array value")

    def __float__(self) -> float:
        raise UntraceableFunction("converting a traced array to a scalar")

    # -- operators (each routes through the ufunc hook above) ----------------
    def __add__(self, other):
        return np.add(self, other)

    def __radd__(self, other):
        return np.add(other, self)

    def __sub__(self, other):
        return np.subtract(self, other)

    def __rsub__(self, other):
        return np.subtract(other, self)

    def __mul__(self, other):
        return np.multiply(self, other)

    def __rmul__(self, other):
        return np.multiply(other, self)

    def __truediv__(self, other):
        return np.true_divide(self, other)

    def __rtruediv__(self, other):
        return np.true_divide(other, self)

    def __pow__(self, other):
        return np.power(self, other)

    def __rpow__(self, other):
        return np.power(other, self)

    def __mod__(self, other):
        return np.mod(self, other)

    def __neg__(self):
        return np.negative(self)

    def __pos__(self):
        return self

    def __abs__(self):
        return np.absolute(self)

    def __lt__(self, other):
        return np.less(self, other)

    def __le__(self, other):
        return np.less_equal(self, other)

    def __gt__(self, other):
        return np.greater(self, other)

    def __ge__(self, other):
        return np.greater_equal(self, other)

    def __eq__(self, other):  # noqa: D105 - traced comparison, not identity
        return np.equal(self, other)

    def __ne__(self, other):
        return np.not_equal(self, other)

    __hash__ = None  # traced arrays are not hashable (eq is elementwise)


def _wrap_argument(value):
    if isinstance(value, np.ndarray):
        return TracedArray(value)
    if isinstance(value, tuple):
        return tuple(_wrap_argument(component) for component in value)
    return value  # scalars participate as plain Python numbers


class ReplaySchedule:
    """A traced function bound to scratch buffers: call :meth:`run` per sweep.

    ``run`` executes the recorded operations in recorded order, each through
    ``out=`` into its scratch buffer, and returns the final buffer.  The
    argument views captured at trace time are read live — they alias the
    plan's stable buffers, which earlier tape entries refresh every sweep.
    """

    def __init__(self, nodes: List[_Node], out: np.ndarray) -> None:
        self._nodes = nodes
        self.out = out

    @property
    def nodes(self) -> List[_Node]:
        """The recorded operation DAG in replay order (read-only use).

        Exposed for the tape optimizer (:mod:`repro.backend.fuse`), which
        re-derives a tiled replay from the same nodes."""
        return self._nodes

    def retarget(self, new_out: np.ndarray) -> None:
        """Make the final operation write directly into ``new_out``.

        Used by execution plans when the kernel's whole result *is* this
        schedule's final value: retargeting saves the output-materialisation
        copy pass.  ``new_out`` must be disjoint from every buffer the
        schedule reads (plans pass a fresh ring buffer), so even the
        ``where`` replay — which reads operands after its first write —
        stays correct.
        """
        final = self._nodes[-1]
        assert final.buffer is self.out, "final node must own the schedule output"
        final.buffer = new_out
        self.out = new_out

    def run(self) -> np.ndarray:
        for node in self._nodes:
            operands = node.operands
            if node.kind == "ufunc":
                node.fn(*[_replay_operand(value) for value in operands],
                        out=node.buffer)
            elif node.kind == "where":
                condition, x, y = (_replay_operand(value) for value in operands)
                np.copyto(node.buffer, y, casting="unsafe")
                np.copyto(node.buffer, x, where=condition, casting="unsafe")
            else:  # "clip"
                a, lo, hi = (_replay_operand(value) for value in operands)
                np.clip(a, lo, hi, out=node.buffer)
        return self.out


def _replay_operand(value):
    if isinstance(value, TracedArray):
        if value.node is not None:
            return value.node.buffer
        return value.concrete  # a live view of a stable buffer
    return value


def trace_function(
    fn: Callable,
    args: Sequence,
    pool,
) -> Tuple[Optional[ReplaySchedule], Optional[np.ndarray]]:
    """Trace ``fn(*args)`` into a replay schedule with pooled scratch.

    ``pool`` is any allocator with an ``acquire(shape, dtype)`` method (a
    :class:`~repro.backend.pool.BufferPool` or a capture arena).  Returns
    ``(schedule, result)`` where ``result`` holds the concrete value of this
    first (tracing) execution, living in the schedule's final scratch buffer
    so downstream consumers see a stable array.  Returns ``(None, value)``
    when the function performed no recorded computation but its result is
    nevertheless stable across sweeps — an argument passed through unchanged
    (a live view of the caller's buffers) or a run-invariant constant.
    Returns ``(None, None)`` when the function must be re-executed per sweep
    (untraceable control flow, unsupported operations, tuple results).
    """
    try:
        traced = fn(*[_wrap_argument(value) for value in args])
    except UntraceableFunction:
        return None, None
    if isinstance(traced, TracedArray) and traced.node is None:
        return None, traced.concrete  # argument passthrough: a stable view
    if not isinstance(traced, TracedArray):
        if isinstance(traced, np.ndarray) and traced.dtype != object:
            return None, traced  # constant built inside fn: run-invariant
        if isinstance(traced, (int, float, np.generic)):
            return None, traced
        return None, None  # tuples / object arrays: re-execute per sweep

    # Collect the recorded nodes in dependency order (operands precede use).
    nodes: List[_Node] = []
    seen = set()

    def collect(value) -> None:
        if not isinstance(value, TracedArray) or value.node is None:
            return
        node = value.node
        if id(node) in seen:
            return
        for operand in node.operands:
            collect(operand)
        seen.add(id(node))
        nodes.append(node)

    collect(traced)
    _assign_buffers(nodes, traced.node, pool)
    schedule = ReplaySchedule(nodes, traced.node.buffer)
    result = schedule.run()  # materialise the traced values into the buffers
    return schedule, result


def _assign_buffers(nodes: List[_Node], final: _Node, pool) -> None:
    """Bind scratch buffers to nodes with liveness-based reuse.

    A node's buffer is dead once its last consumer has executed; later nodes
    of the same shape and dtype reuse it.  This mirrors NumPy's own
    temporary elision on the generic path — the replay's working set stays a
    couple of buffers instead of one per operation, which keeps the hot loop
    in cache.  A plain ufunc may even write directly over an operand dying
    at that very node (exact-overlap ``out=`` is well-defined); the
    ``where``/``clip`` replays never do, as they read operands after the
    first write into ``out``.
    """
    last_use = {}
    for index, node in enumerate(nodes):
        for operand in node.operands:
            if isinstance(operand, TracedArray) and operand.node is not None:
                last_use[id(operand.node)] = index
    last_use[id(final)] = len(nodes)  # the result buffer outlives the schedule

    free = {}  # (shape, dtype str) -> [buffers]

    def key_of(buffer: np.ndarray):
        return (buffer.shape, str(buffer.dtype))

    for index, node in enumerate(nodes):
        shape, dtype = node.concrete.shape, node.concrete.dtype
        node.concrete = None  # eager temporaries are no longer needed
        dying = []
        for operand in node.operands:
            if isinstance(operand, TracedArray) and operand.node is not None \
                    and last_use.get(id(operand.node)) == index \
                    and operand.node.buffer is not None \
                    and not any(operand.node.buffer is b for b in dying):
                dying.append(operand.node.buffer)
        reused = None
        if node.kind == "ufunc":
            for buffer in dying:
                if buffer.shape == shape and buffer.dtype == dtype:
                    reused = buffer
                    break
        if reused is not None:
            node.buffer = reused
        else:
            bucket = free.get((shape, str(np.dtype(dtype))))
            node.buffer = bucket.pop() if bucket else pool.acquire(shape, dtype)
        for buffer in dying:
            if buffer is not node.buffer:
                free.setdefault(key_of(buffer), []).append(buffer)


__all__ = ["ReplaySchedule", "TracedArray", "UntraceableFunction", "trace_function"]
