"""The compiled, vectorized NumPy execution backend.

The reference interpreter (:mod:`repro.runtime.interpreter`) executes one
scalar operation per Python bytecode step over nested lists; it is the
correctness oracle but far too slow to drive experiments.  This module
*compiles* a (high-level or lowered) Lift expression into a kernel of
whole-array NumPy operations:

* ``pad``/``slide``/``transpose``/``split``/``join`` become index tables,
  strided window views and axis permutations — the same role the Section-5
  *view* mechanism (:mod:`repro.views.view`) plays during OpenCL code
  generation, but realised with NumPy's stride machinery;
* every ``map`` nest (``map``/``mapGlb``/``mapWrg``/``mapLcl``/``mapSeq``)
  is vectorised away: instead of looping, the mapped axis is re-interpreted
  as a *batch axis* and the function body is evaluated once on whole arrays;
* ``zip`` produces struct-of-array tuples, so tuple access (``get``) is a
  constant-time component selection;
* user functions are applied element-wise over full arrays via their
  ``numpy_fn`` (or their ``python_fn`` when it broadcasts).

Values
------
A runtime value is one of

* a Python scalar (literals, scalar user-function results on scalar inputs),
* a :class:`Batched` leaf — an ``ndarray`` whose first ``bd`` axes are batch
  axes introduced by enclosing maps, followed by the value's real axes,
* a tuple of values (array-of-tuples is represented as tuple-of-arrays).

The invariant maintained throughout is that a leaf's batch axes correspond
to the *outermost* ``bd`` enclosing map axes; values captured from enclosing
scopes are re-aligned on use by inserting broadcastable singleton axes
(:func:`_align`).  Reductions loop only over the (small, constant) stencil
neighbourhood axis and stay vectorised over all batch axes.

Compilation is *staged*: the expression tree is traversed once and turned
into a tree of closures, so repeated executions (exploration, tuning,
benchmarks) pay no dispatch cost.  Compiled kernels are cached by
structural expression hash plus input signature in
:mod:`repro.backend.cache`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.arithmetic import ArithExpr
from ..core.ir import (
    Expr,
    FunCall,
    FunDecl,
    Lambda,
    Literal,
    Param,
    Primitive,
    UserFun,
)
from ..core.primitives.algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Id,
    Iterate,
    Join,
    Map,
    Reduce,
    Split,
    Transpose,
    TupleCons,
    Zip,
)
from ..core.primitives.opencl import _MemorySpaceModifier
from ..core.primitives.stencil import Pad, PadConstant, Slide


class CompileError(Exception):
    """Raised when an expression cannot be compiled to a NumPy kernel."""


class PlanCaptureError(CompileError):
    """Raised when a program cannot be captured as an execution-plan tape.

    The tape mechanism stabilises *arrays* in pooled buffers; a program
    computing a run-varying **scalar** (e.g. an untraceable user function
    reducing its array argument to a Python float) has no buffer to refresh
    through, so replays would silently freeze first-sweep data.  Callers
    treat this like any :class:`CompileError`: the plan path refuses and
    the generic per-call path serves the program instead.  The full
    fallback chain is plan tape → generic compiled kernel → (when the
    backend was built with ``fallback=True``) the reference interpreter —
    every rung serves the exact program, each one trading speed for
    generality, so no program ever loses coverage by asking for a plan.
    """


class ExecutionError(Exception):
    """Raised when a compiled kernel is run on incompatible data."""


# ---------------------------------------------------------------------------
# Runtime values
# ---------------------------------------------------------------------------

class Batched:
    """An ndarray whose first ``bd`` axes are (broadcastable) batch axes."""

    __slots__ = ("data", "bd")

    def __init__(self, data: np.ndarray, bd: int) -> None:
        self.data = data
        self.bd = bd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batched(shape={self.data.shape}, bd={self.bd})"


def _leafmap(value, fn: Callable[[Batched], "Batched"]):
    """Apply ``fn`` to every :class:`Batched` leaf of a value tree."""
    if isinstance(value, tuple):
        return tuple(_leafmap(component, fn) for component in value)
    if isinstance(value, Batched):
        return fn(value)
    return value  # scalars pass through


def _first_leaf(value) -> Optional[Batched]:
    if isinstance(value, Batched):
        return value
    if isinstance(value, tuple):
        for component in value:
            leaf = _first_leaf(component)
            if leaf is not None:
                return leaf
    return None


def _align_leaf(leaf: Batched, depth: int) -> Batched:
    """Materialise missing inner batch axes as broadcastable singletons.

    Singleton axes are inserted with ``newaxis`` indexing rather than
    ``reshape``: basic indexing is *guaranteed* to return a view, which the
    execution-plan capture machinery relies on (a silent reshape copy would
    detach downstream views from their tape-refreshed buffers).
    """
    if leaf.bd == depth:
        return leaf
    if leaf.bd > depth:
        raise ExecutionError(
            f"value with {leaf.bd} batch axes used at depth {depth}"
        )
    selector = (slice(None),) * leaf.bd + (None,) * (depth - leaf.bd)
    return Batched(leaf.data[selector], depth)


def _align(value, depth: int):
    if isinstance(value, (int, float, np.generic)):
        return value
    return _leafmap(value, lambda leaf: _align_leaf(leaf, depth))


def _as_leaf(value, depth: int) -> Batched:
    """Coerce a scalar to a 0-real-rank leaf; align leaves; reject tuples."""
    if isinstance(value, Batched):
        return _align_leaf(value, depth)
    if isinstance(value, (int, float, np.generic)):
        scalar = np.asarray(value, dtype=np.float64).reshape((1,) * depth)
        return Batched(scalar, depth)
    raise ExecutionError(f"expected an array or scalar, got {type(value).__name__}")


def _array_length(value, depth: int, who: str) -> int:
    """The length of an array value's first real axis (its axis ``depth``)."""
    leaf = _first_leaf(value)
    if leaf is None:
        raise ExecutionError(f"{who} expects an array, got a scalar")
    leaf = _align_leaf(leaf, depth)
    if leaf.data.ndim <= depth:
        raise ExecutionError(f"{who} expects an array, got a scalar value")
    return leaf.data.shape[depth]

def _index(value, depth: int, i: int):
    """Select index ``i`` along axis ``depth`` of an array value."""
    selector = (slice(None),) * depth + (i,)

    def pick(leaf: Batched) -> Batched:
        leaf = _align_leaf(leaf, depth)
        if leaf.data.ndim <= depth:
            raise ExecutionError("indexing into a scalar value")
        return Batched(leaf.data[selector], depth)

    return _leafmap(value, pick)


def _to_output(value):
    """Convert a runtime value into the backend's output representation.

    Arrays become ``float64`` ndarrays.  Arrays *of tuples* (``zip`` results)
    become an ndarray with the tuple components stacked along the last axis,
    matching ``np.array`` applied to the interpreter's list-of-tuples output.
    """
    if isinstance(value, tuple):
        return np.stack([np.asarray(_to_output(v)) for v in value], axis=-1)
    if isinstance(value, Batched):
        if value.bd != 0:
            raise ExecutionError("result value still carries batch axes")
        return value.data
    return value


def _to_output_batched(value, batch: int):
    """Like :func:`_to_output` but keeping one leading request-batch axis.

    The result of a batched execution carries exactly one batch axis (the
    stacked-requests axis the service introduced); a leaf whose batch axis
    stayed a broadcastable singleton (an input-independent result) is
    materialised to the full batch extent so every request gets its slice.
    """
    if isinstance(value, tuple):
        return np.stack(
            [np.asarray(_to_output_batched(v, batch)) for v in value], axis=-1
        )
    if isinstance(value, (int, float, np.generic)):
        scalar = np.asarray(value, dtype=np.float64)
        return np.broadcast_to(scalar, (batch,) + scalar.shape).copy()
    if isinstance(value, Batched):
        leaf = _align_leaf(value, 1)
        data = leaf.data
        if data.shape[0] != batch:
            if data.shape[0] != 1:
                raise ExecutionError(
                    f"batched result has extent {data.shape[0]} on the batch "
                    f"axis, expected {batch}"
                )
            data = np.broadcast_to(data, (batch,) + data.shape[1:]).copy()
        return data
    raise ExecutionError(
        f"cannot convert {type(value).__name__} to a batched output"
    )


# ---------------------------------------------------------------------------
# Capture arenas (the execution-plan recording mode)
# ---------------------------------------------------------------------------

_ARENA = threading.local()  # .current: the capturing thread's CaptureArena


def _active_arena() -> Optional["CaptureArena"]:
    return getattr(_ARENA, "current", None)


class PadWrite:
    """Structured description of one halo-gather buffer write.

    A pad (or padConstant interior) tape op is a set of block copies along
    one axis: ``buffer[..., dst:dst+length, ...] = source[..., src:src+length,
    ...]`` for each ``(dst, src, length)`` run, with every other axis copied
    in full.  Recording the geometry — not just the closure — lets the tape
    optimizer (:mod:`repro.backend.fuse`) re-emit the copy restricted to the
    halo region one output tile actually reads.
    """

    __slots__ = ("buffer", "source", "axis", "runs")

    def __init__(self, buffer: np.ndarray, source: np.ndarray,
                 axis: int, runs) -> None:
        self.buffer = buffer
        self.source = source
        self.axis = axis
        self.runs = list(runs)  # [(dst_start, src_start, length), ...]


class TapeEntry:
    """One tape op plus the dataflow facts the fuser needs.

    ``kind`` is one of ``"pad"`` (a :class:`PadWrite`-described halo
    gather), ``"schedule"`` (a traced
    :class:`~repro.backend.ufunc_trace.ReplaySchedule`), ``"copy"``
    (reshape/gather block copies the fuser treats as opaque), ``"opaque"``
    (per-sweep re-executed user functions) or ``"output"`` (the plan's
    result materialisation).  ``reads``/``writes`` list the concrete arrays
    the op touches — the fuser's interference analysis is conservative:
    unknown ops simply break fusion regions.
    """

    __slots__ = ("kind", "op", "reads", "writes", "schedule", "pad")

    def __init__(self, kind: str, op: Callable[[], object],
                 reads=(), writes=(), schedule=None, pad=None) -> None:
        self.kind = kind
        self.op = op
        self.reads = list(reads)
        self.writes = list(writes)
        self.schedule = schedule
        self.pad = pad


class CaptureArena:
    """Records the buffer-writing operations of one kernel execution.

    While an arena is installed (see :meth:`CompiledKernel.capture`), every
    compiled step that would allocate a fresh array for *run-varying* data —
    ``pad`` gathers, ``padConstant`` halos, reshape copies in ``split``/
    ``join``, and user-function results — instead writes into a buffer drawn
    from the arena's pool and records the write as a *tape op*.  Everything
    else in the compiled kernel is stride manipulation: views into those
    stable buffers, identical from run to run.  Replaying the tape therefore
    re-executes the whole kernel — bit-identically — without traversing the
    closure tree and without allocating.
    """

    def __init__(self, pool) -> None:
        self.pool = pool
        self.ops: List[Callable[[], object]] = []
        self.entries: List[TapeEntry] = []  # descriptors, aligned with ops
        self.buffers: List[np.ndarray] = []
        self.schedules: List = []  # traced ReplaySchedules, in tape order
        self.traced_calls = 0
        self.opaque_calls = 0

    def buffer(self, shape, dtype) -> np.ndarray:
        buffer = self.pool.acquire(shape, dtype)
        self.buffers.append(buffer)
        return buffer

    # Allocator protocol used by the ufunc tracer's scratch buffers.
    acquire = buffer

    def record_and_run(self, op: Callable[[], object], kind: str = "copy",
                       reads=(), writes=(), pad=None) -> None:
        self.ops.append(op)
        self.entries.append(TapeEntry(kind, op, reads=reads, writes=writes,
                                      pad=pad))
        op()

    # -- user functions ------------------------------------------------------
    def userfun(self, fn: Callable, raws: List):
        """Evaluate ``fn`` over ``raws`` with a stable, tape-refreshed result.

        Preferred path: trace the function into an ``out=``-threaded ufunc
        schedule (:mod:`repro.backend.ufunc_trace`) — allocation-free on
        replay.  Untraceable functions fall back to per-sweep re-execution
        with the result copied into a pooled buffer, which keeps downstream
        views stable at the cost of the function's internal temporaries.
        """
        from .ufunc_trace import trace_function

        try:
            schedule, result = trace_function(fn, raws, self)
        except Exception:  # noqa: BLE001 - tracing must never break execution
            schedule, result = None, None
        if schedule is not None:
            self.ops.append(schedule.run)
            self.entries.append(TapeEntry("schedule", schedule.run,
                                          schedule=schedule))
            self.schedules.append(schedule)
            self.traced_calls += 1
            return result
        if result is not None:
            # The function produced no recorded computation: its result is a
            # stable argument view or a run-invariant constant. Use it as is.
            return result
        produced = fn(*raws)
        if _has_array(raws) and not _all_arrays(produced):
            # A run-varying scalar (or mixed) result cannot be refreshed
            # through a buffer — replays would freeze first-sweep data.
            raise PlanCaptureError(
                "user function returns a data-dependent scalar; the program "
                "cannot be captured as an allocation-free plan"
            )
        stable = _leaf_structure_map(
            produced, lambda array: self.buffer(array.shape, array.dtype)
        )

        def op(_fn=fn, _raws=raws, _stable=stable):
            _copy_structure(_stable, _fn(*_raws))

        _copy_structure(stable, produced)
        self.ops.append(op)
        self.entries.append(TapeEntry(
            "opaque", op,
            reads=_flat_arrays(raws), writes=_flat_arrays(stable),
        ))
        self.opaque_calls += 1
        return stable

    def reshape(self, data: np.ndarray, new_shape: Tuple[int, ...]) -> np.ndarray:
        """A reshape whose result is stable across tape replays.

        When NumPy can reshape ``data`` as a view, the view is returned
        (nothing to record).  When the reshape would copy — e.g. merging the
        non-contiguous window axes of ``slide`` under ``join`` — the copy
        goes into a pooled buffer via a recorded ``copyto`` instead.
        """
        view = data.reshape(new_shape)
        if np.shares_memory(view, data):
            return view
        buffer = self.buffer(new_shape, data.dtype)
        destination = buffer.reshape(data.shape)  # contiguous: always a view

        def op(_dst=destination, _src=data):
            np.copyto(_dst, _src)

        self.record_and_run(op, kind="copy", reads=[data], writes=[buffer])
        return buffer


def _index_runs(table: np.ndarray, max_runs: int = 8):
    """Decompose an index table into maximal consecutive runs.

    Returns ``[(destination_start, source_start, length), ...]`` such that
    gathering with the table equals copying each source slice to its
    destination slice, or ``None`` when the table is too fragmented for
    block copies to beat one ``np.take``.
    """
    if len(table) == 0:
        return []
    runs = []
    start = 0
    for position in range(1, len(table) + 1):
        if position == len(table) or table[position] != table[position - 1] + 1:
            runs.append((start, int(table[start]), position - start))
            if len(runs) > max_runs:
                return None
            start = position
    return runs


def _flat_arrays(value) -> List[np.ndarray]:
    if isinstance(value, (tuple, list)):
        arrays: List[np.ndarray] = []
        for component in value:
            arrays.extend(_flat_arrays(component))
        return arrays
    return [value] if isinstance(value, np.ndarray) else []


def _has_array(value) -> bool:
    if isinstance(value, (tuple, list)):
        return any(_has_array(component) for component in value)
    return isinstance(value, np.ndarray)


def _all_arrays(value) -> bool:
    if isinstance(value, tuple):
        return all(_all_arrays(component) for component in value)
    return isinstance(value, np.ndarray)


def _leaf_structure_map(value, fn):
    if isinstance(value, tuple):
        return tuple(_leaf_structure_map(component, fn) for component in value)
    if isinstance(value, np.ndarray):
        return fn(value)
    return value  # scalar results of literal-only inputs are run-invariant


def _copy_structure(destination, source) -> None:
    if isinstance(destination, tuple):
        for dst, src in zip(destination, source):
            _copy_structure(dst, src)
    elif isinstance(destination, np.ndarray):
        np.copyto(destination, source)


# ---------------------------------------------------------------------------
# The staged compiler
# ---------------------------------------------------------------------------

Env = Dict[Param, object]
Step = Callable[[Env, int], object]
Applier = Callable[[List, Env, int], object]


class _Compiler:
    """Compiles one expression tree into a tree of closures."""

    def __init__(self, size_env: Mapping[str, int]) -> None:
        self.size_env = dict(size_env)
        # (id(boundary), left, right, n) -> precomputed index table
        self._pad_indices: Dict[Tuple, np.ndarray] = {}

    # -- expressions --------------------------------------------------------
    def compile_expr(self, expr: Expr) -> Step:
        if isinstance(expr, Param):
            def step_param(env: Env, depth: int, _p=expr):
                try:
                    return env[_p]
                except KeyError:
                    raise ExecutionError(f"unbound parameter {_p.name!r}") from None
            return step_param

        if isinstance(expr, Literal):
            value = expr.value
            return lambda env, depth: value

        if isinstance(expr, FunCall):
            arg_steps = [self.compile_expr(arg) for arg in expr.args]
            applier = self.compile_apply(expr.fun)
            def step_call(env: Env, depth: int):
                return applier([s(env, depth) for s in arg_steps], env, depth)
            return step_call

        if isinstance(expr, (Lambda, UserFun, Primitive)):
            raise CompileError(
                f"first-class function values ({type(expr).__name__}) are not "
                "supported by the compiled backend; use the interpreter"
            )
        raise CompileError(f"cannot compile expression {type(expr).__name__}")

    # -- application --------------------------------------------------------
    def compile_apply(self, fun: FunDecl) -> Applier:
        if isinstance(fun, Lambda):
            body_step = self.compile_expr(fun.body)
            params = fun.params
            def apply_lambda(args: List, env: Env, depth: int):
                if len(args) != len(params):
                    raise ExecutionError(
                        f"lambda expects {len(params)} arguments, got {len(args)}"
                    )
                inner = dict(env)
                inner.update(dict(zip(params, args)))
                return body_step(inner, depth)
            return apply_lambda

        if isinstance(fun, UserFun):
            return self._compile_userfun(fun)

        if isinstance(fun, Primitive):
            return self._compile_primitive(fun)

        raise CompileError(f"cannot compile application of {type(fun).__name__}")

    # -- user functions -----------------------------------------------------
    def _compile_userfun(self, fun: UserFun) -> Applier:
        fn = fun.numpy_fn if fun.numpy_fn is not None else fun.python_fn

        def raw(value, depth: int):
            if isinstance(value, Batched):
                return _align_leaf(value, depth).data
            if isinstance(value, tuple):
                return tuple(raw(component, depth) for component in value)
            return value

        def wrap(result, depth: int):
            if isinstance(result, np.ndarray):
                if result.ndim < depth:
                    raise ExecutionError(
                        f"user function {fun.name!r} dropped batch axes"
                    )
                return Batched(result, depth)
            if isinstance(result, tuple):
                return tuple(wrap(component, depth) for component in result)
            return result

        def apply_userfun(args: List, env: Env, depth: int, _fn=fn):
            arena = _active_arena()
            raws = [raw(a, depth) for a in args]
            if arena is not None:
                return wrap(arena.userfun(_fn, raws), depth)
            return wrap(_fn(*raws), depth)

        return apply_userfun

    # -- primitives ---------------------------------------------------------
    def _compile_primitive(self, prim: Primitive) -> Applier:
        if isinstance(prim, Map):  # covers mapGlb/mapWrg/mapLcl/mapSeq
            return self._compile_map(prim)
        if isinstance(prim, Reduce):  # covers reduceSeq/reduceUnroll
            return self._compile_reduce(prim)
        if isinstance(prim, Iterate):
            return self._compile_iterate(prim)
        if isinstance(prim, Zip):
            return self._compile_zip(prim)
        if isinstance(prim, Split):
            return self._compile_split(prim)
        if isinstance(prim, Join):
            return self._compile_join(prim)
        if isinstance(prim, Transpose):
            return self._compile_transpose(prim)
        if isinstance(prim, At):
            index = prim.index
            return lambda args, env, depth: _index(args[0], depth, index)
        if isinstance(prim, Get):
            return self._compile_get(prim)
        if isinstance(prim, TupleCons):
            return lambda args, env, depth: tuple(args)
        if isinstance(prim, ArrayConstructor):
            return self._compile_array_constructor(prim)
        if isinstance(prim, Id):
            return lambda args, env, depth: args[0]
        if isinstance(prim, Pad):
            return self._compile_pad(prim)
        if isinstance(prim, PadConstant):
            return self._compile_pad_constant(prim)
        if isinstance(prim, Slide):
            return self._compile_slide(prim)
        if isinstance(prim, _MemorySpaceModifier):
            return self.compile_apply(prim.f)
        raise CompileError(f"no compilation rule for primitive {prim.name!r}")

    def _compile_map(self, prim: Map) -> Applier:
        f_apply = self.compile_apply(prim.f)
        name = prim.name

        def apply_map(args: List, env: Env, depth: int):
            (data,) = args
            length = _array_length(data, depth, name)
            # The mapped axis becomes one more batch axis; the body is then
            # evaluated ONCE on whole arrays instead of `length` times.
            batched = _leafmap(
                _align(data, depth),
                lambda leaf: Batched(leaf.data, depth + 1),
            )
            result = f_apply([batched], env, depth + 1)
            return _leafmap(
                _align(_scalar_to_leaf(result, depth + 1), depth + 1),
                lambda leaf: _debatch_leaf(leaf, depth, length),
            )

        return apply_map

    def _compile_reduce(self, prim: Reduce) -> Applier:
        f_apply = self.compile_apply(prim.f)
        init_step = self.compile_expr(prim.init)
        name = prim.name

        def apply_reduce(args: List, env: Env, depth: int):
            (data,) = args
            length = _array_length(data, depth, name)
            acc = init_step(env, depth)
            aligned = _align(data, depth)
            # Sequential fold over the (small) reduced axis, in the same
            # order as the interpreter; vectorised over every batch axis.
            for i in range(length):
                acc = f_apply([acc, _index(aligned, depth, i)], env, depth)
            expander = lambda leaf: Batched(
                np.expand_dims(leaf.data, axis=depth), depth
            )
            return _leafmap(_align(_scalar_to_leaf(acc, depth), depth), expander)

        return apply_reduce

    def _compile_iterate(self, prim: Iterate) -> Applier:
        f_apply = self.compile_apply(prim.f)
        count = prim.count

        def apply_iterate(args: List, env: Env, depth: int):
            (data,) = args
            for _ in range(count):
                data = f_apply([data], env, depth)
            return data

        return apply_iterate

    def _compile_zip(self, prim: Zip) -> Applier:
        name = prim.name

        def apply_zip(args: List, env: Env, depth: int):
            lengths = [_array_length(a, depth, name) for a in args]
            if len(set(lengths)) != 1:
                raise ExecutionError("zip: arrays have different lengths")
            # Array-of-tuples is represented struct-of-arrays: the zipped
            # axis stays at position `depth` inside every component.
            return tuple(_align(a, depth) for a in args)

        return apply_zip

    def _compile_split(self, prim: Split) -> Applier:
        chunk = self._concrete(prim.chunk, "split chunk size")

        def apply_split(args: List, env: Env, depth: int):
            arena = _active_arena()

            def split_leaf(leaf: Batched) -> Batched:
                shape = leaf.data.shape
                n = shape[depth]
                if n % chunk != 0:
                    raise ExecutionError(
                        f"split({chunk}): input length {n} is not divisible"
                    )
                new_shape = shape[:depth] + (n // chunk, chunk) + shape[depth + 1:]
                if arena is not None:
                    return Batched(arena.reshape(leaf.data, new_shape), depth)
                return Batched(leaf.data.reshape(new_shape), depth)

            return _leafmap(_align(args[0], depth), split_leaf)

        return apply_split

    def _compile_join(self, prim: Join) -> Applier:
        def apply_join(args: List, env: Env, depth: int):
            arena = _active_arena()

            def join_leaf(leaf: Batched) -> Batched:
                shape = leaf.data.shape
                if leaf.data.ndim < depth + 2:
                    raise ExecutionError("join expects a nested array")
                new_shape = (
                    shape[:depth] + (shape[depth] * shape[depth + 1],)
                    + shape[depth + 2:]
                )
                if arena is not None:
                    return Batched(arena.reshape(leaf.data, new_shape), depth)
                return Batched(leaf.data.reshape(new_shape), depth)

            return _leafmap(_align(args[0], depth), join_leaf)

        return apply_join

    def _compile_transpose(self, prim: Transpose) -> Applier:
        def apply_transpose(args: List, env: Env, depth: int):
            def swap_leaf(leaf: Batched) -> Batched:
                if leaf.data.ndim < depth + 2:
                    raise ExecutionError("transpose expects a nested array")
                return Batched(np.swapaxes(leaf.data, depth, depth + 1), depth)

            return _leafmap(_align(args[0], depth), swap_leaf)

        return apply_transpose

    def _compile_get(self, prim: Get) -> Applier:
        index = prim.index

        def apply_get(args: List, env: Env, depth: int):
            value = args[0]
            if not isinstance(value, tuple):
                raise ExecutionError(
                    f"get expects a tuple, got {type(value).__name__}"
                )
            return value[index]

        return apply_get

    def _compile_array_constructor(self, prim: ArrayConstructor) -> Applier:
        size = self._concrete(prim.size, "array size")
        generator = prim.generator
        values = np.asarray(
            [generator(i, size) for i in range(size)], dtype=np.float64
        )

        def apply_array(args: List, env: Env, depth: int):
            return Batched(values, 0)

        return apply_array

    def _compile_pad(self, prim: Pad) -> Applier:
        left, right, boundary = prim.left, prim.right, prim.boundary

        def indices_for(n: int) -> np.ndarray:
            key = (id(boundary), left, right, n)
            table = self._pad_indices.get(key)
            if table is None:
                table = np.asarray(
                    [boundary(i - left, n) for i in range(n + left + right)],
                    dtype=np.intp,
                )
                self._pad_indices[key] = table
            return table

        def apply_pad(args: List, env: Env, depth: int):
            arena = _active_arena()

            def pad_leaf(leaf: Batched) -> Batched:
                n = leaf.data.shape[depth]
                table = indices_for(n)
                if arena is None:
                    return Batched(np.take(leaf.data, table, axis=depth), depth)
                source = leaf.data
                shape = (
                    source.shape[:depth] + (len(table),) + source.shape[depth + 1:]
                )
                buffer = arena.buffer(shape, source.dtype)
                runs = _index_runs(table)
                if runs is not None:
                    # The boundary re-indexing decomposes into a few
                    # contiguous runs (clamp/mirror/wrap all do): replay as
                    # block copies — one big interior copy plus tiny halo
                    # slices — instead of a per-element gather.
                    pairs = [
                        (
                            buffer[(slice(None),) * depth
                                   + (slice(dst, dst + length),)],
                            source[(slice(None),) * depth
                                   + (slice(src, src + length),)],
                        )
                        for dst, src, length in runs
                    ]

                    def op(_pairs=pairs):
                        for destination, block in _pairs:
                            np.copyto(destination, block)

                    arena.record_and_run(
                        op, kind="pad", reads=[source], writes=[buffer],
                        pad=PadWrite(buffer, source, depth, runs),
                    )
                else:
                    def op(_src=source, _table=table, _axis=depth, _out=buffer):
                        np.take(_src, _table, axis=_axis, out=_out)

                    arena.record_and_run(op, kind="copy", reads=[source],
                                         writes=[buffer])
                return Batched(buffer, depth)

            return _leafmap(_align(args[0], depth), pad_leaf)

        return apply_pad

    def _compile_pad_constant(self, prim: PadConstant) -> Applier:
        left, right = prim.left, prim.right
        value_step = self.compile_expr(prim.value)

        def apply_pad_constant(args: List, env: Env, depth: int):
            value = value_step(env, depth)
            if isinstance(value, Batched):
                if value.data.size != 1:
                    raise ExecutionError(
                        "padConstant requires a scalar boundary value"
                    )
                value = float(value.data.reshape(()))
            arena = _active_arena()

            def pad_leaf(leaf: Batched) -> Batched:
                if arena is None:
                    widths = [(0, 0)] * leaf.data.ndim
                    widths[depth] = (left, right)
                    return Batched(
                        np.pad(leaf.data, widths, mode="constant",
                               constant_values=value),
                        depth,
                    )
                # The constant halo never changes: write it once, refresh
                # only the interior slab on every tape replay.
                source = leaf.data
                n = source.shape[depth]
                shape = (
                    source.shape[:depth] + (n + left + right,)
                    + source.shape[depth + 1:]
                )
                buffer = arena.buffer(shape, source.dtype)
                buffer.fill(value)
                interior = buffer[
                    (slice(None),) * depth + (slice(left, left + n),)
                ]

                def op(_dst=interior, _src=source):
                    np.copyto(_dst, _src)

                # The constant halo itself was written once above and never
                # refreshed, so the replayable write is a single interior
                # run — exactly the shape the tape optimizer can restrict.
                arena.record_and_run(
                    op, kind="pad", reads=[source], writes=[buffer],
                    pad=PadWrite(buffer, source, depth, [(left, 0, n)]),
                )
                return Batched(buffer, depth)

            return _leafmap(_align(args[0], depth), pad_leaf)

        return apply_pad_constant

    def _compile_slide(self, prim: Slide) -> Applier:
        size = self._concrete(prim.size, "slide window size")
        step = self._concrete(prim.step, "slide step")

        def apply_slide(args: List, env: Env, depth: int):
            def slide_leaf(leaf: Batched) -> Batched:
                data = leaf.data
                n = data.shape[depth]
                count = (n - size + step) // step
                if count < 0:
                    raise ExecutionError(
                        f"slide({size}, {step}): input of length {n} is too short"
                    )
                if n < size:  # zero windows, but a well-shaped empty result
                    shape = (
                        data.shape[:depth] + (0, size) + data.shape[depth + 1:]
                    )
                    return Batched(np.empty(shape, dtype=data.dtype), depth)
                windows = np.lib.stride_tricks.sliding_window_view(
                    data, size, axis=depth
                )
                # window axis is appended last; move it next to the slide axis
                windows = np.moveaxis(windows, -1, depth + 1)
                if step != 1:
                    selector = (slice(None),) * depth + (slice(None, None, step),)
                    windows = windows[selector]
                return Batched(windows, depth)

            return _leafmap(_align(args[0], depth), slide_leaf)

        return apply_slide

    # -- helpers ------------------------------------------------------------
    def _concrete(self, size: ArithExpr, what: str) -> int:
        try:
            return int(size.evaluate(self.size_env))
        except Exception as exc:
            raise CompileError(f"cannot concretise {what} {size!r}: {exc}") from exc


def _scalar_to_leaf(value, depth: int):
    """Promote bare scalars to leaves so axis bookkeeping works uniformly."""
    if isinstance(value, (int, float, np.generic)):
        return _as_leaf(value, 0)
    if isinstance(value, tuple):
        return tuple(_scalar_to_leaf(component, depth) for component in value)
    return value


def _debatch_leaf(leaf: Batched, depth: int, length: int) -> Batched:
    """Turn batch axis ``depth`` back into a real axis of size ``length``."""
    data = leaf.data
    if data.shape[depth] != length:
        if data.shape[depth] != 1:
            raise ExecutionError(
                f"map result has extent {data.shape[depth]} on its mapped "
                f"axis, expected {length}"
            )
        shape = list(data.shape)
        shape[depth] = length
        data = np.broadcast_to(data, tuple(shape))
    return Batched(data, depth)


# ---------------------------------------------------------------------------
# Compiled kernels
# ---------------------------------------------------------------------------

class CompiledKernel:
    """A Lift program compiled to a vectorized NumPy callable."""

    def __init__(self, program: Lambda, size_env: Mapping[str, int]) -> None:
        if not isinstance(program, Lambda):
            raise CompileError("only closed top-level lambdas can be compiled")
        self.program = program
        self.size_env = dict(size_env)
        compiler = _Compiler(self.size_env)
        self._params = program.params
        self._body_step = compiler.compile_expr(program.body)

    def __call__(self, inputs: Sequence) -> np.ndarray:
        if len(inputs) != len(self._params):
            raise ExecutionError(
                f"program expects {len(self._params)} inputs, got {len(inputs)}"
            )
        env: Env = {
            param: Batched(np.asarray(value, dtype=np.float64), 0)
            for param, value in zip(self._params, inputs)
        }
        return _to_output(self._body_step(env, 0))

    def capture(self, buffers: Sequence[np.ndarray], depth: int,
                arena: CaptureArena):
        """Execute the kernel once under a capture arena (plan recording).

        ``buffers`` are the plan's stable input buffers (already converted
        to ``float64``), bound directly as the parameter environment —
        ``depth`` is 0 for single execution, 1 when the leading axis is the
        stacked-requests batch axis.  The execution both *computes* (this is
        a real sweep over real data) and *records*: every buffer write lands
        in the arena's tape.  Returns the raw result value tree (``Batched``
        leaves / tuples), whose leaves are views of arena or input buffers —
        the plan turns it into an output-materialisation op.
        """
        if len(buffers) != len(self._params):
            raise ExecutionError(
                f"program expects {len(self._params)} inputs, got {len(buffers)}"
            )
        env: Env = {
            param: Batched(buffer, depth)
            for param, buffer in zip(self._params, buffers)
        }
        previous = _active_arena()
        _ARENA.current = arena
        try:
            return self._body_step(env, depth)
        finally:
            _ARENA.current = previous

    def run_batched(self, stacked_inputs: Sequence) -> np.ndarray:
        """Execute many independent requests in one vectorized sweep.

        Each input carries a *leading batch axis* of a common extent ``B``:
        ``stacked_inputs[i]`` has shape ``(B,) + single_shape_i`` where
        ``single_shape_i`` is what :meth:`__call__` would receive for one
        request.  The batch axis is threaded through the whole kernel as one
        more broadcastable batch dimension — the same mechanism enclosing
        ``map``s use — so the staged closure tree is traversed **once** and
        every NumPy operation sweeps all ``B`` requests together.  The result
        has the batch axis first; slice ``result[k]`` is bit-identical to
        ``kernel(inputs_k)`` because batching only adds an outer axis to
        elementwise operations and never reorders a reduction.
        """
        if len(stacked_inputs) != len(self._params):
            raise ExecutionError(
                f"program expects {len(self._params)} inputs, "
                f"got {len(stacked_inputs)}"
            )
        arrays = [np.asarray(value, dtype=np.float64) for value in stacked_inputs]
        if not arrays:
            raise ExecutionError("batched execution needs at least one input")
        extents = {array.shape[0] for array in arrays if array.ndim > 0}
        if len(extents) != 1:
            raise ExecutionError(
                f"inconsistent batch extents across inputs: {sorted(extents)}"
            )
        (batch,) = extents
        env: Env = {
            param: Batched(array, 1)
            for param, array in zip(self._params, arrays)
        }
        return _to_output_batched(self._body_step(env, 1), batch)


def compile_program(
    program: Lambda,
    size_env: Optional[Mapping[str, int]] = None,
) -> CompiledKernel:
    """Compile a closed Lift program into a NumPy kernel (no caching)."""
    return CompiledKernel(program, size_env or {})


__all__ = [
    "Batched",
    "CaptureArena",
    "CompileError",
    "CompiledKernel",
    "ExecutionError",
    "PadWrite",
    "TapeEntry",
    "compile_program",
]
