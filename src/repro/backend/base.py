"""Execution backends: a common protocol, the registry, and cross-checking.

The reference interpreter remains the semantic oracle of the system; the
compiled NumPy backend is the fast path used by experiments, exploration,
tuning and benchmarks.  Both are exposed behind one small protocol so call
sites select a backend by name (or honour the ``REPRO_BACKEND`` environment
variable) instead of hard-coding an execution strategy:

* ``interpreter`` — :class:`InterpreterBackend`, per-element evaluation over
  nested lists (slow, simple, trusted);
* ``numpy`` — :class:`NumpyBackend`, compiled vectorized kernels with the
  compilation cache (the default);
* ``crosscheck`` — :class:`CrossCheckBackend`, runs *both* and verifies the
  compiled result against the interpreter before returning it.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional, Protocol, Sequence, Union, runtime_checkable

import numpy as np

from ..core.ir import Lambda
from .cache import CompilationCache, default_cache
from .numpy_backend import CompileError, compile_program
from .plan import (
    ExecutionPlan,
    PlanCache,
    iterate_generic,
    iterate_state_generic,
)


@runtime_checkable
class Backend(Protocol):
    """Anything that can execute a closed Lift program on concrete data."""

    name: str

    def run(
        self,
        program: Lambda,
        inputs: Sequence,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Execute ``program`` on ``inputs`` and return the result as ndarray."""
        ...  # pragma: no cover - protocol stub


class InterpreterBackend:
    """The reference interpreter wrapped in the backend protocol."""

    name = "interpreter"

    def run(
        self,
        program: Lambda,
        inputs: Sequence,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        from ..runtime.interpreter import evaluate_program

        raw = evaluate_program(program, list(inputs), size_env)
        return np.asarray(raw, dtype=np.float64)


_DEFAULT_CACHE = object()  # sentinel: "use the process-wide default cache"


class NumpyBackend:
    """The compiled vectorized backend (with compilation caching).

    ``cache`` defaults to the process-wide cache; pass ``None`` to compile
    on every run.  When ``fallback`` is set (the default), programs the
    compiler cannot handle — e.g. ones containing first-class function
    values — are executed by the interpreter instead of failing, so
    exploratory code paths never lose coverage by switching backends.

    ``plans`` is the backend's :class:`~repro.backend.plan.PlanCache`:
    :meth:`plan` / :meth:`run_plan` / :meth:`iterate` execute through
    allocation-free execution plans (pooled buffers, ``out=`` tapes,
    double-buffered iteration) with bit-identical results to :meth:`run`.
    """

    name = "numpy"

    def __init__(
        self,
        cache=_DEFAULT_CACHE,
        fallback: bool = True,
        plans: Optional[PlanCache] = None,
    ) -> None:
        self.cache: Optional[CompilationCache] = (
            default_cache if cache is _DEFAULT_CACHE else cache
        )
        self.fallback = fallback
        self.plans = plans if plans is not None else PlanCache()

    def run(
        self,
        program: Lambda,
        inputs: Sequence,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        try:
            if self.cache is not None:
                kernel = self.cache.get_or_compile(program, inputs, size_env)
            else:
                kernel = compile_program(program, size_env)
        except CompileError:
            if not self.fallback:
                raise
            return InterpreterBackend().run(program, inputs, size_env)
        result = kernel(inputs)
        return np.asarray(result, dtype=np.float64)

    def run_batched(
        self,
        program: Lambda,
        stacked_inputs: Sequence,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """Execute a batch of requests stacked along a leading axis.

        Each element of ``stacked_inputs`` is ``np.stack`` of one input
        across the batch.  The kernel is resolved through the compilation
        cache under the *per-item* signature (the batch axis stripped), so a
        program served both one-at-a-time and in batches of any size compiles
        exactly once.  Returns an array whose leading axis indexes requests;
        slices are bit-identical to single-request execution.
        """
        arrays = [np.asarray(value, dtype=np.float64) for value in stacked_inputs]
        signature = tuple(
            (array.shape[1:], str(array.dtype)) for array in arrays
        )
        if self.cache is not None:
            kernel = self.cache.get_or_compile_keyed(program, signature, size_env)
        else:
            kernel = compile_program(program, size_env)
        return np.asarray(kernel.run_batched(arrays), dtype=np.float64)

    # -- execution plans (the allocation-free steady path) -------------------
    def plan(
        self,
        program: Lambda,
        inputs_or_signature,
        size_env: Optional[Mapping[str, int]] = None,
        batched: bool = False,
        tile_shape=None,
        parallel_workers=None,
    ) -> ExecutionPlan:
        """The cached execution plan for this program + input shapes.

        The plan's staged kernel is resolved through this backend's
        compilation cache under the *per-item* ``float64`` signature — the
        same key the generic path uses — so a program served generically,
        through plans, and in batches still compiles exactly once.
        ``tile_shape`` selects the tape optimizer's tile (``None`` = auto
        heuristic, ``False`` = unfused, tuple = explicit trailing-axis
        blocking); ``parallel_workers`` selects N-way chunked replay of
        fused regions (``None``/``1`` = serial).  Distinct tile shapes and
        worker counts cache distinct plans.
        """
        kernel_resolver = None
        if self.cache is not None:
            from .plan import plan_signature

            shapes = plan_signature(inputs_or_signature)
            if batched:
                shapes = tuple(shape[1:] for shape in shapes)
            signature = tuple((shape, "float64") for shape in shapes)
            kernel_resolver = lambda: self.cache.get_or_compile_keyed(  # noqa: E731
                program, signature, size_env
            )
        return self.plans.get_or_compile(
            program, inputs_or_signature, size_env, batched=batched,
            kernel_resolver=kernel_resolver, tile_shape=tile_shape,
            parallel_workers=parallel_workers,
        )

    def run_plan(
        self,
        program: Lambda,
        inputs: Sequence,
        size_env: Optional[Mapping[str, int]] = None,
        tile_shape=None,
        parallel_workers=None,
    ) -> np.ndarray:
        """Like :meth:`run`, through the plan path (bit-identical results).

        Programs a plan cannot capture — no compiled kernel, or a
        run-varying scalar in the dataflow (:class:`PlanCaptureError`) —
        are served by the generic :meth:`run` path instead, so callers can
        route everything through plans without losing coverage.
        """
        try:
            return self.plan(program, inputs, size_env,
                             tile_shape=tile_shape,
                             parallel_workers=parallel_workers).run(inputs)
        except CompileError:
            return self.run(program, inputs, size_env)

    def iterate(
        self,
        program: Lambda,
        inputs: Sequence,
        steps: int,
        carry=None,
        size_env: Optional[Mapping[str, int]] = None,
        tile_shape=None,
        parallel_workers=None,
    ) -> np.ndarray:
        """Run ``steps`` timesteps through the double-buffered plan loop.

        Bit-identical to :func:`~repro.backend.plan.iterate_generic` driving
        :meth:`run` once per step with the same ``carry`` specification.
        Falls back to that per-sweep loop for programs a plan cannot capture.
        """
        try:
            return self.plan(program, inputs, size_env,
                             tile_shape=tile_shape,
                             parallel_workers=parallel_workers).iterate(
                inputs, steps, carry=carry
            )
        except CompileError:
            return iterate_generic(self, program, inputs, steps,
                                   carry=carry, size_env=size_env)

    def iterate_state(
        self,
        program: Lambda,
        inputs: Sequence,
        steps: int,
        carry=None,
        size_env: Optional[Mapping[str, int]] = None,
        tile_shape=None,
        parallel_workers=None,
    ):
        """Like :meth:`iterate`, returning ``(out, state)`` for resumption.

        ``state`` is the full input binding for the next timestep (the
        post-rebind carry buffers, copied out of the plan's pools).
        Feeding it back as ``inputs`` continues the trajectory bit for
        bit — the segmented-execution primitive behind durable jobs.
        Falls back to the generic per-sweep loop for programs a plan
        cannot capture.
        """
        try:
            return self.plan(program, inputs, size_env,
                             tile_shape=tile_shape,
                             parallel_workers=parallel_workers).iterate_state(
                inputs, steps, carry=carry
            )
        except CompileError:
            return iterate_state_generic(self, program, inputs, steps,
                                         carry=carry, size_env=size_env)

    def iterate_generic(
        self,
        program: Lambda,
        inputs: Sequence,
        steps: int,
        carry=None,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        """The per-sweep baseline loop (one generic ``run`` per timestep)."""
        return iterate_generic(self, program, inputs, steps,
                               carry=carry, size_env=size_env)


class BackendMismatch(AssertionError):
    """The compiled backend disagreed with the interpreter oracle."""


class CrossCheckBackend:
    """Runs the primary backend and verifies it against an oracle.

    This is the belt-and-braces mode for experiments: results come from the
    fast compiled path but every execution is validated against the
    reference interpreter (within ``rtol``/``atol``).
    """

    name = "crosscheck"

    def __init__(
        self,
        primary: Optional[Backend] = None,
        oracle: Optional[Backend] = None,
        rtol: float = 1e-6,
        atol: float = 0.0,
    ) -> None:
        self.primary = primary if primary is not None else NumpyBackend()
        self.oracle = oracle if oracle is not None else InterpreterBackend()
        self.rtol = rtol
        self.atol = atol

    def run(
        self,
        program: Lambda,
        inputs: Sequence,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> np.ndarray:
        result = self.primary.run(program, inputs, size_env)
        expected = self.oracle.run(program, inputs, size_env)
        if result.shape != expected.shape or not np.allclose(
            result, expected, rtol=self.rtol, atol=self.atol
        ):
            raise BackendMismatch(
                f"backend {self.primary.name!r} disagrees with "
                f"{self.oracle.name!r}: max abs error "
                f"{np.max(np.abs(np.asarray(result) - expected)) if result.shape == expected.shape else 'shape mismatch'}"
            )
        return result


#: Environment variable selecting the default backend for the process.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_BACKENDS = {
    "interpreter": InterpreterBackend,
    "numpy": NumpyBackend,
    "crosscheck": CrossCheckBackend,
}


def default_backend_name() -> str:
    return os.environ.get(BACKEND_ENV_VAR, "numpy")


def get_backend(which: Union[str, Backend, None] = None) -> Backend:
    """Resolve a backend instance from a name, an instance, or the default."""
    if which is None:
        which = default_backend_name()
    if isinstance(which, str):
        try:
            return _BACKENDS[which]()
        except KeyError:
            raise ValueError(
                f"unknown backend {which!r}; known: {sorted(_BACKENDS)}"
            ) from None
    if isinstance(which, Backend):
        return which
    raise TypeError(f"cannot interpret {which!r} as a backend")


def run_program(
    program: Lambda,
    inputs: Sequence,
    size_env: Optional[Mapping[str, int]] = None,
    backend: Union[str, Backend, None] = None,
) -> np.ndarray:
    """Execute a program with the selected (or default) backend."""
    return get_backend(backend).run(program, inputs, size_env)


__all__ = [
    "Backend",
    "BackendMismatch",
    "BACKEND_ENV_VAR",
    "CrossCheckBackend",
    "InterpreterBackend",
    "NumpyBackend",
    "default_backend_name",
    "get_backend",
    "run_program",
]
