"""The compilation cache: expression hash + input signature → compiled kernel.

Exploration, tuning and the benchmark harness execute the *same* handful of
Lift expressions thousands of times on identically-shaped inputs.  Compiling
(staging the closure tree, concretising sizes, building pad index tables) is
cheap but not free, so compiled kernels are memoised here.

The key combines

* the :func:`~repro.core.ir.structural_key` of the program (alpha-equivalent
  programs share one entry),
* the input signature — per input, its shape and dtype,
* the concrete size environment the kernel was compiled against.

Multiprocessing contract
------------------------

Compiled kernels close over Python functions (the staged NumPy closures and
the user-function callables embedded in the IR), so they are **not
picklable** and are never shipped across process boundaries.  The parallel
search engine (:mod:`repro.engine`) instead sends *job specs* (benchmark
key + strategy + configuration) to its workers, and each worker process
**re-compiles** the kernels it needs into its own process-local cache — the
fork start method makes the first compile cheap and every subsequent
evaluation of the same variant a cache hit inside that worker.

To keep objects that *hold* a cache (e.g. a configured
:class:`~repro.backend.base.NumpyBackend`) picklable, pickling a
:class:`CompilationCache` intentionally drops its contents and lock: the
unpickled copy is an *empty* cache with zeroed statistics that re-compiles
on first use.  This is the "re-compile per worker" side of the
picklable-vs-recompile trade-off, chosen because kernels re-compile in
milliseconds while pickling closure trees is impossible in general.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.ir import Lambda, structural_key
from .numpy_backend import CompiledKernel, compile_program


def input_signature(inputs: Sequence) -> Tuple:
    """A hashable (shape, dtype) signature of concrete input data."""
    signature = []
    for value in inputs:
        array = value if isinstance(value, np.ndarray) else np.asarray(value)
        signature.append((array.shape, str(array.dtype)))
    return tuple(signature)


class CompilationCache:
    """A thread-safe LRU memo table of compiled kernels with statistics.

    Eviction is *recency* based: a hit moves the entry to the back of the
    queue, so under pressure the least-recently-used kernel is dropped and a
    hot kernel survives arbitrarily many insertions of cold ones.  Evictions
    are counted and reported by :meth:`stats` alongside hits and misses.

    Thread-safety contract: every read *and* write of the entry table and
    the counters happens under one lock — the execution service fans sweeps
    out to executor threads that hit this cache concurrently, so an
    unlocked fast path (even a "harmless" ``len`` or a hit-count bump)
    would race with the LRU's pop-and-reinsert.  Compilation itself runs
    outside the lock; when two threads miss on the same key simultaneously
    both compile, and the second insert discards its kernel in favour of
    the first — wasted work, never an inconsistent table.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: Dict[Tuple, CompiledKernel] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(
        self,
        program: Lambda,
        signature: Tuple,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> Tuple:
        sizes = tuple(sorted((size_env or {}).items()))
        return (structural_key(program), signature, sizes)

    def get_or_compile(
        self,
        program: Lambda,
        inputs: Sequence,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> CompiledKernel:
        return self.get_or_compile_keyed(
            program, input_signature(inputs), size_env
        )

    def get_or_compile_keyed(
        self,
        program: Lambda,
        signature: Tuple,
        size_env: Optional[Mapping[str, int]] = None,
    ) -> CompiledKernel:
        """Like :meth:`get_or_compile` with a caller-supplied signature.

        The execution service batches requests by stacking their inputs
        along a new leading axis; the kernel it needs is the *same* one a
        single request compiles (kernels are not shape-specialised), so the
        service keys the lookup by the per-item signature and any batch size
        shares the one cached kernel — one compilation for a hot program no
        matter how traffic is batched.
        """
        key = self.key_for(program, signature, size_env)
        with self._lock:
            kernel = self._entries.get(key)
            if kernel is not None:
                self.hits += 1
                # LRU: refresh recency by re-inserting at the back.
                self._entries.pop(key)
                self._entries[key] = kernel
                return kernel
            self.misses += 1
        kernel = compile_program(program, size_env)
        with self._lock:
            if key not in self._entries:
                while len(self._entries) >= self.max_entries:
                    # Drop the least-recently-used entry (front of the dict).
                    self._entries.pop(next(iter(self._entries)))
                    self.evictions += 1
                self._entries[key] = kernel
            else:
                kernel = self._entries[key]
        return kernel

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # -- pickling (see the module docstring's multiprocessing contract) -----
    def __getstate__(self) -> Dict[str, int]:
        # Compiled kernels hold unpicklable closures and the lock is
        # process-local: a pickled cache deliberately carries neither.
        return {"max_entries": self.max_entries}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.__init__(max_entries=state.get("max_entries", 256))


#: The process-wide cache used by the default NumPy backend.
default_cache = CompilationCache()


# Live cache statistics as scrape-time gauges (no hot-path coupling).
from ..telemetry import registry as _telemetry  # noqa: E402

_telemetry.gauge(
    "repro_compilation_cache_hits",
    "Hits in the process-wide compilation cache.",
    fn=lambda: default_cache.hits,
)
_telemetry.gauge(
    "repro_compilation_cache_misses",
    "Misses (compilations) in the process-wide compilation cache.",
    fn=lambda: default_cache.misses,
)
_telemetry.gauge(
    "repro_compilation_cache_evictions",
    "LRU evictions from the process-wide compilation cache.",
    fn=lambda: default_cache.evictions,
)
_telemetry.gauge(
    "repro_compilation_cache_entries",
    "Kernels currently memoised in the process-wide compilation cache.",
    fn=lambda: len(default_cache),
)


__all__ = ["CompilationCache", "default_cache", "input_signature"]
