"""Allocation-free execution plans: pooled buffers + replayable tapes.

Compiling a program with :func:`compile_plan` executes it once under a
:class:`~repro.backend.numpy_backend.CaptureArena`, which pre-allocates
every run-varying array — padded halo buffers, user-function scratch, the
output — from a :class:`~repro.backend.pool.BufferPool` and records the
sequence of buffer writes as a *tape*.  Everything between those writes is
stride manipulation (views of the stable buffers), identical from sweep to
sweep, so the steady-state execution path is simply::

    refresh input buffers  →  replay the tape  →  read the output buffer

with **zero** array allocations and no closure-tree traversal, while
producing bit-identical results to the generic
:meth:`~repro.backend.base.NumpyBackend.run` path (every tape op performs
the same NumPy operation on the same values, threaded through ``out=``).

Iterative stencils (:meth:`ExecutionPlan.iterate`) run a double-buffered
ping-pong loop: the output buffer of step *t* is bound as the carried input
of step *t+1* by swapping buffer roles, not by copying — one tape is
captured per distinct buffer binding (a short prologue plus a ping-pong
cycle), after which every timestep is a pure replay.  The ``carry``
specification names, per program input, what feeds it on the next step:
``"out"`` (the previous output), an input index (that input's previous
value — e.g. the acoustic benchmark's two-timestep rotation), or ``None``
(a static grid such as Hotspot's power input).

Captured tapes are handed to the tape optimizer (:mod:`repro.backend.fuse`)
before their first replay: chains of elementwise traced-ufunc ops — halo
gathers included — are fused into regions replayed **tile by tile** over
cache-blocked output slices with per-tile pooled scratch, verified
bit-identical against the unfused tape at capture time and falling back to
it for anything the analyzer cannot prove safe.  The tile shape is a plan
parameter (``tile_shape``) the auto-tuner searches, and so is
``parallel_workers``: with ``N >= 2`` each fused region's tile grid is
chunked across a persistent worker-thread pool, every chunk replaying
against its own pooled scratch set (see
:class:`~repro.backend.fuse.ReplayWorkerPool`) — the capture-time
verification exercises that same parallel replay before trusting it.

Plans are shape-bound (buffers are sized at build time) and serialise their
own execution with a lock; :class:`PlanCache` memoises them per (program
structure, input shapes, size environment, batched, tile spec, workers)
the way the compilation cache memoises kernels.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import faults as _faults
from ..core.ir import Lambda, structural_key
from ..telemetry import registry as _telemetry
from ..telemetry.registry import metrics_enabled as _metrics_on
from .fuse import normalize_tile_spec, normalize_workers, optimize_tape
from .numpy_backend import (
    Batched,
    CaptureArena,
    CompiledKernel,
    ExecutionError,
    PlanCaptureError,
    TapeEntry,
    _align_leaf,
    compile_program,
)
from .pool import BufferPool

#: Per-input carry specification entries (see module docstring).
CarrySpec = Tuple[Union[str, int, None], ...]

# Process-wide instruments, summed over every plan in the process.  The
# replay pair sits on the steady serving path: both are guarded by
# ``_metrics_on()`` at the call site so disabled telemetry skips the clock
# reads entirely, and an enabled observation is bucket increments only —
# the zero-allocation replay invariants hold either way.
_CAPTURES_TOTAL = _telemetry.counter(
    "repro_plan_captures_total", "Tape captures (first execution of a binding)."
)
_CAPTURE_SECONDS = _telemetry.histogram(
    "repro_plan_capture_seconds", "Wall time of tape captures."
)
_REPLAYS_TOTAL = _telemetry.counter(
    "repro_plan_replays_total", "Steady-state tape replays."
)
_REPLAY_SECONDS = _telemetry.histogram(
    "repro_plan_replay_seconds", "Wall time of steady-state tape replays."
)
_FUSION_FALLBACKS_TOTAL = _telemetry.counter(
    "repro_plan_fusion_fallbacks_total",
    "Captured tapes kept unfused, by reason.", label="reason",
)
_FUSED_REGIONS_TOTAL = _telemetry.counter(
    "repro_plan_fused_regions_total",
    "Fused regions accepted after bit-exact verification.",
)


def normalize_carry(carry: Optional[Sequence], num_inputs: int) -> CarrySpec:
    """Validate a carry spec; default: the output feeds input 0, rest static."""
    if num_inputs < 1:
        raise ExecutionError("iteration needs at least one program input")
    if carry is None:
        return ("out",) + (None,) * (num_inputs - 1)
    spec = tuple(carry)
    if len(spec) != num_inputs:
        raise ExecutionError(
            f"carry spec has {len(spec)} entries for {num_inputs} inputs"
        )
    for entry in spec:
        if entry is None or entry == "out":
            continue
        if isinstance(entry, int) and 0 <= entry < num_inputs:
            continue
        raise ExecutionError(f"invalid carry entry {entry!r}")
    if "out" not in spec:
        raise ExecutionError("carry spec must feed the output back somewhere")
    return spec


def _rebind(state: List[np.ndarray], out: np.ndarray,
            carry: CarrySpec) -> List[np.ndarray]:
    return [
        out if entry == "out" else state[entry if isinstance(entry, int) else i]
        for i, entry in enumerate(carry)
    ]


# ---------------------------------------------------------------------------
# Output materialisation (mirrors _to_output / _to_output_batched exactly)
# ---------------------------------------------------------------------------

def _output_spec(value, batch: Optional[int]) -> Tuple[Tuple[int, ...], np.dtype]:
    """Shape and dtype of the assembled output for a raw result value."""
    if isinstance(value, tuple):
        specs = [_output_spec(component, batch) for component in value]
        return specs[0][0] + (len(value),), np.result_type(*[d for _, d in specs])
    if isinstance(value, Batched):
        if batch is None:
            if value.bd != 0:
                raise ExecutionError("result value still carries batch axes")
            return value.data.shape, value.data.dtype
        leaf = _align_leaf(value, 1)
        return (batch,) + leaf.data.shape[1:], leaf.data.dtype
    scalar = np.asarray(value, dtype=np.float64)
    shape = scalar.shape if batch is None else (batch,) + scalar.shape
    return shape, scalar.dtype


def _make_output_op(buffer: np.ndarray, value, batch: Optional[int]):
    """An allocation-free tape op copying the result value into ``buffer``.

    Destination views and source views are resolved once, here; the op body
    is a sequence of ``np.copyto`` calls.  Matches ``_to_output`` (tuples
    stack along a new last axis) and ``_to_output_batched`` (length-1 batch
    leaves broadcast to the full extent) bit for bit.  Returns the op plus
    the arrays it reads (the tape optimizer's interference facts).
    """
    pairs: List[Tuple[np.ndarray, object]] = []

    def collect(destination: np.ndarray, result) -> None:
        if isinstance(result, tuple):
            for index, component in enumerate(result):
                collect(destination[..., index], component)
            return
        if isinstance(result, Batched):
            if batch is None:
                if result.bd != 0:
                    raise ExecutionError("result value still carries batch axes")
                pairs.append((destination, result.data))
                return
            leaf = _align_leaf(result, 1)
            if leaf.data.shape[0] not in (1, batch):
                raise ExecutionError(
                    f"batched result has extent {leaf.data.shape[0]} on the "
                    f"batch axis, expected {batch}"
                )
            pairs.append((destination, leaf.data))
            return
        pairs.append((destination, float(result)))

    collect(buffer, value)

    def op() -> None:
        for destination, source in pairs:
            np.copyto(destination, source)

    reads = [source for _, source in pairs if isinstance(source, np.ndarray)]
    return op, reads


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bit-exact equality (NaN payloads included) of two dense arrays."""
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    return bool(np.array_equal(
        np.ascontiguousarray(a).view(np.uint8),
        np.ascontiguousarray(b).view(np.uint8),
    ))


class _Tape:
    """One captured buffer binding: ordered ops plus the output buffer."""

    __slots__ = ("ops", "out")

    def __init__(self, ops: List[Callable[[], None]], out: np.ndarray) -> None:
        self.ops = ops
        self.out = out

    def run(self) -> np.ndarray:
        for op in self.ops:
            op()
        return self.out


# ---------------------------------------------------------------------------
# The execution plan
# ---------------------------------------------------------------------------

def plan_signature(inputs_or_signature) -> Tuple[Tuple[int, ...], ...]:
    """Normalise inputs (or an input signature) to a tuple of shapes.

    Plans convert every input to ``float64`` on bind — exactly what the
    generic path's ``np.asarray(value, dtype=np.float64)`` does — so the
    input *dtype* does not shape-specialise a plan; only shapes do.
    """
    shapes = []
    for entry in inputs_or_signature:
        if isinstance(entry, tuple) and len(entry) == 2 \
                and isinstance(entry[0], tuple):
            shapes.append(tuple(int(extent) for extent in entry[0]))
        else:
            shapes.append(tuple(np.shape(entry)))
    return tuple(shapes)


class ExecutionPlan:
    """A program bound to pooled buffers with replayable execution tapes.

    Not shareable across threads concurrently — a plan serialises its own
    execution with an internal lock (buffers are reused between calls, so
    results must be consumed — or copied, the default — before the next
    call overwrites them).
    """

    def __init__(
        self,
        program: Lambda,
        inputs_or_signature,
        size_env: Optional[Mapping[str, int]] = None,
        pool: Optional[BufferPool] = None,
        batched: bool = False,
        kernel: Optional[CompiledKernel] = None,
        tile_shape=None,
        parallel_workers=None,
    ) -> None:
        self.program = program
        self.size_env = dict(size_env or {})
        self.batched = batched
        #: Tape-optimizer tile spec: ``None`` = cache-sized heuristic,
        #: ``False`` = unfused tapes, a tuple = explicit trailing-axis tile.
        self.tile_shape = normalize_tile_spec(tile_shape)
        #: Fused-region replay workers: 1 = serial (the default), ``N >= 2``
        #: chunks each region's tile grid across the process-wide
        #: :class:`~repro.backend.fuse.ReplayWorkerPool`.
        self.parallel_workers = normalize_workers(parallel_workers)
        self.input_shapes = plan_signature(inputs_or_signature)
        if not self.input_shapes:
            raise ExecutionError("a plan needs at least one input")
        if batched:
            extents = {shape[0] for shape in self.input_shapes if shape}
            if len(extents) != 1:
                raise ExecutionError(
                    f"inconsistent batch extents across inputs: {sorted(extents)}"
                )
            (self.batch,) = extents
        else:
            self.batch = None
        self._depth = 1 if batched else 0
        self._pool = pool if pool is not None else BufferPool()
        self._kernel = kernel if kernel is not None else compile_program(
            program, self.size_env
        )
        self._lock = threading.RLock()
        self._in_bufs = [
            self._pool.acquire(shape, np.float64) for shape in self.input_shapes
        ]
        for buffer in self._in_bufs:
            buffer.fill(1.0)  # benign values until the first bind
        self._buffers: List[np.ndarray] = list(self._in_bufs)
        self._tapes: Dict[Tuple, _Tape] = {}
        self._ring: List[np.ndarray] = []   # ping-pong output buffers
        self._out_shape: Optional[Tuple[int, ...]] = None
        self._out_dtype = None
        self.captures = 0
        self.replays = 0
        self.traced_calls = 0
        self.opaque_calls = 0
        self.fused_regions = 0
        self.fused_tiles = 0
        self.fused_schedules = 0
        self.fused_pads = 0
        self.fusion_fallbacks = 0

    # -- buffer management ---------------------------------------------------
    def _bind(self, inputs: Sequence) -> None:
        if len(inputs) != len(self._in_bufs):
            raise ExecutionError(
                f"plan expects {len(self._in_bufs)} inputs, got {len(inputs)}"
            )
        for buffer, value in zip(self._in_bufs, inputs):
            array = value if isinstance(value, np.ndarray) else np.asarray(value)
            if array.shape != buffer.shape:
                raise ExecutionError(
                    f"input shape {array.shape} does not match the plan's "
                    f"{buffer.shape}"
                )
            np.copyto(buffer, array)  # casts to float64, like the generic path

    def _pick_slot(self, state: Sequence[np.ndarray]) -> int:
        """The lowest-indexed output slot whose buffer is not being read.

        The choice is a pure function of the binding state, so re-running an
        iteration from the same starting state retraces the same (state,
        slot) keys and replays the already-captured tapes instead of
        capturing fresh ones.
        """
        state_ids = {id(buffer) for buffer in state}
        for index, buffer in enumerate(self._ring):
            if id(buffer) not in state_ids:
                return index
        return len(self._ring)

    def _slot_buffer(self, slot: int) -> np.ndarray:
        if slot == len(self._ring):
            buffer = self._pool.acquire(self._out_shape, self._out_dtype)
            self._ring.append(buffer)
            self._buffers.append(buffer)
        return self._ring[slot]

    # -- capture & replay ----------------------------------------------------
    def _capture(self, state: List[np.ndarray], slot: int) -> _Tape:
        arena = CaptureArena(self._pool)
        try:
            value = self._kernel.capture(state, self._depth, arena)
            if self._out_shape is None:
                self._out_shape, self._out_dtype = _output_spec(value,
                                                                self.batch)
        except Exception:
            # An aborted capture (e.g. PlanCaptureError on a data-dependent
            # scalar) must hand the arena's buffers straight back: they were
            # never adopted into this plan's buffer set, so without this
            # they would leak from the pool's accounting for good.
            self._pool.release_all(arena.buffers)
            raise
        out_buffer = self._slot_buffer(slot)
        self._buffers.extend(arena.buffers)
        self.captures += 1
        self.traced_calls += arena.traced_calls
        self.opaque_calls += arena.opaque_calls
        if (
            isinstance(value, Batched)
            and value.bd == 0
            and arena.schedules
            and value.data is arena.schedules[-1].out
            and arena.ops
            and arena.ops[-1] == arena.schedules[-1].run
            and value.data.shape == out_buffer.shape
            and value.data.dtype == out_buffer.dtype
        ):
            # The kernel's whole result is the last traced schedule's final
            # value: retarget that operation to write straight into the
            # output ring buffer and skip the materialisation copy pass.
            schedule = arena.schedules[-1]
            np.copyto(out_buffer, value.data)  # this sweep already computed
            schedule.retarget(out_buffer)
            ops = arena.ops[:-1] + [schedule.run]
            entries = list(arena.entries)
        else:
            final, final_reads = _make_output_op(out_buffer, value, self.batch)
            final()  # a capture is a real execution: materialise this sweep
            ops = arena.ops + [final]
            entries = arena.entries + [
                TapeEntry("output", final, reads=final_reads,
                          writes=[out_buffer])
            ]
        tape = _Tape(ops, out_buffer)
        if self.tile_shape is not False:
            tape = self._try_fuse(tape, entries, out_buffer)
        return tape

    def _try_fuse(self, tape: _Tape, entries: List[TapeEntry],
                  out_buffer: np.ndarray) -> _Tape:
        """Fuse + tile the captured tape; verified, with unfused fallback.

        The fused tape replays the identical operation sequence tile by
        tile, so it must reproduce the unfused replay bit for bit — which
        is checked right here, against the output the capture just
        computed, before the fused tape is ever trusted with a result.
        """
        try:
            optimized = optimize_tape(entries, out_buffer, self.tile_shape,
                                      self._pool,
                                      workers=self.parallel_workers)
        except Exception:  # noqa: BLE001 - fusion must never break execution
            self.fusion_fallbacks += 1
            _FUSION_FALLBACKS_TOTAL.inc(label="analysis")
            return tape
        if optimized is None:
            return tape
        ops, scratch, info = optimized
        snapshot = out_buffer.copy()
        fused = _Tape(ops, out_buffer)
        try:
            fused.run()
            accepted = _bits_equal(snapshot, out_buffer)
        except Exception:  # noqa: BLE001 - reject, restore, fall back
            accepted = False
        if not accepted:
            self._pool.release_all(scratch)
            self.fusion_fallbacks += 1
            _FUSION_FALLBACKS_TOTAL.inc(label="verification")
            tape.run()  # restore every buffer from the trusted unfused ops
            return tape
        self._buffers.extend(scratch)
        _FUSED_REGIONS_TOTAL.inc(info.regions)
        self.fused_regions += info.regions
        self.fused_tiles += info.tiles
        self.fused_schedules += info.fused_schedules
        self.fused_pads += info.fused_pads
        return fused

    def _step(self, state: List[np.ndarray], slot: int) -> np.ndarray:
        key = (tuple(id(buffer) for buffer in state), slot)
        tape = self._tapes.get(key)
        if tape is None:
            if _metrics_on():
                started = perf_counter()
                tape = self._capture(state, slot)
                _CAPTURE_SECONDS.observe(perf_counter() - started)
                _CAPTURES_TOTAL.inc()
            else:
                tape = self._capture(state, slot)
            self._tapes[key] = tape
        elif _metrics_on():
            started = perf_counter()
            tape.run()
            _REPLAY_SECONDS.observe(perf_counter() - started)
            _REPLAYS_TOTAL.inc()
            self.replays += 1
        else:
            tape.run()
            self.replays += 1
        return tape.out

    @staticmethod
    def _result(out: np.ndarray, copy: bool) -> np.ndarray:
        if copy:
            return out.copy()
        view = out.view()
        view.flags.writeable = False
        return view

    # -- execution -----------------------------------------------------------
    def run(self, inputs: Sequence, copy: bool = True) -> np.ndarray:
        """One sweep.  ``copy=False`` returns a read-only view of the output
        buffer, valid until the next call on this plan."""
        with self._lock:
            self._bind(inputs)
            state = list(self._in_bufs)
            out = self._step(state, self._pick_slot(state))
            return self._result(out, copy)

    def iterate(self, inputs: Sequence, steps: int,
                carry: Optional[Sequence] = None,
                copy: bool = True) -> np.ndarray:
        """Run ``steps`` timesteps with double-buffered output ping-pong.

        Equivalent — bit for bit — to calling the generic ``run`` path once
        per step and re-binding inputs per ``carry``; after the first few
        steps capture the binding cycle, every further step is a pure tape
        replay with zero allocations.
        """
        if self.batched:
            raise ExecutionError("iterate is not supported on batched plans")
        if steps < 1:
            raise ExecutionError("iterate needs steps >= 1")
        spec = normalize_carry(carry, len(self._in_bufs))
        with self._lock:
            self._bind(inputs)
            state = list(self._in_bufs)
            out: Optional[np.ndarray] = None
            for _ in range(steps):
                out = self._step(state, self._pick_slot(state))
                state = _rebind(state, out, spec)
            return self._result(out, copy)

    def iterate_state(
        self, inputs: Sequence, steps: int,
        carry: Optional[Sequence] = None,
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Like :meth:`iterate`, but also return the post-rebind carry state.

        Returns ``(out, state)`` where ``out`` is a copy of the final
        step's output and ``state`` is a copy of the full input binding
        for the *next* step (the state after the final carry rebind).
        Feeding ``state`` back as ``inputs`` of a further
        ``iterate_state``/``iterate`` call continues the trajectory bit
        for bit: ``_bind`` copies the values into the same pooled input
        buffers a fresh trajectory would use, and every step is the same
        deterministic elementwise tape, so

            iterate(x, a + b)  ==  iterate(iterate_state(x, a).state, b)

        exactly.  This is the primitive the durable-jobs layer
        (:mod:`repro.service.jobs`) checkpoints between segments.
        """
        if self.batched:
            raise ExecutionError("iterate is not supported on batched plans")
        if steps < 1:
            raise ExecutionError("iterate needs steps >= 1")
        spec = normalize_carry(carry, len(self._in_bufs))
        with self._lock:
            self._bind(inputs)
            state = list(self._in_bufs)
            out: Optional[np.ndarray] = None
            for _ in range(steps):
                out = self._step(state, self._pick_slot(state))
                state = _rebind(state, out, spec)
            assert out is not None
            return out.copy(), [buffer.copy() for buffer in state]

    def run_batched(self, stacked_inputs: Sequence,
                    copy: bool = True) -> np.ndarray:
        """One stacked sweep over the leading request-batch axis."""
        if not self.batched:
            raise ExecutionError("this plan was not compiled for batching")
        return self.run(stacked_inputs, copy=copy)

    def run_batched_parts(self, parts: Sequence[Sequence],
                          copy: bool = True) -> np.ndarray:
        """Batched sweep fed from per-request input lists.

        Each request's grids are copied directly into its slice of the
        plan's one pooled stacked buffer set — no intermediate ``np.stack``
        allocation on the serving path.
        """
        if not self.batched:
            raise ExecutionError("this plan was not compiled for batching")
        if len(parts) != self.batch:
            raise ExecutionError(
                f"plan is sized for batches of {self.batch}, got {len(parts)}"
            )
        with self._lock:
            for index, item_inputs in enumerate(parts):
                if len(item_inputs) != len(self._in_bufs):
                    raise ExecutionError(
                        f"request {index} carries {len(item_inputs)} inputs, "
                        f"plan expects {len(self._in_bufs)}"
                    )
                for buffer, value in zip(self._in_bufs, item_inputs):
                    array = value if isinstance(value, np.ndarray) \
                        else np.asarray(value)
                    if array.shape != buffer.shape[1:]:
                        raise ExecutionError(
                            f"input shape {array.shape} does not match the "
                            f"plan's per-item {buffer.shape[1:]}"
                        )
                    np.copyto(buffer[index], array)
            state = list(self._in_bufs)
            out = self._step(state, self._pick_slot(state))
            return self._result(out, copy)

    # -- accounting ----------------------------------------------------------
    @property
    def steady(self) -> bool:
        """True once at least one binding replays from tape."""
        return self.replays > 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "tapes": len(self._tapes),
                "captures": self.captures,
                "replays": self.replays,
                "traced_userfun_calls": self.traced_calls,
                "opaque_userfun_calls": self.opaque_calls,
                "buffers": len(self._buffers),
                "buffer_bytes": sum(b.nbytes for b in self._buffers),
                "fused_regions": self.fused_regions,
                "fused_tiles": self.fused_tiles,
                "fused_schedules": self.fused_schedules,
                "fused_pads": self.fused_pads,
                "fusion_fallbacks": self.fusion_fallbacks,
                "tile_shape": self.tile_shape,
                "parallel_workers": self.parallel_workers,
            }

    def release(self) -> None:
        """Return every pooled buffer.  The plan must not be used afterwards."""
        with self._lock:
            self._pool.release_all(self._buffers)
            self._buffers = []
            self._tapes = {}
            self._ring = []
            self._in_bufs = []


def compile_plan(
    program: Lambda,
    inputs_or_signature,
    size_env: Optional[Mapping[str, int]] = None,
    pool: Optional[BufferPool] = None,
    batched: bool = False,
    kernel: Optional[CompiledKernel] = None,
    tile_shape=None,
    parallel_workers=None,
) -> ExecutionPlan:
    """Compile a program into an execution plan (no caching)."""
    return ExecutionPlan(program, inputs_or_signature, size_env,
                         pool=pool, batched=batched, kernel=kernel,
                         tile_shape=tile_shape,
                         parallel_workers=parallel_workers)


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------

class PlanCache:
    """A thread-safe LRU of execution plans, keyed like the kernel cache.

    **Key composition** (see :meth:`key_for`) — six components, each
    canonicalised before keying so spellings that mean the same plan hit
    the same entry:

    1. the program's *structural key* (:func:`~repro.core.ir.structural_key`
       — alpha-renamed IR structure, so two builds of the same expression
       share plans);
    2. the input **shapes** (not dtypes — plans bind-convert every input to
       ``float64``, exactly like the generic path);
    3. the size environment, sorted into a tuple of items;
    4. whether the plan sweeps a leading batch axis (``batched``);
    5. the tape-optimizer tile spec, canonicalised through
       :func:`~repro.backend.fuse.normalize_tile_spec` (``"auto"`` and
       ``None`` coincide; distinct tile shapes are distinct plans — how the
       tuner searches tile sizes over warm fused replays);
    6. the ``parallel_workers`` count, canonicalised through
       :func:`~repro.backend.fuse.normalize_workers` (``None``/``0``/``1``
       all key the serial plan; each worker count owns its scratch layout,
       so N-way plans are separate entries).

    Evicted plans are simply dropped: their buffers may still be
    mid-execution on another thread, so they are left to the garbage
    collector rather than returned to a pool.
    """

    def __init__(self, max_entries: int = 64) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: Dict[Tuple, ExecutionPlan] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(self, program: Lambda, inputs_or_signature,
                size_env: Optional[Mapping[str, int]] = None,
                batched: bool = False, tile_shape=None,
                parallel_workers=None) -> Tuple:
        sizes = tuple(sorted((size_env or {}).items()))
        return (structural_key(program), plan_signature(inputs_or_signature),
                sizes, batched, normalize_tile_spec(tile_shape),
                normalize_workers(parallel_workers))

    def get_or_compile(
        self,
        program: Lambda,
        inputs_or_signature,
        size_env: Optional[Mapping[str, int]] = None,
        batched: bool = False,
        kernel_resolver=None,
        tile_shape=None,
        parallel_workers=None,
    ) -> ExecutionPlan:
        """The cached plan for this key; ``kernel_resolver`` (a zero-argument
        callable returning a :class:`CompiledKernel`) lets the backend route
        the plan's kernel through its compilation cache so kernels stay
        shared — and counted — across the generic and plan paths."""
        key = self.key_for(program, inputs_or_signature, size_env, batched,
                           tile_shape, parallel_workers)
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self.hits += 1
                self._entries.pop(key)
                self._entries[key] = plan  # LRU: refresh recency
                return plan
            self.misses += 1
        if _faults.ARMED and _faults.should_fail("plan.capture_fail"):
            # A CompileError here exercises the same fallback the service
            # takes for genuinely uncapturable programs: the group is
            # served on the generic compiled path (and the digest breaker
            # accumulates the failure).
            raise PlanCaptureError("fault injected: plan.capture_fail")
        kernel = kernel_resolver() if kernel_resolver is not None else None
        plan = compile_plan(program, inputs_or_signature, size_env,
                            batched=batched, kernel=kernel,
                            tile_shape=tile_shape,
                            parallel_workers=parallel_workers)
        with self._lock:
            if key not in self._entries:
                while len(self._entries) >= self.max_entries:
                    self._entries.pop(next(iter(self._entries)))
                    self.evictions += 1
                self._entries[key] = plan
            else:
                plan = self._entries[key]
        return plan

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # -- pickling (same contract as the compilation cache) -------------------
    def __getstate__(self) -> Dict[str, int]:
        # Plans close over compiled kernels and live buffers — neither is
        # picklable nor meaningful in another process.  A pickled cache
        # carries only its size limit and rebuilds plans on first use.
        return {"max_entries": self.max_entries}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.__init__(max_entries=state.get("max_entries", 64))


def time_steady(plan: ExecutionPlan, inputs: Sequence, runs: int = 3) -> float:
    """Best-of-``runs`` wall-clock of one warm steady-state sweep.

    Warms the plan first (capture + one replay) so the measurement reflects
    the tape-replay serving path, not first-call compilation or buffer
    allocation.  The shared protocol of the engine's measured scorer and
    the tuner's ``measure_best`` hook.
    """
    import time

    plan.run(inputs)  # warm-up: capture the tape, populate buffers
    plan.run(inputs)  # first replay (steady state from here on)
    best = float("inf")
    for _ in range(max(1, runs)):
        started = time.perf_counter()
        plan.run(inputs, copy=False)
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# The per-sweep generic baseline (what plans are measured against)
# ---------------------------------------------------------------------------

def iterate_generic(
    backend,
    program: Lambda,
    inputs: Sequence,
    steps: int,
    carry: Optional[Sequence] = None,
    size_env: Optional[Mapping[str, int]] = None,
) -> np.ndarray:
    """Drive an iterative stencil through the generic per-sweep ``run`` path.

    This is the pre-plan steady-state loop — one full ``backend.run`` (cache
    lookup, closure traversal, fresh temporaries) per timestep — kept as the
    reference implementation plans are verified against bit for bit, and as
    the baseline ``repro bench-plans`` compares them to.
    """
    if steps < 1:
        raise ExecutionError("iterate needs steps >= 1")
    state = [np.asarray(value, dtype=np.float64) for value in inputs]
    spec = normalize_carry(carry, len(state))
    out: Optional[np.ndarray] = None
    for _ in range(steps):
        out = np.asarray(backend.run(program, state, size_env),
                         dtype=np.float64)
        state = _rebind(state, out, spec)
    return out


def iterate_state_generic(
    backend,
    program: Lambda,
    inputs: Sequence,
    steps: int,
    carry: Optional[Sequence] = None,
    size_env: Optional[Mapping[str, int]] = None,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """:func:`iterate_generic` that also returns the post-rebind state.

    The generic counterpart of :meth:`ExecutionPlan.iterate_state` — the
    fallback the durable-jobs layer uses for programs a plan cannot
    capture.  Resuming from the returned ``state`` continues the
    trajectory bit for bit.
    """
    if steps < 1:
        raise ExecutionError("iterate needs steps >= 1")
    state = [np.asarray(value, dtype=np.float64) for value in inputs]
    spec = normalize_carry(carry, len(state))
    out: Optional[np.ndarray] = None
    for _ in range(steps):
        out = np.asarray(backend.run(program, state, size_env),
                         dtype=np.float64)
        state = _rebind(state, out, spec)
    assert out is not None
    return out.copy(), [np.array(buffer, copy=True) for buffer in state]


__all__ = [
    "CarrySpec",
    "ExecutionPlan",
    "PlanCache",
    "compile_plan",
    "iterate_generic",
    "iterate_state_generic",
    "normalize_carry",
    "plan_signature",
]
