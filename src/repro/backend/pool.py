"""The sized buffer pool backing allocation-free execution plans.

An :class:`~repro.backend.plan.ExecutionPlan` pre-allocates every array the
steady-state execution loop writes — padded halo buffers, user-function
scratch, ping-pong output buffers — from one :class:`BufferPool`.  The pool
is an accounting and reuse layer over ``np.empty``:

* ``acquire`` hands out a buffer of the requested shape/dtype, reusing a
  previously released one when an exact match is free;
* ``release`` returns buffers to the free lists (plans release their whole
  buffer set when they are evicted from the plan cache);
* ``stats`` reports how many buffers and bytes are live, how many fresh
  allocations happened, and how many acquisitions were served for free —
  the numbers the zero-allocation tests and ``repro bench-plans`` assert on.

The pool is thread-safe; buffers themselves are owned by exactly one plan
at a time (plans serialise their own execution with a per-plan lock).
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Tuple

import numpy as np

from .. import faults as _faults
from ..telemetry import registry as _telemetry

_Key = Tuple[Tuple[int, ...], str]

#: Every live pool, so the process-wide telemetry gauges can sum over them.
#: Weak references: a pool dropped with its backend must not be pinned (or
#: double-counted) by observability plumbing.
_POOLS: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()


def _sum_over_pools(attribute: str) -> int:
    return sum(getattr(pool, attribute, 0) for pool in list(_POOLS))


class BufferPool:
    """A pool of reusable ndarray buffers keyed by (shape, dtype).

    **Thread safety.**  Every counter update and free-list mutation happens
    under one internal lock, so plans on different service executor threads
    (and the parallel replay workers underneath them) may acquire/release
    concurrently.  The lock covers the *pool's* bookkeeping only: a buffer
    handed out by ``acquire`` is owned by exactly one plan until released,
    and each parallel replay chunk gets its own scratch set, so buffer
    *contents* never need pool-level synchronisation.

    **Release on abort.**  Acquirers are responsible for returning buffers
    on every exit path, including failures: the plan capture arena releases
    everything it acquired when a capture aborts mid-trace
    (:class:`~repro.backend.numpy_backend.PlanCaptureError`), and the tape
    optimizer releases a region's scratch when fusion falls back — which is
    why the pool-hygiene tests can assert ``live_buffers`` returns to
    baseline after repeated aborts instead of growing each time.  The pool
    itself never reclaims: a buffer neither released nor referenced is a
    leak the ``stats()`` counters are designed to expose.
    """

    def __init__(self) -> None:
        self._free: Dict[_Key, List[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.allocations = 0
        self.reuses = 0
        self.live_buffers = 0
        self.live_bytes = 0
        self.high_water_bytes = 0
        _POOLS.add(self)

    @staticmethod
    def _key(shape: Tuple[int, ...], dtype) -> _Key:
        return (tuple(int(extent) for extent in shape), str(np.dtype(dtype)))

    def acquire(self, shape, dtype=np.float64) -> np.ndarray:
        """A writable buffer of exactly this shape and dtype."""
        if _faults.ARMED and _faults.should_fail("pool.alloc_fail"):
            raise MemoryError("fault injected: pool.alloc_fail")
        key = self._key(tuple(shape), dtype)
        with self._lock:
            free = self._free.get(key)
            if free:
                buffer = free.pop()
                self.reuses += 1
            else:
                buffer = np.empty(key[0], dtype=np.dtype(key[1]))
                self.allocations += 1
            self.live_buffers += 1
            self.live_bytes += buffer.nbytes
            if self.live_bytes > self.high_water_bytes:
                self.high_water_bytes = self.live_bytes
        return buffer

    def release(self, buffer: np.ndarray) -> None:
        """Return a buffer to the pool for reuse."""
        key = self._key(buffer.shape, buffer.dtype)
        with self._lock:
            self._free.setdefault(key, []).append(buffer)
            self.live_buffers -= 1
            self.live_bytes -= buffer.nbytes

    def release_all(self, buffers) -> None:
        for buffer in buffers:
            self.release(buffer)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            free_buffers = sum(len(v) for v in self._free.values())
            free_bytes = sum(b.nbytes for v in self._free.values() for b in v)
            return {
                "allocations": self.allocations,
                "reuses": self.reuses,
                "live_buffers": self.live_buffers,
                "live_bytes": self.live_bytes,
                "high_water_bytes": self.high_water_bytes,
                "free_buffers": free_buffers,
                "free_bytes": free_bytes,
            }


# Sampled at scrape time only — pool hot paths never touch telemetry.
_telemetry.gauge(
    "repro_pool_live_bytes",
    "Bytes currently checked out of all buffer pools.",
    fn=lambda: _sum_over_pools("live_bytes"),
)
_telemetry.gauge(
    "repro_pool_high_water_bytes",
    "Peak bytes simultaneously checked out, summed over pools.",
    fn=lambda: _sum_over_pools("high_water_bytes"),
)
_telemetry.gauge(
    "repro_pool_allocations",
    "Fresh np.empty allocations performed by all buffer pools.",
    fn=lambda: _sum_over_pools("allocations"),
)
_telemetry.gauge(
    "repro_pool_reuses",
    "Acquisitions served from pool free lists.",
    fn=lambda: _sum_over_pools("reuses"),
)


__all__ = ["BufferPool"]
