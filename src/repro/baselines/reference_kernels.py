"""Structural models of the hand-written reference kernels (Figure 7).

The paper compares Lift-generated kernels against hand-written OpenCL
implementations collected from SHOC (Stencil2D), Rodinia (SRAD, Hotspot) and
an HPC acoustics code.  We cannot ship those kernels here, so each one is
modelled by the structural choices it makes — work-group shape, whether it
stages data in local memory, how much redundant work its halo scheme performs,
and how well its access pattern coalesces — which are exactly the features the
virtual device's timing model consumes.

Key structural facts encoded below (and the paper observations they produce):

* The SHOC and Rodinia kernels use fixed 16×16 work-groups and local-memory
  tiling tuned for Nvidia hardware.
* The Rodinia ``hotspot`` kernel uses the "pyramid" expansion scheme: every
  work-group loads an enlarged halo and recomputes border elements, and its
  strided column accesses interact badly with AMD's 64-wide wavefronts and the
  Mali's emulated local memory.  This is the structural reason the paper's
  Figure 7 shows the hand-written Hotspot2D clearly under-performing on AMD
  (Lift ≈ 15× faster) and ARM (≈ 2×) while being competitive on Nvidia.
* The SRAD kernels operate on a small 504×458 grid; no structural trick can
  hide the launch overhead on the big discrete GPUs, which is why both Lift
  and the references under-perform there (paper §7.1).
* The acoustic kernel is a straightforward one-thread-per-element 3D kernel
  (written by HPC physicists), so it behaves much like Lift's untiled variant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..runtime.simulator.device import DeviceModel
from ..runtime.simulator.kernel_model import KernelProfile, ProblemInstance


@dataclass(frozen=True)
class ReferenceKernelSpec:
    """Structural description of one hand-written kernel."""

    name: str
    workgroup: tuple
    uses_local_memory: bool
    tile_halo: int                   # halo cells added around the work-group tile
    redundant_compute_factor: float  # extra arithmetic from halo recomputation
    nvidia_specific: bool = False    # strided/banked accesses tuned for 32-wide warps
    work_per_thread: int = 1

    def coalescing_on(self, device: DeviceModel) -> float:
        """Effective coalescing of the kernel's global accesses on a device.

        Kernels written against Nvidia's 32-wide warps and 128-byte
        transactions keep full efficiency there; on GCN's 64-wide wavefronts
        their partially-strided accesses waste most of each memory
        transaction, and on Mali the small read granularity keeps the damage
        moderate.
        """
        if not self.nvidia_specific:
            return 1.0
        if device.vendor == "Nvidia":
            return 1.0
        if device.vendor == "AMD":
            return 0.12
        return 0.55


#: The six benchmarks of Figure 7 and the structure of their reference kernels.
REFERENCE_KERNELS: Dict[str, ReferenceKernelSpec] = {
    "stencil2d": ReferenceKernelSpec(
        name="SHOC Stencil2D",
        workgroup=(16, 16),
        uses_local_memory=True,
        tile_halo=2,
        redundant_compute_factor=1.05,
    ),
    "srad1": ReferenceKernelSpec(
        name="Rodinia SRAD kernel 1",
        workgroup=(16, 16),
        uses_local_memory=False,
        tile_halo=0,
        redundant_compute_factor=1.0,
    ),
    "srad2": ReferenceKernelSpec(
        name="Rodinia SRAD kernel 2",
        workgroup=(16, 16),
        uses_local_memory=False,
        tile_halo=0,
        redundant_compute_factor=1.0,
    ),
    "hotspot2d": ReferenceKernelSpec(
        name="Rodinia Hotspot (pyramid)",
        workgroup=(16, 16),
        uses_local_memory=True,
        tile_halo=4,
        redundant_compute_factor=2.6,
        nvidia_specific=True,
    ),
    "hotspot3d": ReferenceKernelSpec(
        name="Rodinia Hotspot3D",
        workgroup=(64, 4),
        uses_local_memory=False,
        tile_halo=0,
        redundant_compute_factor=1.0,
        work_per_thread=8,
    ),
    "acoustic": ReferenceKernelSpec(
        name="Acoustic room simulation (hand written)",
        workgroup=(32, 8),
        uses_local_memory=False,
        tile_halo=0,
        redundant_compute_factor=1.0,
    ),
}


def reference_profile(benchmark: str, problem: ProblemInstance,
                      device: DeviceModel) -> KernelProfile:
    """Build the kernel profile of the hand-written kernel for one benchmark."""
    key = benchmark.lower()
    if key not in REFERENCE_KERNELS:
        raise KeyError(
            f"no hand-written reference kernel is modelled for {benchmark!r}; "
            f"available: {sorted(REFERENCE_KERNELS)}"
        )
    spec = REFERENCE_KERNELS[key]
    elements = problem.output_elements
    bpe = problem.bytes_per_element
    reads_per_output = problem.stencil_points + (problem.num_input_grids - 1)

    workgroup_items = 1
    for extent in spec.workgroup:
        workgroup_items *= extent

    if spec.uses_local_memory:
        # Local-memory tiling: the work-group's (halo-enlarged) tile is read once.
        wg_outputs = workgroup_items
        tile_elements = 1
        for extent in spec.workgroup:
            tile_elements *= extent + spec.tile_halo
        halo = tile_elements / wg_outputs
        global_read_bytes = elements * bpe * halo + elements * bpe * (problem.num_input_grids - 1)
        local_traffic = elements * bpe * (halo + problem.stencil_points)
        local_per_wg = tile_elements * bpe
        barriers = 1
    else:
        global_read_bytes = elements * bpe * reads_per_output
        local_traffic = 0.0
        local_per_wg = 0
        barriers = 0

    global_threads = max(1, elements // max(1, spec.work_per_thread))

    return KernelProfile(
        problem=problem,
        global_threads=global_threads,
        workgroup_items=workgroup_items,
        work_per_thread=spec.work_per_thread,
        global_read_bytes=float(global_read_bytes),
        global_write_bytes=float(elements * bpe),
        local_traffic_bytes=float(local_traffic),
        local_memory_per_wg=local_per_wg,
        flops=elements * problem.effective_flops(),
        coalesced_fraction=spec.coalescing_on(device),
        redundant_compute_factor=spec.redundant_compute_factor,
        uses_local_memory=spec.uses_local_memory,
        barriers_per_workgroup=barriers,
        label=f"reference-{spec.name}",
    )


__all__ = ["ReferenceKernelSpec", "REFERENCE_KERNELS", "reference_profile"]
