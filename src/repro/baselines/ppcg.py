"""A simplified PPCG-style polyhedral compiler baseline.

PPCG [Verdoolaege et al. 2013] compiles affine loop nests to OpenCL/CUDA using
the polyhedral model.  Its characteristic schedule for stencils — the one the
paper repeatedly contrasts Lift against (§7.2) — is:

* rectangular (overlapped) tiling of the iteration space in every dimension,
* one work-group per tile, with the tile staged through shared/local memory,
* a fixed thread block whose threads each execute a large *sequential* chunk
  of the tile (the paper reports up to 512× more sequential work per thread
  than the best Lift kernel for ``Heat``).

This module reproduces that schedule as a small compiler over a loop-nest
description: it always tiles, always promotes to local memory, and exposes the
tile and block sizes as tunable parameters (exactly the knobs the paper says
PPCG exposes: "global/local thread counts and tile sizes").  The resulting
kernel plans are evaluated on the same virtual device as the Lift variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..runtime.simulator.device import DeviceModel
from ..runtime.simulator.kernel_model import KernelProfile, ProblemInstance
from ..tuning.parameters import Parameter, ParameterSpace


@dataclass(frozen=True)
class PolyhedralSchedule:
    """One PPCG schedule: tile sizes and thread-block sizes per dimension."""

    tile_sizes: Tuple[int, ...]
    block_sizes: Tuple[int, ...]

    @property
    def tile_elements(self) -> int:
        total = 1
        for extent in self.tile_sizes:
            total *= extent
        return total

    @property
    def block_threads(self) -> int:
        total = 1
        for extent in self.block_sizes:
            total *= extent
        return total

    @property
    def work_per_thread(self) -> int:
        return max(1, self.tile_elements // max(1, self.block_threads))


class PPCGCompiler:
    """Generate and evaluate PPCG-style schedules for a stencil problem."""

    #: Default tile sizes PPCG considers per dimension.
    TILE_CHOICES_2D = (16, 32, 64)
    TILE_CHOICES_3D = (4, 8, 16, 32)
    #: Thread-block extents per dimension.
    BLOCK_CHOICES = (4, 8, 16, 32)

    def __init__(self, problem: ProblemInstance, stencil_radius: int = 1) -> None:
        self.problem = problem
        self.stencil_radius = max(1, stencil_radius)

    # ------------------------------------------------------------- schedules
    def schedule_from_config(self, config: Dict[str, object]) -> PolyhedralSchedule:
        ndims = self.problem.ndims
        tiles = tuple(int(config[f"tile_{d}"]) for d in range(ndims))
        blocks = tuple(
            int(config[f"block_{d}"]) for d in range(min(ndims, 2))
        )
        return PolyhedralSchedule(tile_sizes=tiles, block_sizes=blocks)

    def parameter_space(self, device: DeviceModel) -> ParameterSpace:
        return ppcg_parameter_space(self.problem, device)

    # ------------------------------------------------------------- profiles
    def profile(self, schedule: PolyhedralSchedule, device: DeviceModel) -> KernelProfile:
        """Build the kernel profile of one PPCG schedule.

        The tile (enlarged by the stencil halo in every dimension) is read
        from global memory once per input grid and staged in local memory;
        every neighbourhood access is then served from the scratchpad.  Each
        thread block processes one tile, so the number of launched work-items
        is ``output_elements / work_per_thread``; PPCG's thread blocks are
        two-dimensional even for 3D loop nests, so the outermost tile
        dimension is always walked sequentially with a barrier per step.  The
        generated inner loops carry extra index arithmetic compared with
        Lift's flat kernels, modelled as a modest redundant-compute factor.
        """
        problem = self.problem
        elements = problem.output_elements
        bpe = problem.bytes_per_element
        radius = self.stencil_radius

        halo_tile = 1
        for extent in schedule.tile_sizes:
            halo_tile *= extent + 2 * radius
        halo_factor = halo_tile / schedule.tile_elements

        global_read_bytes = elements * bpe * halo_factor * problem.num_input_grids
        local_traffic = elements * bpe * (halo_factor + problem.stencil_points)
        local_per_wg = halo_tile * bpe * problem.num_input_grids

        work_per_thread = schedule.work_per_thread
        global_threads = max(1, elements // work_per_thread)

        # One barrier pair per sequentially executed slice of the tile.
        sequential_steps = schedule.tile_sizes[0] if problem.ndims == 3 else 1

        return KernelProfile(
            problem=problem,
            global_threads=global_threads,
            workgroup_items=schedule.block_threads,
            work_per_thread=work_per_thread,
            global_read_bytes=float(global_read_bytes),
            global_write_bytes=float(elements * bpe),
            local_traffic_bytes=float(local_traffic),
            local_memory_per_wg=local_per_wg,
            flops=elements * problem.effective_flops(),
            coalesced_fraction=0.9,
            redundant_compute_factor=1.25,
            uses_local_memory=True,
            barriers_per_workgroup=2 * sequential_steps,
            label=f"ppcg-tile{schedule.tile_sizes}-block{schedule.block_sizes}",
        )


def ppcg_parameter_space(problem: ProblemInstance, device: DeviceModel) -> ParameterSpace:
    """The tunable space the paper describes for PPCG: tile and block sizes per dim."""
    ndims = problem.ndims
    tile_choices = (
        PPCGCompiler.TILE_CHOICES_3D if ndims == 3 else PPCGCompiler.TILE_CHOICES_2D
    )
    parameters: List[Parameter] = []
    for d in range(ndims):
        parameters.append(Parameter(f"tile_{d}", tuple(tile_choices)))
    # PPCG maps loop nests onto two-dimensional thread blocks even for 3D
    # stencils; the outermost tile dimension is executed sequentially.
    block_dims = min(ndims, 2)
    for d in range(block_dims):
        parameters.append(Parameter(f"block_{d}", tuple(PPCGCompiler.BLOCK_CHOICES)))

    def blocks_fit_tiles(config) -> bool:
        return all(
            int(config[f"block_{d}"]) <= int(config[f"tile_{d}"])
            for d in range(block_dims)
        )

    def block_fits_device(config) -> bool:
        threads = 1
        for d in range(block_dims):
            threads *= int(config[f"block_{d}"])
        return threads <= device.max_workgroup_size

    def local_memory_fits(config) -> bool:
        halo_tile = 1
        for d in range(ndims):
            halo_tile *= int(config[f"tile_{d}"]) + 2
        return halo_tile * problem.bytes_per_element * problem.num_input_grids \
            <= device.local_memory_bytes

    return ParameterSpace(
        parameters,
        constraints=[blocks_fit_tiles, block_fits_device, local_memory_fits],
    )


__all__ = ["PolyhedralSchedule", "PPCGCompiler", "ppcg_parameter_space"]
