"""Baselines the paper compares against: hand-written kernels and PPCG."""

from .reference_kernels import reference_profile, REFERENCE_KERNELS
from .ppcg import PPCGCompiler, ppcg_parameter_space

__all__ = ["reference_profile", "REFERENCE_KERNELS", "PPCGCompiler", "ppcg_parameter_space"]
