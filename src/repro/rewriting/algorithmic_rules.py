"""Algorithmic rewrite rules, including the paper's overlapped-tiling rule.

The central addition of the CGO'18 paper is a single rewrite rule enabling
overlapped tiling for stencils (Section 4.1)::

    map(f, slide(size, step, in))
      ↦ join(map(tile ⇒ map(f, slide(size, step, tile)), slide(u, v, in)))

with the validity constraint ``size − step = u − v`` (the overlap between
tiles must equal the overlap between neighbourhoods).  The multi-dimensional
variants reuse the 1-D primitives: tiles are created with ``slideN``, the
stencil is applied per tile with ``mapN`` and the per-tile results are
recombined into the flat output grid with ``map``/``transpose``/``join``.

This module also provides classic Lift rules reused for stencils: map fusion,
split-join and the map/join interchange used to prove the tiling rule correct
(Section 4.1 of the paper decomposes tiling into these two smaller rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core import builders as L
from ..core.arithmetic import ArithExpr, Cst
from ..core.ir import Expr, FunCall, FunDecl, Lambda, Param
from ..core.primitives.algorithmic import Join, Map, Transpose
from ..core.primitives.opencl import MapGlb, MapLcl, MapSeq, MapWrg
from ..core.primitives.stencil import Slide
from .rules import RewriteRule, register_rule


def _is_plain_map(fun: FunDecl) -> bool:
    """True for the high-level ``map`` (not its lowered variants)."""
    return isinstance(fun, Map) and not isinstance(fun, (MapGlb, MapWrg, MapLcl, MapSeq))


# ---------------------------------------------------------------------------
# Pattern matching for (multi-dimensional) stencil expressions
# ---------------------------------------------------------------------------

@dataclass
class StencilMatch:
    """A recognised ``mapN(f, slideN(size, step, input))`` expression."""

    ndims: int
    f: FunDecl
    size: ArithExpr
    step: ArithExpr
    input: Expr


def match_map_nd(expr: Expr) -> Optional[Tuple[int, FunDecl, Expr]]:
    """Recognise ``mapN(f, arg)`` built by :func:`repro.core.builders.map_nd`.

    Returns ``(N, f, arg)`` for the deepest such nesting, or ``None``.
    """
    if not (isinstance(expr, FunCall) and _is_plain_map(expr.fun) and len(expr.args) == 1):
        return None
    f = expr.fun.f  # type: ignore[union-attr]
    arg = expr.args[0]
    depth = 1
    # map_nd wraps f as λx. map(f', x); peel those wrappers off.
    while (
        isinstance(f, Lambda)
        and len(f.params) == 1
        and isinstance(f.body, FunCall)
        and _is_plain_map(f.body.fun)
        and len(f.body.args) == 1
        and f.body.args[0] is f.params[0]
    ):
        f = f.body.fun.f  # type: ignore[union-attr]
        depth += 1
    return depth, f, arg


def match_slide_nd(expr: Expr) -> Optional[Tuple[int, ArithExpr, ArithExpr, Expr]]:
    """Recognise ``slideN(size, step, input)`` built by :func:`slide_nd`.

    Returns ``(N, size, step, input)`` or ``None``.
    """
    # Base case: a plain 1-D slide.
    if isinstance(expr, FunCall) and isinstance(expr.fun, Slide):
        return 1, expr.fun.size, expr.fun.step, expr.args[0]

    # Recursive case: map(reorder, slide(size, step, map(λx. slideN-1(x), input)))
    if not (isinstance(expr, FunCall) and _is_plain_map(expr.fun) and len(expr.args) == 1):
        return None
    reorder = expr.fun.f  # type: ignore[union-attr]
    if not _is_reorder_lambda(reorder):
        return None
    outer = expr.args[0]
    if not (isinstance(outer, FunCall) and isinstance(outer.fun, Slide)):
        return None
    size, step = outer.fun.size, outer.fun.step
    inner_map = outer.args[0]
    if not (
        isinstance(inner_map, FunCall)
        and _is_plain_map(inner_map.fun)
        and len(inner_map.args) == 1
    ):
        return None
    inner_fn = inner_map.fun.f  # type: ignore[union-attr]
    if not (isinstance(inner_fn, Lambda) and len(inner_fn.params) == 1):
        return None
    inner = match_slide_nd(inner_fn.body)
    if inner is None:
        return None
    inner_dims, inner_size, inner_step, inner_input = inner
    if inner_input is not inner_fn.params[0]:
        return None
    if inner_size != size or inner_step != step:
        return None
    return inner_dims + 1, size, step, inner_map.args[0]


def _is_reorder_lambda(f: FunDecl) -> bool:
    """True when ``f`` is a lambda built only from ``map``/``transpose`` on its parameter.

    This is the shape of the dimension-reordering step of ``slideN``.
    """
    if not (isinstance(f, Lambda) and len(f.params) == 1):
        return False

    def only_reordering(expr: Expr, param: Param) -> bool:
        if expr is param:
            return True
        if isinstance(expr, FunCall):
            fun = expr.fun
            if isinstance(fun, Transpose) and len(expr.args) == 1:
                return only_reordering(expr.args[0], param)
            if _is_plain_map(fun) and len(expr.args) == 1:
                nested = fun.f  # type: ignore[union-attr]
                if isinstance(nested, Lambda) and len(nested.params) == 1:
                    if not only_reordering(nested.body, nested.params[0]):
                        return False
                elif not isinstance(nested, Transpose):
                    return False
                return only_reordering(expr.args[0], param)
        return False

    return only_reordering(f.body, f.params[0])


def match_stencil(expr: Expr) -> Optional[StencilMatch]:
    """Recognise a full ``mapN(f, slideN(size, step, input))`` stencil expression."""
    mapped = match_map_nd(expr)
    if mapped is None:
        return None
    map_dims, f, arg = mapped
    slid = match_slide_nd(arg)
    if slid is None:
        return None
    slide_dims, size, step, input_expr = slid
    if map_dims != slide_dims:
        # A deeper map nest can still be a stencil over slideN if the extra map
        # levels belong to the user function (e.g. mapping over a tuple); only
        # treat exact matches as stencils to stay conservative.
        return None
    if _is_reorder_lambda(f) or isinstance(f, (Transpose,)):
        # A map whose function only reorders data (e.g. the map(transpose) step
        # inside slideN itself) performs no computation and is not a stencil.
        return None
    return StencilMatch(slide_dims, f, size, step, input_expr)


# ---------------------------------------------------------------------------
# Classic Lift rules reused by the stencil work
# ---------------------------------------------------------------------------

class MapFusionRule(RewriteRule):
    """``map(f, map(g, in)) ↦ map(f ∘ g, in)`` — removes an intermediate array."""

    name = "mapFusion"

    def matches(self, expr: Expr) -> bool:
        return (
            isinstance(expr, FunCall)
            and _is_plain_map(expr.fun)
            and len(expr.args) == 1
            and isinstance(expr.args[0], FunCall)
            and _is_plain_map(expr.args[0].fun)
        )

    def rewrite(self, expr: Expr) -> Expr:
        outer_f = expr.fun.f  # type: ignore[union-attr]
        inner_call = expr.args[0]
        inner_f = inner_call.fun.f  # type: ignore[union-attr]
        composed = L.fun_n(1, lambda x: FunCall(outer_f, FunCall(inner_f, x)))
        return L.map(composed, inner_call.args[0])


class SplitJoinRule(RewriteRule):
    """``map(f, in) ↦ join(map(map(f), split(n, in)))`` — introduces a 2-level nest."""

    name = "splitJoin"

    def __init__(self, chunk: int) -> None:
        self.chunk = chunk

    def matches(self, expr: Expr) -> bool:
        return isinstance(expr, FunCall) and _is_plain_map(expr.fun) and len(expr.args) == 1

    def rewrite(self, expr: Expr) -> Expr:
        f = expr.fun.f  # type: ignore[union-attr]
        chunk = self.chunk
        return L.join(
            L.map(lambda row: L.map(f, row), L.split(chunk, expr.args[0]))
        )


class MapJoinInterchangeRule(RewriteRule):
    """``map(f, join(in)) ↦ join(map(map(f), in))`` — first half of the tiling proof."""

    name = "mapJoinInterchange"

    def matches(self, expr: Expr) -> bool:
        return (
            isinstance(expr, FunCall)
            and _is_plain_map(expr.fun)
            and len(expr.args) == 1
            and isinstance(expr.args[0], FunCall)
            and isinstance(expr.args[0].fun, Join)
        )

    def rewrite(self, expr: Expr) -> Expr:
        f = expr.fun.f  # type: ignore[union-attr]
        inner = expr.args[0].args[0]
        return L.join(L.map(lambda row: L.map(f, row), inner))


class SlideTilingDecompositionRule(RewriteRule):
    """``slide(size, step, in) ↦ join(map(slide(size, step), slide(u, v, in)))``.

    The second half of the paper's decomposition of the tiling rule; valid when
    ``size − step = u − v``.
    """

    name = "slideTilingDecomposition"

    def __init__(self, tile_size: int) -> None:
        self.tile_size = tile_size

    def matches(self, expr: Expr) -> bool:
        return isinstance(expr, FunCall) and isinstance(expr.fun, Slide)

    def rewrite(self, expr: Expr) -> Expr:
        slide_prim: Slide = expr.fun  # type: ignore[assignment]
        size, step = slide_prim.size, slide_prim.step
        u = Cst(self.tile_size)
        v = u - (size - step)
        return L.join(
            L.map(lambda tile: L.slide(size, step, tile), L.slide(u, v, expr.args[0]))
        )


# ---------------------------------------------------------------------------
# Overlapped tiling (the paper's new rule)
# ---------------------------------------------------------------------------

def tile_overlap(size: ArithExpr, step: ArithExpr) -> ArithExpr:
    """The overlap between consecutive tiles required by the validity constraint."""
    return size - step


def tiling_is_valid(
    input_length: int, size: int, step: int, tile_size: int
) -> bool:
    """Check the tiling parameters against a concrete (padded) input length.

    The rewrite preserves semantics when the tile step ``v = u − (size − step)``
    is positive and tiles exactly cover the input, i.e. both ``slide`` calls on
    the right-hand side produce whole windows covering every neighbourhood.
    """
    overlap = size - step
    tile_step = tile_size - overlap
    if tile_step <= 0 or tile_size < size:
        return False
    if (input_length - tile_size) % tile_step != 0:
        return False
    if (tile_size - size) % step != 0:
        return False
    lhs_windows = (input_length - size + step) // step
    tiles = (input_length - tile_size + tile_step) // tile_step
    per_tile = (tile_size - size + step) // step
    return lhs_windows == tiles * per_tile


class TileStencil1DRule(RewriteRule):
    """Overlapped tiling in one dimension (paper §4.1)."""

    name = "tileStencil1D"

    def __init__(self, tile_size: int) -> None:
        self.tile_size = int(tile_size)

    def matches(self, expr: Expr) -> bool:
        match = match_stencil(expr)
        return match is not None and match.ndims == 1

    def rewrite(self, expr: Expr) -> Expr:
        match = match_stencil(expr)
        assert match is not None and match.ndims == 1
        u = Cst(self.tile_size)
        v = u - tile_overlap(match.size, match.step)
        f, size, step = match.f, match.size, match.step
        return L.join(
            L.map(
                lambda tile: L.map(f, L.slide(size, step, tile)),
                L.slide(u, v, match.input),
            )
        )


class TileStencilNDRule(RewriteRule):
    """Overlapped tiling in N dimensions (paper §4.1, "tiling in higher dimensions").

    The rule matches ``mapN(f, slideN(size, step, input))`` and produces::

        recombine(mapN(tile ⇒ mapN(f, slideN(size, step, tile)),
                       slideN(u, v, input)))

    where ``recombine`` flattens the per-tile results back into the output grid
    using only ``map``, ``transpose`` and ``join`` (matching the 2-D rule shown
    in the paper: ``map(join, join(map(transpose, ...)))``).
    """

    name = "tileStencilND"

    def __init__(self, tile_size: int, ndims: Optional[int] = None) -> None:
        self.tile_size = int(tile_size)
        self.ndims = ndims

    def matches(self, expr: Expr) -> bool:
        match = match_stencil(expr)
        if match is None:
            return False
        if self.ndims is not None and match.ndims != self.ndims:
            return False
        return True

    def rewrite(self, expr: Expr) -> Expr:
        match = match_stencil(expr)
        assert match is not None
        nd = match.ndims
        f, size, step = match.f, match.size, match.step
        u = Cst(self.tile_size)
        v = u - tile_overlap(size, step)

        tiles = L.slide_nd(u, v, match.input, nd)
        per_tile = L.fun_n(
            1, lambda tile: L.map_nd(f, L.slide_nd(size, step, tile, nd), nd)
        )
        tiled = L.map_nd(per_tile, tiles, nd)
        return recombine_tiles(tiled, nd)


def recombine_tiles(expr: Expr, ndims: int) -> Expr:
    """Flatten a ``[tiles…][outputs-per-tile…]`` nest into the output grid.

    For one dimension this is a plain ``join``; for two dimensions it is the
    paper's ``map(join, join(map(transpose, …)))``; higher dimensions recurse.
    """
    if ndims == 1:
        return L.join(expr)
    moved = L.map(lambda y: _move_dim_to_front(y, ndims - 1), expr)
    flattened_outer = L.join(moved)
    return L.map(lambda w: recombine_tiles(w, ndims - 1), flattened_outer)


def _move_dim_to_front(expr: Expr, depth: int) -> Expr:
    """Move the dimension at nesting ``depth`` to the outermost position."""
    if depth <= 0:
        return expr
    if depth == 1:
        return L.transpose(expr)
    return L.transpose(L.map(lambda z: _move_dim_to_front(z, depth - 1), expr))


# Register parameter-free rule prototypes for documentation / enumeration.
register_rule(MapFusionRule())
register_rule(MapJoinInterchangeRule())
register_rule(TileStencil1DRule(tile_size=4))
register_rule(TileStencilNDRule(tile_size=4))


__all__ = [
    "StencilMatch",
    "match_map_nd",
    "match_slide_nd",
    "match_stencil",
    "MapFusionRule",
    "SplitJoinRule",
    "MapJoinInterchangeRule",
    "SlideTilingDecompositionRule",
    "TileStencil1DRule",
    "TileStencilNDRule",
    "recombine_tiles",
    "tile_overlap",
    "tiling_is_valid",
]
