"""Rewrite rules and exploration.

Lift encodes every optimisation as a semantics-preserving rewrite rule.  This
package provides:

* :mod:`repro.rewriting.rules` — the rule abstraction and application machinery,
* :mod:`repro.rewriting.algorithmic_rules` — map fusion, split-join and the
  paper's **overlapped tiling** rule in one, two and three dimensions,
* :mod:`repro.rewriting.lowering_rules` — mapping onto the OpenCL thread
  hierarchy, local-memory copies and loop unrolling,
* :mod:`repro.rewriting.strategies` — complete lowering strategies combining
  the above,
* :mod:`repro.rewriting.exploration` — enumeration of the optimisation space
  explored by the auto-tuner.
"""

from .rules import RewriteRule, apply_at, apply_everywhere, find_applications
from .algorithmic_rules import (
    MapFusionRule,
    MapJoinInterchangeRule,
    SplitJoinRule,
    TileStencil1DRule,
    TileStencilNDRule,
    match_stencil,
)
from .lowering_rules import (
    LowerMapRule,
    LowerReduceSeqRule,
    LowerReduceUnrollRule,
    ToLocalRule,
)

__all__ = [
    "RewriteRule",
    "apply_at",
    "apply_everywhere",
    "find_applications",
    "MapFusionRule",
    "MapJoinInterchangeRule",
    "SplitJoinRule",
    "TileStencil1DRule",
    "TileStencilNDRule",
    "match_stencil",
    "LowerMapRule",
    "LowerReduceSeqRule",
    "LowerReduceUnrollRule",
    "ToLocalRule",
]
