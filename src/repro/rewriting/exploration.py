"""Macro-rewrite exploration.

Lift explores the optimisation space in two stages (paper §6, "Auto-Tuning"):

1. *macro rewrites* produce several structurally different low-level
   expressions per benchmark (untiled vs. overlapped tiling with different
   tile sizes, with or without local memory, with or without loop unrolling);
2. each low-level expression exposes numerical *parameters* (thread counts,
   work per thread) which are tuned by the ATF-style tuner in
   :mod:`repro.tuning`.

This module implements stage 1: :func:`explore` enumerates the candidate
variants for a given stencil program, filtering tile sizes through the tiling
validity constraint (``size − step = u − v`` plus exact coverage of the padded
input).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.ir import Lambda
from .algorithmic_rules import tiling_is_valid
from .strategies import (
    LoweredProgram,
    LoweringError,
    NAIVE,
    Strategy,
    lower_program,
    tiled_strategy,
)


#: Tile sizes considered by the macro exploration (in padded input elements).
DEFAULT_TILE_SIZES = (4, 6, 8, 10, 16, 18, 32, 34, 64, 66, 128, 130)


@dataclass
class ExplorationResult:
    """One candidate kernel variant produced by the macro exploration."""

    strategy: Strategy
    lowered: LoweredProgram

    def describe(self) -> str:
        return self.lowered.describe()


def candidate_strategies(
    stencil_size: int,
    stencil_step: int,
    padded_length: int,
    tile_sizes: Sequence[int] = DEFAULT_TILE_SIZES,
    include_local_memory: bool = True,
    include_unrolled: bool = True,
    validate_tiles: bool = True,
) -> List[Strategy]:
    """Enumerate macro strategies valid for the given stencil geometry.

    ``padded_length`` is the length (per dimension) of the padded input the
    first ``slide`` runs over; when ``validate_tiles`` is set (the default),
    tile sizes that do not exactly cover it are rejected by the validity
    constraint of the tiling rewrite rule.  The experiment pipeline disables
    the exact-coverage check because, at the paper's input sizes, Lift rounds
    the ND-range up and guards the boundary work-groups instead.
    """
    strategies: List[Strategy] = []
    for unroll in ([True, False] if include_unrolled else [True]):
        strategies.append(
            Strategy(name="naive", use_tiling=False, unroll_reduce=unroll)
        )
    for tile in tile_sizes:
        if tile <= stencil_size - stencil_step:
            continue
        if validate_tiles and not tiling_is_valid(
            padded_length, stencil_size, stencil_step, tile
        ):
            continue
        local_options = [True, False] if include_local_memory else [False]
        for local in local_options:
            strategies.append(
                tiled_strategy(tile, use_local_memory=local, unroll_reduce=True)
            )
    return strategies


def explore(
    program: Lambda,
    stencil_size: int,
    stencil_step: int,
    padded_length: int,
    tile_sizes: Sequence[int] = DEFAULT_TILE_SIZES,
    max_variants: Optional[int] = None,
    validate_tiles: bool = True,
) -> List[ExplorationResult]:
    """Produce the lowered kernel variants for one stencil program.

    Strategies whose rewrites do not apply (e.g. tiling on a multi-grid
    benchmark) are silently skipped, mirroring how Lift's exploration simply
    does not generate those points.
    """
    results: List[ExplorationResult] = []
    for strategy in candidate_strategies(
        stencil_size, stencil_step, padded_length, tile_sizes,
        validate_tiles=validate_tiles,
    ):
        try:
            lowered = lower_program(program, strategy)
        except LoweringError:
            continue
        results.append(ExplorationResult(strategy=strategy, lowered=lowered))
        if max_variants is not None and len(results) >= max_variants:
            break
    if not results:
        # Every program admits at least the naive lowering.
        lowered = lower_program(program, NAIVE)
        results.append(ExplorationResult(strategy=NAIVE, lowered=lowered))
    return results


def verify_variants(
    program: Lambda,
    variants: Sequence[ExplorationResult],
    inputs: Sequence,
    backend=None,
    rtol: float = 1e-6,
    atol: float = 0.0,
) -> List[ExplorationResult]:
    """Execute each lowered variant and check it against the source program.

    Every rewrite is supposed to be semantics-preserving; this runs the
    high-level program and every exploration variant on concrete data with
    the selected backend (the fast compiled path by default, which makes the
    check affordable even inside experiment sweeps) and returns the variants
    whose results match.  A non-empty ``variants`` producing an empty result
    indicates a broken rewrite rule.
    """
    from ..backend import get_backend

    executor = get_backend(backend)
    expected = np.asarray(executor.run(program, list(inputs)), dtype=np.float64)
    verified: List[ExplorationResult] = []
    for variant in variants:
        result = np.asarray(
            executor.run(variant.lowered.program, list(inputs)), dtype=np.float64
        )
        if result.shape == expected.shape and np.allclose(
            result, expected, rtol=rtol, atol=atol
        ):
            verified.append(variant)
    return verified


__all__ = [
    "DEFAULT_TILE_SIZES",
    "ExplorationResult",
    "candidate_strategies",
    "explore",
    "verify_variants",
]
