"""The rewrite-rule abstraction.

A :class:`RewriteRule` is a partial function on expressions: ``matches``
decides whether the rule applies to a given sub-expression and ``rewrite``
produces the replacement.  Rules never mutate their input; the application
helpers rebuild the spine of the enclosing expression (see
:func:`repro.core.ir.replace`).

Rules are registered in :data:`RULE_REGISTRY` so the exploration pass and the
documentation can enumerate them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.ir import Expr, replace


class RuleApplicationError(Exception):
    """Raised when a rule is applied to an expression it does not match."""


class RewriteRule:
    """Base class for semantics-preserving rewrite rules."""

    #: Human-readable rule name (used in exploration logs and tests).
    name: str = "<rule>"

    def matches(self, expr: Expr) -> bool:
        """True when the rule can rewrite ``expr`` (the whole sub-expression)."""
        raise NotImplementedError

    def rewrite(self, expr: Expr) -> Expr:
        """Return the rewritten replacement for ``expr`` (which must match)."""
        raise NotImplementedError

    def apply(self, expr: Expr) -> Expr:
        """Match-checked rewrite."""
        if not self.matches(expr):
            raise RuleApplicationError(f"rule {self.name!r} does not match {expr!r}")
        return self.rewrite(expr)

    def __repr__(self) -> str:
        return f"<rule {self.name}>"


#: All known rules, keyed by name.
RULE_REGISTRY: Dict[str, RewriteRule] = {}


def register_rule(rule: RewriteRule) -> RewriteRule:
    """Add a rule instance to the global registry (idempotent by name)."""
    RULE_REGISTRY[rule.name] = rule
    return rule


def find_applications(root: Expr, rule: RewriteRule) -> List[Expr]:
    """All sub-expressions of ``root`` (by identity) where ``rule`` matches."""
    return [node for node in root.walk() if rule.matches(node)]


def apply_at(root: Expr, rule: RewriteRule, target: Expr) -> Expr:
    """Apply ``rule`` at the given sub-expression and rebuild the program."""
    rewritten = rule.apply(target)
    return replace(root, target, rewritten)


def apply_everywhere(root: Expr, rule: RewriteRule, max_applications: int = 100) -> Expr:
    """Repeatedly apply ``rule`` anywhere it matches until it no longer does.

    The traversal restarts after every application because rewriting changes
    the tree.  ``max_applications`` guards against non-terminating rule sets.
    """
    current = root
    for _ in range(max_applications):
        candidates = find_applications(current, rule)
        if not candidates:
            return current
        current = apply_at(current, rule, candidates[0])
    raise RuleApplicationError(
        f"rule {rule.name!r} did not reach a fixed point after {max_applications} steps"
    )


def apply_first(root: Expr, rule: RewriteRule) -> Optional[Expr]:
    """Apply ``rule`` at the first matching position, or return ``None``."""
    candidates = find_applications(root, rule)
    if not candidates:
        return None
    return apply_at(root, rule, candidates[0])


class LambdaRule(RewriteRule):
    """A rule defined by a pair of Python functions (used in tests and ad-hoc rules)."""

    def __init__(self, name: str, matches: Callable[[Expr], bool],
                 rewrite: Callable[[Expr], Expr]) -> None:
        self.name = name
        self._matches = matches
        self._rewrite = rewrite

    def matches(self, expr: Expr) -> bool:
        return self._matches(expr)

    def rewrite(self, expr: Expr) -> Expr:
        return self._rewrite(expr)


__all__ = [
    "RewriteRule",
    "LambdaRule",
    "RuleApplicationError",
    "RULE_REGISTRY",
    "register_rule",
    "find_applications",
    "apply_at",
    "apply_everywhere",
    "apply_first",
]
