"""End-to-end lowering strategies.

A *strategy* bundles the macro-level rewrite decisions the exploration makes
for one kernel variant:

* whether to apply the overlapped-tiling rule, and with which tile size,
* whether to stage the tile through OpenCL local memory,
* whether to unroll the neighbourhood reduction,
* how to map the remaining maps onto the thread hierarchy.

``lower_program`` applies the corresponding rewrites to a high-level stencil
program and returns a :class:`LoweredProgram`: the lowered Lift expression
(still executable by the reference interpreter, which treats the OpenCL
primitives as their sequential counterparts) together with the structural
metadata consumed by the code generator and the GPU performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core import builders as L
from ..core.arithmetic import Cst
from ..core.ir import Expr, FunCall, Lambda, replace
from ..core.primitives.algorithmic import Id, Zip
from ..core.primitives.opencl import MapGlb, MapLcl, MapWrg, ToLocal
from .algorithmic_rules import StencilMatch, match_stencil, tile_overlap
from .rules import apply_everywhere
from .lowering_rules import LowerReduceSeqRule, LowerReduceUnrollRule


@dataclass(frozen=True)
class Strategy:
    """Macro-level rewrite decisions for one kernel variant."""

    name: str
    use_tiling: bool = False
    tile_size: int = 0
    use_local_memory: bool = False
    unroll_reduce: bool = True

    def describe(self) -> str:
        parts = [self.name]
        if self.use_tiling:
            parts.append(f"tile={self.tile_size}")
        if self.use_local_memory:
            parts.append("localMem")
        if self.unroll_reduce:
            parts.append("unroll")
        return " ".join(parts)

    def to_spec(self) -> dict:
        """A plain-dict form of the strategy (picklable, JSON-serialisable).

        The engine ships strategies to worker processes and persists them in
        the results store as specs; :meth:`from_spec` round-trips exactly.
        """
        return {
            "name": self.name,
            "use_tiling": self.use_tiling,
            "tile_size": self.tile_size,
            "use_local_memory": self.use_local_memory,
            "unroll_reduce": self.unroll_reduce,
        }

    @staticmethod
    def from_spec(spec: dict) -> "Strategy":
        return Strategy(
            name=str(spec["name"]),
            use_tiling=bool(spec.get("use_tiling", False)),
            tile_size=int(spec.get("tile_size", 0)),
            use_local_memory=bool(spec.get("use_local_memory", False)),
            unroll_reduce=bool(spec.get("unroll_reduce", True)),
        )


#: The baseline strategy: one global thread per output element, no tiling.
NAIVE = Strategy(name="naive", use_tiling=False)


def tiled_strategy(tile_size: int, use_local_memory: bool = True,
                   unroll_reduce: bool = True) -> Strategy:
    """A strategy applying overlapped tiling with the given tile size."""
    return Strategy(
        name="tiled",
        use_tiling=True,
        tile_size=tile_size,
        use_local_memory=use_local_memory,
        unroll_reduce=unroll_reduce,
    )


@dataclass
class LoweredProgram:
    """A lowered kernel variant plus the structural metadata used downstream."""

    program: Lambda
    strategy: Strategy
    ndims: int
    stencil_size: int           # window extent per dimension
    stencil_step: int
    uses_tiling: bool
    tile_size: int
    uses_local_memory: bool
    unrolled: bool
    multi_grid: bool            # True when the stencil zips several input grids

    def describe(self) -> str:
        return (
            f"{self.ndims}D stencil, {self.strategy.describe()}, "
            f"{'multi-grid' if self.multi_grid else 'single-grid'}"
        )


class LoweringError(Exception):
    """Raised when a strategy cannot be applied to a program."""


# ---------------------------------------------------------------------------
# Strategy application
# ---------------------------------------------------------------------------

def lower_program(program: Lambda, strategy: Strategy) -> LoweredProgram:
    """Apply a strategy to a high-level stencil program.

    The program body must contain either a pure ``mapN(f, slideN(...))``
    stencil (single input grid) or a ``mapN(f, zipN(...))`` stencil where one
    of the zipped arrays is a ``slideN`` (multi-grid benchmarks such as
    Hotspot or the acoustic simulation).  Tiling is only supported for the
    pure form, mirroring the exploration in the paper where the multi-grid
    benchmarks favour untiled kernels.
    """
    body = program.body
    stencil = _find_outermost_stencil(body)

    if stencil is not None and strategy.use_tiling:
        lowered_body = _lower_tiled(body, stencil, strategy)
        multi_grid = False
    else:
        if strategy.use_tiling:
            raise LoweringError(
                "tiling requested but the program is not a pure mapN(f, slideN(...)) stencil"
            )
        lowered_body, stencil, multi_grid = _lower_naive(body, strategy)

    lowered_body = _lower_reductions(lowered_body, strategy)
    lowered = Lambda(program.params, lowered_body)

    size = int(stencil.size.evaluate()) if stencil.size.is_constant() else 0
    step = int(stencil.step.evaluate()) if stencil.step.is_constant() else 1
    return LoweredProgram(
        program=lowered,
        strategy=strategy,
        ndims=stencil.ndims,
        stencil_size=size,
        stencil_step=step,
        uses_tiling=strategy.use_tiling,
        tile_size=strategy.tile_size,
        uses_local_memory=strategy.use_local_memory and strategy.use_tiling,
        unrolled=strategy.unroll_reduce,
        multi_grid=multi_grid,
    )


def _find_outermost_stencil(body: Expr) -> Optional[StencilMatch]:
    """The stencil match not contained in any other matching sub-expression."""
    matching_nodes = [node for node in body.walk() if match_stencil(node) is not None]
    if not matching_nodes:
        return None
    outermost = matching_nodes[0]
    for node in matching_nodes[1:]:
        if node.contains(outermost):
            outermost = node
    return match_stencil(outermost)


def _find_zip_stencil(body: Expr) -> Optional[Tuple[FunCall, StencilMatch]]:
    """Recognise ``mapN(f, ...zip...)`` where a zipped array is a ``slideN``.

    Multi-grid benchmarks (Hotspot, SRAD2, the acoustic simulation) zip one or
    more point-wise grids with the neighbourhoods of another grid; the zip may
    itself be the ``zipN`` composition of ``map`` and ``zip``.  We locate the
    ``slideN`` of matching depth anywhere below the mapped argument.
    """
    from .algorithmic_rules import match_map_nd, match_slide_nd

    best: Optional[Tuple[FunCall, StencilMatch]] = None
    for node in body.walk():
        mapped = match_map_nd(node)
        if mapped is None:
            continue
        ndims, _f, arg = mapped
        contains_zip = any(
            isinstance(sub, FunCall) and isinstance(sub.fun, Zip) for sub in arg.walk()
        )
        if not contains_zip:
            continue
        for sub in arg.walk():
            slid = match_slide_nd(sub)
            if slid is not None and slid[0] == ndims:
                candidate = (node, StencilMatch(ndims, _f, slid[1], slid[2], slid[3]))
                if best is None or node.contains(best[0]):
                    best = candidate
                break
    return best


def _lower_naive(body: Expr, strategy: Strategy) -> Tuple[Expr, StencilMatch, bool]:
    """Lower without tiling: the stencil's map nest becomes a mapGlb nest."""
    stencil = _find_outermost_stencil(body)
    if stencil is not None:
        matching_nodes = [n for n in body.walk() if match_stencil(n) is not None]
        target = matching_nodes[0]
        for node in matching_nodes[1:]:
            if node.contains(target):
                target = node
        lowered_nest = _build_glb_nest(stencil.f, target_arg(target), stencil.ndims)
        return replace(body, target, lowered_nest), stencil, False

    zip_match = _find_zip_stencil(body)
    if zip_match is None:
        raise LoweringError("no stencil pattern found in program body")
    node, stencil = zip_match
    from .algorithmic_rules import match_map_nd

    mapped = match_map_nd(node)
    assert mapped is not None
    ndims, f, arg = mapped
    lowered_nest = _build_glb_nest(f, arg, ndims)
    return replace(body, node, lowered_nest), stencil, True


def target_arg(stencil_node: Expr) -> Expr:
    """The data argument of the outermost map of a matched stencil node."""
    assert isinstance(stencil_node, FunCall)
    return stencil_node.args[0]


def _build_glb_nest(f, arg: Expr, ndims: int) -> Expr:
    """``mapGlb(d_outer)(... mapGlb(0)(f) ...)`` — one work-item per output element.

    OpenCL dimension 0 is the fastest-varying one, so the innermost map uses
    dimension 0 and the outermost map uses dimension ``ndims − 1`` (matching
    how Lift assigns global ids to achieve coalesced accesses).
    """
    if ndims > 3:
        raise LoweringError("OpenCL exposes at most three thread dimensions")

    def nest(level: int):
        dim = ndims - 1 - level
        if level == ndims - 1:
            return MapGlb(f, dim)
        inner = nest(level + 1)
        inner_lambda = L.fun_n(1, lambda x, prim=inner: FunCall(prim, x))
        return MapGlb(inner_lambda, dim)

    return FunCall(nest(0), arg)


def _lower_tiled(body: Expr, stencil: StencilMatch, strategy: Strategy) -> Expr:
    """Apply overlapped tiling and lower onto work-groups / local work-items.

    Structure of the produced expression (2-D case, local memory enabled)::

        recombine(
          mapWrg(1)(mapWrg(0)(tile ⇒
             mapLcl(1)(mapLcl(0)(f'),
                slide2(size, step,
                   toLocal(mapLcl(1)(mapLcl(0)(id)))(tile))))
          , slide2(u, v, paddedInput)))
    """
    from .algorithmic_rules import recombine_tiles

    matching_nodes = [n for n in body.walk() if match_stencil(n) is not None]
    target = matching_nodes[0]
    for node in matching_nodes[1:]:
        if node.contains(target):
            target = node

    nd = stencil.ndims
    size, step = stencil.size, stencil.step
    u = Cst(strategy.tile_size)
    v = u - tile_overlap(size, step)

    def per_tile(tile: Expr) -> Expr:
        staged = tile
        if strategy.use_local_memory:
            copy_nest = _build_lcl_nest(Id(), nd)
            staged = FunCall(ToLocal(copy_nest), tile)
        windows = L.slide_nd(size, step, staged, nd)
        return FunCall(_build_lcl_nest(stencil.f, nd), windows)

    tiles = L.slide_nd(u, v, stencil.input, nd)
    tile_lambda = L.fun_n(1, per_tile)
    tiled = FunCall(_build_wrg_nest(tile_lambda, nd), tiles)
    recombined = recombine_tiles(tiled, nd)
    return replace(body, target, recombined)


def _build_lcl_nest(f, ndims: int):
    """A nest of ``mapLcl`` primitives, innermost dimension 0."""
    def nest(level: int):
        dim = ndims - 1 - level
        if level == ndims - 1:
            return MapLcl(f, dim)
        inner = nest(level + 1)
        inner_lambda = L.fun_n(1, lambda x, prim=inner: FunCall(prim, x))
        return MapLcl(inner_lambda, dim)

    return nest(0)


def _build_wrg_nest(f, ndims: int):
    """A nest of ``mapWrg`` primitives, innermost dimension 0."""
    def nest(level: int):
        dim = ndims - 1 - level
        if level == ndims - 1:
            return MapWrg(f, dim)
        inner = nest(level + 1)
        inner_lambda = L.fun_n(1, lambda x, prim=inner: FunCall(prim, x))
        return MapWrg(inner_lambda, dim)

    return nest(0)


def _lower_reductions(body: Expr, strategy: Strategy) -> Expr:
    """Lower every plain ``reduce`` to ``reduceSeq`` or ``reduceUnroll``."""
    rule = LowerReduceUnrollRule() if strategy.unroll_reduce else LowerReduceSeqRule()
    return apply_everywhere(body, rule)


__all__ = [
    "Strategy",
    "NAIVE",
    "tiled_strategy",
    "LoweredProgram",
    "LoweringError",
    "lower_program",
]
