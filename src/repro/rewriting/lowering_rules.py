"""Lowering rewrite rules: mapping onto the OpenCL execution and memory model.

These rules turn the high-level, hardware-agnostic expression into a
low-level, OpenCL-specific expression.  They are the existing Lift machinery
the paper reuses unchanged (Section 4.2/4.3):

* thread-hierarchy mapping — ``map ↦ mapGlb(d)`` / ``mapWrg(d)`` / ``mapLcl(d)``
  / ``mapSeq``,
* local memory — ``map(id) ↦ toLocal(map(id))`` together with a rule that
  introduces ``map(id)`` copies,
* loop unrolling — ``reduce ↦ reduceSeq`` / ``reduceUnroll`` (the latter only
  when the reduced array has a compile-time constant length, which is always
  true for stencil neighbourhoods).
"""

from __future__ import annotations

from typing import Type as PyType

from ..core import builders as L
from ..core.ir import Expr, FunCall, Lambda, UserFun
from ..core.primitives.algorithmic import Id, Map, Reduce
from ..core.primitives.opencl import (
    MapGlb,
    MapLcl,
    MapSeq,
    MapWrg,
    ReduceSeq,
    ReduceUnroll,
    ToLocal,
)
from ..core.types import ArrayType
from .rules import RewriteRule, register_rule


def _is_plain_map(expr: Expr) -> bool:
    return (
        isinstance(expr, FunCall)
        and isinstance(expr.fun, Map)
        and type(expr.fun) is Map
        and len(expr.args) == 1
    )


def _is_plain_reduce(expr: Expr) -> bool:
    return (
        isinstance(expr, FunCall)
        and isinstance(expr.fun, Reduce)
        and type(expr.fun) is Reduce
        and len(expr.args) == 1
    )


class LowerMapRule(RewriteRule):
    """Lower a plain ``map`` to a specific level of the OpenCL thread hierarchy."""

    def __init__(self, target: PyType[Map], dim: int = 0) -> None:
        self.target = target
        self.dim = dim
        self.name = f"lowerMapTo{target.__name__}(dim={dim})"

    def matches(self, expr: Expr) -> bool:
        return _is_plain_map(expr)

    def rewrite(self, expr: Expr) -> Expr:
        f = expr.fun.f  # type: ignore[union-attr]
        if self.target is MapSeq:
            lowered = MapSeq(f)
        else:
            lowered = self.target(f, self.dim)  # type: ignore[call-arg]
        return FunCall(lowered, expr.args[0])


class LowerReduceSeqRule(RewriteRule):
    """``reduce ↦ reduceSeq`` — execute the reduction as a sequential loop."""

    name = "lowerReduceSeq"

    def matches(self, expr: Expr) -> bool:
        return _is_plain_reduce(expr)

    def rewrite(self, expr: Expr) -> Expr:
        reduce_prim: Reduce = expr.fun  # type: ignore[assignment]
        return FunCall(ReduceSeq(reduce_prim.f, reduce_prim.init), expr.args[0])


class LowerReduceUnrollRule(RewriteRule):
    """``reduce ↦ reduceUnroll`` — unroll the reduction loop (paper §4.3).

    Only legal when the input length is a compile-time constant; for stencils
    this is always the case because the reduction runs over a neighbourhood of
    fixed size.  The length check happens at type-inference time
    (:class:`~repro.core.primitives.opencl.ReduceUnroll`); here we additionally
    require the argument type, when known, to be a constant-length array.
    """

    name = "lowerReduceUnroll"

    def matches(self, expr: Expr) -> bool:
        if not _is_plain_reduce(expr):
            return False
        arg_type = expr.args[0].type
        if isinstance(arg_type, ArrayType):
            return arg_type.size.is_constant()
        return True  # not yet typed: allow, the type checker enforces legality later

    def rewrite(self, expr: Expr) -> Expr:
        reduce_prim: Reduce = expr.fun  # type: ignore[assignment]
        return FunCall(ReduceUnroll(reduce_prim.f, reduce_prim.init), expr.args[0])


class ToLocalRule(RewriteRule):
    """``map(id) ↦ toLocal(map(id))`` — direct a copy into local memory (paper §4.2)."""

    name = "toLocal"

    def matches(self, expr: Expr) -> bool:
        if not (isinstance(expr, FunCall) and isinstance(expr.fun, Map)):
            return False
        if isinstance(expr.fun, (MapGlb, MapWrg)):
            return False  # work-group-level copies only make sense for lcl/seq maps
        return _is_identity_function(expr.fun.f)

    def rewrite(self, expr: Expr) -> Expr:
        return FunCall(ToLocal(expr.fun), expr.args[0])


class IdInsertionRule(RewriteRule):
    """``in ↦ map(id, in)`` — introduce an explicit copy of an array.

    Together with :class:`ToLocalRule` this lets the exploration place data in
    local memory at any point of the program.  To keep the rewrite space
    finite the rule refuses to wrap an expression that is already a copy.
    """

    name = "idInsertion"

    def matches(self, expr: Expr) -> bool:
        if not isinstance(expr, FunCall):
            return False
        if isinstance(expr.fun, (Map,)) and _is_identity_function(getattr(expr.fun, "f", None)):
            return False
        if isinstance(expr.fun, ToLocal):
            return False
        return isinstance(expr.type, ArrayType)

    def rewrite(self, expr: Expr) -> Expr:
        return L.map(Id(), expr)


def _is_identity_function(f) -> bool:
    if isinstance(f, Id):
        return True
    if isinstance(f, UserFun) and f.name == "id_fn":
        return True
    if isinstance(f, Lambda) and len(f.params) == 1:
        body = f.body
        if body is f.params[0]:
            return True
        if (
            isinstance(body, FunCall)
            and isinstance(body.fun, (Id,))
            and len(body.args) == 1
            and body.args[0] is f.params[0]
        ):
            return True
        # map(id)-shaped lambda: λx. map(id, x)
        if (
            isinstance(body, FunCall)
            and isinstance(body.fun, Map)
            and len(body.args) == 1
            and body.args[0] is f.params[0]
            and _is_identity_function(body.fun.f)
        ):
            return True
    return False


register_rule(LowerReduceSeqRule())
register_rule(LowerReduceUnrollRule())
register_rule(ToLocalRule())
register_rule(IdInsertionRule())
register_rule(LowerMapRule(MapGlb, 0))
register_rule(LowerMapRule(MapWrg, 0))
register_rule(LowerMapRule(MapLcl, 0))
register_rule(LowerMapRule(MapSeq, 0))


__all__ = [
    "LowerMapRule",
    "LowerReduceSeqRule",
    "LowerReduceUnrollRule",
    "ToLocalRule",
    "IdInsertionRule",
]
