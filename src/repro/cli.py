"""Command-line interface for reproducing the paper's experiments.

Usage (after ``pip install -e .``, or with ``PYTHONPATH=src``)::

    python -m repro table1
    python -m repro figure7 [--benchmarks hotspot2d stencil2d] [--budget 2000]
    python -m repro figure8 [--sizes small] [--devices nvidia amd]
    python -m repro kernel jacobi2d5pt --strategy tiled --tile 18 --size 64 64
    python -m repro verify [--benchmarks heat poisson] [--backend crosscheck]
    python -m repro bench-backend [--out BENCH_backend.json]

Every sub-command prints human-readable text; the figure commands emit the
same rows the paper plots.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments.table1 import format_table1

    print(format_table1())
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    from .experiments.figure7 import format_figure7, run_figure7

    rows = run_figure7(
        benchmarks=args.benchmarks or None,
        devices=args.devices or None,
        tuner_budget=args.budget,
        shape_scale=args.scale,
    )
    print(format_figure7(rows))
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    from .experiments.figure8 import format_figure8, run_figure8

    rows = run_figure8(
        benchmarks=args.benchmarks or None,
        devices=args.devices or None,
        sizes=tuple(args.sizes),
        tuner_budget=args.budget,
        shape_scale=args.scale,
    )
    print(format_figure8(rows))
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from .apps import get_benchmark
    from .codegen import generate_kernel
    from .rewriting.strategies import NAIVE, lower_program, tiled_strategy

    benchmark = get_benchmark(args.benchmark)
    shape = tuple(args.size) if args.size else tuple(
        min(extent, 64) for extent in benchmark.default_shape
    )
    if args.strategy == "tiled":
        strategy = tiled_strategy(args.tile, use_local_memory=not args.no_local_memory)
    else:
        strategy = NAIVE
    lowered = lower_program(benchmark.build_program(), strategy)
    kernel = generate_kernel(
        lowered, benchmark.input_types(shape), f"{args.benchmark}_kernel"
    )
    print(f"// {kernel.describe()}")
    print(kernel.source)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .apps import ALL_BENCHMARKS

    shapes = {2: (13, 11), 3: (5, 7, 9)}
    keys = args.benchmarks or sorted(ALL_BENCHMARKS)
    failures = 0
    for key in keys:
        benchmark = ALL_BENCHMARKS[key]
        ok = benchmark.verify(
            shape=shapes[benchmark.ndims], seed=17, backend=args.backend
        )
        print(f"{key:<14} {'OK' if ok else 'MISMATCH'}")
        failures += 0 if ok else 1
    return 1 if failures else 0


def _cmd_bench_backend(args: argparse.Namespace) -> int:
    from .experiments.backend_bench import (
        format_backend_bench,
        run_backend_bench,
        write_backend_bench,
    )

    rows = run_backend_bench(
        benchmarks=args.benchmarks or None, repeats=args.repeats
    )
    print(format_backend_bench(rows))
    if args.out:
        write_backend_bench(rows, args.out)
        print(f"\nwrote {args.out}")
    return 0 if all(row.results_match for row in rows) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'High Performance Stencil Code Generation with Lift' (CGO 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (benchmark characteristics)")

    for name, helptext in (
        ("figure7", "Lift vs hand-written kernels"),
        ("figure8", "Lift vs PPCG"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--benchmarks", nargs="*", default=None)
        p.add_argument("--devices", nargs="*", default=None,
                       choices=["nvidia", "amd", "arm"])
        p.add_argument("--budget", type=int, default=3000,
                       help="tuner evaluation budget per kernel variant")
        p.add_argument("--scale", type=float, default=1.0,
                       help="scale factor applied to the paper's input sizes")
        if name == "figure8":
            p.add_argument("--sizes", nargs="*", default=["small", "large"],
                           choices=["small", "large"])

    kernel = sub.add_parser("kernel", help="generate the OpenCL kernel for one benchmark")
    kernel.add_argument("benchmark")
    kernel.add_argument("--strategy", choices=["naive", "tiled"], default="naive")
    kernel.add_argument("--tile", type=int, default=18)
    kernel.add_argument("--no-local-memory", action="store_true")
    kernel.add_argument("--size", type=int, nargs="*", default=None,
                        help="input grid extents (defaults to a small grid)")

    verify = sub.add_parser("verify", help="check every benchmark against its NumPy golden")
    verify.add_argument("--benchmarks", nargs="*", default=None)
    verify.add_argument("--backend", default=None,
                        choices=["numpy", "interpreter", "crosscheck"],
                        help="execution backend (default: the process default)")

    bench_backend = sub.add_parser(
        "bench-backend",
        help="time the reference interpreter vs the compiled NumPy backend",
    )
    bench_backend.add_argument("--benchmarks", nargs="*", default=None)
    bench_backend.add_argument("--repeats", type=int, default=3,
                               help="timing repetitions for the compiled path")
    bench_backend.add_argument("--out", default=None,
                               help="write the rows as JSON to this path")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "figure7": _cmd_figure7,
        "figure8": _cmd_figure8,
        "kernel": _cmd_kernel,
        "verify": _cmd_verify,
        "bench-backend": _cmd_bench_backend,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
