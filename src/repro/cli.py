"""Command-line interface for reproducing the paper's experiments.

Usage (after ``pip install -e .``, or with ``PYTHONPATH=src``)::

    python -m repro table1
    python -m repro figure7 [--benchmarks hotspot2d stencil2d] [--budget 2000]
    python -m repro figure8 [--sizes small] [--devices nvidia amd]
    python -m repro kernel jacobi2d5pt --strategy tiled --tile 18 --size 64 64
    python -m repro verify [--benchmarks heat poisson] [--backend crosscheck]
    python -m repro bench-backend [--out BENCH_backend.json]
    python -m repro explore stencil2d --workers 4 [--budget 200]
    python -m repro tune [stencil2d] --workers 2 --budget 20 [--resume SESSION]

Every sub-command prints human-readable text; the figure commands emit the
same rows the paper plots.  ``explore`` and ``tune`` run on the parallel
search engine: evaluations fan out over worker processes and are memoised
in a SQLite results store, so re-running (or ``--resume``-ing) a session
skips every already-evaluated point.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments.table1 import format_table1

    print(format_table1())
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    from .experiments.figure7 import format_figure7, run_figure7

    rows = run_figure7(
        benchmarks=args.benchmarks or None,
        devices=args.devices or None,
        tuner_budget=args.budget,
        shape_scale=args.scale,
        workers=args.workers,
    )
    print(format_figure7(rows))
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    from .experiments.figure8 import format_figure8, run_figure8

    rows = run_figure8(
        benchmarks=args.benchmarks or None,
        devices=args.devices or None,
        sizes=tuple(args.sizes),
        tuner_budget=args.budget,
        shape_scale=args.scale,
        workers=args.workers,
    )
    print(format_figure8(rows))
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from .apps import get_benchmark
    from .codegen import generate_kernel
    from .rewriting.strategies import NAIVE, lower_program, tiled_strategy

    benchmark = get_benchmark(args.benchmark)
    shape = tuple(args.size) if args.size else tuple(
        min(extent, 64) for extent in benchmark.default_shape
    )
    if args.strategy == "tiled":
        strategy = tiled_strategy(args.tile, use_local_memory=not args.no_local_memory)
    else:
        strategy = NAIVE
    lowered = lower_program(benchmark.build_program(), strategy)
    kernel = generate_kernel(
        lowered, benchmark.input_types(shape), f"{args.benchmark}_kernel"
    )
    print(f"// {kernel.describe()}")
    print(kernel.source)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .apps import ALL_BENCHMARKS

    shapes = {2: (13, 11), 3: (5, 7, 9)}
    keys = args.benchmarks or sorted(ALL_BENCHMARKS)
    failures = 0
    for key in keys:
        benchmark = ALL_BENCHMARKS[key]
        ok = benchmark.verify(
            shape=shapes[benchmark.ndims], seed=17, backend=args.backend
        )
        print(f"{key:<14} {'OK' if ok else 'MISMATCH'}")
        failures += 0 if ok else 1
    return 1 if failures else 0


def _cmd_bench_backend(args: argparse.Namespace) -> int:
    from .experiments.backend_bench import (
        format_backend_bench,
        run_backend_bench,
        write_backend_bench,
    )

    rows = run_backend_bench(
        benchmarks=args.benchmarks or None, repeats=args.repeats
    )
    print(format_backend_bench(rows))
    if args.out:
        write_backend_bench(rows, args.out)
        print(f"\nwrote {args.out}")
    return 0 if all(row.results_match for row in rows) else 1


def _run_engine_command(args: argparse.Namespace, command: str) -> int:
    from .apps.suite import get_benchmark
    from .engine import CostModelPruner, ResultsStore, SearchEngine
    from .experiments.pipeline import scaled_shape

    store = ResultsStore(args.store)
    resumed_spec = None
    if args.resume:
        resumed_spec = store.session_spec(args.resume)
        if resumed_spec is None:
            known = ", ".join(sid for sid, _ in store.sessions()) or "<none>"
            print(f"error: unknown session {args.resume!r} in {args.store} "
                  f"(known sessions: {known})", file=sys.stderr)
            return 2

    if resumed_spec is not None:
        # The recorded spec defines the job set; CLI flags only control
        # execution (worker count, store path).
        benchmark = get_benchmark(str(resumed_spec["benchmark"]).lower().replace(" ", ""))
        shape = tuple(int(extent) for extent in resumed_spec["shape"])
        device = str(resumed_spec["device"])
        budget = int(resumed_spec["budget"])
        strategy = str(resumed_spec.get("strategy", "exhaustive"))
        restarts = int(resumed_spec.get("restarts", 4))
        seed = int(resumed_spec.get("seed", 0))
        validate = resumed_spec.get("validate_backend", "numpy") \
            if resumed_spec.get("validate", False) else False
        validate_size = int(resumed_spec.get("validate_size", 0))
        scorer = str(resumed_spec.get("scorer", "simulator"))
        measure_runs = int(resumed_spec.get("measure_runs", 3))
        measure_size = int(resumed_spec.get("measure_size", 256))
        prune_margin = resumed_spec.get("prune_margin")
        session = args.resume
    else:
        benchmark = get_benchmark(args.benchmark)
        shape = scaled_shape(benchmark.default_shape, args.scale)
        device = args.device
        budget = args.budget
        strategy = getattr(args, "strategy", "exhaustive")
        restarts = getattr(args, "restarts", 4)
        seed = args.seed
        validate = args.validate
        validate_size = 0
        scorer = getattr(args, "scorer", "simulator")
        measure_runs = getattr(args, "measure_runs", 3)
        measure_size = getattr(args, "measure_size", 256)
        prune_margin = None if args.no_prune else args.prune_margin
        session = args.session

    pruner = None if prune_margin is None else CostModelPruner(margin=float(prune_margin))
    with SearchEngine(store=store, workers=args.workers, pruner=pruner,
                      validate=validate, validate_size=validate_size,
                      seed=seed, scorer=scorer,
                      measure_runs=measure_runs,
                      measure_size=measure_size) as engine:
        outcome = engine.run(
            benchmark,
            shape=shape,
            device=device,
            budget=budget,
            strategy=strategy,
            restarts=restarts,
            session=session,
        )

    shape_text = "×".join(str(extent) for extent in outcome.shape)
    print(f"session {outcome.session} (store {args.store})")
    scorer_text = "" if scorer == "simulator" else f", scorer {scorer}"
    print(f"{outcome.benchmark} on {outcome.device}, shape {shape_text}, "
          f"strategy {strategy}, budget {budget}, workers {args.workers}{scorer_text}")
    pruned = [decision for decision in outcome.pruned if not decision.kept]
    print(f"variants: {len(outcome.per_variant)} tuned, "
          f"{len(pruned)} pruned by the cost model")
    if command == "explore":
        for ranked in sorted(outcome.per_variant, key=lambda v: v.best_cost):
            print(f"  {ranked.variant.describe():<32} {ranked.best_cost * 1e3:>10.4f} ms  "
                  f"{ranked.best_config}  [{ranked.evaluations} evals]")
        for decision in pruned:
            print(f"  {decision.variant.describe():<32} {'pruned':>13}  "
                  f"(estimate {decision.estimate * 1e3:.4f} ms)")
    best = outcome.best
    print(f"best: {best.variant.describe()} {best.best_config} — "
          f"{best.best_cost * 1e3:.4f} ms, {outcome.gelements_per_second:.3f} GElem/s")
    recalled = outcome.store_hits
    fresh = outcome.fresh_evaluations
    suffix = " — zero re-evaluations" if fresh == 0 and recalled else ""
    print(f"evaluations: {outcome.evaluations} tuner lookups; "
          f"{fresh} fresh (incl. validation jobs), "
          f"{recalled} recalled from store{suffix}")
    print(f"wall clock: {outcome.wall_s:.2f}s")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    return _run_engine_command(args, "explore")


def _cmd_tune(args: argparse.Namespace) -> int:
    return _run_engine_command(args, "tune")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'High Performance Stencil Code Generation with Lift' (CGO 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (benchmark characteristics)")

    for name, helptext in (
        ("figure7", "Lift vs hand-written kernels"),
        ("figure8", "Lift vs PPCG"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--benchmarks", nargs="*", default=None)
        p.add_argument("--devices", nargs="*", default=None,
                       choices=["nvidia", "amd", "arm"])
        p.add_argument("--budget", type=int, default=3000,
                       help="tuner evaluation budget per kernel variant")
        p.add_argument("--scale", type=float, default=1.0,
                       help="scale factor applied to the paper's input sizes")
        p.add_argument("--workers", type=int, default=1,
                       help="fan Lift searches out over this many worker processes")
        if name == "figure8":
            p.add_argument("--sizes", nargs="*", default=["small", "large"],
                           choices=["small", "large"])

    kernel = sub.add_parser("kernel", help="generate the OpenCL kernel for one benchmark")
    kernel.add_argument("benchmark")
    kernel.add_argument("--strategy", choices=["naive", "tiled"], default="naive")
    kernel.add_argument("--tile", type=int, default=18)
    kernel.add_argument("--no-local-memory", action="store_true")
    kernel.add_argument("--size", type=int, nargs="*", default=None,
                        help="input grid extents (defaults to a small grid)")

    verify = sub.add_parser("verify", help="check every benchmark against its NumPy golden")
    verify.add_argument("--benchmarks", nargs="*", default=None)
    verify.add_argument("--backend", default=None,
                        choices=["numpy", "interpreter", "crosscheck"],
                        help="execution backend (default: the process default)")

    bench_backend = sub.add_parser(
        "bench-backend",
        help="time the reference interpreter vs the compiled NumPy backend",
    )
    bench_backend.add_argument("--benchmarks", nargs="*", default=None)
    bench_backend.add_argument("--repeats", type=int, default=3,
                               help="timing repetitions for the compiled path")
    bench_backend.add_argument("--out", default=None,
                               help="write the rows as JSON to this path")

    from .engine.store import DEFAULT_STORE_PATH

    for name, helptext in (
        ("explore", "rank a benchmark's rewrite variants on the parallel engine"),
        ("tune", "explore + tune a benchmark on the parallel engine"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("benchmark", nargs="?", default="stencil2d",
                       help="benchmark key (default: stencil2d)")
        p.add_argument("--device", default="nvidia",
                       choices=["nvidia", "amd", "arm"])
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial, inline evaluation)")
        p.add_argument("--budget", type=int, default=200,
                       help="evaluation budget per kernel variant")
        p.add_argument("--scale", type=float, default=1.0,
                       help="scale factor applied to the paper's input size")
        p.add_argument("--store", default=DEFAULT_STORE_PATH,
                       help="SQLite results store (memoises across runs)")
        p.add_argument("--session", default=None,
                       help="name this search session (default: generated)")
        p.add_argument("--resume", default=None, metavar="SESSION_ID",
                       help="re-run a recorded session, skipping every "
                            "already-evaluated point")
        p.add_argument("--validate", action="store_true",
                       help="compile + functionally cross-check every variant "
                            "in the workers")
        p.add_argument("--no-prune", action="store_true",
                       help="disable cost-model pruning of dominated variants")
        p.add_argument("--prune-margin", type=float, default=4.0,
                       help="prune variants estimated worse than MARGIN × the best")
        p.add_argument("--seed", type=int, default=0)
        if name == "tune":
            p.add_argument("--strategy", default="exhaustive",
                           choices=["exhaustive", "random", "hillclimb"])
            p.add_argument("--restarts", type=int, default=4,
                           help="hill-climbing basin walks")
            p.add_argument("--scorer", default="simulator",
                           choices=["simulator", "measured"],
                           help="simulator = deterministic device model; "
                                "measured = time the compiled kernel in the workers")
            p.add_argument("--measure-runs", type=int, default=3)
            p.add_argument("--measure-size", type=int, default=256,
                           help="target grid extent per dimension for measured scoring")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "figure7": _cmd_figure7,
        "figure8": _cmd_figure8,
        "kernel": _cmd_kernel,
        "verify": _cmd_verify,
        "bench-backend": _cmd_bench_backend,
        "explore": _cmd_explore,
        "tune": _cmd_tune,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
