"""Command-line interface for reproducing the paper's experiments.

Usage (after ``pip install -e .``, or with ``PYTHONPATH=src``)::

    python -m repro table1
    python -m repro figure7 [--benchmarks hotspot2d stencil2d] [--budget 2000]
    python -m repro figure8 [--sizes small] [--devices nvidia amd]
    python -m repro kernel jacobi2d5pt --strategy tiled --tile 18 --size 64 64
    python -m repro verify [--benchmarks heat poisson] [--backend crosscheck]
    python -m repro bench-backend [--out BENCH_backend.json]
    python -m repro bench-plans [--steps 64] [--workers 4]
                                [--out BENCH_plans.json]
                                [--compare BENCH_plans.json] [--assert-fused]
    python -m repro explore stencil2d --workers 4 [--budget 200]
    python -m repro tune [stencil2d] --workers 2 --budget 20 [--resume SESSION]
    python -m repro serve --port 7457 [--store .repro/engine.sqlite]
                          [--prewarm suite] [--shards 2]
                          [--shard-timeout-s 30] [--max-respawns 5]
                          [--inject shard.crash_before_reply:p=0.02:seed=7]
                          [--metrics-port 9464] [--log-level info] [--log-json]
    python -m repro submit stencil2d --port 7457 --shape 64 64
    python -m repro loadgen [stencil2d] --requests 64 [--shards 2]
                            [--out BENCH_service.json]
    python -m repro loadgen [stencil2d] --chaos kill-shard:t=2,hang-shard:t=4
                            [--duration-s 6] [--assert-chaos]
    python -m repro trace --port 7457 [--slow] [--limit 20] [--json]
    python -m repro stats [--store .repro/engine.sqlite]

Every sub-command prints human-readable text; the figure commands emit the
same rows the paper plots.  ``explore`` and ``tune`` run on the parallel
search engine: evaluations fan out over worker processes and are memoised
in a SQLite results store, so re-running (or ``--resume``-ing) a session
skips every already-evaluated point.  ``bench-plans --workers N`` adds a
parallel-tiled-replay timing column per row.  ``serve`` exposes the asyncio
micro-batching execution service over TCP (JSON lines) — ``--shards N``
pre-forks N worker processes that sweep micro-batched groups concurrently;
``submit`` sends it requests; ``loadgen`` benchmarks batched serving
against the per-request serial baseline (``--shards N`` drives the
multi-process service in-process) and, with ``--chaos``, kills or hangs
real shard processes mid-load to prove the supervisor heals the fleet
with zero failed requests; ``serve --inject`` arms deterministic fault
injection for drills; ``stats`` dumps the compilation-cache and
results-store counters as one JSON blob.  ``docs/OPERATIONS.md``
documents every verb, flag and emitted artifact in detail.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments.table1 import format_table1

    print(format_table1())
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    from .experiments.figure7 import format_figure7, run_figure7

    rows = run_figure7(
        benchmarks=args.benchmarks or None,
        devices=args.devices or None,
        tuner_budget=args.budget,
        shape_scale=args.scale,
        workers=args.workers,
    )
    print(format_figure7(rows))
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    from .experiments.figure8 import format_figure8, run_figure8

    rows = run_figure8(
        benchmarks=args.benchmarks or None,
        devices=args.devices or None,
        sizes=tuple(args.sizes),
        tuner_budget=args.budget,
        shape_scale=args.scale,
        workers=args.workers,
    )
    print(format_figure8(rows))
    return 0


def _cmd_kernel(args: argparse.Namespace) -> int:
    from .apps import get_benchmark
    from .codegen import generate_kernel
    from .rewriting.strategies import NAIVE, lower_program, tiled_strategy

    benchmark = get_benchmark(args.benchmark)
    shape = tuple(args.size) if args.size else tuple(
        min(extent, 64) for extent in benchmark.default_shape
    )
    if args.strategy == "tiled":
        strategy = tiled_strategy(args.tile, use_local_memory=not args.no_local_memory)
    else:
        strategy = NAIVE
    lowered = lower_program(benchmark.build_program(), strategy)
    kernel = generate_kernel(
        lowered, benchmark.input_types(shape), f"{args.benchmark}_kernel"
    )
    print(f"// {kernel.describe()}")
    print(kernel.source)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .apps import ALL_BENCHMARKS

    shapes = {2: (13, 11), 3: (5, 7, 9)}
    keys = args.benchmarks or sorted(ALL_BENCHMARKS)
    failures = 0
    for key in keys:
        benchmark = ALL_BENCHMARKS[key]
        ok = benchmark.verify(
            shape=shapes[benchmark.ndims], seed=17, backend=args.backend
        )
        print(f"{key:<14} {'OK' if ok else 'MISMATCH'}")
        failures += 0 if ok else 1
    return 1 if failures else 0


def _cmd_bench_backend(args: argparse.Namespace) -> int:
    from .experiments.backend_bench import (
        format_backend_bench,
        run_backend_bench,
        write_backend_bench,
    )

    rows = run_backend_bench(
        benchmarks=args.benchmarks or None, repeats=args.repeats
    )
    print(format_backend_bench(rows))
    if args.out:
        write_backend_bench(rows, args.out)
        print(f"\nwrote {args.out}")
    return 0 if all(row.results_match for row in rows) else 1


def _cmd_bench_plans(args: argparse.Namespace) -> int:
    from .experiments.plan_bench import (
        PLAN_BENCH_SHAPES,
        compare_plan_bench,
        format_plan_bench,
        run_plan_bench,
        write_plan_bench,
    )

    shapes = dict(PLAN_BENCH_SHAPES)
    if args.shape:
        shapes[len(args.shape)] = tuple(args.shape)
    if args.tile is None:
        tile = "search"
    elif args.tile in (["off"], ["auto"]):
        tile = args.tile[0]
    else:
        try:
            tile = tuple(int(extent) for extent in args.tile)
            if not tile:
                raise ValueError("no extents")
        except ValueError:
            print("error: --tile takes tile extents (e.g. --tile 32 1024), "
                  "'off' (unfused) or 'auto' (heuristic)", file=sys.stderr)
            return 2
    rows = run_plan_bench(
        benchmarks=args.benchmarks or None,
        steps=args.steps,
        shapes=shapes,
        repeats=args.repeats,
        tile=tile,
        workers=args.workers,
    )
    print(format_plan_bench(rows))
    if args.out:
        write_plan_bench(rows, args.out)
        print(f"\nwrote {args.out}")
    failures = [row.benchmark for row in rows if not row.results_match]
    for name in failures:
        print(f"FAIL: {name}: plan result diverges from the generic path",
              file=sys.stderr)
    status = 1 if failures else 0
    if args.compare:
        report, regressions = compare_plan_bench(rows, args.compare)
        print("\n" + report)
        for problem in regressions:
            print(f"FAIL: {problem}", file=sys.stderr)
        if regressions:
            status = 1
    if args.assert_speedup is not None:
        slow = [row for row in rows if row.speedup < args.assert_speedup]
        for row in slow:
            print(f"FAIL: {row.benchmark}: plan speedup {row.speedup:.2f}x "
                  f"< required {args.assert_speedup:.2f}x", file=sys.stderr)
        if slow:
            status = 1
    if args.assert_fused:
        unfused = [row for row in rows if row.fused_regions < 1]
        for row in unfused:
            print(f"FAIL: {row.benchmark}: no fused region formed",
                  file=sys.stderr)
        if unfused:
            status = 1
    return status


def _run_engine_command(args: argparse.Namespace, command: str) -> int:
    from .apps.suite import get_benchmark
    from .engine import CostModelPruner, ResultsStore, SearchEngine
    from .experiments.pipeline import scaled_shape

    store = ResultsStore(args.store)
    resumed_spec = None
    if args.resume:
        resumed_spec = store.session_spec(args.resume)
        if resumed_spec is None:
            known = ", ".join(sid for sid, _ in store.sessions()) or "<none>"
            print(f"error: unknown session {args.resume!r} in {args.store} "
                  f"(known sessions: {known})", file=sys.stderr)
            return 2

    if resumed_spec is not None:
        # The recorded spec defines the job set; CLI flags only control
        # execution (worker count, store path).
        benchmark = get_benchmark(str(resumed_spec["benchmark"]).lower().replace(" ", ""))
        shape = tuple(int(extent) for extent in resumed_spec["shape"])
        device = str(resumed_spec["device"])
        budget = int(resumed_spec["budget"])
        strategy = str(resumed_spec.get("strategy", "exhaustive"))
        restarts = int(resumed_spec.get("restarts", 4))
        seed = int(resumed_spec.get("seed", 0))
        validate = resumed_spec.get("validate_backend", "numpy") \
            if resumed_spec.get("validate", False) else False
        validate_size = int(resumed_spec.get("validate_size", 0))
        scorer = str(resumed_spec.get("scorer", "simulator"))
        measure_runs = int(resumed_spec.get("measure_runs", 3))
        measure_size = int(resumed_spec.get("measure_size", 256))
        prune_margin = resumed_spec.get("prune_margin")
        session = args.resume
    else:
        benchmark = get_benchmark(args.benchmark)
        shape = scaled_shape(benchmark.default_shape, args.scale)
        device = args.device
        budget = args.budget
        strategy = getattr(args, "strategy", "exhaustive")
        restarts = getattr(args, "restarts", 4)
        seed = args.seed
        validate = args.validate
        validate_size = 0
        scorer = getattr(args, "scorer", "simulator")
        measure_runs = getattr(args, "measure_runs", 3)
        measure_size = getattr(args, "measure_size", 256)
        prune_margin = None if args.no_prune else args.prune_margin
        session = args.session

    pruner = None if prune_margin is None else CostModelPruner(margin=float(prune_margin))
    with SearchEngine(store=store, workers=args.workers, pruner=pruner,
                      validate=validate, validate_size=validate_size,
                      seed=seed, scorer=scorer,
                      measure_runs=measure_runs,
                      measure_size=measure_size) as engine:
        outcome = engine.run(
            benchmark,
            shape=shape,
            device=device,
            budget=budget,
            strategy=strategy,
            restarts=restarts,
            session=session,
        )

    shape_text = "×".join(str(extent) for extent in outcome.shape)
    print(f"session {outcome.session} (store {args.store})")
    scorer_text = "" if scorer == "simulator" else f", scorer {scorer}"
    print(f"{outcome.benchmark} on {outcome.device}, shape {shape_text}, "
          f"strategy {strategy}, budget {budget}, workers {args.workers}{scorer_text}")
    pruned = [decision for decision in outcome.pruned if not decision.kept]
    print(f"variants: {len(outcome.per_variant)} tuned, "
          f"{len(pruned)} pruned by the cost model")
    if command == "explore":
        for ranked in sorted(outcome.per_variant, key=lambda v: v.best_cost):
            print(f"  {ranked.variant.describe():<32} {ranked.best_cost * 1e3:>10.4f} ms  "
                  f"{ranked.best_config}  [{ranked.evaluations} evals]")
        for decision in pruned:
            print(f"  {decision.variant.describe():<32} {'pruned':>13}  "
                  f"(estimate {decision.estimate * 1e3:.4f} ms)")
    best = outcome.best
    print(f"best: {best.variant.describe()} {best.best_config} — "
          f"{best.best_cost * 1e3:.4f} ms, {outcome.gelements_per_second:.3f} GElem/s")
    recalled = outcome.store_hits
    fresh = outcome.fresh_evaluations
    suffix = " — zero re-evaluations" if fresh == 0 and recalled else ""
    print(f"evaluations: {outcome.evaluations} tuner lookups; "
          f"{fresh} fresh (incl. validation jobs), "
          f"{recalled} recalled from store{suffix}")
    print(f"wall clock: {outcome.wall_s:.2f}s")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    return _run_engine_command(args, "explore")


def _cmd_tune(args: argparse.Namespace) -> int:
    return _run_engine_command(args, "tune")


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import run_server
    from .telemetry.logs import configure_logging

    configure_logging(level=args.log_level, json_lines=args.log_json)
    if args.inject:
        from . import faults

        # export=True: spawned shard processes arm the same schedule from
        # the environment when they import the package.
        faults.arm(args.inject, export=True)
        print(f"fault injection armed: {args.inject}", flush=True)
    store = None if args.no_store else args.store
    prewarm = None
    if args.prewarm is not None:
        from .apps.suite import execution_requests

        keys = None if not args.prewarm or "suite" in args.prewarm \
            else args.prewarm
        prewarm = execution_requests(
            benchmarks=keys,
            shape=tuple(args.prewarm_shape) if args.prewarm_shape else None,
        )
    shard_text = f", shards {args.shards}" if args.shards else ""
    metrics_text = (
        f", metrics http://{args.host}:{args.metrics_port}/metrics"
        if args.metrics_port is not None else ""
    )
    if args.http_port is not None:
        metrics_text += f", http http://{args.host}:{args.http_port}/v1"
    if args.auth_key:
        metrics_text += ", auth required"
    print(f"serving on {args.host}:{args.port} "
          f"(device {args.device}, store {store or '<none>'}, "
          f"window {args.window_ms} ms, max batch {args.max_batch}"
          f"{shard_text}{metrics_text})",
          flush=True)
    stats = run_server(
        host=args.host,
        port=args.port,
        max_requests=args.max_requests,
        prewarm=prewarm,
        prewarm_batch=tuple(args.prewarm_batch or ()),
        metrics_port=args.metrics_port,
        http_port=args.http_port,
        auth_key=args.auth_key,
        drain_timeout=args.drain_timeout,
        max_request_bytes=args.max_request_bytes,
        device=args.device,
        store=store,
        batch_window=args.window_ms / 1e3,
        max_batch=args.max_batch,
        crosscheck=args.crosscheck,
        auto_tune=args.auto_tune,
        shards=args.shards,
        max_queue_depth=args.max_queue_depth,
        max_inflight_per_digest=args.max_inflight_per_digest,
        shard_timeout_s=args.shard_timeout_s,
        supervise=not args.no_supervise,
        max_respawns=args.max_respawns,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        job_dir=args.job_dir,
        checkpoint_every=args.checkpoint_every,
        job_ttl_s=args.job_ttl_s,
        max_resident_jobs=args.max_resident_jobs,
    )
    if stats:
        import json as _json

        print(_json.dumps(stats.get("service", {}), indent=2))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from .telemetry.trace import format_trace

    async def fetch() -> dict:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        message = {"op": "trace", "slow": bool(args.slow)}
        if args.limit is not None:
            message["limit"] = args.limit
        writer.write((_json.dumps(message) + "\n").encode("utf-8"))
        await writer.drain()
        reply = _json.loads(await reader.readline())
        writer.close()
        return reply

    reply = asyncio.run(fetch())
    if not reply.get("ok"):
        print(f"error: {reply.get('error')}", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(reply, indent=2, sort_keys=True))
        return 0
    ring = reply.get("ring") or {}
    traces = reply.get("traces") or []
    print(f"trace ring: {ring.get('retained')}/{ring.get('capacity')} retained "
          f"({ring.get('recorded')} recorded, {ring.get('slow_recorded')} slow "
          f"at >= {ring.get('slow_ms')} ms)")
    if not traces:
        print("no traces recorded" + (" above the slow threshold" if args.slow
                                      else ""))
        return 0
    for trace in traces:
        print(format_trace(trace))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    async def submit_all() -> int:
        reader, writer = await asyncio.open_connection(args.host, args.port)
        for index in range(args.count):
            wire = {
                "id": index,
                "benchmark": args.benchmark,
                "seed": args.seed + index,
                "return_result": args.show_result,
            }
            if args.shape:
                wire["shape"] = list(args.shape)
            writer.write((_json.dumps(wire) + "\n").encode("utf-8"))
        await writer.drain()
        failures = 0
        for _ in range(args.count):
            reply = _json.loads(await reader.readline())
            if not reply.get("ok"):
                failures += 1
                print(f"request {reply.get('id')}: ERROR {reply.get('error')}")
                continue
            print(
                f"request {reply.get('id')}: {reply.get('benchmark')} "
                f"variant [{reply.get('variant')}] ({reply.get('plan_source')}) "
                f"batch {reply.get('batch_size')} "
                f"latency {reply.get('latency_ms'):.2f} ms"
            )
            if args.show_result:
                print(reply.get("result"))
        writer.close()
        return 1 if failures else 0

    return asyncio.run(submit_all())


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json as _json

    from .service.loadgen import (
        check_batching,
        check_no_high_shed,
        check_sharding,
        format_loadgen,
        format_mixed_loadgen,
        parse_mix,
        run_loadgen,
        run_mixed_loadgen,
    )

    connect = None
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        connect = (host or "127.0.0.1", int(port))
    if args.job_drill:
        from .service.loadgen import (
            check_job_drill,
            format_job_drill,
            run_job_drill,
        )

        report = run_job_drill(
            benchmark=args.benchmark,
            steps=args.steps,
            checkpoint_every=args.checkpoint_every,
            shape=tuple(args.shape) if args.shape else None,
            seed=args.seed,
            job_dir=args.job_dir,
            auth_key=args.auth_key or "drill-key",
            kill_after_steps=args.kill_after_steps,
            timeout_s=args.drill_timeout_s,
        )
        print(format_job_drill(report))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                _json.dump(report, fh, indent=2, sort_keys=True)
            print(f"\nwrote {args.out}")
        if args.assert_job_drill:
            problems = check_job_drill(report)
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1 if problems else 0
        return 0
    if args.chaos is not None:
        from .service.loadgen import (
            check_chaos,
            format_chaos_loadgen,
            parse_chaos,
            run_chaos_loadgen,
        )

        report = run_chaos_loadgen(
            benchmark=args.benchmark,
            chaos=parse_chaos(args.chaos),
            duration_s=args.duration_s,
            shards=args.shards or 2,
            shape=tuple(args.shape) if args.shape else None,
            seed=args.seed,
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            shard_timeout_s=args.shard_timeout_s,
            max_respawns=args.max_respawns,
            recovery_timeout_s=args.recovery_timeout_s,
            connect=connect,
            transport=args.transport,
            auth_key=args.auth_key,
            store=args.store,
            device=args.device,
        )
        print(format_chaos_loadgen(report))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                _json.dump(report, fh, indent=2, sort_keys=True)
            print(f"\nwrote {args.out}")
        if args.assert_chaos:
            problems = check_chaos(report, p99_ms=args.chaos_p99_ms)
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1 if problems else 0
        return 0
    if args.mix is not None:
        report = run_mixed_loadgen(
            benchmark=args.benchmark,
            requests=args.requests,
            mix=parse_mix(args.mix),
            shape=tuple(args.shape) if args.shape else None,
            seed=args.seed,
            deadline_ms=args.deadline_ms,
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            store=args.store,
            device=args.device,
            connect=connect,
            transport=args.transport,
            auth_key=args.auth_key,
            concurrency=args.concurrency,
            max_queue_depth=args.max_queue_depth,
        )
        print(format_mixed_loadgen(report))
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                _json.dump(report, fh, indent=2, sort_keys=True)
            print(f"\nwrote {args.out}")
        if args.assert_no_high_shed:
            problems = check_no_high_shed(report)
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1 if problems else 0
        return 0
    report = run_loadgen(
        benchmark=args.benchmark,
        requests=args.requests,
        shape=tuple(args.shape) if args.shape else None,
        identical=not args.distinct,
        seed=args.seed,
        window_ms=args.window_ms,
        max_batch=args.max_batch,
        store=args.store,
        device=args.device,
        connect=connect,
        repeats=args.repeats,
        shards=args.shards,
    )
    print(format_loadgen(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
        print(f"\nwrote {args.out}")
    problems = []
    if args.assert_batched:
        problems += check_batching(report)
    if args.assert_sharded:
        problems += check_sharding(report)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if args.assert_batched or args.assert_sharded:
        return 1 if problems else 0
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as _json
    import os

    from .service.metrics import stats_report

    store = args.store if os.path.exists(args.store) else None
    print(_json.dumps(stats_report(store=store), indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'High Performance Stencil Code Generation with Lift' (CGO 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (benchmark characteristics)")

    for name, helptext in (
        ("figure7", "Lift vs hand-written kernels"),
        ("figure8", "Lift vs PPCG"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--benchmarks", nargs="*", default=None)
        p.add_argument("--devices", nargs="*", default=None,
                       choices=["nvidia", "amd", "arm"])
        p.add_argument("--budget", type=int, default=3000,
                       help="tuner evaluation budget per kernel variant")
        p.add_argument("--scale", type=float, default=1.0,
                       help="scale factor applied to the paper's input sizes")
        p.add_argument("--workers", type=int, default=1,
                       help="fan Lift searches out over this many worker processes")
        if name == "figure8":
            p.add_argument("--sizes", nargs="*", default=["small", "large"],
                           choices=["small", "large"])

    kernel = sub.add_parser("kernel", help="generate the OpenCL kernel for one benchmark")
    kernel.add_argument("benchmark")
    kernel.add_argument("--strategy", choices=["naive", "tiled"], default="naive")
    kernel.add_argument("--tile", type=int, default=18)
    kernel.add_argument("--no-local-memory", action="store_true")
    kernel.add_argument("--size", type=int, nargs="*", default=None,
                        help="input grid extents (defaults to a small grid)")

    verify = sub.add_parser("verify", help="check every benchmark against its NumPy golden")
    verify.add_argument("--benchmarks", nargs="*", default=None)
    verify.add_argument("--backend", default=None,
                        choices=["numpy", "interpreter", "crosscheck"],
                        help="execution backend (default: the process default)")

    bench_backend = sub.add_parser(
        "bench-backend",
        help="time the reference interpreter vs the compiled NumPy backend",
    )
    bench_backend.add_argument("--benchmarks", nargs="*", default=None)
    bench_backend.add_argument("--repeats", type=int, default=3,
                               help="timing repetitions for the compiled path")
    bench_backend.add_argument("--out", default=None,
                               help="write the rows as JSON to this path")

    bench_plans = sub.add_parser(
        "bench-plans",
        help="time the per-sweep generic path vs the allocation-free "
             "execution-plan path on iterative stencils",
    )
    bench_plans.add_argument("--benchmarks", nargs="*", default=None,
                             help="benchmark keys (default: the iterative set)")
    bench_plans.add_argument("--steps", type=int, default=64,
                             help="timesteps per benchmark run")
    bench_plans.add_argument("--repeats", type=int, default=3,
                             help="timing repetitions (best wall kept)")
    bench_plans.add_argument("--workers", type=int, default=1,
                             help="also time the fused plan with this many "
                                  "parallel tile-replay workers (adds the "
                                  "par/par-x columns; results must stay "
                                  "bit-identical)")
    bench_plans.add_argument("--out", default=None,
                             help="write the rows as JSON to this path")
    bench_plans.add_argument("--shape", type=int, nargs="*", default=None,
                             help="override the benchmark grid for its "
                                  "dimensionality (e.g. --shape 256 256)")
    bench_plans.add_argument("--tile", nargs="*", default=None,
                             metavar="EXTENT",
                             help="fixed tape-optimizer tile extents for "
                                  "the fused path, or 'off' (unfused) / "
                                  "'auto' (heuristic); default: "
                                  "per-benchmark warm-replay search")
    bench_plans.add_argument("--compare", default=None, metavar="BASELINE",
                             help="diff steady-state times against a "
                                  "recorded BENCH_plans.json; exit non-zero "
                                  "on >25%% regression")
    bench_plans.add_argument("--assert-speedup", type=float, default=None,
                             metavar="X",
                             help="exit non-zero unless every row's plan "
                                  "speedup is at least X (CI smoke check)")
    bench_plans.add_argument("--assert-fused", action="store_true",
                             help="exit non-zero unless every row formed at "
                                  "least one fused region (CI fuse smoke)")

    from .engine.store import DEFAULT_STORE_PATH

    for name, helptext in (
        ("explore", "rank a benchmark's rewrite variants on the parallel engine"),
        ("tune", "explore + tune a benchmark on the parallel engine"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("benchmark", nargs="?", default="stencil2d",
                       help="benchmark key (default: stencil2d)")
        p.add_argument("--device", default="nvidia",
                       choices=["nvidia", "amd", "arm"])
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial, inline evaluation)")
        p.add_argument("--budget", type=int, default=200,
                       help="evaluation budget per kernel variant")
        p.add_argument("--scale", type=float, default=1.0,
                       help="scale factor applied to the paper's input size")
        p.add_argument("--store", default=DEFAULT_STORE_PATH,
                       help="SQLite results store (memoises across runs)")
        p.add_argument("--session", default=None,
                       help="name this search session (default: generated)")
        p.add_argument("--resume", default=None, metavar="SESSION_ID",
                       help="re-run a recorded session, skipping every "
                            "already-evaluated point")
        p.add_argument("--validate", action="store_true",
                       help="compile + functionally cross-check every variant "
                            "in the workers")
        p.add_argument("--no-prune", action="store_true",
                       help="disable cost-model pruning of dominated variants")
        p.add_argument("--prune-margin", type=float, default=4.0,
                       help="prune variants estimated worse than MARGIN × the best")
        p.add_argument("--seed", type=int, default=0)
        if name == "tune":
            p.add_argument("--strategy", default="exhaustive",
                           choices=["exhaustive", "random", "hillclimb"])
            p.add_argument("--restarts", type=int, default=4,
                           help="hill-climbing basin walks")
            p.add_argument("--scorer", default="simulator",
                           choices=["simulator", "measured"],
                           help="simulator = deterministic device model; "
                                "measured = time the compiled kernel in the workers")
            p.add_argument("--measure-runs", type=int, default=3)
            p.add_argument("--measure-size", type=int, default=256,
                           help="target grid extent per dimension for measured scoring")

    serve = sub.add_parser(
        "serve",
        help="run the micro-batching execution service as a TCP endpoint",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7457)
    serve.add_argument("--device", default="nvidia",
                       choices=["nvidia", "amd", "arm"])
    serve.add_argument("--store", default=DEFAULT_STORE_PATH,
                       help="results store supplying tuned kernel variants")
    serve.add_argument("--no-store", action="store_true",
                       help="serve without consulting a results store")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batching window in milliseconds")
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--shards", type=int, default=0,
                       help="pre-fork this many worker processes and "
                            "dispatch micro-batched groups to them "
                            "round-robin over shared memory (0 = execute "
                            "in-process)")
    serve.add_argument("--crosscheck", action="store_true",
                       help="verify every batched result against "
                            "single-request execution (bit-identical)")
    serve.add_argument("--auto-tune", action="store_true",
                       help="background-tune cold benchmark digests")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="exit after serving this many requests "
                            "(smoke tests); default: serve forever")
    serve.add_argument("--prewarm", nargs="*", default=None, metavar="BENCH",
                       help="capture execution plans before accepting "
                            "connections: 'suite' (or no value) prewarms "
                            "every registered benchmark, otherwise the "
                            "named keys — first-request latency then "
                            "excludes plan_build_s")
    serve.add_argument("--prewarm-shape", type=int, nargs="*", default=None,
                       help="input grid extents the prewarmed plans are "
                            "sized for (plans are shape-bound)")
    serve.add_argument("--prewarm-batch", type=int, nargs="*", default=None,
                       metavar="CAP",
                       help="also capture the batched plans for these "
                            "micro-batch capacities (rounded up to the "
                            "batcher's powers of two)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="expose a telemetry HTTP sidecar on this port "
                            "(/metrics Prometheus text, /healthz liveness, "
                            "/trace recent request traces); 0 picks a free "
                            "port; default: disabled")
    serve.add_argument("--http-port", type=int, default=None,
                       help="also expose the HTTP transport on this port "
                            "(POST /v1/execute and /v1/iterate, JSON or "
                            "binary grid bodies) sharing the same batcher; "
                            "default: TCP only")
    serve.add_argument("--auth-key", default=None,
                       help="require this shared key on every request "
                            "(HTTP 'Authorization: Bearer', TCP 'auth' "
                            "field); default: no authentication")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="reject new work in-band (AdmissionRejected + "
                            "retry_after_ms) once this many requests are "
                            "queued; arriving higher-priority work evicts "
                            "queued lower-priority work instead; default: "
                            "unbounded")
    serve.add_argument("--max-inflight-per-digest", type=int, default=None,
                       help="per-digest admission limit: at most this many "
                            "admitted-but-unfinished requests per "
                            "structural digest; default: unbounded")
    serve.add_argument("--shard-timeout-s", type=float, default=30.0,
                       help="per-round-trip shard watchdog: a shard that "
                            "neither answers nor dies within this window is "
                            "failed out of rotation and respawned")
    serve.add_argument("--max-respawns", type=int, default=5,
                       help="respawn budget per shard before the supervisor "
                            "gives up on it (exponential backoff between "
                            "attempts)")
    serve.add_argument("--no-supervise", action="store_true",
                       help="disable the shard supervisor (failed shards "
                            "stay down; groups fall back to the local path)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive per-digest failures before the "
                            "circuit breaker quarantines the digest to the "
                            "generic local path (0 disables)")
    serve.add_argument("--breaker-cooldown-s", type=float, default=5.0,
                       help="seconds a quarantined digest waits before a "
                            "half-open probe is allowed through")
    serve.add_argument("--job-dir", default=None, metavar="DIR",
                       help="durable-job state directory: multi-timestep "
                            "jobs checkpoint here and are resumed from it "
                            "on restart (default: a per-process temp dir, "
                            "durable for the process only)")
    serve.add_argument("--checkpoint-every", type=int, default=16,
                       metavar="STEPS",
                       help="default checkpoint segment length for durable "
                            "jobs — a crash loses at most this many steps "
                            "(default 16; per-job override on submission)")
    serve.add_argument("--job-ttl-s", type=float, default=3600.0,
                       help="retention for finished jobs: terminal job "
                            "state and results older than this are purged "
                            "from memory and disk (default 3600)")
    serve.add_argument("--max-resident-jobs", type=int, default=64,
                       help="in-memory result cap: only this many completed "
                            "results stay resident, the rest reload from "
                            "their result file on demand (default 64)")
    serve.add_argument("--inject", default=None, metavar="SPEC",
                       help="arm deterministic fault injection, e.g. "
                            "'shard.crash_before_reply:p=0.02:seed=7' or "
                            "'plan.capture_fail:at=3' (comma-separate "
                            "points; exported to shard processes)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds to wait for open connections at "
                            "shutdown before shedding still-queued requests "
                            "with DeadlineExceeded (default 10)")
    serve.add_argument("--max-request-bytes", type=int,
                       default=32 * 1024 * 1024,
                       help="reject a TCP request line or HTTP body larger "
                            "than this with an in-band RequestTooLarge "
                            "error (default 32 MiB)")
    serve.add_argument("--log-level", default="info",
                       choices=["debug", "info", "warning", "error"],
                       help="stdlib logging level for the 'repro' logger")
    serve.add_argument("--log-json", action="store_true",
                       help="emit log records as JSON lines (one object "
                            "per line) instead of human-readable text")

    submit = sub.add_parser("submit", help="send requests to a running service")
    submit.add_argument("benchmark", nargs="?", default="stencil2d")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7457)
    submit.add_argument("--shape", type=int, nargs="*", default=None,
                        help="input grid extents (generated server-side)")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--count", type=int, default=1,
                        help="pipeline this many requests on one connection")
    submit.add_argument("--show-result", action="store_true",
                        help="fetch and print the result grid")

    loadgen = sub.add_parser(
        "loadgen",
        help="benchmark batched serving against the per-request serial baseline",
    )
    loadgen.add_argument("benchmark", nargs="?", default="stencil2d")
    loadgen.add_argument("--requests", type=int, default=64,
                         help="concurrent requests per timed stream")
    loadgen.add_argument("--shape", type=int, nargs="*", default=None,
                         help="input grid extents (default: small grids)")
    loadgen.add_argument("--distinct", action="store_true",
                         help="distinct-seed traffic instead of identical requests")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--window-ms", type=float, default=5.0)
    loadgen.add_argument("--max-batch", type=int, default=64)
    loadgen.add_argument("--shards", type=int, default=0,
                         help="drive a sharded in-process service with this "
                              "many pre-forked worker processes (ignored "
                              "with --connect; the server chooses there)")
    loadgen.add_argument("--repeats", type=int, default=3,
                         help="timed stream repetitions (best wall kept)")
    loadgen.add_argument("--store", default=None,
                         help="results store supplying tuned kernel variants")
    loadgen.add_argument("--device", default="nvidia",
                         choices=["nvidia", "amd", "arm"])
    loadgen.add_argument("--connect", default=None, metavar="HOST:PORT",
                         help="drive a running `repro serve` endpoint "
                              "instead of an in-process service")
    loadgen.add_argument("--out", default=None,
                         help="write the report as JSON to this path")
    loadgen.add_argument("--assert-batched", action="store_true",
                         help="exit non-zero unless batching occurred with "
                              "the expected compilation count — one, or one "
                              "per traffic-serving shard (CI smoke check)")
    loadgen.add_argument("--assert-sharded", action="store_true",
                         help="exit non-zero unless every shard served "
                              "traffic (CI sharded smoke check)")
    loadgen.add_argument("--mix", default=None, metavar="SPEC",
                         help="mixed-priority replay mode: priority weights "
                              "like high:1,normal:8,batch:4 — reports "
                              "per-priority p50/p99 and shed/reject counts "
                              "instead of the serial-baseline comparison")
    loadgen.add_argument("--deadline-ms", type=float, default=None,
                         help="server-side freshness bound stamped on every "
                              "mixed-mode request; stale queued work is "
                              "shed with DeadlineExceeded")
    loadgen.add_argument("--transport", default="tcp",
                         choices=["tcp", "http"],
                         help="wire protocol for --connect in mixed mode "
                              "(http drives the /v1/execute endpoint "
                              "through the client library)")
    loadgen.add_argument("--auth-key", default=None,
                         help="shared key for an authenticated endpoint "
                              "(mixed mode with --connect)")
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="client worker threads in mixed mode with "
                              "--connect (default 8)")
    loadgen.add_argument("--max-queue-depth", type=int, default=None,
                         help="admission queue-depth cap for the in-process "
                              "mixed-mode service")
    loadgen.add_argument("--chaos", default=None, metavar="SPEC",
                         help="run the chaos gate instead of the benchmark "
                              "comparison: a schedule of real shard "
                              "failures, e.g. 'kill-shard:t=2,hang-shard:"
                              "t=4' (optionally 'shard=N' to pick the "
                              "victim)")
    loadgen.add_argument("--duration-s", type=float, default=6.0,
                         help="chaos mode: seconds of sustained load")
    loadgen.add_argument("--shard-timeout-s", type=float, default=1.0,
                         help="chaos mode: shard watchdog round-trip bound")
    loadgen.add_argument("--max-respawns", type=int, default=5,
                         help="chaos mode: supervisor respawn budget")
    loadgen.add_argument("--recovery-timeout-s", type=float, default=20.0,
                         help="chaos mode: how long to wait for every "
                              "victim shard to rejoin and serve again")
    loadgen.add_argument("--assert-chaos", action="store_true",
                         help="exit nonzero unless the chaos contract held: "
                              "zero failed/lost requests, every victim "
                              "respawned, fleet recovered (CI gate)")
    loadgen.add_argument("--chaos-p99-ms", type=float, default=None,
                         help="with --assert-chaos, also bound the "
                              "high-priority p99 latency (ms)")
    loadgen.add_argument("--assert-no-high-shed", action="store_true",
                         help="exit non-zero if any high-priority request "
                              "was shed, rejected or failed (CI check; "
                              "mixed mode only)")
    loadgen.add_argument("--job-drill", action="store_true",
                         help="run the job-durability drill instead: spawn "
                              "a serve subprocess with --job-dir, submit a "
                              "long checkpointed job over authenticated "
                              "HTTP, SIGKILL the server mid-trajectory, "
                              "restart it, and verify the job resumes and "
                              "finishes bit-identically")
    loadgen.add_argument("--steps", type=int, default=512,
                         help="job-drill mode: trajectory length of the "
                              "durable job (default 512)")
    loadgen.add_argument("--checkpoint-every", type=int, default=8,
                         help="job-drill mode: checkpoint segment length "
                              "(default 8)")
    loadgen.add_argument("--job-dir", default=None, metavar="DIR",
                         help="job-drill mode: durable state directory "
                              "shared by both server incarnations (default: "
                              "a temp dir, removed on success)")
    loadgen.add_argument("--kill-after-steps", type=int, default=None,
                         help="job-drill mode: SIGKILL once this many steps "
                              "are checkpointed (default: one segment)")
    loadgen.add_argument("--drill-timeout-s", type=float, default=180.0,
                         help="job-drill mode: bound on each wait (server "
                              "ready, first checkpoint, job completion)")
    loadgen.add_argument("--assert-job-drill", action="store_true",
                         help="exit non-zero unless the durability contract "
                              "held: resumed once, completed, bit-identical "
                              "result, checkpoint/resume counters visible "
                              "in /metrics (CI gate)")

    stats = sub.add_parser(
        "stats",
        help="dump compilation-cache and results-store counters as one JSON blob",
    )
    stats.add_argument("--store", default=DEFAULT_STORE_PATH)

    trace = sub.add_parser(
        "trace",
        help="fetch recent request-lifecycle traces from a running service",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, default=7457)
    trace.add_argument("--slow", action="store_true",
                       help="only traces over the service's slow-request "
                            "threshold")
    trace.add_argument("--limit", type=int, default=None,
                       help="at most this many traces (most recent first)")
    trace.add_argument("--json", action="store_true",
                       help="print the raw JSON reply instead of the "
                            "per-stage breakdown")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "figure7": _cmd_figure7,
        "figure8": _cmd_figure8,
        "kernel": _cmd_kernel,
        "verify": _cmd_verify,
        "bench-backend": _cmd_bench_backend,
        "bench-plans": _cmd_bench_plans,
        "explore": _cmd_explore,
        "tune": _cmd_tune,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "loadgen": _cmd_loadgen,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
