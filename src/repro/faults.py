"""Deterministic fault injection for the serving and backend tiers.

The robustness layer (shard supervision, digest circuit breakers, chaos
loadgen) needs failures it can *schedule*: a shard that crashes before its
reply on exactly the third group, an allocator that fails 2% of the time
under a fixed seed, a store that reports ``database is locked`` once.  This
module provides named **injection points** that production code guards with
a two-token check::

    from repro import faults

    if faults.ARMED and faults.should_fail("pool.alloc_fail"):
        raise MemoryError("fault injected: pool.alloc_fail")

``ARMED`` is a module-level bool that is ``False`` unless a schedule has
been armed, so the disarmed hot path costs one attribute load and a branch
— no allocation, no dict lookup, no function call.  Tests assert this with
``tracemalloc``.

**Schedules** are strings of comma-separated point specs::

    shard.crash_before_reply:p=0.02:seed=7
    shard.hang:at=3
    store.locked:at=1:times=2

Each spec names a registered point plus qualifiers:

``p=<float>``
    Probability per hit, drawn from a private ``random.Random`` seeded by
    ``seed`` (default 0) — the firing pattern is a pure function of the
    seed and the hit sequence, so runs replay exactly.
``at=<int>``
    Fire on the Nth hit (1-based).  Fires once by default; raise ``times``
    to keep firing on subsequent hits.
``times=<int>``
    Maximum number of fires (default unlimited for ``p=``, 1 for ``at=``).
    A bare point name with no qualifiers fires on every hit.

Arming happens three ways, all equivalent: the ``REPRO_INJECT``
environment variable (read at import, which is how spawned shard children
inherit the schedule), :func:`arm` (used by ``serve --inject``, which also
exports the env var so its shard processes arm themselves), or directly in
tests.  :func:`disarm` restores the zero-overhead state.
"""

from __future__ import annotations

import os
import random
import threading
from typing import Dict, List, Optional

__all__ = [
    "ARMED",
    "POINTS",
    "FaultSpecError",
    "arm",
    "disarm",
    "fired",
    "hits",
    "should_fail",
    "snapshot",
]

#: Every injection point production code guards.  Arming an unknown point
#: is an error — a typo in a chaos schedule must not silently no-op.
POINTS = (
    "shard.crash_before_reply",
    "shard.hang",
    "pool.alloc_fail",
    "plan.capture_fail",
    "replay.chunk_error",
    "store.locked",
    "job.crash_after_checkpoint",
    "job.checkpoint_corrupt",
    "wire.payload_corrupt",
)

#: The hot-path guard.  ``False`` unless a schedule is armed.
ARMED = False

ENV_VAR = "REPRO_INJECT"


class FaultSpecError(ValueError):
    """A fault schedule string failed to parse."""


class _PointSchedule:
    """Deterministic firing schedule for one injection point."""

    __slots__ = ("point", "p", "seed", "at", "times", "hits", "fires", "_rng")

    def __init__(self, point: str, p: Optional[float] = None,
                 seed: int = 0, at: Optional[int] = None,
                 times: Optional[int] = None) -> None:
        self.point = point
        self.p = p
        self.seed = seed
        self.at = at
        self.times = times
        self.hits = 0
        self.fires = 0
        self._rng = random.Random(seed)

    def check(self) -> bool:
        self.hits += 1
        if self.times is not None and self.fires >= self.times:
            return False
        fire = False
        if self.at is not None:
            fire = self.hits >= self.at
        if self.p is not None:
            # Draw on every hit so the sequence is a pure function of the
            # seed and hit count, independent of prior fires.
            draw = self._rng.random()
            fire = fire or draw < self.p
        if fire:
            self.fires += 1
        return fire

    def describe(self) -> Dict[str, object]:
        return {
            "point": self.point,
            "p": self.p,
            "seed": self.seed,
            "at": self.at,
            "times": self.times,
            "hits": self.hits,
            "fires": self.fires,
        }


_LOCK = threading.Lock()
_SCHEDULES: Dict[str, _PointSchedule] = {}


def parse_schedule(spec: str) -> List[_PointSchedule]:
    """Parse ``"point:k=v:...,point:k=v"`` into point schedules."""
    schedules: List[_PointSchedule] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        point = fields[0].strip()
        if point not in POINTS:
            raise FaultSpecError(
                f"unknown injection point {point!r}; known points: "
                + ", ".join(POINTS))
        kwargs: Dict[str, object] = {}
        for field in fields[1:]:
            if "=" not in field:
                raise FaultSpecError(
                    f"bad qualifier {field!r} in {part!r} (want key=value)")
            key, _, value = field.partition("=")
            key = key.strip()
            try:
                if key == "p":
                    kwargs["p"] = float(value)
                elif key in ("seed", "at", "times"):
                    kwargs[key] = int(value)
                else:
                    raise FaultSpecError(
                        f"unknown qualifier {key!r} in {part!r} "
                        "(want p=, seed=, at=, times=)")
            except ValueError as exc:
                if isinstance(exc, FaultSpecError):
                    raise
                raise FaultSpecError(
                    f"bad value for {key!r} in {part!r}: {value!r}") from exc
        if "p" not in kwargs and "at" not in kwargs:
            # Bare point name: fire on every hit (until ``times`` runs out).
            kwargs["at"] = 1
        elif "at" in kwargs and "times" not in kwargs:
            # ``at=N`` alone means "fire once, on the Nth hit".
            kwargs["times"] = 1
        schedules.append(_PointSchedule(point, **kwargs))  # type: ignore[arg-type]
    if not schedules:
        raise FaultSpecError(f"empty fault schedule: {spec!r}")
    return schedules


def arm(spec: str, *, export: bool = False) -> None:
    """Arm the schedule ``spec``; with ``export=True`` also set the env var
    so spawned subprocesses (shards) arm themselves at import."""
    global ARMED
    schedules = parse_schedule(spec)
    with _LOCK:
        _SCHEDULES.clear()
        for schedule in schedules:
            _SCHEDULES[schedule.point] = schedule
        ARMED = True
    if export:
        os.environ[ENV_VAR] = spec


def disarm() -> None:
    """Drop every schedule and restore the zero-overhead disarmed state."""
    global ARMED
    with _LOCK:
        _SCHEDULES.clear()
        ARMED = False
    os.environ.pop(ENV_VAR, None)


def should_fail(point: str) -> bool:
    """Record a hit on ``point`` and report whether it should fire.

    Callers must guard with ``faults.ARMED`` first — this function is only
    cheap relative to a failure, not relative to the hot path.
    """
    with _LOCK:
        schedule = _SCHEDULES.get(point)
        if schedule is None:
            return False
        return schedule.check()


def fired(point: str) -> int:
    """How many times ``point`` has fired since it was armed."""
    with _LOCK:
        schedule = _SCHEDULES.get(point)
        return schedule.fires if schedule is not None else 0


def hits(point: str) -> int:
    """How many times ``point`` has been checked since it was armed."""
    with _LOCK:
        schedule = _SCHEDULES.get(point)
        return schedule.hits if schedule is not None else 0


def snapshot() -> List[Dict[str, object]]:
    """Describe every armed schedule (for ``repro stats`` / debugging)."""
    with _LOCK:
        return [schedule.describe() for schedule in _SCHEDULES.values()]


def _arm_from_env() -> None:
    spec = os.environ.get(ENV_VAR)
    if spec:
        arm(spec)


_arm_from_env()
