"""A small OpenCL-C abstract syntax tree.

The code generator builds statements out of these nodes and renders them with
consistent indentation.  The AST is intentionally minimal — just enough to
express the kernels Lift produces for stencils: declarations, assignments,
``for`` loops, conditionals, barriers and raw statements for user-function
bodies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class Node:
    """Base class of all OpenCL-C AST nodes."""

    def render(self, indent: int = 0) -> str:
        raise NotImplementedError

    def _pad(self, indent: int) -> str:
        return "    " * indent


class Comment(Node):
    def __init__(self, text: str) -> None:
        self.text = text

    def render(self, indent: int = 0) -> str:
        return f"{self._pad(indent)}/* {self.text} */"


class RawStatement(Node):
    def __init__(self, code: str) -> None:
        self.code = code

    def render(self, indent: int = 0) -> str:
        return f"{self._pad(indent)}{self.code}"


class VarDecl(Node):
    def __init__(self, c_type: str, name: str, init: Optional[str] = None,
                 qualifier: str = "") -> None:
        self.c_type = c_type
        self.name = name
        self.init = init
        self.qualifier = qualifier

    def render(self, indent: int = 0) -> str:
        prefix = f"{self.qualifier} " if self.qualifier else ""
        suffix = f" = {self.init}" if self.init is not None else ""
        return f"{self._pad(indent)}{prefix}{self.c_type} {self.name}{suffix};"


class ArrayDecl(Node):
    def __init__(self, c_type: str, name: str, length: str, qualifier: str = "") -> None:
        self.c_type = c_type
        self.name = name
        self.length = length
        self.qualifier = qualifier

    def render(self, indent: int = 0) -> str:
        prefix = f"{self.qualifier} " if self.qualifier else ""
        return f"{self._pad(indent)}{prefix}{self.c_type} {self.name}[{self.length}];"


class Assign(Node):
    def __init__(self, target: str, value: str) -> None:
        self.target = target
        self.value = value

    def render(self, indent: int = 0) -> str:
        return f"{self._pad(indent)}{self.target} = {self.value};"


class Block(Node):
    def __init__(self, statements: Optional[Sequence[Node]] = None) -> None:
        self.statements: List[Node] = list(statements or [])

    def add(self, node: Node) -> None:
        self.statements.append(node)

    def render(self, indent: int = 0) -> str:
        return "\n".join(stmt.render(indent) for stmt in self.statements)


class ForLoop(Node):
    """``for (int var = start; var < bound; var += step) { body }``"""

    def __init__(self, var: str, start: str, bound: str, step: str = "1",
                 body: Optional[Block] = None) -> None:
        self.var = var
        self.start = start
        self.bound = bound
        self.step = step
        self.body = body or Block()

    def render(self, indent: int = 0) -> str:
        pad = self._pad(indent)
        increment = f"{self.var}++" if self.step == "1" else f"{self.var} += {self.step}"
        header = (
            f"{pad}for (int {self.var} = {self.start}; "
            f"{self.var} < {self.bound}; {increment}) {{"
        )
        body = self.body.render(indent + 1)
        return f"{header}\n{body}\n{pad}}}"


class If(Node):
    def __init__(self, condition: str, then: Optional[Block] = None,
                 otherwise: Optional[Block] = None) -> None:
        self.condition = condition
        self.then = then or Block()
        self.otherwise = otherwise

    def render(self, indent: int = 0) -> str:
        pad = self._pad(indent)
        out = f"{pad}if ({self.condition}) {{\n{self.then.render(indent + 1)}\n{pad}}}"
        if self.otherwise is not None:
            out += f" else {{\n{self.otherwise.render(indent + 1)}\n{pad}}}"
        return out


class Barrier(Node):
    """An OpenCL work-group barrier (local-memory fence)."""

    def render(self, indent: int = 0) -> str:
        return f"{self._pad(indent)}barrier(CLK_LOCAL_MEM_FENCE);"


class FunctionDef(Node):
    """A helper (non-kernel) function, e.g. an inlined user function."""

    def __init__(self, return_type: str, name: str, params: Sequence[str], body: str) -> None:
        self.return_type = return_type
        self.name = name
        self.params = list(params)
        self.body = body

    def render(self, indent: int = 0) -> str:
        pad = self._pad(indent)
        params = ", ".join(self.params)
        body_lines = "\n".join(
            f"{self._pad(indent + 1)}{line.strip()}" for line in self.body.splitlines() if line.strip()
        )
        return f"{pad}inline {self.return_type} {self.name}({params}) {{\n{body_lines}\n{pad}}}"


class KernelFunction(Node):
    """The ``__kernel`` entry point."""

    def __init__(self, name: str, params: Sequence[str], body: Optional[Block] = None) -> None:
        self.name = name
        self.params = list(params)
        self.body = body or Block()

    def render(self, indent: int = 0) -> str:
        pad = self._pad(indent)
        params = ",\n".join(f"{self._pad(indent + 2)}{p}" for p in self.params)
        header = f"{pad}__kernel void {self.name}(\n{params}) {{"
        return f"{header}\n{self.body.render(indent + 1)}\n{pad}}}"


__all__ = [
    "Node",
    "Comment",
    "RawStatement",
    "VarDecl",
    "ArrayDecl",
    "Assign",
    "Block",
    "ForLoop",
    "If",
    "Barrier",
    "FunctionDef",
    "KernelFunction",
]
