"""Memory-space bookkeeping for the code generator.

Lift allocates memory lazily while generating code: global buffers for the
kernel inputs/outputs, local (scratchpad) arrays when a ``toLocal`` copy is
requested, and private variables for accumulators.  This module centralises
name generation and local-memory accounting so the generator and the
performance model agree on how much local memory a kernel variant uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List


@dataclass
class LocalAllocation:
    """One ``__local`` array allocated by a kernel."""

    name: str
    element_type: str
    element_count: int

    @property
    def size_bytes(self) -> int:
        widths = {"float": 4, "double": 8, "int": 4}
        return self.element_count * widths.get(self.element_type, 4)


class MemoryAllocator:
    """Generates fresh names and tracks local-memory usage for one kernel."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self.local_allocations: List[LocalAllocation] = []

    def fresh(self, prefix: str) -> str:
        return f"{prefix}_{next(self._counter)}"

    def allocate_local(self, element_type: str, element_count: int,
                       prefix: str = "tile_local") -> LocalAllocation:
        allocation = LocalAllocation(self.fresh(prefix), element_type, element_count)
        self.local_allocations.append(allocation)
        return allocation

    @property
    def local_memory_bytes(self) -> int:
        return sum(a.size_bytes for a in self.local_allocations)


def flat_index(indices: List[str], extents: List[int]) -> str:
    """Row-major flattening of a multi-dimensional index."""
    if not indices:
        return "0"
    expr = f"({indices[0]})"
    for index, extent in zip(indices[1:], extents[1:]):
        expr = f"(({expr}) * {extent} + ({index}))"
    return expr


__all__ = ["LocalAllocation", "MemoryAllocator", "flat_index"]
