"""OpenCL-C code generation from lowered Lift expressions.

The generator consumes a :class:`~repro.rewriting.strategies.LoweredProgram`
(produced by the lowering strategies) with concrete input types and emits an
OpenCL kernel.  Data-layout primitives (``pad``, ``slide``, ``zip``,
``transpose``, ...) never generate code: they become views
(:mod:`repro.views`) whose index arithmetic is folded into the final memory
accesses, exactly as described in Section 5 of the paper.

Two kernel shapes are supported, matching the two lowering strategies:

* **naive / global** — a nest of ``mapGlb`` primitives: one work-item per
  output element, every neighbourhood element read straight from global
  memory;
* **overlapped tiling** — a nest of ``mapWrg`` primitives over tiles with a
  nest of ``mapLcl`` primitives inside; when the strategy stages the tile
  through local memory the generator emits the cooperative copy loops and the
  work-group barrier.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ir import Expr, FunCall, Lambda, Literal, Param, UserFun
from ..core.primitives.algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Id,
    Join,
    Map,
    Reduce,
    Split,
    Transpose,
    TupleCons,
    Zip,
)
from ..core.primitives.opencl import (
    MapGlb,
    MapLcl,
    MapSeq,
    MapWrg,
    ReduceSeq,
    ReduceUnroll,
    ToGlobal,
    ToLocal,
    ToPrivate,
)
from ..core.primitives.stencil import Pad, PadConstant, Slide
from ..core.typecheck import check_program
from ..core.types import ArrayType, Type
from ..rewriting.strategies import LoweredProgram
from ..views.view import (
    View,
    ViewError,
    ViewGenerated,
    ViewJoin,
    ViewMapped,
    ViewMemory,
    ViewPad,
    ViewPadConstant,
    ViewScalar,
    ViewSlide,
    ViewSplit,
    ViewTranspose,
    ViewTuple,
    ViewZip,
)
from .kernel import KernelBuffer, OpenCLKernel
from .memory import MemoryAllocator, flat_index
from .opencl_ast import (
    Assign,
    Barrier,
    Block,
    Comment,
    ForLoop,
    FunctionDef,
    If,
    KernelFunction,
    RawStatement,
    VarDecl,
)


class CodegenError(Exception):
    """Raised when an expression cannot be compiled to OpenCL."""


def generate_kernel(
    lowered: LoweredProgram,
    input_types: Sequence[Type],
    kernel_name: str = "lift_stencil",
    local_size: Optional[Tuple[int, ...]] = None,
) -> OpenCLKernel:
    """Generate an OpenCL kernel for a lowered program with concrete input types."""
    generator = _KernelGenerator(lowered, list(input_types), kernel_name, local_size)
    return generator.generate()


class _KernelGenerator:
    def __init__(
        self,
        lowered: LoweredProgram,
        input_types: List[Type],
        kernel_name: str,
        local_size: Optional[Tuple[int, ...]],
    ) -> None:
        self.lowered = lowered
        self.program = lowered.program
        self.input_types = input_types
        self.kernel_name = kernel_name
        self.requested_local_size = local_size
        self.memory = MemoryAllocator()
        self.user_functions: Dict[str, UserFun] = {}
        self.body = Block()
        self._tolocal_view: Optional[View] = None

    # ------------------------------------------------------------------ setup
    def generate(self) -> OpenCLKernel:
        check_program(self.program, self.input_types)

        param_views: Dict[Param, View] = {}
        buffers: List[KernelBuffer] = []
        for param, type_ in zip(self.program.params, self.input_types):
            if not isinstance(type_, ArrayType):
                raise CodegenError("scalar kernel arguments are not supported yet")
            shape = [str(dim.evaluate()) for dim in type_.shape()]
            name = _sanitize(param.name)
            param_views[param] = ViewMemory(name, shape)
            buffers.append(
                KernelBuffer(name, "float", _product(type_), is_output=False)
            )

        nest = self._find_compute_nest(self.program.body)
        if nest is None:
            raise CodegenError("no mapGlb/mapWrg nest found in the lowered program")

        if isinstance(nest.fun, MapWrg):
            output_shape, global_size, local_size = self._generate_tiled(nest, param_views)
        else:
            output_shape, global_size, local_size = self._generate_naive(nest, param_views)

        out_elements = 1
        for extent in output_shape:
            out_elements *= extent
        buffers.append(KernelBuffer("output", "float", out_elements, is_output=True))

        source = self._render_source(buffers)
        return OpenCLKernel(
            name=self.kernel_name,
            source=source,
            buffers=buffers,
            global_size=global_size,
            local_size=local_size,
            local_memory_bytes=self.memory.local_memory_bytes,
            metadata={
                "strategy": self.lowered.strategy.describe(),
                "ndims": self.lowered.ndims,
                "uses_tiling": self.lowered.uses_tiling,
                "uses_local_memory": self.lowered.uses_local_memory,
                "output_shape": tuple(output_shape),
            },
        )

    # ------------------------------------------------------------- nest search
    def _find_compute_nest(self, body: Expr) -> Optional[FunCall]:
        candidates = [
            node
            for node in body.walk()
            if isinstance(node, FunCall) and isinstance(node.fun, (MapGlb, MapWrg))
        ]
        if not candidates:
            return None
        outermost = candidates[0]
        for node in candidates[1:]:
            if node.contains(outermost):
                outermost = node
        return outermost

    def _collect_nest(self, nest: FunCall, map_class) -> Tuple[List[int], Expr, Expr]:
        """Peel a ``mapX(dim)(λx. mapX(dim')( ... ))`` nest.

        Returns the list of OpenCL dimensions (outermost first), the innermost
        element function and the data argument of the outermost map.
        """
        dims: List[int] = []
        current = nest.fun
        while True:
            dims.append(current.dim)
            f = current.f
            if (
                isinstance(f, Lambda)
                and len(f.params) == 1
                and isinstance(f.body, FunCall)
                and isinstance(f.body.fun, map_class)
                and len(f.body.args) == 1
                and f.body.args[0] is f.params[0]
            ):
                current = f.body.fun
                continue
            return dims, f, nest.args[0]

    # ------------------------------------------------------------ naive kernel
    def _generate_naive(
        self, nest: FunCall, param_views: Dict[Param, View]
    ) -> Tuple[List[int], Tuple[int, ...], Optional[Tuple[int, ...]]]:
        dims, element_fn, data_arg = self._collect_nest(nest, MapGlb)
        ndims = len(dims)
        output_shape = self._output_shape(nest.type, ndims)

        self.body.add(Comment("one work-item per output element (mapGlb nest)"))
        gid_names = []
        for level, dim in enumerate(dims):
            gid = f"gid_{dim}"
            gid_names.append(gid)
            self.body.add(VarDecl("int", gid, f"get_global_id({dim})", qualifier="const"))
        for level, dim in enumerate(dims):
            self.body.add(
                RawStatement(f"if (gid_{dim} >= {output_shape[level]}) return;")
            )

        data_view = self.gen_value(data_arg, dict(param_views))
        element_view = data_view
        for gid in gid_names:
            element_view = element_view.access(gid)

        result = self._apply_element_function(element_fn, element_view, dict(param_views))
        out_index = flat_index(gid_names, output_shape)
        self.body.add(Assign(f"output[{out_index}]", result.scalar_ref()))

        global_size = tuple(reversed(output_shape))
        local_size = self.requested_local_size
        return output_shape, global_size, local_size

    # ------------------------------------------------------------ tiled kernel
    def _generate_tiled(
        self, nest: FunCall, param_views: Dict[Param, View]
    ) -> Tuple[List[int], Tuple[int, ...], Optional[Tuple[int, ...]]]:
        dims, tile_fn, tiles_arg = self._collect_nest(nest, MapWrg)
        ndims = len(dims)
        if not isinstance(tile_fn, Lambda) or len(tile_fn.params) != 1:
            raise CodegenError("expected the tile function to be a unary lambda")

        tile_size = self.lowered.tile_size
        size, step = self.lowered.stencil_size, self.lowered.stencil_step
        outputs_per_tile = (tile_size - size + step) // step
        tiles_per_dim = self._tiles_per_dim(nest.type, ndims)
        output_shape = [tiles_per_dim[d] * outputs_per_tile for d in range(ndims)]

        self.body.add(Comment("one work-group per tile (mapWrg nest), overlapped tiling"))
        wg_names, lid_names = [], []
        for level, dim in enumerate(dims):
            wg = f"wg_{dim}"
            lid = f"lid_{dim}"
            wg_names.append(wg)
            lid_names.append(lid)
            self.body.add(VarDecl("int", wg, f"get_group_id({dim})", qualifier="const"))
            self.body.add(VarDecl("int", lid, f"get_local_id({dim})", qualifier="const"))

        tiles_view = self.gen_value(tiles_arg, dict(param_views))
        tile_view = tiles_view
        for wg in wg_names:
            tile_view = tile_view.access(wg)

        env = dict(param_views)
        env[tile_fn.params[0]] = tile_view

        tile_body = tile_fn.body
        staged_view, windows_expr = self._stage_tile(tile_body, tile_view, env, ndims, tile_size, lid_names)

        inner_nest = self._find_inner_lcl_nest(tile_body)
        if inner_nest is None:
            raise CodegenError("tiled kernel without an inner mapLcl nest")
        lcl_dims, element_fn, _ = self._collect_nest(inner_nest, MapLcl)

        windows_view = self.gen_value(windows_expr, env)
        element_view = windows_view
        for lid in lid_names:
            element_view = element_view.access(lid)

        compute = Block()
        saved_body = self.body
        self.body = compute
        result = self._apply_element_function(element_fn, element_view, env)
        out_indices = [
            f"({wg} * {outputs_per_tile} + {lid})" for wg, lid in zip(wg_names, lid_names)
        ]
        out_index = flat_index(out_indices, output_shape)
        compute.add(Assign(f"output[{out_index}]", result.scalar_ref()))
        self.body = saved_body

        guard = " && ".join(f"{lid} < {outputs_per_tile}" for lid in lid_names)
        self.body.add(If(guard, compute))

        local_size = self.requested_local_size or tuple([outputs_per_tile] * ndims)
        global_size = tuple(
            tiles * loc for tiles, loc in zip(reversed(tiles_per_dim), local_size)
        )
        return output_shape, global_size, local_size

    def _stage_tile(
        self,
        tile_body: Expr,
        tile_view: View,
        env: Dict[Param, View],
        ndims: int,
        tile_size: int,
        lid_names: List[str],
    ) -> Tuple[Optional[View], Expr]:
        """Emit the local-memory copy (if any) and locate the windows expression.

        The tile body produced by the tiled strategy is
        ``mapLcl-nest(f, slideN(size, step, staged))`` where ``staged`` is the
        tile parameter itself or ``toLocal(mapLcl-nest(id))(tile)``.
        """
        tolocal_calls = [
            node
            for node in tile_body.walk()
            if isinstance(node, FunCall) and isinstance(node.fun, ToLocal)
        ]
        inner_nest = self._find_inner_lcl_nest(tile_body)
        if inner_nest is None:
            raise CodegenError("tiled kernel without an inner mapLcl nest")
        windows_expr = inner_nest.args[0]

        if not tolocal_calls:
            self._tolocal_view = None
            return None, windows_expr

        allocation = self.memory.allocate_local("float", tile_size ** ndims)
        self.body.add(Comment("cooperative copy of the tile into local memory"))
        self.body.add(
            RawStatement(
                f"__local float {allocation.name}[{allocation.element_count}];"
            )
        )

        extents = [tile_size] * ndims
        loop_vars = [f"cp_{d}" for d in range(ndims)]
        innermost = Block()
        dst_index = flat_index(loop_vars, extents)
        src_view = tile_view
        for var in loop_vars:
            src_view = src_view.access(var)
        innermost.add(Assign(f"{allocation.name}[{dst_index}]", src_view.scalar_ref()))

        loop: Block = innermost
        for depth in reversed(range(ndims)):
            lid = lid_names[depth]
            wrapped = ForLoop(
                loop_vars[depth],
                lid,
                str(tile_size),
                step=f"get_local_size({self.lowered.ndims - 1 - depth})",
                body=loop,
            )
            loop = Block([wrapped])
        for stmt in loop.statements:
            self.body.add(stmt)
        self.body.add(Barrier())

        staged_view = ViewMemory(allocation.name, [str(tile_size)] * ndims, space="local")
        self._tolocal_view = staged_view
        return staged_view, windows_expr

    def _find_inner_lcl_nest(self, tile_body: Expr) -> Optional[FunCall]:
        candidates = [
            node
            for node in tile_body.walk()
            if isinstance(node, FunCall)
            and isinstance(node.fun, MapLcl)
            and not isinstance(node.fun.f, Id)
            and not _wraps_only_id(node.fun)
        ]
        if not candidates:
            return None
        outermost = candidates[0]
        for node in candidates[1:]:
            if node.contains(outermost):
                outermost = node
        return outermost

    # ------------------------------------------------------------ value codegen
    def gen_value(self, expr: Expr, env: Dict[Param, View]) -> View:
        """Generate the view/value of an expression, emitting statements as needed."""
        if isinstance(expr, Param):
            if expr not in env:
                raise CodegenError(f"unbound parameter {expr.name!r} during code generation")
            return env[expr]

        if isinstance(expr, Literal):
            return ViewScalar(_literal_c(expr))

        if not isinstance(expr, FunCall):
            raise CodegenError(f"cannot generate code for {type(expr).__name__}")

        fun = expr.fun

        # --- data layout primitives become views -----------------------------
        if isinstance(fun, Pad):
            parent = self.gen_value(expr.args[0], env)
            size = self._size_of(expr.args[0])
            return ViewPad(parent, fun.left, fun.right, size, fun.boundary.c_template)
        if isinstance(fun, PadConstant):
            parent = self.gen_value(expr.args[0], env)
            size = self._size_of(expr.args[0])
            constant = _literal_c(fun.value) if isinstance(fun.value, Literal) else "0.0f"
            return ViewPadConstant(parent, fun.left, fun.right, size, constant)
        if isinstance(fun, Slide):
            parent = self.gen_value(expr.args[0], env)
            return ViewSlide(parent, str(fun.size), str(fun.step))
        if isinstance(fun, Split):
            parent = self.gen_value(expr.args[0], env)
            return ViewSplit(parent, str(fun.chunk))
        if isinstance(fun, Join):
            parent = self.gen_value(expr.args[0], env)
            inner = self._inner_size_of(expr.args[0])
            return ViewJoin(parent, inner)
        if isinstance(fun, Transpose):
            return ViewTranspose(self.gen_value(expr.args[0], env))
        if isinstance(fun, Zip):
            return ViewZip([self.gen_value(a, env) for a in expr.args])
        if isinstance(fun, TupleCons):
            return ViewTuple([self.gen_value(a, env) for a in expr.args])
        if isinstance(fun, At):
            return self.gen_value(expr.args[0], env).access(fun.index)
        if isinstance(fun, Get):
            return self.gen_value(expr.args[0], env).get(fun.index)
        if isinstance(fun, ArrayConstructor):
            return ViewGenerated(fun.c_expression or "0.0f", str(fun.size))
        if isinstance(fun, Id):
            return self.gen_value(expr.args[0], env)

        # --- memory space modifiers ------------------------------------------
        if isinstance(fun, ToLocal):
            if self._tolocal_view is not None:
                return self._tolocal_view
            return self._apply_layout_fn(fun.f, expr.args[0], env)
        if isinstance(fun, (ToGlobal, ToPrivate)):
            return self._apply_layout_fn(fun.f, expr.args[0], env)

        # --- reductions --------------------------------------------------------
        if isinstance(fun, (ReduceUnroll, ReduceSeq, Reduce)):
            return self._gen_reduce(fun, expr, env)

        # --- plain / lowered maps over layout functions ------------------------
        if isinstance(fun, (Map, MapSeq, MapLcl, MapGlb, MapWrg)):
            parent = self.gen_value(expr.args[0], env)
            return ViewMapped(fun.f, parent, env)

        # --- user functions -----------------------------------------------------
        if isinstance(fun, UserFun):
            return self._gen_userfun_call(fun, expr.args, env)

        # --- beta reduction ------------------------------------------------------
        if isinstance(fun, Lambda):
            inner_env = dict(env)
            for param, arg in zip(fun.params, expr.args):
                inner_env[param] = self.gen_value(arg, env)
            return self.gen_value(fun.body, inner_env)

        raise CodegenError(f"no code generation for primitive {getattr(fun, 'name', fun)!r}")

    def _apply_layout_fn(self, f, arg: Expr, env: Dict[Param, View]) -> View:
        arg_view = self.gen_value(arg, env)
        if isinstance(f, Lambda) and len(f.params) == 1:
            inner_env = dict(env)
            inner_env[f.params[0]] = arg_view
            return self.gen_value(f.body, inner_env)
        return arg_view

    def _apply_element_function(self, f, element: View, env: Dict[Param, View]) -> View:
        if isinstance(f, Lambda):
            inner_env = dict(env)
            inner_env[f.params[0]] = element
            result = self.gen_value(f.body, inner_env)
        elif isinstance(f, UserFun):
            result = self._gen_userfun_views(f, [element])
        elif isinstance(f, Id):
            result = element
        else:
            raise CodegenError(f"unsupported element function {type(f).__name__}")
        return self._as_scalar(result)

    def _as_scalar(self, view: View) -> View:
        """Squeeze trailing length-1 dimensions (e.g. the array-of-1 a reduce returns)."""
        for _ in range(4):
            try:
                view.scalar_ref()
                return view
            except ViewError:
                view = view.access(0)
        raise CodegenError("element function did not produce a scalar result")

    # ------------------------------------------------------------ reductions
    def _gen_reduce(self, fun: Reduce, expr: FunCall, env: Dict[Param, View]) -> View:
        arg = expr.args[0]
        arg_view = self.gen_value(arg, env)
        length = self._constant_length(arg)
        init_view = self.gen_value(fun.init, env) if isinstance(fun.init, Expr) else ViewScalar("0.0f")
        acc = self.memory.fresh("acc")
        self.body.add(VarDecl("float", acc, init_view.scalar_ref()))

        unroll = isinstance(fun, ReduceUnroll) or (
            not isinstance(fun, ReduceSeq) and length is not None and length <= 32
        )
        if unroll:
            if length is None:
                raise CodegenError("reduceUnroll requires a compile-time constant length")
            for i in range(length):
                element = arg_view.access(i).scalar_ref()
                self.body.add(Assign(acc, self._apply_scalar_fn(fun.f, [acc, element], env)))
        else:
            loop_var = self.memory.fresh("red_i")
            bound = str(length) if length is not None else self._size_of(arg)
            loop_body = Block()
            element = arg_view.access(loop_var).scalar_ref()
            loop_body.add(Assign(acc, self._apply_scalar_fn(fun.f, [acc, element], env)))
            self.body.add(ForLoop(loop_var, "0", bound, body=loop_body))
        return ViewScalar(acc)

    # ------------------------------------------------------------ user functions
    def _gen_userfun_call(self, fun: UserFun, args: Sequence[Expr],
                          env: Dict[Param, View]) -> View:
        arg_views = [self.gen_value(a, env) for a in args]
        return self._gen_userfun_views(fun, arg_views)

    def _gen_userfun_views(self, fun: UserFun, arg_views: Sequence[View]) -> View:
        if all(_is_scalar_view(v) for v in arg_views):
            self.user_functions[fun.name] = fun
            call = f"{fun.name}({', '.join(v.scalar_ref() for v in arg_views)})"
            return ViewScalar(call)
        # Array-valued argument (e.g. a flattened neighbourhood combined with
        # compile-time weights): inline the body, substituting indexed reads.
        return ViewScalar(self._inline_userfun(fun, arg_views))

    def _inline_userfun(self, fun: UserFun, arg_views: Sequence[View]) -> str:
        body = fun.body_c.strip()
        if not body.startswith("return") or not body.endswith(";"):
            raise CodegenError(
                f"cannot inline user function {fun.name!r} with a non-expression body"
            )
        expression = body[len("return"):].rstrip(";").strip()
        for name, view in zip(fun.param_names, arg_views):
            if _is_scalar_view(view):
                expression = re.sub(rf"\b{name}\b", f"({view.scalar_ref()})", expression)
                continue

            def substitute(match: "re.Match[str]", view=view) -> str:
                index = int(match.group(1))
                return f"({view.access(index).scalar_ref()})"

            expression = re.sub(rf"\b{name}\[(\d+)\]", substitute, expression)
        return f"({expression})"

    def _apply_scalar_fn(self, f, args: List[str], env: Dict[Param, View]) -> str:
        if isinstance(f, UserFun):
            self.user_functions[f.name] = f
            return f"{f.name}({', '.join(args)})"
        if isinstance(f, Lambda):
            inner_env = dict(env)
            for param, arg in zip(f.params, args):
                inner_env[param] = ViewScalar(arg)
            return self.gen_value(f.body, inner_env).scalar_ref()
        raise CodegenError(f"unsupported reduction operator {type(f).__name__}")

    # ------------------------------------------------------------ helpers
    def _size_of(self, expr: Expr) -> str:
        if isinstance(expr.type, ArrayType):
            return str(expr.type.size)
        raise CodegenError("expression has no array type; was the program type-checked?")

    def _inner_size_of(self, expr: Expr) -> str:
        if isinstance(expr.type, ArrayType) and isinstance(expr.type.elem_type, ArrayType):
            return str(expr.type.elem_type.size)
        raise CodegenError("join applied to a non-nested array")

    def _constant_length(self, expr: Expr) -> Optional[int]:
        if isinstance(expr.type, ArrayType) and expr.type.size.is_constant():
            return expr.type.size.evaluate()
        return None

    def _output_shape(self, nest_type: Type, ndims: int) -> List[int]:
        shape = []
        current = nest_type
        for _ in range(ndims):
            if not isinstance(current, ArrayType):
                raise CodegenError("output type has fewer dimensions than the map nest")
            shape.append(int(current.size.evaluate()))
            current = current.elem_type
        return shape

    def _tiles_per_dim(self, nest_type: Type, ndims: int) -> List[int]:
        return self._output_shape(nest_type, ndims)

    # ------------------------------------------------------------ rendering
    def _render_source(self, buffers: List[KernelBuffer]) -> str:
        parts: List[str] = [
            "// Generated by the Lift stencil reproduction "
            f"({self.lowered.strategy.describe()})",
        ]
        for fun in self.user_functions.values():
            params = ", ".join(f"float {p}" for p in fun.param_names)
            parts.append(FunctionDef("float", fun.name, [params], fun.body_c).render())

        kernel_params = []
        for buffer in buffers:
            qualifier = "" if buffer.is_output else "const "
            kernel_params.append(
                f"__global {qualifier}float* restrict {buffer.name}"
            )
        kernel = KernelFunction(self.kernel_name, kernel_params, self.body)
        parts.append(kernel.render())
        return "\n\n".join(parts) + "\n"


def _wraps_only_id(map_prim: MapLcl) -> bool:
    """True when a mapLcl nest only applies the identity (a copy nest)."""
    f = map_prim.f
    while isinstance(f, Lambda) and len(f.params) == 1 and isinstance(f.body, FunCall):
        inner = f.body.fun
        if isinstance(inner, (MapLcl, Map)) and f.body.args and f.body.args[0] is f.params[0]:
            f = inner.f
            continue
        break
    return isinstance(f, Id)


def _is_scalar_view(view: View) -> bool:
    try:
        view.scalar_ref()
        return True
    except ViewError:
        return False


def _literal_c(literal: Literal) -> str:
    value = literal.value
    if isinstance(value, float):
        return f"{value}f"
    return str(value)


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"\W", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"arg_{cleaned}"
    return cleaned


def _product(type_: ArrayType) -> int:
    total = 1
    for dim in type_.shape():
        total *= int(dim.evaluate())
    return total


__all__ = ["CodegenError", "generate_kernel"]
