"""Kernel descriptors: the artefacts produced by code generation.

An :class:`OpenCLKernel` bundles the generated source with everything a host
program (or the simulator) needs to launch it: buffer descriptions, the
ND-range, and the amount of local memory the kernel allocates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class KernelBuffer:
    """One global-memory buffer argument of a kernel."""

    name: str
    element_type: str
    element_count: int
    is_output: bool = False

    @property
    def size_bytes(self) -> int:
        widths = {"float": 4, "double": 8, "int": 4}
        return self.element_count * widths.get(self.element_type, 4)


@dataclass
class OpenCLKernel:
    """A generated OpenCL kernel plus launch metadata."""

    name: str
    source: str
    buffers: List[KernelBuffer]
    global_size: Tuple[int, ...]
    local_size: Optional[Tuple[int, ...]]
    local_memory_bytes: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def output_buffer(self) -> KernelBuffer:
        outputs = [b for b in self.buffers if b.is_output]
        if not outputs:
            raise ValueError(f"kernel {self.name} has no output buffer")
        return outputs[0]

    @property
    def work_items(self) -> int:
        total = 1
        for extent in self.global_size:
            total *= extent
        return total

    def describe(self) -> str:
        local = "x".join(map(str, self.local_size)) if self.local_size else "auto"
        return (
            f"kernel {self.name}: global={'x'.join(map(str, self.global_size))} "
            f"local={local} localMem={self.local_memory_bytes}B "
            f"buffers={[b.name for b in self.buffers]}"
        )


__all__ = ["KernelBuffer", "OpenCLKernel"]
