"""OpenCL code generation from lowered Lift expressions."""

from .kernel import KernelBuffer, OpenCLKernel
from .generator import CodegenError, generate_kernel

__all__ = ["KernelBuffer", "OpenCLKernel", "CodegenError", "generate_kernel"]
