"""The benchmark registry: Table 1 of the paper.

``ALL_BENCHMARKS`` maps benchmark keys to :class:`StencilBenchmark` instances;
``table1_rows`` regenerates the contents of Table 1; ``FIGURE7_BENCHMARKS``
and ``FIGURE8_BENCHMARKS`` select the two evaluation subsets.
"""

from __future__ import annotations

from typing import Dict, List

from .acoustic import ACOUSTIC
from .base import StencilBenchmark
from .gaussian import GAUSSIAN
from .gradient import GRADIENT
from .heat import HEAT
from .hotspot import HOTSPOT2D, HOTSPOT3D
from .jacobi import JACOBI2D_5PT, JACOBI2D_9PT, JACOBI3D_7PT, JACOBI3D_13PT
from .poisson import POISSON
from .srad import SRAD1, SRAD2
from .stencil2d import STENCIL2D

ALL_BENCHMARKS: Dict[str, StencilBenchmark] = {
    "stencil2d": STENCIL2D,
    "srad1": SRAD1,
    "srad2": SRAD2,
    "hotspot2d": HOTSPOT2D,
    "hotspot3d": HOTSPOT3D,
    "acoustic": ACOUSTIC,
    "gaussian": GAUSSIAN,
    "gradient": GRADIENT,
    "jacobi2d5pt": JACOBI2D_5PT,
    "jacobi2d9pt": JACOBI2D_9PT,
    "jacobi3d7pt": JACOBI3D_7PT,
    "jacobi3d13pt": JACOBI3D_13PT,
    "poisson": POISSON,
    "heat": HEAT,
}

#: The six benchmarks with hand-written reference kernels (Figure 7).
FIGURE7_BENCHMARKS: List[str] = [
    "acoustic",
    "hotspot2d",
    "hotspot3d",
    "srad1",
    "srad2",
    "stencil2d",
]

#: The eight single-kernel benchmarks compared against PPCG (Figure 8).
FIGURE8_BENCHMARKS: List[str] = [
    "gaussian",
    "gradient",
    "heat",
    "jacobi2d5pt",
    "jacobi2d9pt",
    "jacobi3d13pt",
    "jacobi3d7pt",
    "poisson",
]


def get_benchmark(name: str) -> StencilBenchmark:
    key = name.lower()
    if key not in ALL_BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(ALL_BENCHMARKS)}")
    return ALL_BENCHMARKS[key]


def table1_rows() -> List[Dict[str, object]]:
    """Regenerate Table 1: benchmark name, dimensionality, points, input size, #grids."""
    def size_string(benchmark: StencilBenchmark) -> str:
        default = "×".join(str(extent) for extent in benchmark.default_shape)
        if benchmark.large_shape and benchmark.large_shape != benchmark.default_shape:
            large = "×".join(str(extent) for extent in benchmark.large_shape)
            return f"{default} / {large}"
        return default

    rows = []
    for key, benchmark in ALL_BENCHMARKS.items():
        rows.append(
            {
                "key": key,
                "benchmark": benchmark.name,
                "dim": f"{benchmark.ndims}D",
                "points": benchmark.points,
                "input_size": size_string(benchmark),
                "grids": benchmark.num_grids,
            }
        )
    return rows


__all__ = [
    "ALL_BENCHMARKS",
    "FIGURE7_BENCHMARKS",
    "FIGURE8_BENCHMARKS",
    "get_benchmark",
    "table1_rows",
]
