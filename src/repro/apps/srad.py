"""SRAD benchmarks from Rodinia (Figure 7).

SRAD (Speckle Reducing Anisotropic Diffusion) denoises ultrasound images in
two kernels which the paper benchmarks separately:

* **SRAD1** computes the diffusion coefficient ``c`` for every pixel from the
  5-point neighbourhood of the image (one input grid);
* **SRAD2** updates the image from the divergence of ``c``-weighted
  derivatives; it reads the image's 5-point neighbourhood plus the coefficient
  at the centre, south and east positions (two input grids, which is why
  Table 1 lists "#grids = 2").

Both operate on Rodinia's 504×458 image — too small to saturate the big
discrete GPUs, which the paper points out in §7.1.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid

#: Rodinia's default q0 squared value for a single iteration.
Q0SQR = 0.053787
#: Diffusion update weight (Rodinia's ``lambda``).
LAMBDA = 0.5


def _srad1_python(c, n, s, w, e):
    dn, ds, dw, de = n - c, s - c, w - c, e - c
    denom = c if abs(c) > 1e-12 else 1e-12
    g2 = (dn * dn + ds * ds + dw * dw + de * de) / (denom * denom)
    lap = (dn + ds + dw + de) / denom
    num = 0.5 * g2 - (1.0 / 16.0) * lap * lap
    den = 1.0 + 0.25 * lap
    qsqr = num / (den * den)
    den2 = (qsqr - Q0SQR) / (Q0SQR * (1.0 + Q0SQR))
    coeff = 1.0 / (1.0 + den2)
    return min(1.0, max(0.0, coeff))


def _srad1_numpy(c, n, s, w, e):
    dn, ds, dw, de = n - c, s - c, w - c, e - c
    denom = np.where(np.abs(c) > 1e-12, c, 1e-12)
    g2 = (dn * dn + ds * ds + dw * dw + de * de) / (denom * denom)
    lap = (dn + ds + dw + de) / denom
    num = 0.5 * g2 - (1.0 / 16.0) * lap * lap
    den = 1.0 + 0.25 * lap
    qsqr = num / (den * den)
    den2 = (qsqr - Q0SQR) / (Q0SQR * (1.0 + Q0SQR))
    coeff = 1.0 / (1.0 + den2)
    return np.clip(coeff, 0.0, 1.0)


srad1_fn = make_userfun(
    "srad1_coeff",
    ["c", "n", "s", "w", "e"],
    (
        "float dn = n - c; float ds = s - c; float dw = w - c; float de = e - c;\n"
        "float denom = fabs(c) > 1e-12f ? c : 1e-12f;\n"
        "float g2 = (dn*dn + ds*ds + dw*dw + de*de) / (denom*denom);\n"
        "float lap = (dn + ds + dw + de) / denom;\n"
        f"float num = 0.5f*g2 - (1.0f/16.0f)*lap*lap;\n"
        "float den = 1.0f + 0.25f*lap;\n"
        "float qsqr = num / (den*den);\n"
        f"float den2 = (qsqr - {Q0SQR}f) / ({Q0SQR}f * (1.0f + {Q0SQR}f));\n"
        "float coeff = 1.0f / (1.0f + den2);\n"
        "return clamp(coeff, 0.0f, 1.0f);"
    ),
    _srad1_python,
    numpy_fn=_srad1_numpy,
)


def _srad2_python(jc, jn, js, jw, je, cc, cs, ce):
    dn, ds, dw, de = jn - jc, js - jc, jw - jc, je - jc
    divergence = cc * dn + cs * ds + cc * dw + ce * de
    return jc + 0.25 * LAMBDA * divergence


srad2_fn = make_userfun(
    "srad2_update",
    ["jc", "jn", "js", "jw", "je", "cc", "cs", "ce"],
    (
        "float dn = jn - jc; float ds = js - jc; float dw = jw - jc; float de = je - jc;\n"
        "float divergence = cc*dn + cs*ds + cc*dw + ce*de;\n"
        f"return jc + 0.25f * {LAMBDA}f * divergence;"
    ),
    _srad2_python,
)


def build_srad1() -> Lambda:
    def body(image):
        def f(nbh):
            def at2(i, j):
                return L.at(j, L.at(i, nbh))
            return FunCall(
                srad1_fn,
                at2(1, 1), at2(0, 1), at2(2, 1), at2(1, 0), at2(1, 2),
            )
        padded = L.pad_nd(1, 1, L.CLAMP, image, 2)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 2), 2)

    return L.fun([L.array_type(Float, Var("N"), Var("M"))], body, names=["image"])


def reference_srad1(image: np.ndarray) -> np.ndarray:
    p = np.pad(image, 1, mode="edge")
    n, m = image.shape
    c = p[1:1 + n, 1:1 + m]
    north = p[0:n, 1:1 + m]
    south = p[2:2 + n, 1:1 + m]
    west = p[1:1 + n, 0:m]
    east = p[1:1 + n, 2:2 + m]
    dn, ds, dw, de = north - c, south - c, west - c, east - c
    denom = np.where(np.abs(c) > 1e-12, c, 1e-12)
    g2 = (dn ** 2 + ds ** 2 + dw ** 2 + de ** 2) / denom ** 2
    lap = (dn + ds + dw + de) / denom
    num = 0.5 * g2 - (1.0 / 16.0) * lap ** 2
    den = 1.0 + 0.25 * lap
    qsqr = num / den ** 2
    den2 = (qsqr - Q0SQR) / (Q0SQR * (1.0 + Q0SQR))
    coeff = 1.0 / (1.0 + den2)
    return np.clip(coeff, 0.0, 1.0)


def build_srad2() -> Lambda:
    def body(image, coeff):
        def f(pair):
            j_nbh = L.get(0, pair)
            c_nbh = L.get(1, pair)

            def j_at(i, jj):
                return L.at(jj, L.at(i, j_nbh))

            def c_at(i, jj):
                return L.at(jj, L.at(i, c_nbh))

            return FunCall(
                srad2_fn,
                j_at(1, 1), j_at(0, 1), j_at(2, 1), j_at(1, 0), j_at(1, 2),
                c_at(1, 1), c_at(2, 1), c_at(1, 2),
            )

        j_windows = L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, image, 2), 2)
        c_windows = L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, coeff, 2), 2)
        zipped = L.zip_nd([j_windows, c_windows], 2)
        return L.map_nd(f, zipped, 2)

    return L.fun(
        [L.array_type(Float, Var("N"), Var("M")), L.array_type(Float, Var("N"), Var("M"))],
        body,
        names=["image", "coeff"],
    )


def reference_srad2(image: np.ndarray, coeff: np.ndarray) -> np.ndarray:
    pj = np.pad(image, 1, mode="edge")
    pc = np.pad(coeff, 1, mode="edge")
    n, m = image.shape
    jc = pj[1:1 + n, 1:1 + m]
    jn = pj[0:n, 1:1 + m]
    js = pj[2:2 + n, 1:1 + m]
    jw = pj[1:1 + n, 0:m]
    je = pj[1:1 + n, 2:2 + m]
    cc = pc[1:1 + n, 1:1 + m]
    cs = pc[2:2 + n, 1:1 + m]
    ce = pc[1:1 + n, 2:2 + m]
    dn, ds, dw, de = jn - jc, js - jc, jw - jc, je - jc
    divergence = cc * dn + cs * ds + cc * dw + ce * de
    return jc + 0.25 * LAMBDA * divergence


def _srad1_inputs(shape, seed) -> List[np.ndarray]:
    return [random_grid(shape, seed, scale=1.0) + 0.5]


def _srad2_inputs(shape, seed) -> List[np.ndarray]:
    image = random_grid(shape, seed, scale=1.0) + 0.5
    coeff = np.clip(random_grid(shape, seed + 1), 0.0, 1.0)
    return [image, coeff]


SRAD1 = StencilBenchmark(
    name="SRAD1",
    ndims=2,
    points=5,
    num_grids=1,
    default_shape=(504, 458),
    build_program=build_srad1,
    reference=reference_srad1,
    make_inputs=_srad1_inputs,
    flops_per_output=30.0,
    in_figure7=True,
    stencil_extent=3,
    description="Rodinia SRAD kernel 1: diffusion coefficient",
)

SRAD2 = StencilBenchmark(
    name="SRAD2",
    ndims=2,
    points=3,
    num_grids=2,
    default_shape=(504, 458),
    build_program=build_srad2,
    reference=reference_srad2,
    make_inputs=_srad2_inputs,
    flops_per_output=16.0,
    in_figure7=True,
    stencil_extent=3,
    description="Rodinia SRAD kernel 2: image update from coefficient divergence",
)


__all__ = [
    "SRAD1",
    "SRAD2",
    "build_srad1",
    "build_srad2",
    "reference_srad1",
    "reference_srad2",
]
