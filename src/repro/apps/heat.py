"""Heat benchmark (7-point 3D stencil, Figure 8).

A single explicit time step of the 3D heat equation, using the 7-point
(centre + 6 face neighbours) finite-difference discretisation.  On Nvidia with
the large input this is the benchmark where the paper reports the biggest win
over PPCG (4.3×), with the best Lift kernel performing no tiling and only two
output elements per thread.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid

#: Thermal diffusion coefficient of the explicit update.
ALPHA = 0.125

heat_fn = make_userfun(
    "heat7pt",
    ["c", "xm", "xp", "ym", "yp", "zm", "zp"],
    f"return c + {ALPHA}f * (xm + xp + ym + yp + zm + zp - 6.0f * c);",
    lambda c, xm, xp, ym, yp, zm, zp: c + ALPHA * (xm + xp + ym + yp + zm + zp - 6.0 * c),
)


def build_heat() -> Lambda:
    def body(grid):
        def f(nbh):
            def at3(dz, dy, dx):
                return L.at(1 + dx, L.at(1 + dy, L.at(1 + dz, nbh)))
            return FunCall(
                heat_fn,
                at3(0, 0, 0),
                at3(0, 0, -1),
                at3(0, 0, 1),
                at3(0, -1, 0),
                at3(0, 1, 0),
                at3(-1, 0, 0),
                at3(1, 0, 0),
            )
        padded = L.pad_nd(1, 1, L.CLAMP, grid, 3)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 3), 3)

    return L.fun([L.array_type(Float, Var("D"), Var("N"), Var("M"))], body, names=["grid"])


def reference_heat(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 1, mode="edge")
    d, n, m = grid.shape
    c = p[1:1 + d, 1:1 + n, 1:1 + m]
    neighbours = (
        p[1:1 + d, 1:1 + n, 0:m] + p[1:1 + d, 1:1 + n, 2:2 + m]
        + p[1:1 + d, 0:n, 1:1 + m] + p[1:1 + d, 2:2 + n, 1:1 + m]
        + p[0:d, 1:1 + n, 1:1 + m] + p[2:2 + d, 1:1 + n, 1:1 + m]
    )
    return c + ALPHA * (neighbours - 6.0 * c)


def _inputs(shape, seed) -> List[np.ndarray]:
    return [random_grid(shape, seed)]


HEAT = StencilBenchmark(
    name="Heat",
    ndims=3,
    points=7,
    num_grids=1,
    default_shape=(256, 256, 256),
    small_shape=(256, 256, 256),
    large_shape=(512, 512, 512),
    build_program=build_heat,
    reference=reference_heat,
    make_inputs=_inputs,
    flops_per_output=10.0,
    in_figure8=True,
    stencil_extent=3,
    description="7-point 3D heat-equation step (Rawat et al.)",
)


__all__ = ["HEAT", "build_heat", "reference_heat"]
