"""The stencil benchmark suite (Table 1 of the paper).

Every benchmark provides its Lift expression, an independent NumPy golden
implementation (used as the correctness oracle), input generators, and the
metadata (dimensionality, stencil points, input sizes, number of grids)
reported in Table 1.
"""

from .base import StencilBenchmark
from .suite import (
    ALL_BENCHMARKS,
    FIGURE7_BENCHMARKS,
    FIGURE8_BENCHMARKS,
    get_benchmark,
    table1_rows,
)

__all__ = [
    "StencilBenchmark",
    "ALL_BENCHMARKS",
    "FIGURE7_BENCHMARKS",
    "FIGURE8_BENCHMARKS",
    "get_benchmark",
    "table1_rows",
]
