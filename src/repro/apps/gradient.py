"""Gradient benchmark (5-point 2D, Figure 8).

Computes the local gradient magnitude of a scalar field — a common building
block of edge-detection pipelines and one of the 2D kernels from Rawat et al.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid


gradient_fn = make_userfun(
    "gradient5pt",
    ["c", "n", "s", "w", "e"],
    "return sqrt((c - n) * (c - n) + (c - s) * (c - s) + "
    "(c - w) * (c - w) + (c - e) * (c - e));",
    lambda c, n, s, w, e: math.sqrt((c - n) ** 2 + (c - s) ** 2 + (c - w) ** 2 + (c - e) ** 2),
    numpy_fn=lambda c, n, s, w, e: np.sqrt(
        (c - n) ** 2 + (c - s) ** 2 + (c - w) ** 2 + (c - e) ** 2
    ),
)


def build_gradient() -> Lambda:
    def body(grid):
        def f(nbh):
            center = L.at(1, L.at(1, nbh))
            north = L.at(1, L.at(0, nbh))
            south = L.at(1, L.at(2, nbh))
            west = L.at(0, L.at(1, nbh))
            east = L.at(2, L.at(1, nbh))
            return FunCall(gradient_fn, center, north, south, west, east)
        padded = L.pad_nd(1, 1, L.CLAMP, grid, 2)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 2), 2)

    return L.fun([L.array_type(Float, Var("N"), Var("M"))], body, names=["grid"])


def reference_gradient(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 1, mode="edge")
    n, m = grid.shape
    c = p[1:1 + n, 1:1 + m]
    north = p[0:n, 1:1 + m]
    south = p[2:2 + n, 1:1 + m]
    west = p[1:1 + n, 0:m]
    east = p[1:1 + n, 2:2 + m]
    return np.sqrt((c - north) ** 2 + (c - south) ** 2 + (c - west) ** 2 + (c - east) ** 2)


def _inputs(shape, seed) -> List[np.ndarray]:
    return [random_grid(shape, seed)]


GRADIENT = StencilBenchmark(
    name="Gradient",
    ndims=2,
    points=5,
    num_grids=1,
    default_shape=(4096, 4096),
    small_shape=(4096, 4096),
    large_shape=(8192, 8192),
    build_program=build_gradient,
    reference=reference_gradient,
    make_inputs=_inputs,
    flops_per_output=13.0,
    in_figure8=True,
    stencil_extent=3,
    description="5-point gradient magnitude (Rawat et al.)",
)


__all__ = ["GRADIENT", "build_gradient", "reference_gradient"]
