"""Stencil2D benchmark from the SHOC suite (9-point 2D, Figure 7).

SHOC's Stencil2D applies a weighted 9-point stencil: the centre, the four
cardinal neighbours and the four diagonal neighbours each get their own
weight.  The paper uses a 4098×4098 input (the SHOC default plus halo).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid

#: SHOC's default weights.
CENTER_WEIGHT = 0.25
CARDINAL_WEIGHT = 0.15
DIAGONAL_WEIGHT = 0.05

stencil2d_fn = make_userfun(
    "shoc_stencil2d",
    ["c", "n", "s", "w", "e", "nw", "ne", "sw", "se"],
    f"return {CENTER_WEIGHT}f * c + {CARDINAL_WEIGHT}f * (n + s + w + e) + "
    f"{DIAGONAL_WEIGHT}f * (nw + ne + sw + se);",
    lambda c, n, s, w, e, nw, ne, sw, se: (
        CENTER_WEIGHT * c + CARDINAL_WEIGHT * (n + s + w + e)
        + DIAGONAL_WEIGHT * (nw + ne + sw + se)
    ),
)


def build_stencil2d() -> Lambda:
    def body(grid):
        def f(nbh):
            def at2(i, j):
                return L.at(j, L.at(i, nbh))
            return FunCall(
                stencil2d_fn,
                at2(1, 1),
                at2(0, 1), at2(2, 1), at2(1, 0), at2(1, 2),
                at2(0, 0), at2(0, 2), at2(2, 0), at2(2, 2),
            )
        padded = L.pad_nd(1, 1, L.CLAMP, grid, 2)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 2), 2)

    return L.fun([L.array_type(Float, Var("N"), Var("M"))], body, names=["grid"])


def reference_stencil2d(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 1, mode="edge")
    n, m = grid.shape
    def shifted(di, dj):
        return p[di:di + n, dj:dj + m]
    return (
        CENTER_WEIGHT * shifted(1, 1)
        + CARDINAL_WEIGHT * (shifted(0, 1) + shifted(2, 1) + shifted(1, 0) + shifted(1, 2))
        + DIAGONAL_WEIGHT * (shifted(0, 0) + shifted(0, 2) + shifted(2, 0) + shifted(2, 2))
    )


def _inputs(shape, seed) -> List[np.ndarray]:
    return [random_grid(shape, seed)]


STENCIL2D = StencilBenchmark(
    name="Stencil2D",
    ndims=2,
    points=9,
    num_grids=1,
    default_shape=(4098, 4098),
    build_program=build_stencil2d,
    reference=reference_stencil2d,
    make_inputs=_inputs,
    flops_per_output=13.0,
    in_figure7=True,
    stencil_extent=3,
    description="SHOC Stencil2D: weighted 9-point stencil",
)


__all__ = ["STENCIL2D", "build_stencil2d", "reference_stencil2d"]
