"""Room-acoustics simulation benchmark (paper §3.5, Listing 3; Figure 7).

The benchmark models a sound wave propagating through a 3D room.  It reads two
time steps of the pressure grid — the previous step point-wise and the current
step through its 7-point neighbourhood — plus a per-cell neighbour count that
encodes walls and obstacles.  Cells next to a wall apply a loss coefficient,
selected by the ``getCF`` helper, exactly as in Listing 3 of the paper.

The paper generates the neighbour-count mask on the fly with the ``array3``
generator primitive.  The array-generator primitive is implemented and tested
in this reproduction (see :class:`repro.core.primitives.algorithmic.ArrayConstructor`),
but for the benchmark the mask is supplied as a precomputed input grid, which
keeps the multi-grid zip structure identical while simplifying the generated
indexing; Table-1 metadata still records the two *data* grids of the paper.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid

#: Loss coefficients applied at boundary cells (Listing 3's CSTloss1/CSTloss2).
LOSS1 = 0.99
LOSS2 = 0.98
#: The Courant-number-squared constant (Listing 3's CSTl2).
L2 = 1.0 / 3.0


def _acoustic_python(prev, c, n, s, w, e, b, t, num_neighbours):
    sum_nbh = n + s + w + e + b + t
    cf1 = LOSS1 if num_neighbours < 6.0 else 1.0
    cf2 = LOSS2 if num_neighbours < 6.0 else 1.0
    return cf1 * ((2.0 - L2 * num_neighbours) * c + L2 * sum_nbh - cf2 * prev)


def _acoustic_numpy(prev, c, n, s, w, e, b, t, num_neighbours):
    sum_nbh = n + s + w + e + b + t
    at_wall = num_neighbours < 6.0
    cf1 = np.where(at_wall, LOSS1, 1.0)
    cf2 = np.where(at_wall, LOSS2, 1.0)
    return cf1 * ((2.0 - L2 * num_neighbours) * c + L2 * sum_nbh - cf2 * prev)


acoustic_fn = make_userfun(
    "acoustic_update",
    ["prev", "c", "n", "s", "w", "e", "b", "t", "num_neighbours"],
    (
        "float sum_nbh = n + s + w + e + b + t;\n"
        f"float cf1 = num_neighbours < 6.0f ? {LOSS1}f : 1.0f;\n"
        f"float cf2 = num_neighbours < 6.0f ? {LOSS2}f : 1.0f;\n"
        f"return cf1 * ((2.0f - {L2}f * num_neighbours) * c + {L2}f * sum_nbh - cf2 * prev);"
    ),
    _acoustic_python,
    numpy_fn=_acoustic_numpy,
)


def compute_num_neighbours(shape) -> np.ndarray:
    """The neighbour-count mask: 6 in the interior, fewer at walls."""
    mask = np.full(shape, 6.0)
    for axis in range(len(shape)):
        front = [slice(None)] * len(shape)
        back = [slice(None)] * len(shape)
        front[axis] = 0
        back[axis] = shape[axis] - 1
        mask[tuple(front)] -= 1.0
        mask[tuple(back)] -= 1.0
    return mask


def build_acoustic() -> Lambda:
    """The Lift expression of Listing 3 (with a precomputed neighbour mask)."""
    def body(grid_prev, grid_curr, mask):
        def f(triple):
            prev = L.get(0, triple)
            nbh = L.get(1, triple)
            num_neighbours = L.get(2, triple)

            def at3(i, j, k):
                return L.at(k, L.at(j, L.at(i, nbh)))

            return FunCall(
                acoustic_fn,
                prev,
                at3(1, 1, 1),
                at3(1, 0, 1), at3(1, 2, 1),
                at3(1, 1, 0), at3(1, 1, 2),
                at3(0, 1, 1), at3(2, 1, 1),
                num_neighbours,
            )

        windows = L.slide_nd(3, 1, L.pad_constant_nd(1, 1, 0.0, grid_curr, 3), 3)
        zipped = L.zip_nd([grid_prev, windows, mask], 3)
        return L.map_nd(f, zipped, 3)

    types = [L.array_type(Float, Var("D"), Var("N"), Var("M"))] * 3
    return L.fun(types, body, names=["grid_prev", "grid_curr", "mask"])


def reference_acoustic(grid_prev: np.ndarray, grid_curr: np.ndarray,
                       mask: np.ndarray) -> np.ndarray:
    p = np.pad(grid_curr, 1, mode="constant", constant_values=0.0)
    d, n, m = grid_curr.shape
    c = p[1:1 + d, 1:1 + n, 1:1 + m]
    sum_nbh = (
        p[1:1 + d, 0:n, 1:1 + m] + p[1:1 + d, 2:2 + n, 1:1 + m]
        + p[1:1 + d, 1:1 + n, 0:m] + p[1:1 + d, 1:1 + n, 2:2 + m]
        + p[0:d, 1:1 + n, 1:1 + m] + p[2:2 + d, 1:1 + n, 1:1 + m]
    )
    cf1 = np.where(mask < 6.0, LOSS1, 1.0)
    cf2 = np.where(mask < 6.0, LOSS2, 1.0)
    return cf1 * ((2.0 - L2 * mask) * c + L2 * sum_nbh - cf2 * grid_prev)


def _acoustic_inputs(shape, seed) -> List[np.ndarray]:
    grid_prev = random_grid(shape, seed, scale=0.1)
    grid_curr = random_grid(shape, seed + 1, scale=0.1)
    mask = compute_num_neighbours(shape)
    return [grid_prev, grid_curr, mask]


ACOUSTIC = StencilBenchmark(
    name="Acoustic",
    ndims=3,
    points=7,
    num_grids=2,
    default_shape=(404, 512, 512),
    build_program=build_acoustic,
    reference=reference_acoustic,
    make_inputs=_acoustic_inputs,
    flops_per_output=16.0,
    in_figure7=True,
    stencil_extent=3,
    description="Room acoustics simulation (Webb / Stoltzfus et al.)",
    num_program_inputs=3,
    # Two-timestep rotation: prev ← curr, curr ← the new pressure grid;
    # the wall/obstacle mask is static.
    carry=(1, "out", None),
)


__all__ = [
    "ACOUSTIC",
    "build_acoustic",
    "reference_acoustic",
    "compute_num_neighbours",
]
