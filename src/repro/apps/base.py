"""Common infrastructure shared by all benchmark applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import get_backend
from ..core.ir import Lambda
from ..core.types import Float, Type
from ..core.types import array as array_type
from ..runtime.simulator.kernel_model import ProblemInstance


@dataclass
class StencilBenchmark:
    """One stencil benchmark from Table 1.

    Attributes
    ----------
    name:
        Benchmark name as used in the paper's figures.
    ndims:
        Grid dimensionality (2 or 3).
    points:
        Number of neighbourhood values actually read per output element
        (Table 1 "Pts").
    num_grids:
        Number of input grids (Table 1 "#grids").
    default_shape / small_shape / large_shape:
        The paper's input sizes.  ``small``/``large`` are only set for the
        Figure-8 benchmarks which are evaluated at two sizes.
    build_program:
        Zero-argument callable returning the Lift expression (a closed
        :class:`~repro.core.ir.Lambda` over the input grids).
    reference:
        NumPy implementation with the same argument order as the program.
    make_inputs:
        Callable ``(shape, seed) -> list of NumPy arrays``.
    flops_per_output:
        Arithmetic cost per output element (used by the performance model).
    boundary:
        Human-readable boundary-condition description.
    """

    name: str
    ndims: int
    points: int
    num_grids: int
    default_shape: Tuple[int, ...]
    build_program: Callable[[], Lambda]
    reference: Callable[..., np.ndarray]
    make_inputs: Callable[[Tuple[int, ...], int], List[np.ndarray]]
    flops_per_output: float
    boundary: str = "clamp"
    small_shape: Optional[Tuple[int, ...]] = None
    large_shape: Optional[Tuple[int, ...]] = None
    in_figure7: bool = False
    in_figure8: bool = False
    stencil_extent: int = 3          # window width per dimension passed to slide
    description: str = ""
    num_program_inputs: Optional[int] = None  # defaults to num_grids (Table 1 value)
    #: How an iterative (time-stepping) run feeds each step's output back
    #: into the next step's inputs — one entry per program input: ``"out"``
    #: (the previous output), an input index (that input's previous value),
    #: or ``None`` (static across timesteps).  ``None`` as a whole selects
    #: the default: output → input 0, everything else static.
    carry: Optional[Tuple] = None

    # ------------------------------------------------------------------ helpers
    def input_types(self, shape: Sequence[int]) -> List[Type]:
        """Concrete Lift types of the input grids for a given shape."""
        count = self.num_program_inputs or self.num_grids
        return [array_type(Float, *shape) for _ in range(count)]

    def problem(self, shape: Optional[Sequence[int]] = None,
                label: Optional[str] = None) -> ProblemInstance:
        """The simulator's description of this benchmark at a given size."""
        shape = tuple(shape or self.default_shape)
        return ProblemInstance(
            name=label or self.name,
            output_shape=shape,
            stencil_points=self.points,
            num_input_grids=self.num_grids,
            flops_per_output=self.flops_per_output,
        )

    def shape_for(self, size: str) -> Tuple[int, ...]:
        """Resolve the paper's ``small``/``large``/``default`` size names."""
        if size == "small" and self.small_shape:
            return self.small_shape
        if size == "large" and self.large_shape:
            return self.large_shape
        return self.default_shape

    # ------------------------------------------------------------------ checking
    def run_lift(self, inputs: Sequence[np.ndarray], backend=None) -> np.ndarray:
        """Execute the Lift expression.

        ``backend`` selects the execution backend ("numpy", "interpreter",
        "crosscheck", or a :class:`~repro.backend.Backend` instance); the
        process default — normally the compiled NumPy backend — applies when
        it is omitted.
        """
        program = self.build_program()
        result = get_backend(backend).run(program, list(inputs))
        return squeeze_result(np.asarray(result, dtype=np.float64))

    def run_interpreter(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        """Execute the Lift expression with the reference interpreter (oracle)."""
        return self.run_lift(inputs, backend="interpreter")

    def carry_spec(self) -> Tuple:
        """The resolved carry specification for iterative execution."""
        from ..backend.plan import normalize_carry

        count = self.num_program_inputs or self.num_grids
        return normalize_carry(self.carry, count)

    def run_plan(self, inputs: Sequence[np.ndarray], backend=None,
                 tile_shape=None, parallel_workers=None) -> np.ndarray:
        """Execute the Lift expression through an allocation-free plan.

        Bit-identical to :meth:`run_lift` on the compiled backend; the plan
        (pooled buffers + replayable ``out=`` tape, fused + tiled by the
        tape optimizer) is cached on the backend and reused across calls
        with the same input shapes.  ``tile_shape`` selects the optimizer's
        tile (``None`` = heuristic, ``False`` = unfused, tuple = explicit);
        ``parallel_workers`` replays fused regions N-way chunked.
        """
        from ..backend.base import NumpyBackend

        resolved = get_backend(backend)
        if not isinstance(resolved, NumpyBackend):
            return self.run_lift(inputs, backend=resolved)
        program = self.build_program()
        result = resolved.run_plan(program, list(inputs),
                                   tile_shape=tile_shape,
                                   parallel_workers=parallel_workers)
        return squeeze_result(np.asarray(result, dtype=np.float64))

    def iterate(self, inputs: Sequence[np.ndarray], steps: int,
                backend=None, use_plan: bool = True,
                tile_shape=None, parallel_workers=None) -> np.ndarray:
        """Run ``steps`` timesteps, feeding outputs back per :attr:`carry`.

        ``use_plan`` selects the double-buffered execution-plan loop
        (default); ``use_plan=False`` drives the per-sweep generic ``run``
        path instead — the two are bit-identical, the plan path just does
        not allocate or re-dispatch in the steady state.  ``tile_shape``
        picks the tape optimizer's tile for the plan path and
        ``parallel_workers`` its fused-region replay parallelism.
        """
        from ..backend.base import NumpyBackend
        from ..backend.plan import iterate_generic

        resolved = get_backend(backend)
        program = self.build_program()
        spec = self.carry_spec()
        if use_plan and isinstance(resolved, NumpyBackend):
            result = resolved.iterate(program, list(inputs), steps, carry=spec,
                                      tile_shape=tile_shape,
                                      parallel_workers=parallel_workers)
        else:
            result = iterate_generic(resolved, program, list(inputs), steps,
                                     carry=spec)
        return squeeze_result(np.asarray(result, dtype=np.float64))

    def run_reference(self, inputs: Sequence[np.ndarray]) -> np.ndarray:
        return np.asarray(self.reference(*inputs), dtype=np.float64)

    def verify(self, shape: Optional[Sequence[int]] = None, seed: int = 0,
               rtol: float = 1e-5, atol: float = 1e-6, backend=None) -> bool:
        """Check the Lift expression against the NumPy golden implementation."""
        shape = tuple(shape or self.default_shape)
        inputs = self.make_inputs(shape, seed)
        lift_out = self.run_lift(inputs, backend=backend)
        golden = self.run_reference(inputs)
        return np.allclose(lift_out, golden, rtol=rtol, atol=atol)


def squeeze_result(value: np.ndarray) -> np.ndarray:
    """Remove the trailing length-1 axes introduced by ``reduce`` results."""
    while value.ndim > 0 and value.shape[-1] == 1 and value.ndim > 2:
        value = value[..., 0]
    if value.ndim > 0 and value.shape[-1] == 1:
        value = value[..., 0]
    return value


def random_grid(shape: Sequence[int], seed: int, scale: float = 1.0) -> np.ndarray:
    """A reproducible random input grid."""
    rng = np.random.default_rng(seed)
    return (rng.random(tuple(shape)) * scale).astype(np.float64)


__all__ = ["StencilBenchmark", "random_grid", "squeeze_result"]
