"""Hotspot benchmarks from Rodinia (Figure 7): 2D and 3D thermal simulation.

Hotspot estimates processor temperature from simulated power dissipation.  The
update for every cell combines the 5-point (2D) or 7-point (3D) neighbourhood
of the temperature grid with the point-wise power grid — the classic
"two input grids" stencil shape from Table 1.

The Lift expression zips the temperature neighbourhoods (``slideN`` over the
padded temperature grid) with the power grid and maps the update function over
the result, exactly like the acoustic example in Listing 3 of the paper.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid

#: Simplified simulation constants (single iteration, fixed step).
STEP_DIV_CAP = 0.5
RX_INV = 0.1
RY_INV = 0.1
RZ_INV = 0.0625
AMBIENT = 80.0


def _hotspot2d_python(power, c, n, s, w, e):
    delta = STEP_DIV_CAP * (
        power
        + (n + s - 2.0 * c) * RY_INV
        + (e + w - 2.0 * c) * RX_INV
        + (AMBIENT - c) * RZ_INV
    )
    return c + delta


hotspot2d_fn = make_userfun(
    "hotspot2d_update",
    ["power", "c", "n", "s", "w", "e"],
    (
        f"float delta = {STEP_DIV_CAP}f * (power + (n + s - 2.0f*c) * {RY_INV}f + "
        f"(e + w - 2.0f*c) * {RX_INV}f + ({AMBIENT}f - c) * {RZ_INV}f);\n"
        "return c + delta;"
    ),
    _hotspot2d_python,
)


def _hotspot3d_python(power, c, n, s, w, e, b, t):
    delta = STEP_DIV_CAP * (
        power
        + (n + s - 2.0 * c) * RY_INV
        + (e + w - 2.0 * c) * RX_INV
        + (b + t - 2.0 * c) * RZ_INV
        + (AMBIENT - c) * RZ_INV
    )
    return c + delta


hotspot3d_fn = make_userfun(
    "hotspot3d_update",
    ["power", "c", "n", "s", "w", "e", "b", "t"],
    (
        f"float delta = {STEP_DIV_CAP}f * (power + (n + s - 2.0f*c) * {RY_INV}f + "
        f"(e + w - 2.0f*c) * {RX_INV}f + (b + t - 2.0f*c) * {RZ_INV}f + "
        f"({AMBIENT}f - c) * {RZ_INV}f);\n"
        "return c + delta;"
    ),
    _hotspot3d_python,
)


def build_hotspot2d() -> Lambda:
    def body(temp, power):
        def f(pair):
            nbh = L.get(0, pair)
            p = L.get(1, pair)

            def at2(i, j):
                return L.at(j, L.at(i, nbh))

            return FunCall(
                hotspot2d_fn,
                p,
                at2(1, 1), at2(0, 1), at2(2, 1), at2(1, 0), at2(1, 2),
            )

        windows = L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, temp, 2), 2)
        zipped = L.zip_nd([windows, power], 2)
        return L.map_nd(f, zipped, 2)

    types = [L.array_type(Float, Var("N"), Var("M"))] * 2
    return L.fun(types, body, names=["temp", "power"])


def reference_hotspot2d(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    p = np.pad(temp, 1, mode="edge")
    n, m = temp.shape
    c = p[1:1 + n, 1:1 + m]
    north = p[0:n, 1:1 + m]
    south = p[2:2 + n, 1:1 + m]
    west = p[1:1 + n, 0:m]
    east = p[1:1 + n, 2:2 + m]
    delta = STEP_DIV_CAP * (
        power
        + (north + south - 2.0 * c) * RY_INV
        + (east + west - 2.0 * c) * RX_INV
        + (AMBIENT - c) * RZ_INV
    )
    return c + delta


def build_hotspot3d() -> Lambda:
    def body(temp, power):
        def f(pair):
            nbh = L.get(0, pair)
            p = L.get(1, pair)

            def at3(i, j, k):
                return L.at(k, L.at(j, L.at(i, nbh)))

            return FunCall(
                hotspot3d_fn,
                p,
                at3(1, 1, 1),
                at3(1, 0, 1), at3(1, 2, 1),
                at3(1, 1, 0), at3(1, 1, 2),
                at3(0, 1, 1), at3(2, 1, 1),
            )

        windows = L.slide_nd(3, 1, L.pad_nd(1, 1, L.CLAMP, temp, 3), 3)
        zipped = L.zip_nd([windows, power], 3)
        return L.map_nd(f, zipped, 3)

    types = [L.array_type(Float, Var("D"), Var("N"), Var("M"))] * 2
    return L.fun(types, body, names=["temp", "power"])


def reference_hotspot3d(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    p = np.pad(temp, 1, mode="edge")
    d, n, m = temp.shape
    c = p[1:1 + d, 1:1 + n, 1:1 + m]
    north = p[1:1 + d, 0:n, 1:1 + m]
    south = p[1:1 + d, 2:2 + n, 1:1 + m]
    west = p[1:1 + d, 1:1 + n, 0:m]
    east = p[1:1 + d, 1:1 + n, 2:2 + m]
    below = p[0:d, 1:1 + n, 1:1 + m]
    top = p[2:2 + d, 1:1 + n, 1:1 + m]
    delta = STEP_DIV_CAP * (
        power
        + (north + south - 2.0 * c) * RY_INV
        + (east + west - 2.0 * c) * RX_INV
        + (below + top - 2.0 * c) * RZ_INV
        + (AMBIENT - c) * RZ_INV
    )
    return c + delta


def _two_grid_inputs(shape, seed) -> List[np.ndarray]:
    temp = random_grid(shape, seed, scale=40.0) + 60.0
    power = random_grid(shape, seed + 1, scale=5.0)
    return [temp, power]


HOTSPOT2D = StencilBenchmark(
    name="Hotspot2D",
    ndims=2,
    points=5,
    num_grids=2,
    default_shape=(8192, 8192),
    build_program=build_hotspot2d,
    reference=reference_hotspot2d,
    make_inputs=_two_grid_inputs,
    flops_per_output=14.0,
    in_figure7=True,
    stencil_extent=3,
    description="Rodinia Hotspot 2D thermal simulation (temperature + power grids)",
    # Time stepping: the new temperature feeds back; power is static.
    carry=("out", None),
)

HOTSPOT3D = StencilBenchmark(
    name="Hotspot3D",
    ndims=3,
    points=7,
    num_grids=2,
    default_shape=(8, 512, 512),
    build_program=build_hotspot3d,
    reference=reference_hotspot3d,
    make_inputs=_two_grid_inputs,
    flops_per_output=18.0,
    in_figure7=True,
    stencil_extent=3,
    description="Rodinia Hotspot 3D thermal simulation (temperature + power grids)",
    carry=("out", None),
)


__all__ = [
    "HOTSPOT2D",
    "HOTSPOT3D",
    "build_hotspot2d",
    "build_hotspot3d",
    "reference_hotspot2d",
    "reference_hotspot3d",
]
