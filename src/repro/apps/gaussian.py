"""Gaussian blur benchmark (25-point 2D convolution, Figure 8).

The per-neighbourhood computation is a convolution with compile-time constant
weights, expressed with the :func:`~repro.core.userfuns.weighted_sum` user
function applied to the flattened 5×5 neighbourhood (``join``).  This
exercises the ``join`` view and the array-argument user-function path of the
code generator.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import weighted_sum
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid


def gaussian_weights_2d(radius: int = 2, sigma: float = 1.5) -> np.ndarray:
    """The normalised 5×5 Gaussian kernel used by the benchmark."""
    coords = np.arange(-radius, radius + 1)
    xs, ys = np.meshgrid(coords, coords)
    kernel = np.exp(-(xs ** 2 + ys ** 2) / (2.0 * sigma ** 2))
    return kernel / kernel.sum()


_WEIGHTS = gaussian_weights_2d()
gaussian_fn = weighted_sum(_WEIGHTS.ravel().tolist(), name="gaussian25")


def build_gaussian() -> Lambda:
    """``map2(w · flatten(nbh), slide2(5, 1, pad2(2, 2, clamp, grid)))``."""
    def body(grid):
        def f(nbh):
            return FunCall(gaussian_fn, L.join(nbh))
        padded = L.pad_nd(2, 2, L.CLAMP, grid, 2)
        return L.map_nd(f, L.slide_nd(5, 1, padded, 2), 2)

    return L.fun([L.array_type(Float, Var("N"), Var("M"))], body, names=["grid"])


def reference_gaussian(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 2, mode="edge")
    n, m = grid.shape
    out = np.zeros_like(grid)
    for di in range(5):
        for dj in range(5):
            out += _WEIGHTS[di, dj] * p[di:di + n, dj:dj + m]
    return out


def _inputs(shape, seed) -> List[np.ndarray]:
    return [random_grid(shape, seed)]


GAUSSIAN = StencilBenchmark(
    name="Gaussian",
    ndims=2,
    points=25,
    num_grids=1,
    default_shape=(4096, 4096),
    small_shape=(4096, 4096),
    large_shape=(8192, 8192),
    build_program=build_gaussian,
    reference=reference_gaussian,
    make_inputs=_inputs,
    flops_per_output=50.0,
    in_figure8=True,
    stencil_extent=5,
    description="25-point Gaussian blur (Rawat et al.)",
)


__all__ = ["GAUSSIAN", "build_gaussian", "reference_gaussian", "gaussian_weights_2d"]
