"""Poisson benchmark (19-point 3D stencil, Figure 8).

The 19-point Poisson operator reads the centre, the 6 face neighbours and the
12 edge neighbours of a 3×3×3 neighbourhood (the 8 corners are unused), with
the classical finite-difference coefficients.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid

#: Finite-difference coefficients of the 19-point Poisson operator.
CENTER_COEFF = 2.6666
FACE_COEFF = -0.1666
EDGE_COEFF = -0.0833


def poisson_offsets() -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int]]]:
    """Face and edge neighbour offsets of the 19-point stencil."""
    faces = []
    edges = []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                manhattan = abs(dz) + abs(dy) + abs(dx)
                if manhattan == 1:
                    faces.append((dz, dy, dx))
                elif manhattan == 2:
                    edges.append((dz, dy, dx))
    return faces, edges


_FACES, _EDGES = poisson_offsets()

_param_names = ["c"] + [f"f{i}" for i in range(len(_FACES))] + [f"e{i}" for i in range(len(_EDGES))]
_face_sum = " + ".join(f"f{i}" for i in range(len(_FACES)))
_edge_sum = " + ".join(f"e{i}" for i in range(len(_EDGES)))

poisson_fn = make_userfun(
    "poisson19pt",
    _param_names,
    f"return {CENTER_COEFF}f * c + {FACE_COEFF}f * ({_face_sum}) + {EDGE_COEFF}f * ({_edge_sum});",
    lambda c, *rest: (
        CENTER_COEFF * c
        + FACE_COEFF * sum(rest[: len(_FACES)])
        + EDGE_COEFF * sum(rest[len(_FACES):])
    ),
)


def build_poisson() -> Lambda:
    def body(grid):
        def f(nbh):
            def at3(dz, dy, dx):
                return L.at(1 + dx, L.at(1 + dy, L.at(1 + dz, nbh)))
            args = [at3(0, 0, 0)]
            args += [at3(*offset) for offset in _FACES]
            args += [at3(*offset) for offset in _EDGES]
            return FunCall(poisson_fn, *args)
        padded = L.pad_nd(1, 1, L.CLAMP, grid, 3)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 3), 3)

    return L.fun([L.array_type(Float, Var("D"), Var("N"), Var("M"))], body, names=["grid"])


def reference_poisson(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 1, mode="edge")
    d, n, m = grid.shape
    out = CENTER_COEFF * p[1:1 + d, 1:1 + n, 1:1 + m]
    for dz, dy, dx in _FACES:
        out = out + FACE_COEFF * p[1 + dz:1 + dz + d, 1 + dy:1 + dy + n, 1 + dx:1 + dx + m]
    for dz, dy, dx in _EDGES:
        out = out + EDGE_COEFF * p[1 + dz:1 + dz + d, 1 + dy:1 + dy + n, 1 + dx:1 + dx + m]
    return out


def _inputs(shape, seed) -> List[np.ndarray]:
    return [random_grid(shape, seed)]


POISSON = StencilBenchmark(
    name="Poisson",
    ndims=3,
    points=19,
    num_grids=1,
    default_shape=(256, 256, 256),
    small_shape=(256, 256, 256),
    large_shape=(512, 512, 512),
    build_program=build_poisson,
    reference=reference_poisson,
    make_inputs=_inputs,
    flops_per_output=24.0,
    in_figure8=True,
    stencil_extent=3,
    description="19-point 3D Poisson operator (Rawat et al.)",
)


__all__ = ["POISSON", "build_poisson", "reference_poisson", "poisson_offsets"]
