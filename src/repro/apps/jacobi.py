"""Jacobi smoother benchmarks (Figure 8): 2D 5-point/9-point, 3D 7-point/13-point.

These are the single-grid, single-kernel stencils from Rawat et al. used for
the PPCG comparison in the paper.  Each variant provides the Lift expression
(the canonical ``mapN(f, slideN(size, 1, padN(...)))`` composition), a NumPy
golden implementation, and Table-1 metadata.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core import builders as L
from ..core.ir import FunCall, Lambda
from ..core.types import Float
from ..core.userfuns import make_userfun
from ..core.arithmetic import Var
from .base import StencilBenchmark, random_grid


def _at2(nbh, i: int, j: int):
    return L.at(j, L.at(i, nbh))


def _at3(nbh, i: int, j: int, k: int):
    return L.at(k, L.at(j, L.at(i, nbh)))


# ---------------------------------------------------------------------------
# 2D, 5-point
# ---------------------------------------------------------------------------

jacobi2d5pt_fn = make_userfun(
    "jacobi2d5pt",
    ["n", "w", "c", "e", "s"],
    "return 0.2f * (n + w + c + e + s);",
    lambda n, w, c, e, s: 0.2 * (n + w + c + e + s),
)


def build_jacobi2d_5pt() -> Lambda:
    """``map2(f, slide2(3, 1, pad2(1, 1, clamp, grid)))`` with a 5-point function."""
    def body(grid):
        def f(nbh):
            return FunCall(
                jacobi2d5pt_fn,
                _at2(nbh, 0, 1),
                _at2(nbh, 1, 0),
                _at2(nbh, 1, 1),
                _at2(nbh, 1, 2),
                _at2(nbh, 2, 1),
            )
        padded = L.pad_nd(1, 1, L.CLAMP, grid, 2)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 2), 2)

    return L.fun([L.array_type(Float, Var("N"), Var("M"))], body, names=["grid"])


def reference_jacobi2d_5pt(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 1, mode="edge")
    return 0.2 * (p[:-2, 1:-1] + p[1:-1, :-2] + p[1:-1, 1:-1] + p[1:-1, 2:] + p[2:, 1:-1])


# ---------------------------------------------------------------------------
# 2D, 9-point
# ---------------------------------------------------------------------------

jacobi2d9pt_fn = make_userfun(
    "jacobi2d9pt",
    [f"v{i}" for i in range(9)],
    "return (v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8) / 9.0f;",
    lambda *vs: sum(vs) / 9.0,
)


def build_jacobi2d_9pt() -> Lambda:
    def body(grid):
        def f(nbh):
            args = [_at2(nbh, i, j) for i in range(3) for j in range(3)]
            return FunCall(jacobi2d9pt_fn, *args)
        padded = L.pad_nd(1, 1, L.CLAMP, grid, 2)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 2), 2)

    return L.fun([L.array_type(Float, Var("N"), Var("M"))], body, names=["grid"])


def reference_jacobi2d_9pt(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 1, mode="edge")
    total = np.zeros_like(grid)
    for di in range(3):
        for dj in range(3):
            total += p[di:di + grid.shape[0], dj:dj + grid.shape[1]]
    return total / 9.0


# ---------------------------------------------------------------------------
# 3D, 7-point
# ---------------------------------------------------------------------------

jacobi3d7pt_fn = make_userfun(
    "jacobi3d7pt",
    ["c", "xm", "xp", "ym", "yp", "zm", "zp"],
    "return (c + xm + xp + ym + yp + zm + zp) / 7.0f;",
    lambda c, xm, xp, ym, yp, zm, zp: (c + xm + xp + ym + yp + zm + zp) / 7.0,
)


def build_jacobi3d_7pt() -> Lambda:
    def body(grid):
        def f(nbh):
            return FunCall(
                jacobi3d7pt_fn,
                _at3(nbh, 1, 1, 1),
                _at3(nbh, 1, 1, 0),
                _at3(nbh, 1, 1, 2),
                _at3(nbh, 1, 0, 1),
                _at3(nbh, 1, 2, 1),
                _at3(nbh, 0, 1, 1),
                _at3(nbh, 2, 1, 1),
            )
        padded = L.pad_nd(1, 1, L.CLAMP, grid, 3)
        return L.map_nd(f, L.slide_nd(3, 1, padded, 3), 3)

    return L.fun([L.array_type(Float, Var("D"), Var("N"), Var("M"))], body, names=["grid"])


def reference_jacobi3d_7pt(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 1, mode="edge")
    d, n, m = grid.shape
    c = p[1:1 + d, 1:1 + n, 1:1 + m]
    xm = p[1:1 + d, 1:1 + n, 0:m]
    xp = p[1:1 + d, 1:1 + n, 2:2 + m]
    ym = p[1:1 + d, 0:n, 1:1 + m]
    yp = p[1:1 + d, 2:2 + n, 1:1 + m]
    zm = p[0:d, 1:1 + n, 1:1 + m]
    zp = p[2:2 + d, 1:1 + n, 1:1 + m]
    return (c + xm + xp + ym + yp + zm + zp) / 7.0


# ---------------------------------------------------------------------------
# 3D, 13-point (radius-2 star)
# ---------------------------------------------------------------------------

jacobi3d13pt_fn = make_userfun(
    "jacobi3d13pt",
    [f"v{i}" for i in range(13)],
    "return (v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9 + v10 + v11 + v12) / 13.0f;",
    lambda *vs: sum(vs) / 13.0,
)

_STAR2_OFFSETS: List[Tuple[int, int, int]] = [(0, 0, 0)]
for axis in range(3):
    for distance in (-2, -1, 1, 2):
        offset = [0, 0, 0]
        offset[axis] = distance
        _STAR2_OFFSETS.append(tuple(offset))


def build_jacobi3d_13pt() -> Lambda:
    def body(grid):
        def f(nbh):
            args = [_at3(nbh, 2 + dz, 2 + dy, 2 + dx) for dz, dy, dx in _STAR2_OFFSETS]
            return FunCall(jacobi3d13pt_fn, *args)
        padded = L.pad_nd(2, 2, L.CLAMP, grid, 3)
        return L.map_nd(f, L.slide_nd(5, 1, padded, 3), 3)

    return L.fun([L.array_type(Float, Var("D"), Var("N"), Var("M"))], body, names=["grid"])


def reference_jacobi3d_13pt(grid: np.ndarray) -> np.ndarray:
    p = np.pad(grid, 2, mode="edge")
    d, n, m = grid.shape
    total = np.zeros_like(grid)
    for dz, dy, dx in _STAR2_OFFSETS:
        total += p[2 + dz:2 + dz + d, 2 + dy:2 + dy + n, 2 + dx:2 + dx + m]
    return total / 13.0


# ---------------------------------------------------------------------------
# Benchmark registrations
# ---------------------------------------------------------------------------

def _single_grid_inputs(shape, seed) -> List[np.ndarray]:
    return [random_grid(shape, seed)]


JACOBI2D_5PT = StencilBenchmark(
    name="Jacobi2D5pt",
    ndims=2,
    points=5,
    num_grids=1,
    default_shape=(4096, 4096),
    small_shape=(4096, 4096),
    large_shape=(8192, 8192),
    build_program=build_jacobi2d_5pt,
    reference=reference_jacobi2d_5pt,
    make_inputs=_single_grid_inputs,
    flops_per_output=6.0,
    in_figure8=True,
    stencil_extent=3,
    description="5-point Jacobi smoother (Rawat et al.)",
)

JACOBI2D_9PT = StencilBenchmark(
    name="Jacobi2D9pt",
    ndims=2,
    points=9,
    num_grids=1,
    default_shape=(4096, 4096),
    small_shape=(4096, 4096),
    large_shape=(8192, 8192),
    build_program=build_jacobi2d_9pt,
    reference=reference_jacobi2d_9pt,
    make_inputs=_single_grid_inputs,
    flops_per_output=10.0,
    in_figure8=True,
    stencil_extent=3,
    description="9-point Jacobi smoother (Rawat et al.)",
)

JACOBI3D_7PT = StencilBenchmark(
    name="Jacobi3D7pt",
    ndims=3,
    points=7,
    num_grids=1,
    default_shape=(256, 256, 256),
    small_shape=(256, 256, 256),
    large_shape=(512, 512, 512),
    build_program=build_jacobi3d_7pt,
    reference=reference_jacobi3d_7pt,
    make_inputs=_single_grid_inputs,
    flops_per_output=8.0,
    in_figure8=True,
    stencil_extent=3,
    description="7-point 3D Jacobi smoother (Rawat et al.)",
)

JACOBI3D_13PT = StencilBenchmark(
    name="Jacobi3D13pt",
    ndims=3,
    points=13,
    num_grids=1,
    default_shape=(256, 256, 256),
    small_shape=(256, 256, 256),
    large_shape=(512, 512, 512),
    build_program=build_jacobi3d_13pt,
    reference=reference_jacobi3d_13pt,
    make_inputs=_single_grid_inputs,
    flops_per_output=14.0,
    in_figure8=True,
    stencil_extent=5,
    description="13-point (radius-2) 3D Jacobi smoother (Rawat et al.)",
)


__all__ = [
    "JACOBI2D_5PT",
    "JACOBI2D_9PT",
    "JACOBI3D_7PT",
    "JACOBI3D_13PT",
    "build_jacobi2d_5pt",
    "build_jacobi2d_9pt",
    "build_jacobi3d_7pt",
    "build_jacobi3d_13pt",
    "reference_jacobi2d_5pt",
    "reference_jacobi2d_9pt",
    "reference_jacobi3d_7pt",
    "reference_jacobi3d_13pt",
]
