"""The view system: data-layout primitives as index arithmetic."""

from .view import (
    View,
    ViewError,
    ViewGenerated,
    ViewGuarded,
    ViewMemory,
    ViewTuple,
    build_view,
)

__all__ = [
    "View",
    "ViewError",
    "ViewGenerated",
    "ViewGuarded",
    "ViewMemory",
    "ViewTuple",
    "build_view",
]
