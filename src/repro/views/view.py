"""Views: how Lift reads memory without materialising intermediate arrays.

The paper (§5) explains that ``pad``, ``slide``, ``split``, ``join``,
``transpose`` and ``zip`` are never compiled into memory copies.  Instead they
become *views*: compiler-internal data structures that record how indices of
the conceptual (reorganised) array map back to indices of the underlying
buffer.  When the generated kernel finally reads a scalar, the chain of views
collapses into a single index expression.

A :class:`View` here is an object with two operations:

``access(index)``
    index the outermost dimension with a C index expression (a string or an
    integer), producing the view of the selected element;
``scalar_ref()``
    render the C r-value expression for a fully-indexed scalar.

:func:`build_view` constructs the view of an argument expression (the data
side of a lowered map nest) by symbolic evaluation, binding parameters to
their buffer views.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..core.ir import Expr, FunCall, Lambda, Literal, Param
from ..core.primitives.algorithmic import (
    ArrayConstructor,
    At,
    Get,
    Join,
    Map,
    Split,
    Transpose,
    TupleCons,
    Zip,
)
from ..core.primitives.stencil import Pad, PadConstant, Slide

Index = Union[str, int]


class ViewError(Exception):
    """Raised when an expression cannot be turned into a view."""


def _idx(index: Index) -> str:
    return str(index)


def _simplify_index(expr: str) -> str:
    """Light clean-up of generated index expressions (purely cosmetic)."""
    return expr.replace("+ 0)", ")").replace("(0 + ", "(")


class View:
    """Base class of all views."""

    def access(self, index: Index) -> "View":
        raise ViewError(f"{type(self).__name__} cannot be indexed")

    def get(self, component: int) -> "View":
        raise ViewError(f"{type(self).__name__} is not a tuple view")

    def scalar_ref(self) -> str:
        raise ViewError(f"{type(self).__name__} is not a scalar view")

    def is_scalar(self) -> bool:
        return False


class ViewMemory(View):
    """A view of a linear buffer with a (row-major) multi-dimensional shape.

    ``shape`` holds one extent (C expression string) per remaining dimension;
    ``offset`` accumulates the flat index of the dimensions indexed so far.
    """

    def __init__(self, buffer: str, shape: Sequence[str], offset: str = "0",
                 space: str = "global") -> None:
        self.buffer = buffer
        self.shape = [str(s) for s in shape]
        self.offset = offset
        self.space = space

    def access(self, index: Index) -> View:
        if not self.shape:
            raise ViewError(f"buffer {self.buffer} is already fully indexed")
        head, *rest = self.shape
        stride = "1"
        for extent in rest:
            stride = f"({stride} * {extent})" if stride != "1" else f"({extent})"
        if rest:
            contribution = f"(({_idx(index)}) * {stride})"
        else:
            contribution = f"({_idx(index)})"
        new_offset = f"({self.offset} + {contribution})" if self.offset != "0" else contribution
        return ViewMemory(self.buffer, rest, new_offset, self.space)

    def scalar_ref(self) -> str:
        if self.shape:
            raise ViewError(
                f"buffer {self.buffer} still has {len(self.shape)} unindexed dimensions"
            )
        return _simplify_index(f"{self.buffer}[{self.offset}]")

    def is_scalar(self) -> bool:
        return not self.shape


class ViewScalar(View):
    """A scalar C expression (literal, user-function result, generated value)."""

    def __init__(self, expression: str) -> None:
        self.expression = expression

    def scalar_ref(self) -> str:
        return self.expression

    def is_scalar(self) -> bool:
        return True


class ViewGenerated(View):
    """A lazily generated array (the ``array`` primitive): no memory is read."""

    def __init__(self, c_expression: str, size: str, index_so_far: Optional[List[str]] = None) -> None:
        self.c_expression = c_expression
        self.size = size
        self.index_so_far = index_so_far or []

    def access(self, index: Index) -> View:
        return ViewGenerated(self.c_expression, self.size, self.index_so_far + [_idx(index)])

    def scalar_ref(self) -> str:
        if not self.index_so_far:
            raise ViewError("generated array accessed as a scalar without an index")
        return self.c_expression.format(i=self.index_so_far[-1], n=self.size,
                                         indices=self.index_so_far)


class ViewPad(View):
    """The re-indexing ``pad``: out-of-range indices are mapped back in range."""

    def __init__(self, parent: View, left: int, right: int, size: str, c_template: str) -> None:
        self.parent = parent
        self.left = left
        self.right = right
        self.size = size
        self.c_template = c_template

    def access(self, index: Index) -> View:
        shifted = f"(({_idx(index)}) - {self.left})" if self.left else f"({_idx(index)})"
        mapped = self.c_template.format(i=shifted, n=self.size)
        return self.parent.access(mapped)


class ViewGuarded(View):
    """A view whose reads are guarded by a boundary condition (constant ``pad``).

    The guard composes through further indexing so that a fully-indexed scalar
    read renders as ``cond ? constant : inner``.
    """

    def __init__(self, condition: str, constant: str, inner: View) -> None:
        self.condition = condition
        self.constant = constant
        self.inner = inner

    def access(self, index: Index) -> View:
        return ViewGuarded(self.condition, self.constant, self.inner.access(index))

    def get(self, component: int) -> View:
        return ViewGuarded(self.condition, self.constant, self.inner.get(component))

    def scalar_ref(self) -> str:
        return f"(({self.condition}) ? {self.constant} : {self.inner.scalar_ref()})"

    def is_scalar(self) -> bool:
        return self.inner.is_scalar()


class ViewPadConstant(View):
    """The value variant of ``pad``: boundary reads yield a constant."""

    def __init__(self, parent: View, left: int, right: int, size: str, constant: str) -> None:
        self.parent = parent
        self.left = left
        self.right = right
        self.size = size
        self.constant = constant

    def access(self, index: Index) -> View:
        i = _idx(index)
        shifted = f"(({i}) - {self.left})" if self.left else f"({i})"
        condition = f"({shifted}) < 0 || ({shifted}) >= ({self.size})"
        clamped = f"clamp((int)({shifted}), 0, (int)({self.size}) - 1)"
        return ViewGuarded(condition, self.constant, self.parent.access(clamped))


class ViewSlide(View):
    """``slide(size, step)``: window ``i`` starts at offset ``i * step``."""

    def __init__(self, parent: View, size: str, step: str) -> None:
        self.parent = parent
        self.size = size
        self.step = step

    def access(self, index: Index) -> View:
        return _ViewWindow(self.parent, f"(({_idx(index)}) * ({self.step}))")


class _ViewWindow(View):
    """A window into a parent view starting at a fixed offset."""

    def __init__(self, parent: View, base: str) -> None:
        self.parent = parent
        self.base = base

    def access(self, index: Index) -> View:
        return self.parent.access(f"({self.base} + ({_idx(index)}))")


class ViewSplit(View):
    """``split(m)``: element ``(i, j)`` maps to parent index ``i*m + j``."""

    def __init__(self, parent: View, chunk: str) -> None:
        self.parent = parent
        self.chunk = chunk

    def access(self, index: Index) -> View:
        return _ViewWindow(self.parent, f"(({_idx(index)}) * ({self.chunk}))")


class ViewJoin(View):
    """``join``: element ``i`` maps to parent element ``(i / m, i % m)``."""

    def __init__(self, parent: View, inner_size: str) -> None:
        self.parent = parent
        self.inner_size = inner_size

    def access(self, index: Index) -> View:
        i = _idx(index)
        outer = f"(({i}) / ({self.inner_size}))"
        inner = f"(({i}) % ({self.inner_size}))"
        return self.parent.access(outer).access(inner)


class ViewTranspose(View):
    """``transpose``: indexing order of the two outermost dimensions is swapped."""

    def __init__(self, parent: View) -> None:
        self.parent = parent

    def access(self, index: Index) -> View:
        return _ViewTransposedRow(self.parent, _idx(index))


class _ViewTransposedRow(View):
    def __init__(self, parent: View, first_index: str) -> None:
        self.parent = parent
        self.first_index = first_index

    def access(self, index: Index) -> View:
        return self.parent.access(index).access(self.first_index)


class ViewZip(View):
    """``zip``: indexing yields a tuple view of the component accesses."""

    def __init__(self, components: Sequence[View]) -> None:
        self.components = list(components)

    def access(self, index: Index) -> View:
        return ViewTuple([c.access(index) for c in self.components])


class ViewTuple(View):
    """A tuple of views, as produced by indexing a ``zip`` view."""

    def __init__(self, components: Sequence[View]) -> None:
        self.components = list(components)

    def get(self, component: int) -> View:
        return self.components[component]


class ViewMapped(View):
    """``map(f)`` over a view where ``f`` is itself a data-layout function.

    Indexing applies ``f`` symbolically to the element view — this is how the
    composed ``slideN`` (``map(slide)`` / ``map(transpose)``) collapses into
    pure index arithmetic.
    """

    def __init__(self, f, parent: View, env: Dict[Param, View]) -> None:
        self.f = f
        self.parent = parent
        self.env = env

    def access(self, index: Index) -> View:
        element = self.parent.access(index)
        return apply_function_view(self.f, element, self.env)


# ---------------------------------------------------------------------------
# Building views from expressions
# ---------------------------------------------------------------------------

def build_view(expr: Expr, env: Dict[Param, View]) -> View:
    """Construct the view of a data expression.

    ``env`` binds the program parameters (and any lambda parameters introduced
    by enclosing maps) to their buffer views.
    """
    if isinstance(expr, Param):
        if expr not in env:
            raise ViewError(f"unbound parameter {expr.name!r} while building view")
        return env[expr]

    if isinstance(expr, Literal):
        return ViewScalar(_literal_to_c(expr))

    if isinstance(expr, FunCall):
        fun = expr.fun

        if isinstance(fun, Pad):
            parent = build_view(expr.args[0], env)
            size = _array_size_c(expr.args[0])
            return ViewPad(parent, fun.left, fun.right, size, fun.boundary.c_template)

        if isinstance(fun, PadConstant):
            parent = build_view(expr.args[0], env)
            size = _array_size_c(expr.args[0])
            constant = _literal_to_c(fun.value) if isinstance(fun.value, Literal) else "0.0f"
            return ViewPadConstant(parent, fun.left, fun.right, size, constant)

        if isinstance(fun, Slide):
            parent = build_view(expr.args[0], env)
            return ViewSlide(parent, str(fun.size), str(fun.step))

        if isinstance(fun, Split):
            parent = build_view(expr.args[0], env)
            return ViewSplit(parent, str(fun.chunk))

        if isinstance(fun, Join):
            parent = build_view(expr.args[0], env)
            inner_size = _inner_size_c(expr.args[0])
            return ViewJoin(parent, inner_size)

        if isinstance(fun, Transpose):
            parent = build_view(expr.args[0], env)
            return ViewTranspose(parent)

        if isinstance(fun, Zip):
            return ViewZip([build_view(arg, env) for arg in expr.args])

        if isinstance(fun, TupleCons):
            return ViewTuple([build_view(arg, env) for arg in expr.args])

        if isinstance(fun, At):
            parent = build_view(expr.args[0], env)
            return parent.access(fun.index)

        if isinstance(fun, Get):
            parent = build_view(expr.args[0], env)
            return parent.get(fun.index)

        if isinstance(fun, ArrayConstructor):
            c_expr = fun.c_expression or "0.0f"
            return ViewGenerated(c_expr, str(fun.size))

        if isinstance(fun, Map):
            # A map over a view is only a view itself when the mapped function
            # performs pure data reorganisation (slide, transpose, pad, ...).
            parent = build_view(expr.args[0], env)
            return ViewMapped(fun.f, parent, env)

        if isinstance(fun, Lambda):
            inner_env = dict(env)
            for param, arg in zip(fun.params, expr.args):
                inner_env[param] = build_view(arg, env)
            return build_view(fun.body, inner_env)

    raise ViewError(f"expression cannot be represented as a view: {expr!r}")


def apply_function_view(f, element: View, env: Dict[Param, View]) -> View:
    """Apply a data-layout function symbolically to an element view."""
    if isinstance(f, Lambda):
        inner_env = dict(env)
        inner_env[f.params[0]] = element
        return build_view(f.body, inner_env)
    if isinstance(f, Transpose):
        return ViewTranspose(element)
    if isinstance(f, Slide):
        return ViewSlide(element, str(f.size), str(f.step))
    if isinstance(f, (Pad,)):
        raise ViewError("pad inside map requires the array size; use a lambda")
    raise ViewError(f"cannot apply {type(f).__name__} as a view function")


def _literal_to_c(literal: Literal) -> str:
    value = literal.value
    if isinstance(value, float):
        return f"{value}f"
    return str(value)


def _array_size_c(expr: Expr) -> str:
    """The length of the outermost dimension of ``expr`` as a C expression."""
    from ..core.types import ArrayType

    if isinstance(expr.type, ArrayType):
        return str(expr.type.size)
    raise ViewError("cannot determine array size: expression is not typed as an array")


def _inner_size_c(expr: Expr) -> str:
    from ..core.types import ArrayType

    if isinstance(expr.type, ArrayType) and isinstance(expr.type.elem_type, ArrayType):
        return str(expr.type.elem_type.size)
    raise ViewError("cannot determine inner array size for join view")


__all__ = [
    "View",
    "ViewError",
    "ViewMemory",
    "ViewScalar",
    "ViewGenerated",
    "ViewGuarded",
    "ViewPad",
    "ViewPadConstant",
    "ViewSlide",
    "ViewSplit",
    "ViewJoin",
    "ViewTranspose",
    "ViewZip",
    "ViewTuple",
    "ViewMapped",
    "build_view",
    "apply_function_view",
]
