"""The SQLite-backed results store: cross-run memoisation + resumable sessions.

Every evaluated point is persisted under its job fingerprint (the stable
digest of the structural expression hash + configuration, see
:mod:`repro.engine.jobs`).  A second invocation of the same search — same
benchmark, device, strategy set and budget — therefore recalls every cost
from disk and performs **zero re-evaluations**; the ``hits``/``misses``
counters make that verifiable from the CLI and from tests.

Sessions record the full search spec (as JSON) under a user-visible id, so
``repro tune --resume <session-id>`` can re-derive the job set without the
original command-line flags and skip every already-evaluated point.

Only the driver process touches the database; worker processes receive job
specs and return costs, which keeps the store free of cross-process locking
concerns (SQLite's own file lock covers concurrent *driver* invocations).
The store opens in WAL mode with a bounded ``busy_timeout`` so readers and
a concurrent writer coexist, and a corrupt database file is moved aside
(``<path>.corrupt``) and recreated rather than wedging every caller.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import faults as _faults
from .jobs import EvaluationJob, VariantSpec

log = logging.getLogger("repro.engine.store")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    benchmark   TEXT NOT NULL,
    device      TEXT NOT NULL,
    shape       TEXT NOT NULL,
    expr_digest TEXT NOT NULL,
    variant     TEXT NOT NULL,
    config      TEXT NOT NULL,
    cost        REAL NOT NULL,
    session     TEXT,
    created_at  REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_bench_device
    ON results (benchmark, device);
CREATE INDEX IF NOT EXISTS idx_results_digest
    ON results (expr_digest);
CREATE TABLE IF NOT EXISTS sessions (
    session    TEXT PRIMARY KEY,
    spec       TEXT NOT NULL,
    status     TEXT NOT NULL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL
);
"""


@dataclass(frozen=True)
class StoredResult:
    """One persisted evaluation."""

    fingerprint: str
    benchmark: str
    device: str
    shape: Tuple[int, ...]
    expr_digest: str
    variant: VariantSpec
    config: Dict[str, object]
    cost: float
    session: Optional[str]
    created_at: float


def _row_to_result(row: sqlite3.Row) -> StoredResult:
    return StoredResult(
        fingerprint=row["fingerprint"],
        benchmark=row["benchmark"],
        device=row["device"],
        shape=tuple(json.loads(row["shape"])),
        expr_digest=row["expr_digest"],
        variant=VariantSpec(**json.loads(row["variant"])),
        config=dict(json.loads(row["config"])),
        cost=row["cost"],
        session=row["session"],
        created_at=row["created_at"],
    )


class ResultsStore:
    """Persistent evaluation results keyed by job fingerprint.

    ``path`` may be a filesystem path (parent directories are created) or
    ``":memory:"`` for an ephemeral store.  The instance counts ``hits``
    (lookups answered from the database) and ``misses`` (lookups that will
    require a fresh evaluation) since it was opened.
    """

    def __init__(self, path: str = ":memory:",
                 busy_timeout_s: float = 5.0) -> None:
        self.path = path
        self.busy_timeout_s = busy_timeout_s
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError as error:
            # A truncated or garbage file ("file is not a database",
            # "database disk image is malformed").  OperationalError —
            # locked/busy, permissions — is *not* corruption and must
            # propagate: moving a healthy database aside loses data.
            if (isinstance(error, sqlite3.OperationalError)
                    or path == ":memory:"):
                raise
            aside = self._move_corrupt_aside(error)
            log.warning(
                "results store %s is corrupt (%s); moved it to %s and "
                "starting a fresh database", path, error, aside)
            self._conn = self._open()
        self.hits = 0
        self.misses = 0

    def _open(self) -> sqlite3.Connection:
        # The execution service reads best-result rows from its event-loop
        # thread while the store was opened by the constructing thread;
        # reads are safe under the GIL and writes stay driver-only.
        conn = sqlite3.connect(self.path, check_same_thread=False)
        try:
            conn.row_factory = sqlite3.Row
            # A bounded wait instead of an instant "database is locked"
            # when another driver invocation holds the write lock.
            conn.execute(
                f"PRAGMA busy_timeout = {int(self.busy_timeout_s * 1000)}")
            if self.path != ":memory:":
                # WAL lets the service's stats/metrics scrapes read while a
                # tune session writes, and survives crashes without the
                # rollback journal's whole-file lock.
                conn.execute("PRAGMA journal_mode = WAL")
            conn.executescript(_SCHEMA)
            conn.commit()
        except BaseException:
            conn.close()
            raise
        return conn

    def _move_corrupt_aside(self, error: Exception) -> str:
        """Park an unreadable database file (plus WAL droppings) aside."""
        aside = self.path + ".corrupt"
        if os.path.exists(aside):
            aside = "%s.corrupt.%d" % (self.path, int(time.time()))
        os.replace(self.path, aside)
        for suffix in ("-wal", "-shm"):
            try:
                os.remove(self.path + suffix)
            except FileNotFoundError:
                pass
        return aside

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- results -------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[StoredResult]:
        row = self._conn.execute(
            "SELECT * FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return _row_to_result(row)

    def get_many(self, fingerprints: Sequence[str]) -> Dict[str, StoredResult]:
        """Look up many fingerprints at once (counting hits/misses per key)."""
        found: Dict[str, StoredResult] = {}
        CHUNK = 512  # SQLite's default variable limit is 999
        unique = list(dict.fromkeys(fingerprints))
        for start in range(0, len(unique), CHUNK):
            chunk = unique[start:start + CHUNK]
            marks = ",".join("?" * len(chunk))
            rows = self._conn.execute(
                f"SELECT * FROM results WHERE fingerprint IN ({marks})", chunk
            ).fetchall()
            for row in rows:
                found[row["fingerprint"]] = _row_to_result(row)
        self.hits += len(found)
        self.misses += len(unique) - len(found)
        return found

    def put(self, job: EvaluationJob, cost: float,
            session: Optional[str] = None,
            fingerprint: Optional[str] = None) -> str:
        if _faults.ARMED and _faults.should_fail("store.locked"):
            raise sqlite3.OperationalError("database is locked [injected]")
        fingerprint = fingerprint or job.fingerprint()
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, benchmark, device, shape, expr_digest, variant, "
            " config, cost, session, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                job.benchmark,
                job.device,
                json.dumps(list(job.shape)),
                job.expr_digest,
                json.dumps(job.variant.to_dict()),
                json.dumps([[name, value] for name, value in job.config]),
                float(cost),
                session,
                time.time(),
            ),
        )
        self._conn.commit()
        return fingerprint

    def put_many(self, entries: Iterable[Tuple[EvaluationJob, float, str]],
                 session: Optional[str] = None) -> None:
        """Persist ``(job, cost, fingerprint)`` triples in one transaction."""
        if _faults.ARMED and _faults.should_fail("store.locked"):
            raise sqlite3.OperationalError("database is locked [injected]")
        rows = [
            (
                fingerprint,
                job.benchmark,
                job.device,
                json.dumps(list(job.shape)),
                job.expr_digest,
                json.dumps(job.variant.to_dict()),
                json.dumps([[name, value] for name, value in job.config]),
                float(cost),
                session,
                time.time(),
            )
            for job, cost, fingerprint in entries
        ]
        self._conn.executemany(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, benchmark, device, shape, expr_digest, variant, "
            " config, cost, session, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            rows,
        )
        self._conn.commit()

    def best_for(self, benchmark: str, device: str) -> Optional[StoredResult]:
        """The lowest-cost stored result for one benchmark on one device."""
        row = self._conn.execute(
            "SELECT * FROM results WHERE benchmark = ? AND device = ? "
            "ORDER BY cost ASC, fingerprint ASC LIMIT 1",
            (benchmark, device),
        ).fetchone()
        return None if row is None else _row_to_result(row)

    def best_for_digest(self, expr_digest: str,
                        device: Optional[str] = None) -> Optional[StoredResult]:
        """The lowest-cost stored result for one expression digest.

        ``expr_digest`` lives in the *lowered*-expression digest space (what
        :meth:`put` persisted from :class:`~repro.engine.jobs.EvaluationJob`),
        not the high-level program digest the service routes requests by.
        The tuned-kernel registry uses it for programs that match no
        registered benchmark: looking up the digest of the request's default
        lowering recalls the best configuration any past session found for
        exactly that expression (optionally restricted to one device model).
        """
        if device is None:
            row = self._conn.execute(
                "SELECT * FROM results WHERE expr_digest = ? "
                "ORDER BY cost ASC, fingerprint ASC LIMIT 1",
                (expr_digest,),
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT * FROM results WHERE expr_digest = ? AND device = ? "
                "ORDER BY cost ASC, fingerprint ASC LIMIT 1",
                (expr_digest, device),
            ).fetchone()
        return None if row is None else _row_to_result(row)

    def best_per_benchmark(self, device: Optional[str] = None
                           ) -> Dict[str, StoredResult]:
        """The best stored result of every benchmark (optionally per device).

        One query warms the whole tuned-kernel registry: the service applies
        these variants/configurations to incoming traffic without paying a
        store round-trip per request.
        """
        device_filter = "" if device is None else "WHERE device = ?"
        params: Tuple = () if device is None else (device, device)
        rows = self._conn.execute(
            # Group-wise minimum via the index, not a full-table sort: only
            # rows matching each benchmark's minimum cost are materialised.
            f"SELECT r.* FROM results r JOIN ("
            f"  SELECT benchmark, MIN(cost) AS best_cost FROM results "
            f"  {device_filter} GROUP BY benchmark"
            f") m ON r.benchmark = m.benchmark AND r.cost = m.best_cost "
            f"{'WHERE r.device = ?' if device is not None else ''} "
            f"ORDER BY r.fingerprint ASC",
            params,
        ).fetchall()
        best: Dict[str, StoredResult] = {}
        for row in rows:  # ties resolved by lowest fingerprint (row order)
            if row["benchmark"] not in best:
                best[row["benchmark"]] = _row_to_result(row)
        return best

    def benchmarks(self) -> List[str]:
        """Distinct benchmark names with at least one stored result."""
        rows = self._conn.execute(
            "SELECT DISTINCT benchmark FROM results ORDER BY benchmark"
        ).fetchall()
        return [row["benchmark"] for row in rows]

    def count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def generation(self) -> int:
        """A monotonic counter advancing with every results write.

        ``INSERT OR REPLACE`` always assigns a fresh (larger) rowid, and
        results are never deleted, so ``MAX(rowid)`` grows on every
        :meth:`put` / :meth:`put_many` — including ones issued by *other*
        connections or processes on the same database file.  The
        tuned-kernel registry polls this to notice mid-flight improvements
        (a background or concurrent ``repro tune`` landing a better
        variant) without an explicit ``refresh`` call.
        """
        row = self._conn.execute(
            "SELECT COALESCE(MAX(rowid), 0) FROM results"
        ).fetchone()
        return int(row[0])

    def stats(self) -> Dict[str, int]:
        return {"entries": self.count(), "hits": self.hits, "misses": self.misses}

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    # -- sessions ------------------------------------------------------------
    def save_session(self, session: str, spec: Dict[str, object],
                     status: str = "running") -> None:
        now = time.time()
        self._conn.execute(
            "INSERT INTO sessions (session, spec, status, created_at, updated_at) "
            "VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT(session) DO UPDATE SET "
            "spec = excluded.spec, status = excluded.status, updated_at = excluded.updated_at",
            (session, json.dumps(spec, sort_keys=True), status, now, now),
        )
        self._conn.commit()

    def finish_session(self, session: str) -> None:
        self._conn.execute(
            "UPDATE sessions SET status = 'done', updated_at = ? WHERE session = ?",
            (time.time(), session),
        )
        self._conn.commit()

    def session_spec(self, session: str) -> Optional[Dict[str, object]]:
        row = self._conn.execute(
            "SELECT spec FROM sessions WHERE session = ?", (session,)
        ).fetchone()
        return None if row is None else dict(json.loads(row["spec"]))

    def sessions(self) -> List[Tuple[str, str]]:
        """All known ``(session-id, status)`` pairs, newest first."""
        rows = self._conn.execute(
            "SELECT session, status FROM sessions ORDER BY created_at DESC"
        ).fetchall()
        return [(row["session"], row["status"]) for row in rows]


#: Default on-disk location used by the CLI verbs.
DEFAULT_STORE_PATH = os.path.join(".repro", "engine.sqlite")


__all__ = ["ResultsStore", "StoredResult", "DEFAULT_STORE_PATH"]
