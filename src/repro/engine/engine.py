"""The parallel, persistent search engine.

:class:`SearchEngine` unifies macro-rewrite exploration and parameter
tuning into one job graph:

* candidate evaluations fan out over a ``concurrent.futures``
  ``ProcessPoolExecutor`` (``workers=1`` degenerates to inline, serial
  evaluation — the exact behaviour of the old pipeline);
* every cost is memoised in a SQLite :class:`~repro.engine.store.ResultsStore`
  keyed by the stable structural digest + configuration, so repeated and
  resumed sessions skip already-evaluated points;
* a :class:`~repro.engine.pruner.CostModelPruner` (optional) cuts dominated
  variants before any evaluation budget is spent on them;
* :meth:`SearchEngine.submit` is the async-friendly batch API: it returns a
  :class:`Batch` whose results can be harvested in submission order, as
  they complete, or awaited from asyncio code — experiment drivers use it
  to enqueue whole app suites at once (:meth:`SearchEngine.run_suite`).

Determinism: batches preserve submission order, searches consume costs in
that order, and ties are broken by first occurrence — so a fixed seed
produces the same best point at any worker count.
"""

from __future__ import annotations

import time
import uuid
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..apps.base import StencilBenchmark
from ..apps.suite import get_benchmark
from ..core.ir import structural_digest
from ..runtime.simulator.device import DEVICES, DeviceModel
from ..tuning.tuner import AutoTuner, TuningResult
from .jobs import EvaluationJob, JobResult, VariantOutcome, VariantSpec, make_jobs
from .pruner import CostModelPruner, PruneDecision
from .store import ResultsStore
from .worker import evaluate_job


class EngineError(RuntimeError):
    """A job failed inside the engine (the in-band error, re-raised)."""


def _device_key(device: Union[str, DeviceModel]) -> str:
    if isinstance(device, DeviceModel):
        for key, model in DEVICES.items():
            if model is device or model == device:
                return key
        raise ValueError(f"device model {device.name!r} is not registered in DEVICES")
    if device not in DEVICES:
        raise ValueError(f"unknown device {device!r}; known: {sorted(DEVICES)}")
    return device


class Batch:
    """A submitted batch of jobs; results arrive per job, in any order.

    ``results()`` blocks until every job is done and returns costs in
    submission order; ``as_completed()`` yields ``(index, JobResult)``
    pairs as they finish; ``gather()`` is an awaitable for asyncio
    callers.  Fresh results are persisted to the engine's store exactly
    once, on first harvest.
    """

    def __init__(
        self,
        jobs: Sequence[EvaluationJob],
        resolved: Dict[int, JobResult],
        futures: Dict[int, "Future[JobResult]"],
        aliases: Dict[int, int],
        engine: "SearchEngine",
        session: Optional[str],
    ) -> None:
        self.jobs = list(jobs)
        self._resolved = dict(resolved)
        self._futures = futures
        self._aliases = aliases          # duplicate-fingerprint index → canonical index
        self._engine = engine
        self._session = session
        self._persisted_indices: set = set()

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def pending(self) -> int:
        return sum(1 for future in self._futures.values() if not future.done())

    def _finish(self, index: int, result: JobResult) -> None:
        self._resolved[index] = result

    def _persist_fresh(self) -> None:
        """Store fresh results resolved so far (incremental, idempotent)."""
        store = self._engine.store
        if store is None:
            return
        fresh = [
            (index, result)
            for index, result in self._resolved.items()
            if index not in self._persisted_indices
            and not result.from_store and result.ok
            and index not in self._aliases
        ]
        if fresh:
            store.put_many(
                [(self.jobs[index], result.cost, result.fingerprint)
                 for index, result in fresh],
                session=self._session,
            )
        self._persisted_indices.update(index for index, _ in fresh)

    def results(self, raise_on_error: bool = True) -> List[JobResult]:
        """Every job's result, in submission order (blocks until done)."""
        for index, future in self._futures.items():
            self._finish(index, future.result())
        for index, canonical in self._aliases.items():
            self._resolved[index] = self._resolved[canonical]
        self._persist_fresh()
        ordered = [self._resolved[index] for index in range(len(self.jobs))]
        if raise_on_error:
            for job, result in zip(self.jobs, ordered):
                if not result.ok:
                    raise EngineError(f"{job.describe()}: {result.error}")
        return ordered

    def as_completed(self) -> Iterator[Tuple[int, JobResult]]:
        """Yield ``(submission index, result)`` pairs as jobs finish.

        Breaking out early is safe: results completed so far are persisted
        when the generator is closed (the remaining in-flight futures keep
        running on the pool but are not stored).
        """
        try:
            for index in list(self._resolved):
                yield index, self._resolved[index]
            remaining = {future: index for index, future in self._futures.items()}
            while remaining:
                done, _ = wait(list(remaining), return_when=FIRST_COMPLETED)
                for future in done:
                    index = remaining.pop(future)
                    result = future.result()
                    self._finish(index, result)
                    yield index, result
            for index, canonical in self._aliases.items():
                self._resolved[index] = self._resolved[canonical]
                yield index, self._resolved[index]
        finally:
            self._persist_fresh()

    async def gather(self, raise_on_error: bool = True) -> List[JobResult]:
        """Awaitable form of :meth:`results` for asyncio callers."""
        import asyncio

        if self._futures:
            await asyncio.gather(
                *[asyncio.wrap_future(future) for future in self._futures.values()]
            )
        return self.results(raise_on_error=raise_on_error)


@dataclass
class EngineOutcome:
    """The result of one engine search over a benchmark's variants."""

    benchmark: str
    device: str
    shape: Tuple[int, ...]
    session: str
    best: VariantOutcome
    per_variant: List[VariantOutcome] = field(default_factory=list)
    pruned: List[PruneDecision] = field(default_factory=list)
    evaluations: int = 0             # cost lookups, including store recalls
    fresh_evaluations: int = 0       # points actually evaluated this run
    store_hits: int = 0              # points recalled from the results store
    output_elements: int = 0         # elements of the grid best_cost refers to
    scorer: str = "simulator"
    wall_s: float = 0.0

    @property
    def best_runtime_s(self) -> float:
        return self.best.best_cost

    @property
    def gelements_per_second(self) -> float:
        """Throughput over the grid the winning cost was computed on.

        In simulator mode that is the benchmark's input shape; in measured
        mode it is the (smaller) measurement grid the workers actually
        timed, so the ratio stays honest.
        """
        return self.output_elements / self.best.best_cost / 1e9

    def describe(self) -> str:
        pruned = sum(1 for decision in self.pruned if not decision.kept)
        return (
            f"{self.benchmark} on {self.device}: best {self.best.describe()}; "
            f"{self.evaluations} evaluations ({self.store_hits} from store, "
            f"{self.fresh_evaluations} fresh), {pruned} variants pruned, "
            f"{self.wall_s:.2f}s wall"
        )


class SearchEngine:
    """Fan candidate evaluations out over processes, memoised in a store.

    Parameters
    ----------
    store:
        A :class:`ResultsStore` (or a path for one).  ``None`` disables
        persistence — every point is evaluated fresh.
    workers:
        Worker process count.  ``1`` evaluates inline in the driver
        process — the old serial pipeline as a degenerate case.
    pruner:
        An optional :class:`CostModelPruner` applied before tuning.
    validate:
        Compile every variant in the workers and functionally cross-check
        it against the high-level program (once per variant per process).
        ``True`` (or ``"numpy"``) compares both through the compiled NumPy
        backend; ``"crosscheck"`` additionally verifies every execution
        against the reference interpreter oracle.  ``validate_size`` grows
        the validation grid (per-dimension extent) beyond the default tiny
        one, making validation a real workload worth parallelising.
    scorer:
        ``"simulator"`` (default) scores configurations with the analytical
        device model — deterministic, so any worker count yields the same
        best point.  ``"measured"`` has the workers *execute* the compiled
        kernel (best of ``measure_runs`` timings on a grid of roughly
        ``measure_size`` per dimension) — the empirical mode, where
        fan-out parallelism pays off on real wall-clock.
    """

    SCORERS = ("simulator", "measured")

    def __init__(
        self,
        store: Union[ResultsStore, str, None] = None,
        workers: int = 1,
        pruner: Optional[CostModelPruner] = None,
        validate: Union[bool, str] = False,
        validate_size: int = 0,
        seed: int = 0,
        scorer: str = "simulator",
        measure_runs: int = 3,
        measure_size: int = 256,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if scorer not in self.SCORERS:
            raise ValueError(f"unknown scorer {scorer!r}; known: {self.SCORERS}")
        self._owns_store = isinstance(store, str)
        self.store = ResultsStore(store) if isinstance(store, str) else store
        self.workers = workers
        self.pruner = pruner
        if isinstance(validate, str):
            self.validate = True
            self.validate_backend = validate
        else:
            self.validate = bool(validate)
            self.validate_backend = "numpy"
        self.validate_size = validate_size
        self.seed = seed
        self.scorer = scorer
        self.measure_runs = measure_runs
        self.measure_size = measure_size
        self._pool: Optional[ProcessPoolExecutor] = None

    @property
    def _measure_args(self) -> Dict[str, int]:
        if self.scorer != "measured":
            return {"measure_runs": 0, "measure_size": 0}
        return {"measure_runs": self.measure_runs, "measure_size": self.measure_size}

    # -- lifecycle -----------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._owns_store and self.store is not None:
            self.store.close()

    def __enter__(self) -> "SearchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the batch submission API ---------------------------------------------
    def submit(self, jobs: Sequence[EvaluationJob],
               session: Optional[str] = None) -> Batch:
        """Submit a batch of evaluation jobs; returns immediately.

        Store lookups happen up front: already-known points resolve without
        touching the pool, duplicate fingerprints within the batch are
        evaluated once, and only genuinely new points are dispatched to
        worker processes (or evaluated inline when ``workers=1``).
        """
        jobs = list(jobs)
        fingerprints = [job.fingerprint() for job in jobs]
        stored = (
            self.store.get_many(fingerprints) if self.store is not None else {}
        )
        resolved: Dict[int, JobResult] = {}
        futures: Dict[int, Future] = {}
        aliases: Dict[int, int] = {}
        canonical: Dict[str, int] = {}
        pending: List[Tuple[int, EvaluationJob]] = []
        for index, (job, fingerprint) in enumerate(zip(jobs, fingerprints)):
            if fingerprint in stored:
                resolved[index] = JobResult(
                    fingerprint=fingerprint,
                    cost=stored[fingerprint].cost,
                    from_store=True,
                )
                continue
            if fingerprint in canonical:
                aliases[index] = canonical[fingerprint]
                continue
            canonical[fingerprint] = index
            pending.append((index, job))

        if pending:
            if self.workers == 1:
                for index, job in pending:
                    resolved[index] = evaluate_job(job)
            else:
                pool = self._ensure_pool()
                for index, job in pending:
                    futures[index] = pool.submit(evaluate_job, job)
        return Batch(jobs, resolved, futures, aliases, self, session)

    def evaluate(self, jobs: Sequence[EvaluationJob],
                 session: Optional[str] = None) -> List[JobResult]:
        """Submit and harvest a batch, in submission order."""
        return self.submit(jobs, session=session).results()

    # -- tuning glue -----------------------------------------------------------
    def batch_objective(
        self,
        benchmark: str,
        shape: Sequence[int],
        device: str,
        variant: VariantSpec,
        expr_digest: str,
        session: Optional[str] = None,
        validate: Optional[bool] = None,
    ):
        """A ``batch_evaluate`` callable for :class:`~repro.tuning.AutoTuner`."""
        validate = self.validate if validate is None else validate

        def evaluate_configs(configs: Sequence[Dict[str, object]]) -> List[float]:
            jobs = make_jobs(
                benchmark, shape, device, variant, configs,
                expr_digest=expr_digest, validate=validate,
                validate_backend=self.validate_backend,
                validate_size=self.validate_size,
                **self._measure_args,
            )
            return [result.cost for result in self.evaluate(jobs, session=session)]

        return evaluate_configs

    def _validation_jobs(
        self,
        benchmark_name: str,
        shape: Sequence[int],
        device_key: str,
        prepared: Sequence[Tuple[VariantSpec, object, str]],
    ) -> List[EvaluationJob]:
        """One validation job per variant, to be fanned across the pool.

        Validation (compile + functional cross-check) is per-variant work;
        leaving it on the per-configuration jobs would repeat it in *every*
        worker process that touches the variant.  Submitting one dedicated
        job per variant as a single up-front batch spreads the variants
        across the pool, so the heavy part parallelises with the worker
        count instead of being duplicated by it; the subsequent
        configuration jobs then run with validation off.  A variant whose
        validation job is answered from the results store is not
        re-validated: it was validated when the stored cost was produced.
        """
        from itertools import islice

        jobs: List[EvaluationJob] = []
        for spec, space, digest in prepared:
            first = next(islice(space.configurations(), 1), None)
            if first is None:
                continue
            jobs.extend(
                make_jobs(
                    benchmark_name, shape, device_key, spec, [first],
                    expr_digest=digest, validate=True,
                    validate_backend=self.validate_backend,
                    validate_size=self.validate_size,
                    **self._measure_args,
                )
            )
        return jobs

    # -- searches --------------------------------------------------------------
    def run(
        self,
        benchmark: Union[str, StencilBenchmark],
        shape: Optional[Sequence[int]] = None,
        device: Union[str, DeviceModel] = "nvidia",
        budget: int = 200,
        strategy: str = "exhaustive",
        restarts: int = 4,
        session: Optional[str] = None,
        prune: Optional[bool] = None,
    ) -> EngineOutcome:
        """Explore a benchmark's variants and tune each one — one job graph.

        Pruning defaults to on when the engine has a pruner.  The best
        point is selected by (cost, submission order), which makes the
        outcome independent of the worker count.
        """
        from ..experiments.pipeline import explore_variants_for, parameter_space_for

        started = time.monotonic()
        if isinstance(benchmark, str):
            benchmark = get_benchmark(benchmark)
        device_key = _device_key(device)
        device_model = DEVICES[device_key]
        shape = tuple(shape or benchmark.default_shape)
        session = session or new_session_id()
        hits_before, misses_before = self._store_counters()

        if self.store is not None:
            self.store.save_session(
                session,
                {
                    "benchmark": benchmark.name,
                    "device": device_key,
                    "shape": list(shape),
                    "budget": budget,
                    "strategy": strategy,
                    "restarts": restarts,
                    "seed": self.seed,
                    "validate": self.validate,
                    "validate_backend": self.validate_backend,
                    "validate_size": self.validate_size,
                    "scorer": self.scorer,
                    "measure_runs": self.measure_runs,
                    "measure_size": self.measure_size,
                    # None = no pruning; a number = CostModelPruner margin.
                    # Resume must re-derive the same job set, so the pruner
                    # configuration is part of the session's identity.
                    "prune_margin": (
                        self.pruner.margin
                        if (self.pruner is not None and prune is not False)
                        else None
                    ),
                },
            )

        variants = [
            (VariantSpec.from_strategy(result.strategy), result.lowered)
            for result in explore_variants_for(benchmark, shape)
        ]
        decisions: List[PruneDecision] = []
        if self.pruner is not None and prune is not False:
            variants, decisions = self.pruner.prune(
                benchmark, shape, device_model, variants
            )

        problem = benchmark.problem(shape)
        lowered_by_spec = dict(variants)
        prepared = [
            (
                spec,
                parameter_space_for(lowered, problem, device_model),
                structural_digest(lowered.program),
            )
            for spec, lowered in variants
        ]
        if self.validate:
            self.evaluate(
                self._validation_jobs(benchmark.name, shape, device_key, prepared),
                session=session,
            )

        from itertools import islice

        per_variant: List[VariantOutcome] = []
        evaluations = 0
        for spec, space, digest in prepared:
            if next(iter(islice(space.configurations(), 1)), None) is None:
                # No valid configuration for this variant on this device
                # (e.g. the tile's output block exceeds the work-group
                # limit).  Checked explicitly so genuine ValueErrors from
                # the search machinery are not silently swallowed.
                continue
            batch = self.batch_objective(
                benchmark.name, shape, device_key, spec, digest,
                session=session, validate=False,
            )

            def objective(config: Dict[str, object], _batch=batch) -> float:
                return _batch([config])[0]

            tuner = AutoTuner(
                space,
                objective,
                budget=budget,
                strategy=strategy,
                seed=self.seed,
                restarts=restarts,
                batch_objective=batch,
            )
            tuning: TuningResult = tuner.tune()
            evaluations += tuning.evaluations
            per_variant.append(
                VariantOutcome(
                    variant=spec,
                    best_config=dict(tuning.best_configuration),
                    best_cost=tuning.best_cost,
                    evaluations=tuning.evaluations,
                )
            )

        if not per_variant:
            raise EngineError(
                f"{benchmark.name}: no variant admits a valid configuration on {device_key}"
            )
        best = min(per_variant, key=lambda outcome: outcome.best_cost)
        hits_after, misses_after = self._store_counters()
        if self.store is not None:
            self.store.finish_session(session)
        return EngineOutcome(
            benchmark=benchmark.name,
            device=device_key,
            shape=shape,
            session=session,
            best=best,
            per_variant=per_variant,
            pruned=decisions,
            evaluations=evaluations,
            fresh_evaluations=misses_after - misses_before,
            store_hits=hits_after - hits_before,
            output_elements=self._scored_elements(
                benchmark, problem, lowered_by_spec[best.variant]
            ),
            scorer=self.scorer,
            wall_s=time.monotonic() - started,
        )

    def _scored_elements(self, benchmark: StencilBenchmark, problem,
                         best_lowered) -> int:
        """Element count of the grid the winning cost was computed on."""
        if self.scorer != "measured":
            return problem.output_elements
        from .worker import measurement_shape

        shape = measurement_shape(benchmark.stencil_extent, benchmark.ndims,
                                  best_lowered, self.measure_size)
        elements = 1
        for extent in shape:
            elements *= extent
        return elements

    def run_suite(
        self,
        benchmarks: Sequence[Union[str, StencilBenchmark]],
        device: Union[str, DeviceModel] = "nvidia",
        budget: int = 200,
        session: Optional[str] = None,
        shapes: Optional[Dict[str, Sequence[int]]] = None,
        prune: Optional[bool] = None,
    ) -> Dict[str, EngineOutcome]:
        """Enqueue a whole app suite as one batch and reduce per benchmark.

        Unlike :meth:`run`, which interleaves search strategy and
        evaluation, the suite path enumerates each variant's parameter
        space up front (exhaustively, capped at ``budget`` per variant —
        the experiment pipeline's configuration) and submits every job of
        every benchmark in a single batch, so all worker processes stay
        busy across benchmark boundaries.
        """
        from itertools import islice

        from ..experiments.pipeline import explore_variants_for, parameter_space_for

        started = time.monotonic()
        device_key = _device_key(device)
        device_model = DEVICES[device_key]
        session = session or new_session_id()
        hits_before, misses_before = self._store_counters()

        plans = []  # (benchmark, shape, spec, configs, jobs-slice bounds)
        all_jobs: List[EvaluationJob] = []
        validation_plans: Dict[str, List[Tuple[VariantSpec, object, str]]] = {}
        decisions_by_bench: Dict[str, List[PruneDecision]] = {}
        lowered_by_variant: Dict[Tuple[str, VariantSpec], object] = {}
        for entry in benchmarks:
            benchmark = get_benchmark(entry) if isinstance(entry, str) else entry
            shape = tuple(
                (shapes or {}).get(benchmark.name) or benchmark.default_shape
            )
            problem = benchmark.problem(shape)
            variants = [
                (VariantSpec.from_strategy(result.strategy), result.lowered)
                for result in explore_variants_for(benchmark, shape)
            ]
            decisions: List[PruneDecision] = []
            if self.pruner is not None and prune is not False:
                variants, decisions = self.pruner.prune(
                    benchmark, shape, device_model, variants
                )
            decisions_by_bench[benchmark.name] = decisions
            for spec, lowered in variants:
                space = parameter_space_for(lowered, problem, device_model)
                configs = list(islice(space.configurations(), budget))
                if not configs:
                    continue
                digest = structural_digest(lowered.program)
                validation_plans.setdefault(benchmark.name, []).append(
                    (spec, space, digest)
                )
                lowered_by_variant[(benchmark.name, spec)] = lowered
                jobs = make_jobs(
                    benchmark.name, shape, device_key, spec, configs,
                    expr_digest=digest, validate=False,
                    validate_backend=self.validate_backend,
                    validate_size=self.validate_size,
                    **self._measure_args,
                )
                start = len(all_jobs)
                all_jobs.extend(jobs)
                plans.append((benchmark, shape, spec, configs, start, len(all_jobs)))

        validation_counts: Dict[str, Tuple[int, int]] = {}  # name → (fresh, hits)
        if self.validate:
            # One combined validation batch across every benchmark (see
            # _validation_jobs): per-variant validation fans across the
            # pool instead of being duplicated per configuration job.
            validation_jobs: List[EvaluationJob] = []
            bounds: List[Tuple[str, int, int]] = []
            for name, prepared in validation_plans.items():
                bench_shape = next(
                    shape for benchmark, shape, *_rest in plans
                    if benchmark.name == name
                )
                start = len(validation_jobs)
                validation_jobs.extend(
                    self._validation_jobs(name, bench_shape, device_key, prepared)
                )
                bounds.append((name, start, len(validation_jobs)))
            if validation_jobs:
                vresults = self.evaluate(validation_jobs, session=session)
                for name, start, stop in bounds:
                    hits = sum(1 for result in vresults[start:stop] if result.from_store)
                    validation_counts[name] = (stop - start - hits, hits)

        results = self.evaluate(all_jobs, session=session)

        outcomes: Dict[str, EngineOutcome] = {}
        grouped: Dict[str, List[VariantOutcome]] = {}
        bench_info: Dict[str, Tuple[StencilBenchmark, Tuple[int, ...]]] = {}
        counters: Dict[str, List[int]] = {}  # name → [fresh, hits]
        for benchmark, shape, spec, configs, start, stop in plans:
            slice_results = results[start:stop]
            best_index = min(
                range(len(slice_results)), key=lambda i: slice_results[i].cost
            )
            grouped.setdefault(benchmark.name, []).append(
                VariantOutcome(
                    variant=spec,
                    best_config=dict(configs[best_index]),
                    best_cost=slice_results[best_index].cost,
                    evaluations=len(slice_results),
                )
            )
            hits = sum(1 for result in slice_results if result.from_store)
            tally = counters.setdefault(benchmark.name, [0, 0])
            tally[0] += len(slice_results) - hits
            tally[1] += hits
            bench_info[benchmark.name] = (benchmark, shape)
        wall = time.monotonic() - started
        for name, variant_outcomes in grouped.items():
            benchmark, shape = bench_info[name]
            best = min(variant_outcomes, key=lambda outcome: outcome.best_cost)
            fresh, hits = counters[name]
            validation_fresh, validation_hits = validation_counts.get(name, (0, 0))
            outcomes[name] = EngineOutcome(
                benchmark=name,
                device=device_key,
                shape=shape,
                session=session,
                best=best,
                per_variant=variant_outcomes,
                pruned=decisions_by_bench.get(name, []),
                evaluations=sum(o.evaluations for o in variant_outcomes),
                fresh_evaluations=fresh + validation_fresh,
                store_hits=hits + validation_hits,
                output_elements=self._scored_elements(
                    benchmark, benchmark.problem(shape),
                    lowered_by_variant[(name, best.variant)],
                ),
                scorer=self.scorer,
                wall_s=wall,  # suite-wide wall clock: the batch is shared
            )
        if self.store is not None:
            self.store.finish_session(session)
        return outcomes

    # -- helpers ---------------------------------------------------------------
    def _store_counters(self) -> Tuple[int, int]:
        if self.store is None:
            return (0, 0)
        return (self.store.hits, self.store.misses)


def new_session_id() -> str:
    """A fresh, user-visible session identifier."""
    return uuid.uuid4().hex[:12]


__all__ = [
    "Batch",
    "EngineError",
    "EngineOutcome",
    "SearchEngine",
    "new_session_id",
]
