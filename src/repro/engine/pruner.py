"""Cost-model-guided pruning of dominated kernel variants.

Tuning every macro-rewrite variant costs ``budget`` evaluations per variant
(plus one compile per worker process).  Many variants are hopeless from the
start — e.g. a tile size whose halo overhead dwarfs its reuse on a device
with weak local memory — and the simulator's analytical model can tell
*before* any of that is paid.

The pruner probes each variant at a few configurations drawn from the head
of its own parameter space (deterministic: the same probe points every run,
in every process count) and discards variants whose best probe cost exceeds
``margin ×`` the best probe cost seen across all variants.  The margin
absorbs the model's optimism about how far tuning can close the gap; the
best-estimated variant is never pruned, so a search over a pruned set
always has at least one candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import List, Sequence, Tuple

from ..apps.base import StencilBenchmark
from ..rewriting.strategies import LoweredProgram
from ..runtime.simulator.device import DeviceModel
from ..runtime.simulator.executor import VirtualDevice
from ..runtime.simulator.kernel_model import build_profile
from .jobs import VariantSpec
from .worker import kernel_config_from


@dataclass(frozen=True)
class PruneDecision:
    """The pruner's verdict on one variant."""

    variant: VariantSpec
    estimate: float          # best probe cost (simulated seconds); inf = no valid config
    kept: bool

    def describe(self) -> str:
        verdict = "kept" if self.kept else "pruned"
        return f"{self.variant.describe()}: estimate {self.estimate:.3g}s ({verdict})"


class CostModelPruner:
    """Prune variants the simulator already deems dominated.

    ``margin`` is the tolerated estimate ratio over the best variant
    (``margin=4`` keeps everything within 4× of the front-runner's probe
    cost); ``probes`` is how many configurations are probed per variant.
    """

    def __init__(self, margin: float = 4.0, probes: int = 3) -> None:
        if margin < 1.0:
            raise ValueError("prune margin must be >= 1 (1 keeps only the front-runner)")
        self.margin = margin
        self.probes = max(1, probes)

    def estimate(
        self,
        benchmark: StencilBenchmark,
        shape: Sequence[int],
        device: DeviceModel,
        lowered: LoweredProgram,
    ) -> float:
        """Best simulated cost over the variant's first few valid configs."""
        from ..experiments.pipeline import parameter_space_for

        problem = benchmark.problem(shape)
        space = parameter_space_for(lowered, problem, device)
        virtual = VirtualDevice(device)
        best = float("inf")
        for config in islice(space.configurations(), self.probes):
            kernel_config = kernel_config_from(lowered, config, problem.ndims)
            profile = build_profile(lowered, problem, kernel_config)
            best = min(best, virtual.run(profile).runtime_s)
        return best

    def prune(
        self,
        benchmark: StencilBenchmark,
        shape: Sequence[int],
        device: DeviceModel,
        variants: Sequence[Tuple[VariantSpec, LoweredProgram]],
    ) -> Tuple[List[Tuple[VariantSpec, LoweredProgram]], List[PruneDecision]]:
        """Split variants into survivors and decisions (in input order)."""
        estimates = [
            self.estimate(benchmark, shape, device, lowered)
            for _spec, lowered in variants
        ]
        finite = [value for value in estimates if value != float("inf")]
        threshold = self.margin * min(finite) if finite else float("inf")
        decisions: List[PruneDecision] = []
        kept: List[Tuple[VariantSpec, LoweredProgram]] = []
        for (spec, lowered), estimate in zip(variants, estimates):
            keep = estimate <= threshold
            decisions.append(PruneDecision(variant=spec, estimate=estimate, kept=keep))
            if keep:
                kept.append((spec, lowered))
        return kept, decisions


__all__ = ["CostModelPruner", "PruneDecision"]
