"""Serializable job specs: the unit of work the search engine schedules.

The engine treats "pick a rewrite variant" and "pick a tuning configuration"
as one job graph; a leaf of that graph is an :class:`EvaluationJob` — one
(benchmark, shape, device, strategy, configuration) point.  Jobs are plain
frozen dataclasses over primitives so they pickle cheaply across process
boundaries; worker processes *reconstruct* the Lift program, lower it with
the strategy, and compile it locally (compiled kernels themselves are never
shipped — see :mod:`repro.backend.cache`).

Every job has a :meth:`~EvaluationJob.fingerprint`: a stable digest of the
structural expression hash plus the configuration, which keys the persistent
:class:`~repro.engine.store.ResultsStore` for cross-run memoisation.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..rewriting.strategies import Strategy

#: Ordered (name, value) pairs — the canonical, hashable configuration form.
ConfigItems = Tuple[Tuple[str, object], ...]


def config_items(config: Dict[str, object]) -> ConfigItems:
    """Canonicalise a configuration dict into sorted, hashable items."""
    return tuple(sorted(config.items()))


@dataclass(frozen=True)
class VariantSpec:
    """A macro-rewrite strategy in wire form.

    Field-for-field this mirrors :class:`~repro.rewriting.strategies.Strategy`
    — deliberately a separate type: it is the engine's serialization
    boundary (job pickles, store rows, session specs), so rewriting-side
    changes to ``Strategy`` cannot silently change persisted identities.
    ``to_dict``/``from_strategy``/``to_strategy`` are the only conversions.
    """

    name: str
    use_tiling: bool = False
    tile_size: int = 0
    use_local_memory: bool = False
    unroll_reduce: bool = True

    @staticmethod
    def from_strategy(strategy: Strategy) -> "VariantSpec":
        return VariantSpec(**strategy.to_spec())

    def to_dict(self) -> Dict[str, object]:
        import dataclasses

        return dataclasses.asdict(self)

    def to_strategy(self) -> Strategy:
        return Strategy(
            name=self.name,
            use_tiling=self.use_tiling,
            tile_size=self.tile_size,
            use_local_memory=self.use_local_memory,
            unroll_reduce=self.unroll_reduce,
        )

    def describe(self) -> str:
        return self.to_strategy().describe()


@dataclass(frozen=True)
class EvaluationJob:
    """One candidate evaluation: a variant + configuration on one device.

    ``expr_digest`` is the stable structural digest of the *lowered*
    program (computed once per variant by the driver); together with the
    configuration it forms the results-store key, so two jobs that lower to
    the same expression and tune the same point share one stored result
    even across benchmarks, sessions and runs.
    """

    benchmark: str
    shape: Tuple[int, ...]
    device: str
    variant: VariantSpec
    config: ConfigItems
    expr_digest: str = ""
    validate: bool = False
    validate_backend: str = "numpy"  # "numpy" or "crosscheck" (interpreter oracle)
    validate_size: int = 0           # grow the validation grid to this extent
    measure_runs: int = 0            # > 0: score by executing the compiled kernel
    measure_size: int = 0            # target grid extent for measured scoring

    @property
    def config_dict(self) -> Dict[str, object]:
        return dict(self.config)

    def fingerprint(self) -> str:
        """Stable digest identifying this evaluation across runs."""
        payload = {
            "benchmark": self.benchmark,
            "shape": list(self.shape),
            "device": self.device,
            "variant": self.variant.to_dict(),
            "config": [[name, value] for name, value in self.config],
            "expr": self.expr_digest,
        }
        if self.measure_runs > 0:
            # Measured costs are a different quantity than simulated ones;
            # the two must never share a memo entry.
            payload["measure"] = [self.measure_runs, self.measure_size]
        if self.validate:
            # A validating job must not be answered by a cost produced
            # without validation — keying the validation requirements means
            # a stored hit on a validate job really was validated when its
            # cost was produced.  Non-validating jobs still share entries
            # across runs regardless of the validation settings.
            payload["validated"] = [self.validate_backend, self.validate_size]
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        config = ", ".join(f"{name}={value}" for name, value in self.config)
        return f"{self.benchmark}[{self.variant.describe()}]({config}) on {self.device}"


@dataclass(frozen=True)
class JobResult:
    """The outcome of evaluating one job (or recalling it from the store)."""

    fingerprint: str
    cost: float                      # simulated kernel runtime in seconds
    from_store: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class VariantOutcome:
    """Best point found for one variant plus its evaluation bookkeeping."""

    variant: VariantSpec
    best_config: Dict[str, object] = field(default_factory=dict)
    best_cost: float = float("inf")
    evaluations: int = 0

    def describe(self) -> str:
        return (
            f"{self.variant.describe()}: cost {self.best_cost:.6g} "
            f"after {self.evaluations} evaluations ({self.best_config})"
        )


def make_jobs(
    benchmark: str,
    shape: Sequence[int],
    device: str,
    variant: VariantSpec,
    configs: Sequence[Dict[str, object]],
    expr_digest: str = "",
    validate: bool = False,
    validate_backend: str = "numpy",
    validate_size: int = 0,
    measure_runs: int = 0,
    measure_size: int = 0,
) -> Tuple[EvaluationJob, ...]:
    """Build the evaluation jobs for one variant over many configurations."""
    return tuple(
        EvaluationJob(
            benchmark=benchmark,
            shape=tuple(int(extent) for extent in shape),
            device=device,
            variant=variant,
            config=config_items(config),
            expr_digest=expr_digest,
            validate=validate,
            validate_backend=validate_backend,
            validate_size=validate_size,
            measure_runs=measure_runs,
            measure_size=measure_size,
        )
        for config in configs
    )


__all__ = [
    "ConfigItems",
    "config_items",
    "VariantSpec",
    "EvaluationJob",
    "JobResult",
    "VariantOutcome",
    "make_jobs",
]
