"""The worker-side evaluator: rebuild, lower, compile, score.

This module is the ``ProcessPoolExecutor`` entry point of the search engine.
A worker receives a picklable :class:`~repro.engine.jobs.EvaluationJob`,
*reconstructs* the Lift program from the benchmark registry, lowers it with
the job's strategy, optionally compiles and functionally checks it through
the PR-1 NumPy backend, and scores the configuration with the simulator
cost model.  Nothing compiled ever crosses the process boundary (see
:mod:`repro.backend.cache` for the rationale); instead each worker keeps

* a lowered-program memo per (benchmark, variant) — lowering runs once per
  variant per process, and
* the process-wide compilation cache — each variant compiles once per
  process, and
* a validated-variant memo — the functional cross-check (compiled lowered
  program vs. compiled high-level program on a small grid) runs once per
  variant per process, not once per configuration.

The same function doubles as the engine's inline evaluator when
``workers=1``, which makes the serial path a true degenerate case of the
parallel one.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..rewriting.strategies import LoweredProgram, lower_program
from ..runtime.simulator.device import DEVICES
from ..runtime.simulator.executor import VirtualDevice
from ..runtime.simulator.kernel_model import KernelConfig, build_profile
from .jobs import EvaluationJob, JobResult, VariantSpec

# Per-process memo tables (re-populated lazily in every worker process).
_LOWERED: Dict[Tuple[str, VariantSpec], LoweredProgram] = {}
_VALIDATED: Dict[Tuple[str, VariantSpec, str, int], bool] = {}
_MEASURED: Dict[Tuple[str, VariantSpec, int, int], float] = {}

#: Default tiny grids for the functional cross-check (per dimensionality).
VALIDATION_SHAPES: Dict[int, Tuple[int, ...]] = {2: (13, 11), 3: (5, 7, 9)}


def kernel_config_from(lowered: LoweredProgram, config: Dict[str, object],
                       ndims: int) -> KernelConfig:
    """Translate a tuning configuration into the simulator's kernel config."""
    wg = tuple(
        int(config.get(name, 1)) for name in ["wg_x", "wg_y", "wg_z"][:ndims]
    )
    return KernelConfig(
        workgroup_size=wg,
        work_per_thread=int(config.get("work_per_thread", 1)),
        tile_size=lowered.tile_size,
        use_local_memory=lowered.uses_local_memory,
        unrolled=lowered.unrolled,
    )


def validation_shape(stencil_extent: int, ndims: int,
                     lowered: LoweredProgram,
                     min_size: int = 0) -> Tuple[int, ...]:
    """An input shape on which the variant computes the full output.

    Untiled variants work on any shape.  A tiled variant only reproduces the
    whole output when its tiles exactly cover the padded input
    (``(padded − u) % v == 0``); at the benchmark's own sizes Lift instead
    rounds the ND-range up, which the executors do not model, so the grid is
    chosen to satisfy exact coverage.  ``min_size`` grows the grid to at
    least that extent per dimension (while preserving exact coverage) —
    measured scoring uses it to time kernels on non-trivial inputs.
    """
    if not lowered.uses_tiling:
        if min_size > 0:
            return (min_size,) * ndims
        return VALIDATION_SHAPES[ndims]
    u = lowered.tile_size
    v = u - (lowered.stencil_size - lowered.stencil_step)
    radius = (stencil_extent - 1) // 2
    padded = u
    while padded - 2 * radius < max(8, lowered.stencil_size, min_size):
        padded += v
    return (padded - 2 * radius,) * ndims


def measurement_shape(stencil_extent: int, ndims: int, lowered: LoweredProgram,
                      measure_size: int) -> Tuple[int, ...]:
    """The grid measured scoring times a variant on.

    The per-dimension target holds the element count roughly constant
    across dimensionalities so 3D jobs stay affordable; tiled variants are
    then grown to the nearest exact-coverage shape.  Exposed so the driver
    can report measured throughput over the *same* grid the workers timed.
    """
    target = measure_size if ndims == 2 else max(16, round(measure_size ** (2 / 3)))
    return validation_shape(stencil_extent, ndims, lowered, min_size=target)


def _lowered_for(job: EvaluationJob) -> LoweredProgram:
    from ..apps.suite import get_benchmark

    memo_key = (job.benchmark, job.variant)
    lowered = _LOWERED.get(memo_key)
    if lowered is None:
        benchmark = get_benchmark(job.benchmark)
        lowered = lower_program(benchmark.build_program(), job.variant.to_strategy())
        _LOWERED[memo_key] = lowered
    return lowered


def _validate_variant(job: EvaluationJob, lowered: LoweredProgram) -> None:
    """Compile the variant with the NumPy backend and cross-check it.

    Both the high-level program and the lowered variant are compiled and
    executed on a small grid; divergence means a rewrite (or the compiler)
    broke the kernel this configuration belongs to, so the job fails loudly
    rather than reporting a cost for a miscompiled variant.  With
    ``validate_backend="crosscheck"``, each execution is additionally
    verified against the reference interpreter — the slow, trusted oracle.
    """
    from ..apps.suite import get_benchmark
    from ..backend import BackendMismatch, get_backend

    memo_key = (job.benchmark, job.variant, job.validate_backend, job.validate_size)
    if _VALIDATED.get(memo_key):
        return
    benchmark = get_benchmark(job.benchmark)
    shape = validation_shape(benchmark.stencil_extent, benchmark.ndims, lowered,
                             min_size=job.validate_size)
    inputs = [np.asarray(grid) for grid in benchmark.make_inputs(shape, 23)]
    backend = get_backend(job.validate_backend)
    expected = np.asarray(backend.run(benchmark.build_program(), inputs))
    actual = np.asarray(backend.run(lowered.program, inputs))
    if expected.shape != actual.shape or not np.allclose(
        actual, expected, rtol=1e-6, atol=0.0
    ):
        raise BackendMismatch(
            f"{job.benchmark}: variant {job.variant.describe()!r} diverges "
            "from the high-level program under the compiled backend"
        )
    _VALIDATED[memo_key] = True


def _measured_cost(job: EvaluationJob, lowered: LoweredProgram) -> float:
    """Time the variant's steady-state execution on a real grid.

    The simulator scores a *device model*; measured scoring instead executes
    the variant on this machine and takes the best of ``measure_runs``
    timings — the closest analogue of the paper's on-device auto-tuning
    runs.  Timing goes through an :class:`~repro.backend.plan.ExecutionPlan`
    (warmed until its tape replays) and **searches the tape optimizer's
    tile shapes** (unfused tape, heuristic tile, row/slab blocks — see
    :func:`repro.tuning.parameters.fuse_tile_candidates`) with warm
    fused-plan replays, so the reported cost is the best *steady-state*
    sweep the serving layer could actually pay.  Measured costs are
    wall-clock and therefore not bit-reproducible across machines; the
    engine keeps them in a separate memo keyspace (see
    :meth:`EvaluationJob.fingerprint`).

    The compiled NumPy execution is configuration-independent (work-group
    geometry only exists in the device model), so measured mode ranks
    *variants*: the timing is memoised per variant per process, and every
    configuration of a variant reports that variant's measured cost.
    """
    import time

    from ..apps.suite import get_benchmark
    from ..backend import get_backend

    memo_key = (job.benchmark, job.variant, job.measure_runs, job.measure_size)
    cached = _MEASURED.get(memo_key)
    if cached is not None:
        return cached

    from ..backend import CompileError
    from ..backend.fuse import measure_best_tile
    from ..tuning.parameters import fuse_tile_candidates

    benchmark = get_benchmark(job.benchmark)
    shape = measurement_shape(benchmark.stencil_extent, benchmark.ndims,
                              lowered, job.measure_size)
    inputs = [np.asarray(grid) for grid in benchmark.make_inputs(shape, 29)]
    backend = get_backend("numpy")
    runs = max(1, job.measure_runs)
    try:
        best, _tile, _workers = measure_best_tile(
            backend, lowered.program, inputs,
            candidates=fuse_tile_candidates(benchmark.ndims), runs=runs,
        )
    except CompileError:
        # Plans have no interpreter fallback; a variant the compiler cannot
        # handle is still timed through the generic path (which falls back),
        # so measured-mode search never loses coverage over validation.
        backend.run(lowered.program, inputs)
        best = float("inf")
        for _ in range(runs):
            started = time.perf_counter()
            backend.run(lowered.program, inputs)
            best = min(best, time.perf_counter() - started)
    _MEASURED[memo_key] = best
    return best


def evaluate_job(job: EvaluationJob) -> JobResult:
    """Score one (variant, configuration) point; never raises.

    Errors are reported in-band through :attr:`JobResult.error` so one bad
    point cannot take down a whole batch (a raising job would poison the
    executor's result iterator).
    """
    try:
        from ..apps.suite import get_benchmark

        benchmark = get_benchmark(job.benchmark)
        lowered = _lowered_for(job)
        if job.validate:
            _validate_variant(job, lowered)
        if job.measure_runs > 0:
            cost = _measured_cost(job, lowered)
        else:
            problem = benchmark.problem(job.shape)
            config = kernel_config_from(lowered, job.config_dict, problem.ndims)
            profile = build_profile(lowered, problem, config)
            cost = VirtualDevice(DEVICES[job.device]).run(profile).runtime_s
        return JobResult(fingerprint=job.fingerprint(), cost=float(cost))
    except Exception as error:  # noqa: BLE001 - reported in-band, see docstring
        return JobResult(
            fingerprint=job.fingerprint(),
            cost=float("inf"),
            error=f"{type(error).__name__}: {error}",
        )


__all__ = [
    "VALIDATION_SHAPES",
    "evaluate_job",
    "kernel_config_from",
    "measurement_shape",
    "validation_shape",
]
