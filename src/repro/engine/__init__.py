"""The parallel, persistent exploration & auto-tuning engine.

One job graph for "pick a rewrite variant" and "pick a tuning
configuration": the :class:`SearchEngine` fans candidate evaluations out
over a process pool (workers compile through the PR-1 NumPy backend and
score with the simulator cost model), memoises every cost in a SQLite
:class:`ResultsStore` keyed by stable structural digest + configuration
(cross-run memoisation, resumable sessions), and prunes dominated variants
with the :class:`CostModelPruner` before any budget is spent on them.

Entry points:

* :meth:`SearchEngine.run` — explore + tune one benchmark;
* :meth:`SearchEngine.run_suite` — enqueue a whole app suite as one batch;
* :meth:`SearchEngine.submit` — the raw async-friendly batch API;
* the CLI verbs ``repro explore`` and ``repro tune [--resume <session-id>]``.
"""

from .engine import Batch, EngineError, EngineOutcome, SearchEngine, new_session_id
from .jobs import EvaluationJob, JobResult, VariantOutcome, VariantSpec, make_jobs
from .pruner import CostModelPruner, PruneDecision
from .store import DEFAULT_STORE_PATH, ResultsStore, StoredResult

__all__ = [
    "Batch",
    "CostModelPruner",
    "DEFAULT_STORE_PATH",
    "EngineError",
    "EngineOutcome",
    "EvaluationJob",
    "JobResult",
    "PruneDecision",
    "ResultsStore",
    "SearchEngine",
    "StoredResult",
    "VariantOutcome",
    "VariantSpec",
    "make_jobs",
    "new_session_id",
]
